"""Query guards: budgets, deadlines, cancellation, and their feedback.

Covers the guard primitives (virtual clock, token, validation), every
budget's trip path in both executors, the ``"partial"`` breach policy,
EXPLAIN ANALYZE's ``guard:`` line, and the guard-trip → feedback-store →
plan-cache loop (a tripped budget is treated as the loudest possible
mis-planning signal).
"""

import pytest

from repro import SoftDB
from repro.errors import (
    BudgetExceededError,
    ExecutionError,
    QueryCancelledError,
    QueryGuardError,
    QueryTimeoutError,
)
from repro.optimizer.planner import OptimizerConfig
from repro.resilience.guards import (
    CancellationToken,
    QueryGuard,
    VirtualClock,
    format_guard_report,
)

#: Both executors: the row-at-a-time oracle and a stride-y batched mode.
BATCH_SIZES = (0, 64)


@pytest.fixture
def db() -> SoftDB:
    """Two tables big enough to spend budgets on, with stats."""
    db = SoftDB()
    db.execute(
        "CREATE TABLE emp (id INT PRIMARY KEY, dept_id INT, salary INT)"
    )
    db.execute("CREATE TABLE dept (id INT PRIMARY KEY, budget INT)")
    db.database.insert_many(
        "emp", [(n, n % 20, 1000 + n % 700) for n in range(1500)]
    )
    db.database.insert_many("dept", [(n, 10000 * (n + 1)) for n in range(20)])
    db.runstats_all()
    return db


class TestVirtualClock:
    def test_sleep_advances_without_blocking(self):
        clock = VirtualClock(10.0)
        assert clock() == 10.0
        clock.sleep(2.5)
        assert clock() == 12.5


class TestCancellationToken:
    def test_cancel_sets_flag_and_reason(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel("user pressed ^C")
        assert token.cancelled
        assert token.reason == "user pressed ^C"


class TestGuardValidation:
    def test_bad_breach_policy_rejected(self):
        with pytest.raises(ExecutionError):
            QueryGuard(on_breach="explode")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline": 0.0},
            {"max_rows": 0},
            {"max_page_reads": -1},
            {"max_join_pairs": 0},
        ],
    )
    def test_non_positive_limits_rejected(self, kwargs):
        with pytest.raises(ExecutionError):
            QueryGuard(**kwargs)


class TestBudgetTrips:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_row_budget(self, db, batch_size):
        guard = QueryGuard(max_rows=50)
        with pytest.raises(BudgetExceededError) as info:
            db.execute("SELECT id FROM emp", batch_size=batch_size, guard=guard)
        assert info.value.budget == "rows"
        assert info.value.report["tripped"] is not None
        assert info.value.report["rows"] > 50

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_page_read_budget(self, db, batch_size):
        guard = QueryGuard(max_page_reads=2)
        with pytest.raises(BudgetExceededError) as info:
            db.execute(
                "SELECT id FROM emp", batch_size=batch_size, guard=guard
            )
        assert info.value.budget == "page_reads"

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_page_read_budget_trips_without_output_rows(self, db, batch_size):
        # A scan whose filter rejects everything yields no rows at all;
        # only the scan-level ticks can notice the page-read burn.
        guard = QueryGuard(max_page_reads=2)
        with pytest.raises(BudgetExceededError) as info:
            db.execute(
                "SELECT id FROM emp WHERE salary < 0",
                batch_size=batch_size,
                guard=guard,
            )
        assert info.value.budget == "page_reads"

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_join_pair_budget(self, db, batch_size):
        guard = QueryGuard(max_join_pairs=10_000)
        with pytest.raises(BudgetExceededError) as info:
            db.execute(
                "SELECT count(*) AS n FROM emp, dept "
                "WHERE emp.salary < dept.budget",
                batch_size=batch_size,
                guard=guard,
            )
        assert info.value.budget == "join_pairs"

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_deadline_trip(self, db, batch_size):
        # Every clock consultation advances virtual time by a full second,
        # so the first strided deadline check is already past the budget.
        class TickingClock(VirtualClock):
            def __call__(self) -> float:
                self.now += 1.0
                return self.now

        guard = QueryGuard(deadline=0.5, clock=TickingClock())
        with pytest.raises(QueryTimeoutError):
            db.execute("SELECT id FROM emp", batch_size=batch_size, guard=guard)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_untripped_guard_reports_consumption(self, db, batch_size):
        guard = QueryGuard(max_rows=1_000_000, max_page_reads=1_000_000)
        result = db.execute(
            "SELECT id FROM emp WHERE salary >= 1000",
            batch_size=batch_size,
            guard=guard,
        )
        assert not result.truncated
        report = result.guard_report
        assert report["rows"] == result.row_count
        assert report["page_reads"] > 0
        assert report["tripped"] is None
        line = format_guard_report(report)
        assert line.startswith("guard: ")
        assert "tripped=no" in line

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_guard_results_match_unguarded(self, db, batch_size):
        sql = "SELECT dept_id, count(*) AS n FROM emp GROUP BY dept_id"
        plain = db.execute(sql, batch_size=batch_size)
        guarded = db.execute(
            sql, batch_size=batch_size, guard=QueryGuard(max_rows=10**9)
        )
        assert sorted(map(tuple, (r.items() for r in guarded.rows))) == sorted(
            map(tuple, (r.items() for r in plain.rows))
        )


class TestPartialPolicy:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_partial_returns_truncated_prefix(self, db, batch_size):
        guard = QueryGuard(max_rows=100, on_breach="partial")
        result = db.execute(
            "SELECT id FROM emp", batch_size=batch_size, guard=guard
        )
        assert result.truncated
        # Rows are accounted before delivery, so a partial result never
        # exceeds the budget; the row-at-a-time executor delivers exactly
        # the budget, the batched one whole batches up to it.
        assert result.row_count <= 100
        if batch_size == 0:
            assert result.row_count == 100
        assert isinstance(result.guard_breach, BudgetExceededError)
        assert result.guard_report["tripped"] is not None

    def test_abort_policy_propagates(self, db):
        guard = QueryGuard(max_rows=50, on_breach="abort")
        with pytest.raises(QueryGuardError):
            db.execute("SELECT id FROM emp", guard=guard)


class TestCancellation:
    def test_pre_cancelled_token_rejected_on_entry(self, db):
        token = CancellationToken()
        token.cancel("session closed")
        with pytest.raises(QueryCancelledError):
            db.execute("SELECT id FROM emp", cancel=token)

    def test_mid_execution_cancellation(self, db):
        token = CancellationToken()
        guard = QueryGuard()
        active = guard.arm(db.database.counters, token)
        active.note_rows(10)  # live token: no trip
        token.cancel("enough")
        with pytest.raises(QueryCancelledError):
            active.note_rows(1)
        assert active.tripped is not None

    def test_token_without_guard_is_honored(self, db):
        # A cancel token alone arms a no-limit stand-in guard.
        token = CancellationToken()
        result = db.execute("SELECT id FROM emp LIMIT 5", cancel=token)
        assert result.row_count == 5
        assert result.guard_report is not None


class TestExplainGuardLine:
    def test_explain_analyze_shows_guard_report(self, db):
        text = db.explain(
            "SELECT id FROM emp WHERE salary > 1200",
            analyze=True,
            guard=QueryGuard(max_rows=1_000_000),
        )
        assert "guard: rows=" in text
        assert "tripped=no" in text

    def test_explain_analyze_shows_truncation(self, db):
        text = db.explain(
            "SELECT id FROM emp",
            analyze=True,
            guard=QueryGuard(max_rows=10, on_breach="partial"),
        )
        assert "[truncated by guard]" in text
        assert "tripped=BudgetExceededError" in text

    def test_plain_explain_unchanged(self, db):
        assert "guard:" not in db.explain("SELECT id FROM emp")


class TestGuardFeedbackLoop:
    def _feedback_db(self) -> SoftDB:
        db = SoftDB(OptimizerConfig(collect_feedback=True))
        db.execute("CREATE TABLE t (a INT, b INT)")
        db.database.insert_many("t", [(n, n % 7) for n in range(600)])
        db.runstats_all()
        return db

    def test_trip_recorded_in_feedback_report(self):
        db = self._feedback_db()
        with pytest.raises(BudgetExceededError):
            db.execute("SELECT a FROM t", guard=QueryGuard(max_rows=10))
        report = db.feedback_report()
        assert report["guard_trips"]["total"] == 1
        assert report["guard_trips"]["by_kind"] == {"rows": 1}
        assert report["guard_trips"]["by_table"] == {"t": 1}

    def test_cached_plan_evicted_on_breach(self):
        db = self._feedback_db()
        sql = "SELECT a FROM t WHERE b = 3"
        db.execute(sql, use_cache=True)
        assert sql in db.plan_cache._plans
        with pytest.raises(BudgetExceededError):
            db.execute(sql, use_cache=True, guard=QueryGuard(max_rows=1))
        assert sql not in db.plan_cache._plans
        assert db.plan_cache.guard_invalidations == 1
        assert db.feedback_report()["plan_cache_guard_invalidations"] == 1

    def test_repeated_trips_flag_table_suspect(self):
        db = self._feedback_db()
        for _ in range(2):
            with pytest.raises(BudgetExceededError):
                db.execute("SELECT a FROM t", guard=QueryGuard(max_rows=10))
        suspects = db.feedback.tables_with_qerror()
        assert suspects.get("t", 0.0) >= 1e6

    def test_cancellation_blames_nobody(self):
        db = self._feedback_db()
        sql = "SELECT a FROM t"
        db.execute(sql, use_cache=True)
        plan = db.plan(sql)
        db._note_guard_breach(
            sql, plan, QueryCancelledError("user"), use_cache=True
        )
        report = db.feedback_report()
        assert report["guard_trips"]["by_kind"] == {"cancelled": 1}
        assert report["guard_trips"]["by_table"] == {}
        assert db.plan_cache.guard_invalidations == 0
        assert sql in db.plan_cache._plans

    def test_partial_trip_feeds_loop_without_harvest(self):
        db = self._feedback_db()
        before = db.feedback.harvests
        result = db.execute(
            "SELECT a FROM t",
            guard=QueryGuard(max_rows=10, on_breach="partial"),
        )
        assert result.truncated
        assert db.feedback.harvests == before
        assert db.feedback_report()["guard_trips"]["total"] == 1

    def test_drifted_workload_breach_is_visible(self):
        """Acceptance: stats say tiny, the data grew 100x; a page-read
        budget sized for the estimate trips with a typed error that the
        feedback report surfaces."""
        db = self._feedback_db()
        # The optimizer believes 600 rows; the table silently grows.
        db.database.insert_many(
            "t", [(n, n % 7) for n in range(600, 12_000)]
        )
        plan = db.plan("SELECT a FROM t WHERE b = 3")
        # A generous 2x margin over the (stale) estimate still trips,
        # because the data actually grew 20x.
        budget = max(1, int(plan.root.estimated_rows * 2))
        with pytest.raises(BudgetExceededError) as info:
            db.execute(
                "SELECT a FROM t WHERE b = 3",
                guard=QueryGuard(max_rows=budget),
            )
        assert info.value.budget == "rows"
        assert db.feedback_report()["guard_trips"]["by_table"] == {"t": 1}
