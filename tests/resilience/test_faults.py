"""Fault injection: deterministic scheduling, retry, detection, recovery.

Exercises the injector's scheduling semantics, the page read/write retry
machinery (transient faults, torn-read healing, persistent corruption),
fail-before-mutate DML atomicity, and the index corruption → quarantine →
rebuild-from-heap recovery path including the optimizer's degradation to
a sequential scan while the index is out.
"""

import pytest

from repro import SoftDB
from repro.errors import (
    ExecutionError,
    IndexCorruptionError,
    PageCorruptionError,
    TransientIOError,
)
from repro.resilience.faults import FaultInjector, FaultSpec, RetryPolicy


def _small_db() -> SoftDB:
    db = SoftDB()
    db.execute("CREATE TABLE t (k INT, v INT)")
    db.database.insert_many("t", [(n, n * 10) for n in range(400)])
    db.runstats_all()
    return db


class TestScheduling:
    def test_spec_validation(self):
        with pytest.raises(ExecutionError):
            FaultSpec("nonsense", "transient", probability=0.5)
        with pytest.raises(ExecutionError):
            FaultSpec("page_read", "nonsense", probability=0.5)
        with pytest.raises(ExecutionError):
            FaultSpec("page_read", "transient", probability=1.5)
        with pytest.raises(ExecutionError):
            FaultSpec("page_read", "transient", every_nth=0)
        with pytest.raises(ExecutionError):
            FaultSpec("page_read", "transient")  # no cadence at all
        with pytest.raises(ExecutionError):
            RetryPolicy(max_attempts=0)

    def test_same_seed_same_fault_sequence(self):
        def sequence(seed):
            injector = FaultInjector(seed=seed).add(
                "page_read", "transient", probability=0.3
            )
            return [injector.decide("page_read") for _ in range(200)]

        assert sequence(42) == sequence(42)
        assert sequence(42) != sequence(43)

    def test_every_nth_cadence_and_limit(self):
        injector = FaultInjector().add(
            "page_read", "transient", every_nth=3, limit=2
        )
        decisions = [injector.decide("page_read") for _ in range(12)]
        assert decisions == [
            None, None, "transient",
            None, None, "transient",
            None, None, None,
            None, None, None,
        ]

    def test_pause_resume(self):
        injector = FaultInjector().add("page_read", "transient", every_nth=1)
        injector.pause()
        assert injector.decide("page_read") is None
        injector.resume()
        assert injector.decide("page_read") == "transient"

    def test_backoff_delays_grow(self):
        retry = RetryPolicy(max_attempts=4, base_delay=0.001, multiplier=2.0)
        assert [retry.delay(n) for n in range(3)] == [0.001, 0.002, 0.004]


class TestPageReadFaults:
    def test_transient_fault_is_retried_and_recovered(self):
        db = _small_db()
        expected = db.query("SELECT count(*) AS n FROM t")[0]["n"]
        injector = FaultInjector().add(
            "page_read", "transient", every_nth=1, limit=1
        )
        db.attach_fault_injector(injector)
        assert db.query("SELECT count(*) AS n FROM t")[0]["n"] == expected
        assert injector.injected == {("page_read", "transient"): 1}
        assert injector.clock.now > 0  # backoff on the virtual clock only

    def test_persistent_transient_fault_surfaces_typed(self):
        db = _small_db()
        db.attach_fault_injector(
            FaultInjector().add("page_read", "transient", every_nth=1)
        )
        with pytest.raises(TransientIOError):
            db.query("SELECT count(*) AS n FROM t")

    def test_torn_read_is_healed(self):
        db = _small_db()
        expected = sorted(
            tuple(r.values()) for r in db.query("SELECT k, v FROM t")
        )
        injector = FaultInjector().add(
            "page_read", "corrupt", every_nth=1, limit=1
        )
        db.attach_fault_injector(injector)
        actual = sorted(
            tuple(r.values()) for r in db.query("SELECT k, v FROM t")
        )
        assert actual == expected  # healed + retried, never silently wrong
        for page in db.database.table("t").pages.pages:
            page.verify()  # the heal restored the exact image

    def test_persistent_corruption_surfaces_typed(self):
        db = _small_db()
        db.attach_fault_injector(
            FaultInjector().add("page_read", "corrupt", every_nth=1)
        )
        with pytest.raises(PageCorruptionError):
            db.query("SELECT count(*) AS n FROM t")


class TestWriteFaultAtomicity:
    def _image(self, db, table_name):
        table = db.database.table(table_name)
        return [
            (
                page.page_id,
                tuple(page.slots),
                tuple(page.slot_sizes),
                page.used_bytes,
                page.checksum,
            )
            for page in table.pages.pages
        ]

    @pytest.mark.parametrize("dml", [
        "INSERT INTO t VALUES (9999, 1)",
        "DELETE FROM t WHERE k = 0",
        "UPDATE t SET v = 1 WHERE k = 1",
    ])
    def test_failed_write_leaves_heap_bit_identical(self, dml):
        db = _small_db()
        before = self._image(db, "t")
        rows_before = db.database.table("t").row_count
        db.attach_fault_injector(
            FaultInjector().add("page_write", "transient", every_nth=1)
        )
        with pytest.raises(TransientIOError):
            db.execute(dml)
        assert self._image(db, "t") == before
        assert db.database.table("t").row_count == rows_before


class TestIndexFaults:
    def _indexed_db(self) -> SoftDB:
        db = _small_db()
        db.execute("CREATE INDEX ix_k ON t (k)")
        db.runstats_all()
        return db

    def test_transient_probe_fault_recovers(self):
        db = self._indexed_db()
        sql = "SELECT v FROM t WHERE k <= 3"
        expected = sorted(r["v"] for r in db.query(sql))
        assert "IndexScan" in db.explain(sql)
        injector = FaultInjector().add(
            "index_probe", "transient", every_nth=1, limit=1
        )
        db.attach_fault_injector(injector)
        assert sorted(r["v"] for r in db.query(sql)) == expected
        assert not db.database.catalog.index("ix_k").quarantined

    def test_corruption_quarantines_then_rebuild_recovers(self):
        db = self._indexed_db()
        sql = "SELECT v FROM t WHERE k <= 3"
        expected = sorted(r["v"] for r in db.query(sql))
        db.attach_fault_injector(
            FaultInjector().add("index_probe", "corrupt", every_nth=1, limit=1)
        )
        with pytest.raises(IndexCorruptionError) as info:
            db.query(sql)
        assert info.value.index_name == "ix_k"
        index = db.database.catalog.index("ix_k")
        assert index.quarantined
        # While quarantined, planning degrades to a (correct) seq scan.
        assert "IndexScan" not in db.explain(sql)
        assert sorted(r["v"] for r in db.query(sql)) == expected
        # Recovery: rebuild from the heap; the index plans and probes again.
        db.rebuild_index("ix_k")
        assert not index.quarantined
        index.verify()
        assert "IndexScan" in db.explain(sql)
        assert sorted(r["v"] for r in db.query(sql)) == expected

    def test_quarantined_index_refuses_probes(self):
        db = self._indexed_db()
        index = db.database.catalog.index("ix_k")
        index.quarantined = True
        with pytest.raises(IndexCorruptionError):
            index.search((3,))


class TestChecksums:
    def test_incremental_page_checksum_tracks_mutations(self):
        db = _small_db()
        table = db.database.table("t")
        rid = table.insert((9999, 1))
        table.update(rid, (9999, 2))
        table.delete(rid)
        for page in table.pages.pages:
            assert page.compute_checksum() == page.checksum

    def test_incremental_index_checksum_tracks_mutations(self):
        db = _small_db()
        db.execute("CREATE INDEX ix_k ON t (k)")
        db.execute("INSERT INTO t VALUES (9999, 1)")
        db.execute("UPDATE t SET k = 8888 WHERE k = 9999")
        db.execute("DELETE FROM t WHERE k = 8888")
        index = db.database.catalog.index("ix_k")
        assert index.compute_checksum() == index.checksum
        index.verify()
