"""Lock-contention regression tests for the shared singletons.

Sessions share one optimizer, one feedback store, and (optionally) one
plan cache across threads.  Before ISSUE 8 both PlanCache and
FeedbackStore were single-thread structures: a reader could observe a
plan mid-eviction, and two writers could lose feedback observations to
a racing ``setdefault``/``+= 1`` pair.  These tests hammer both from
many threads and check the invariants that only hold when the internal
locks work: counters add up exactly, state round-trips stay decodable,
and no operation raises.
"""

import random
import threading

from repro.api import SoftDB
from repro.feedback import FeedbackStore

THREADS = 8
ITERATIONS = 150


def _hammer(worker_fn, threads=THREADS):
    """Run ``worker_fn(worker_index)`` on N threads; re-raise the first
    exception any of them hit (a data race typically surfaces as
    KeyError/RuntimeError from a dict mutated mid-iteration)."""
    errors = []

    def run(index):
        try:
            worker_fn(index)
        except BaseException as error:  # noqa: BLE001 - diagnostics
            errors.append(error)

    pool = [
        threading.Thread(target=run, args=(i,), daemon=True)
        for i in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=60)
        assert not thread.is_alive(), "worker thread hung"
    if errors:
        raise errors[0]


def test_feedback_store_concurrent_records_count_exactly():
    store = FeedbackStore()

    def worker(index):
        rng = random.Random(index)
        for n in range(ITERATIONS):
            table = f"t{rng.randrange(4)}"
            store.record_scan(table, f"sig{n % 7}", 10.0, 5.0 + index)
            store.record_join(
                f"j{n % 5}", 0.01, 0.02, tables=(table, "other")
            )
            store.record_base_rows(table, 100.0 + n)
            store.record_group(f"g{n % 3}", 8.0, 4.0)
            if n % 10 == 0:
                store.record_guard_trip("rows", tables=(table,))
            # Interleave readers: ranking walks every entry, so a racing
            # writer would blow up dict iteration without the lock.
            store.tables_with_qerror()
            store.worst_scans()
            store.worst_join_edges()
            store.snapshot()

    _hammer(worker)
    # Every record_* bumped ``observations`` exactly once under the
    # lock; lost updates would leave the count short.
    assert store.observations == THREADS * ITERATIONS * 4
    assert store.guard_trips == THREADS * (ITERATIONS // 10)


def test_feedback_store_state_roundtrip_under_writers():
    store = FeedbackStore()
    stop = threading.Event()

    def writer(index):
        n = 0
        while not stop.is_set():
            store.record_scan(f"t{index}", f"sig{n % 3}", 4.0, 2.0)
            n += 1

    pool = [
        threading.Thread(target=writer, args=(i,), daemon=True)
        for i in range(4)
    ]
    for thread in pool:
        thread.start()
    try:
        # state_dict must capture an internally-consistent snapshot even
        # while writers mutate the store; each one must load cleanly.
        for _ in range(50):
            state = store.state_dict()
            fresh = FeedbackStore()
            fresh.load_state(state)
            assert len(fresh) <= len(store)
    finally:
        stop.set()
        for thread in pool:
            thread.join(timeout=10)
            assert not thread.is_alive()


def test_plan_cache_concurrent_lookup_and_invalidation():
    db = SoftDB()
    for t in range(3):
        db.execute(f"CREATE TABLE pc{t} (id INT PRIMARY KEY, val INT)")
        db.execute(
            f"INSERT INTO pc{t} VALUES "
            + ", ".join(f"({k}, {k})" for k in range(1, 20))
        )
    cache = db.plan_cache
    queries = [
        f"SELECT val FROM pc{t} WHERE id > {lo}"
        for t in range(3)
        for lo in (2, 5, 9)
    ]
    calls = [0] * THREADS

    def worker(index):
        rng = random.Random(index * 31)
        for n in range(ITERATIONS):
            sql = rng.choice(queries)
            plan = cache.get_plan(sql)
            assert plan is not None
            calls[index] += 1
            if n % 20 == 5:
                cache.invalidate_table(f"pc{rng.randrange(3)}")
            if n % 35 == 7:
                cache.note_execution(sql, 1.0)

    _hammer(worker)
    # Each get_plan bumps exactly one of hits/misses under the lock.
    assert cache.hits + cache.misses == sum(calls)
    # The cache still serves coherent plans after the storm.
    for sql in queries:
        assert db.execute(sql, use_cache=True) is not None
    db.close()


def test_plan_cache_clear_races_with_get_plan():
    db = SoftDB()
    db.execute("CREATE TABLE c0 (id INT PRIMARY KEY, val INT)")
    db.execute("INSERT INTO c0 VALUES (1, 1), (2, 2), (3, 3)")
    cache = db.plan_cache
    sql = "SELECT val FROM c0 WHERE id > 1"

    def worker(index):
        for n in range(ITERATIONS):
            if index == 0 and n % 3 == 0:
                cache.clear()
            else:
                cache.get_plan(sql)

    _hammer(worker, threads=4)
    rows = db.execute(sql, use_cache=True).rows
    assert [r["val"] for r in rows] == [2, 3]
    db.close()
