"""Session semantics: snapshots, explicit transactions, typed conflicts.

These pin down the contract ISSUE 8 promises: snapshot-isolation reads
that never block, strict-2PL writers with first-updater-wins,
deadlocks surfacing as typed :class:`~repro.errors.DeadlockError`
(victim rolled back, survivor commits), explicit BEGIN/COMMIT/ROLLBACK
at both the facade and session layers, and the asyncio TCP front end
round-tripping results and typed errors.
"""

import asyncio
import threading

import pytest

from repro.api import SoftDB
from repro.errors import (
    DeadlockError,
    TransactionConflictError,
    TransactionError,
    UnknownObjectError,
)


@pytest.fixture
def db():
    handle = SoftDB()
    handle.execute("CREATE TABLE kv (id INT PRIMARY KEY, val INT)")
    handle.execute("INSERT INTO kv VALUES (1, 10), (2, 20), (3, 30)")
    yield handle
    handle.close()


def rows(result):
    return result.rows


# -- facade-level explicit transactions ---------------------------------------


def test_facade_commit_persists(db):
    db.execute("BEGIN")
    db.execute("UPDATE kv SET val = 11 WHERE id = 1")
    db.execute("INSERT INTO kv VALUES (4, 40)")
    db.execute("COMMIT")
    assert db.query("SELECT val FROM kv WHERE id = 1") == [{"val": 11}]
    assert db.query("SELECT val FROM kv WHERE id = 4") == [{"val": 40}]


def test_facade_rollback_restores_exact_state(db):
    before = db.query("SELECT id, val FROM kv ORDER BY id")
    db.execute("BEGIN")
    db.execute("UPDATE kv SET val = 99 WHERE id = 2")
    db.execute("DELETE FROM kv WHERE id = 3")
    db.execute("INSERT INTO kv VALUES (5, 50)")
    db.execute("ROLLBACK")
    assert db.query("SELECT id, val FROM kv ORDER BY id") == before


def test_facade_rejects_ddl_inside_transaction(db):
    db.execute("BEGIN")
    with pytest.raises(TransactionError):
        db.execute("CREATE TABLE other (x INT)")
    db.execute("ROLLBACK")


def test_commit_without_begin_is_typed_error(db):
    with pytest.raises(TransactionError):
        db.execute("COMMIT")
    with pytest.raises(TransactionError):
        db.execute("ROLLBACK")


# -- session snapshot isolation -----------------------------------------------


def test_reader_sees_pre_transaction_state_until_commit(db):
    with db.session("writer") as s1, db.session("reader") as s2:
        s1.execute("BEGIN")
        s1.execute("UPDATE kv SET val = 111 WHERE id = 1")
        # Uncommitted write is invisible to another session — and the
        # read does not block despite s1 holding the row's X lock.
        assert rows(s2.execute("SELECT val FROM kv WHERE id = 1")) == [
            {"val": 10}
        ]
        s1.execute("COMMIT")
        assert rows(s2.execute("SELECT val FROM kv WHERE id = 1")) == [
            {"val": 111}
        ]


def test_open_snapshot_is_stable_across_peer_commit(db):
    with db.session() as s1, db.session() as s2:
        s2.execute("BEGIN")
        assert rows(s2.execute("SELECT val FROM kv WHERE id = 2")) == [
            {"val": 20}
        ]
        s1.execute("UPDATE kv SET val = 222 WHERE id = 2")  # autocommit
        # s2's transaction snapshot predates the commit: repeatable read.
        assert rows(s2.execute("SELECT val FROM kv WHERE id = 2")) == [
            {"val": 20}
        ]
        s2.execute("COMMIT")
        assert rows(s2.execute("SELECT val FROM kv WHERE id = 2")) == [
            {"val": 222}
        ]


def test_own_writes_visible_inside_transaction(db):
    with db.session() as s1:
        s1.execute("BEGIN")
        s1.execute("UPDATE kv SET val = 12 WHERE id = 1")
        assert rows(s1.execute("SELECT val FROM kv WHERE id = 1")) == [
            {"val": 12}
        ]
        s1.execute("ROLLBACK")
        assert rows(s1.execute("SELECT val FROM kv WHERE id = 1")) == [
            {"val": 10}
        ]


def test_session_rollback_undoes_insert_and_delete(db):
    with db.session() as s1:
        s1.execute("BEGIN")
        s1.execute("INSERT INTO kv VALUES (7, 70)")
        s1.execute("DELETE FROM kv WHERE id = 3")
        s1.execute("ROLLBACK")
        got = rows(s1.execute("SELECT id FROM kv ORDER BY id"))
        assert [r["id"] for r in got] == [1, 2, 3]


# -- write conflicts ----------------------------------------------------------


def _in_thread(fn):
    box = {}

    def run():
        try:
            box["value"] = fn()
        except BaseException as error:  # propagate to the main thread
            box["error"] = error

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread, box


def test_first_updater_wins_raises_conflict(db):
    with db.session() as s1, db.session() as s2:
        s1.execute("BEGIN")
        s1.execute("UPDATE kv SET val = 100 WHERE id = 1")
        s2.execute("BEGIN")

        # s2 blocks behind s1's X lock; once s1 commits, s2 sees a row
        # version it could not have read and must abort, not overwrite.
        def racer():
            s2.execute("UPDATE kv SET val = 200 WHERE id = 1")

        thread, box = _in_thread(racer)
        thread.join(timeout=0.3)
        assert thread.is_alive(), "racer should be lock-blocked"
        s1.execute("COMMIT")
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert isinstance(box.get("error"), TransactionConflictError)
        # The victim was rolled back: its session can start fresh.
        s2.execute("BEGIN")
        s2.execute("COMMIT")
    assert db.query("SELECT val FROM kv WHERE id = 1") == [{"val": 100}]


def test_crossed_updates_raise_typed_deadlock(db):
    with db.session() as s1, db.session() as s2:
        s1.execute("BEGIN")
        s2.execute("BEGIN")
        s1.execute("UPDATE kv SET val = 101 WHERE id = 1")
        s2.execute("UPDATE kv SET val = 202 WHERE id = 2")

        results = {}

        def cross(session, key, stamp, slot):
            try:
                session.execute(
                    f"UPDATE kv SET val = {stamp} WHERE id = {key}"
                )
                session.execute("COMMIT")
                results[slot] = "committed"
            except (DeadlockError, TransactionConflictError) as error:
                results[slot] = error

        t1 = threading.Thread(
            target=cross, args=(s1, 2, 102, "s1"), daemon=True
        )
        t2 = threading.Thread(
            target=cross, args=(s2, 1, 201, "s2"), daemon=True
        )
        t1.start()
        t2.start()
        t1.join(timeout=15)
        t2.join(timeout=15)
        assert not t1.is_alive() and not t2.is_alive(), (
            "deadlock manifested as a hang"
        )
        outcomes = sorted(
            type(v).__name__ if isinstance(v, Exception) else v
            for v in results.values()
        )
        assert "DeadlockError" in outcomes, outcomes
        engine = db.database.concurrency
        assert engine.locks.deadlocks_detected >= 1
        # Exactly one side survived; the other was rolled back.
        survivors = [v for v in results.values() if v == "committed"]
        assert len(survivors) <= 1


# -- engine hygiene -----------------------------------------------------------


def test_sessions_open_returns_to_zero_and_chains_drain(db):
    s1 = db.session()
    s2 = db.session()
    engine = db.database.concurrency
    assert engine.sessions_open == 2
    s1.execute("BEGIN")
    s1.execute("UPDATE kv SET val = 1000 WHERE id = 1")
    s1.execute("COMMIT")
    s1.close()
    s2.close()
    assert engine.sessions_open == 0
    engine.vacuum()
    assert engine.versions.live_chains == 0


def test_session_close_rolls_back_open_transaction(db):
    s1 = db.session()
    s1.execute("BEGIN")
    s1.execute("UPDATE kv SET val = 77 WHERE id = 1")
    s1.close()
    assert db.query("SELECT val FROM kv WHERE id = 1") == [{"val": 10}]


# -- asyncio front end --------------------------------------------------------


def test_server_round_trip(db):
    async def scenario():
        from repro.concurrency.server import SessionClient

        async with db.serve() as server:
            client = await SessionClient.connect(server.host, server.port)
            got = await client.execute("SELECT val FROM kv WHERE id = 1")
            assert got["rows"] == [{"val": 10}]
            got = await client.execute(
                "UPDATE kv SET val = 15 WHERE id = 1"
            )
            assert got["rowcount"] == 1
            await client.execute("BEGIN")
            await client.execute("UPDATE kv SET val = 16 WHERE id = 1")
            await client.execute("ROLLBACK")
            got = await client.execute("SELECT val FROM kv WHERE id = 1")
            assert got["rows"] == [{"val": 15}]
            with pytest.raises(UnknownObjectError):
                await client.execute("SELECT * FROM no_such_table")
            await client.close()
        assert server.connections == 1
        assert server.statements_served >= 6

    asyncio.run(scenario())


def test_server_concurrent_connections_interleave(db):
    async def scenario():
        from repro.concurrency.server import SessionClient

        async with db.serve() as server:
            a = await SessionClient.connect(server.host, server.port)
            b = await SessionClient.connect(server.host, server.port)
            await a.execute("BEGIN")
            await a.execute("UPDATE kv SET val = 500 WHERE id = 2")
            got = await b.execute("SELECT val FROM kv WHERE id = 2")
            assert got["rows"] == [{"val": 20}]  # snapshot: no block
            await a.execute("COMMIT")
            got = await b.execute("SELECT val FROM kv WHERE id = 2")
            assert got["rows"] == [{"val": 500}]
            await a.close()
            await b.close()

    asyncio.run(scenario())
