"""Server/client failure hardening: typed rehydration for every
taxonomy class, load shedding, graceful shutdown, client timeouts, and
multi-endpoint failover (ISSUE 9 satellites 1 and 2).
"""

import asyncio
import inspect
import json

import pytest

import repro.errors as errors_module
from repro.api import SoftDB
from repro.concurrency.client import BackoffPolicy, FailoverClient
from repro.concurrency.server import (
    SessionClient,
    SessionServer,
    _rehydrate,
)
from repro.errors import (
    NetworkError,
    OverloadedError,
    RemoteError,
    ReplicaUnavailableError,
    ReproError,
    ShutdownError,
    TransactionConflictError,
    UnknownObjectError,
)


@pytest.fixture
def db():
    handle = SoftDB()
    handle.execute("CREATE TABLE kv (id INT PRIMARY KEY, val INT)")
    handle.execute("INSERT INTO kv VALUES (1, 10), (2, 20)")
    yield handle
    handle.close()


def taxonomy_classes():
    return [
        cls
        for _, cls in inspect.getmembers(errors_module, inspect.isclass)
        if issubclass(cls, ReproError)
    ]


# -- rehydration (satellite 1) ------------------------------------------------


def test_every_taxonomy_class_rehydrates_to_itself():
    classes = taxonomy_classes()
    assert len(classes) > 20, "taxonomy unexpectedly small"
    for cls in classes:
        error = _rehydrate(cls.__name__, "over the wire")
        assert type(error) is cls
        assert "over the wire" in str(error)


@pytest.mark.parametrize(
    "type_name",
    [
        "NoSuchError",  # unknown name
        "ValueError",  # a builtin, not ours
        "ReproError",  # base class itself is fine to keep typed
        "canonical_dumps",  # a module attribute that is not a class
        None,  # malformed error frame
        "",
    ],
)
def test_unmapped_wire_errors_become_remote_error(type_name):
    error = _rehydrate(type_name, "boom")
    assert isinstance(error, ReproError)
    if type_name == "ReproError":
        assert type(error) is ReproError
    else:
        assert isinstance(error, RemoteError)
        assert error.remote_type == (type_name or "")


def test_every_taxonomy_class_rehydrates_over_a_real_socket():
    """A raw server answering every request with a crafted error frame:
    the client must raise exactly the named class for each taxonomy
    member, and never anything outside ``ReproError``."""

    async def scenario():
        async def handle(reader, writer):
            while True:
                line = await reader.readline()
                if not line:
                    break
                request = json.loads(line)
                writer.write(
                    (
                        json.dumps(
                            {
                                "id": request["id"],
                                "ok": False,
                                "error": {
                                    "type": request["sql"],
                                    "message": "synthetic",
                                },
                            }
                        )
                        + "\n"
                    ).encode()
                )
                await writer.drain()
            writer.close()

        server = await asyncio.start_server(handle, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        client = await SessionClient.connect("127.0.0.1", port)
        try:
            for cls in taxonomy_classes():
                with pytest.raises(cls) as caught:
                    await client.execute(cls.__name__)
                assert type(caught.value) is cls
            with pytest.raises(RemoteError):
                await client.execute("TotallyMadeUpError")
        finally:
            await client.close()
            server.close()
            await server.wait_closed()

    asyncio.run(scenario())


# -- load shedding ------------------------------------------------------------


def test_overloaded_server_sheds_with_typed_error(db):
    async def scenario():
        server = SessionServer(db, max_inflight=0)
        await server.start()
        try:
            client = await SessionClient.connect(server.host, server.port)
            with pytest.raises(OverloadedError):
                await client.execute("SELECT val FROM kv WHERE id = 1")
            await client.close()
            assert server.shed == 1
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_shedding_only_past_the_inflight_cap(db):
    async def scenario():
        server = SessionServer(db, max_inflight=1)
        await server.start()
        blocker = db.session()
        try:
            blocker.execute("BEGIN")
            blocker.execute("UPDATE kv SET val = 99 WHERE id = 1")
            first = await SessionClient.connect(server.host, server.port)
            second = await SessionClient.connect(server.host, server.port)
            # First statement blocks on the row lock: it occupies the
            # single in-flight slot without completing.
            blocked = asyncio.ensure_future(
                first.execute("UPDATE kv SET val = 100 WHERE id = 1")
            )
            await asyncio.sleep(0.1)
            assert server._inflight == 1
            with pytest.raises(OverloadedError):
                await second.execute("SELECT val FROM kv WHERE id = 2")
            blocker.execute("COMMIT")
            # The blocked statement completes (first-updater-wins makes
            # it a typed conflict — still a served statement, not a shed
            # one).
            with pytest.raises(TransactionConflictError):
                await blocked
            assert server.shed == 1
            await first.close()
            await second.close()
        finally:
            blocker.close()
            await server.stop()

    asyncio.run(scenario())


# -- graceful shutdown (satellite 2) ------------------------------------------


def test_draining_server_answers_with_shutdown_error(db):
    async def scenario():
        server = SessionServer(db)
        await server.start()
        try:
            client = await SessionClient.connect(server.host, server.port)
            got = await client.execute("SELECT val FROM kv WHERE id = 1")
            assert got["rows"] == [{"val": 10}]
            server._draining = True
            with pytest.raises(ShutdownError):
                await client.execute("SELECT val FROM kv WHERE id = 1")
            server._draining = False
            got = await client.execute("SELECT val FROM kv WHERE id = 1")
            assert got["rows"] == [{"val": 10}]
            await client.close()
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_graceful_stop_drains_inflight_statement(db):
    async def scenario():
        server = SessionServer(db)
        await server.start()
        blocker = db.session()
        blocker.execute("BEGIN")
        blocker.execute("UPDATE kv SET val = 99 WHERE id = 1")
        client = await SessionClient.connect(server.host, server.port)
        inflight = asyncio.ensure_future(
            client.execute("UPDATE kv SET val = 100 WHERE id = 1")
        )
        await asyncio.sleep(0.1)
        assert server._inflight == 1
        stopping = asyncio.ensure_future(server.stop(drain_timeout=10.0))
        await asyncio.sleep(0.1)
        assert server._draining
        assert not stopping.done(), "stop() must wait for in-flight work"
        # Unblock directly (not over the wire — the wire is draining).
        blocker.execute("COMMIT")
        blocker.close()
        await asyncio.wait_for(stopping, timeout=5)
        # The drained statement finished with a typed outcome.
        with pytest.raises(TransactionConflictError):
            await inflight
        assert server.stragglers == 0
        # The listener is gone: new connections fail typed.
        with pytest.raises(NetworkError):
            await SessionClient.connect(server.host, server.port, timeout=1)
        await client.close()

    asyncio.run(scenario())


def test_stop_deadline_cancels_stragglers_and_rolls_back(db):
    async def scenario():
        server = SessionServer(db)
        await server.start()
        holder = await SessionClient.connect(server.host, server.port)
        await holder.execute("BEGIN")
        await holder.execute("UPDATE kv SET val = 777 WHERE id = 1")
        blocked_client = await SessionClient.connect(server.host, server.port)
        blocked = asyncio.ensure_future(
            blocked_client.execute("SELECT val FROM kv WHERE id = 1")
        )
        # Make the read-only statement a genuine straggler by occupying
        # its executor thread behind the row lock.
        blocked.cancel()  # the client side gives up; server side runs on
        writer_stmt = asyncio.ensure_future(
            blocked_client.execute("UPDATE kv SET val = 888 WHERE id = 1")
        )
        await asyncio.sleep(0.1)
        assert server._inflight >= 1
        await server.stop(drain_timeout=0.2)
        # The deadline expired with the statement still lock-blocked:
        # it was counted and cancelled, and the holder's open
        # transaction was rolled back by straggler cleanup.
        assert server.stragglers >= 1
        assert db.query("SELECT val FROM kv WHERE id = 1") == [{"val": 10}]
        with pytest.raises((NetworkError, asyncio.CancelledError)):
            await writer_stmt
        await holder.close()
        await blocked_client.close()

    asyncio.run(scenario())


# -- client timeouts ----------------------------------------------------------


def test_statement_timeout_raises_network_error_and_closes(db):
    async def scenario():
        server = SessionServer(db)
        await server.start()
        blocker = db.session()
        try:
            blocker.execute("BEGIN")
            blocker.execute("UPDATE kv SET val = 99 WHERE id = 2")
            client = await SessionClient.connect(server.host, server.port)
            with pytest.raises(NetworkError) as caught:
                await client.execute(
                    "UPDATE kv SET val = 5 WHERE id = 2", timeout=0.2
                )
            assert "outcome unknown" in str(caught.value)
            blocker.execute("ROLLBACK")
        finally:
            blocker.close()
            await server.stop()

    asyncio.run(scenario())


def test_connect_failure_raises_network_error():
    async def scenario():
        # A port nothing listens on: refused (or at worst timed out) —
        # either path must classify as NetworkError.
        with pytest.raises(NetworkError):
            await SessionClient.connect("127.0.0.1", 1, timeout=1)

    asyncio.run(scenario())


# -- failover client ----------------------------------------------------------


def fast_backoff():
    return BackoffPolicy(base_delay=0.001, cap=0.005, seed=7)


def test_failover_client_rides_over_a_dying_server(db):
    async def scenario():
        first = SessionServer(db)
        second = SessionServer(db)
        await first.start()
        await second.start()
        client = FailoverClient(
            [(first.host, first.port), (second.host, second.port)],
            connect_timeout=1.0,
            statement_timeout=5.0,
            backoff=fast_backoff(),
        )
        try:
            got = await client.execute("SELECT val FROM kv WHERE id = 1")
            assert got["rows"] == [{"val": 10}]
            assert client.failovers == 0
            await first.stop()
            got = await client.execute("SELECT val FROM kv WHERE id = 1")
            assert got["rows"] == [{"val": 10}]
            assert client.failovers >= 1
            assert client.endpoint == (second.host, second.port)
        finally:
            await client.close()
            await second.stop()

    asyncio.run(scenario())


def test_failover_exhaustion_is_typed_with_cause():
    async def scenario():
        client = FailoverClient(
            [("127.0.0.1", 1), ("127.0.0.1", 2)],
            connect_timeout=0.2,
            max_attempts=3,
            backoff=fast_backoff(),
        )
        with pytest.raises(ReplicaUnavailableError) as caught:
            await client.execute("SELECT 1")
        assert isinstance(caught.value.__cause__, NetworkError)
        assert client.failovers == 3

    asyncio.run(scenario())


def test_overload_retries_same_endpoint_with_backoff(db):
    async def scenario():
        server = SessionServer(db, max_inflight=0)
        await server.start()
        endpoint = (server.host, server.port)
        client = FailoverClient(
            [endpoint], max_attempts=4, backoff=fast_backoff()
        )
        try:
            with pytest.raises(ReplicaUnavailableError) as caught:
                await client.execute("SELECT val FROM kv WHERE id = 1")
            assert isinstance(caught.value.__cause__, OverloadedError)
            # Overload rejections never fail over: the statement never
            # ran, and the endpoint is alive — it asked for backoff.
            assert client.failovers == 0
            assert client.sheds_seen == 4
            assert client.endpoint == endpoint
        finally:
            await client.close()
            await server.stop()

    asyncio.run(scenario())


def test_non_idempotent_statement_not_blind_retried(db):
    async def scenario():
        first = SessionServer(db)
        second = SessionServer(db)
        await first.start()
        await second.start()
        client = FailoverClient(
            [(first.host, first.port), (second.host, second.port)],
            backoff=fast_backoff(),
        )
        try:
            await client.execute("SELECT val FROM kv WHERE id = 1")
            await first.stop()
            # The send fails mid-statement: outcome unknown, and a
            # non-idempotent write must surface that instead of silently
            # running twice on the next endpoint.
            with pytest.raises(NetworkError):
                await client.execute(
                    "UPDATE kv SET val = val + 1 WHERE id = 1",
                    idempotent=False,
                )
            assert client.failovers == 1
            # The client is still usable for the next (idempotent) call.
            got = await client.execute("SELECT val FROM kv WHERE id = 1")
            assert got["rows"] == [{"val": 10}]
        finally:
            await client.close()
            await second.stop()

    asyncio.run(scenario())


def test_backoff_budget_allows_exact_boundary_then_raises():
    """ISSUE 10, satellite (a): ``max_elapsed`` bounds total backoff on
    the virtual clock.  A delay landing the total exactly on the budget
    is granted; the first delay that would exceed it raises typed, with
    the provoking failure chained as ``__cause__``."""
    policy = BackoffPolicy(
        base_delay=0.01,
        multiplier=2.0,
        cap=1.0,
        jitter=0.0,
        max_elapsed=0.03,
    )
    assert policy.delay(0) == pytest.approx(0.01)
    # 0.01 + 0.02 == max_elapsed exactly: the boundary is inclusive.
    assert policy.delay(1) == pytest.approx(0.02)
    assert policy.elapsed == pytest.approx(0.03)
    cause = NetworkError("endpoint reset mid-statement")
    with pytest.raises(ReplicaUnavailableError) as caught:
        policy.delay(2, cause=cause)
    assert caught.value.__cause__ is cause
    assert policy.exhaustions == 1
    # Nothing was spent by the refused delay: neither the ledger nor
    # the virtual clock moved.
    assert policy.elapsed == pytest.approx(0.03)
    assert policy.clock.now == pytest.approx(0.03)
    # A reset opens a fresh budget window for the next operation.
    policy.reset()
    assert policy.delay(0) == pytest.approx(0.01)


def test_backoff_without_budget_never_exhausts():
    policy = BackoffPolicy(base_delay=0.01, cap=0.05, jitter=0.0, seed=0)
    total = sum(policy.delay(attempt) for attempt in range(50))
    assert policy.exhaustions == 0
    assert policy.elapsed == pytest.approx(total)


def test_exhausted_backoff_budget_cuts_retry_loop_short():
    """The budget binds tighter than max_attempts: with every endpoint
    unreachable, the client gives up as soon as one more delay would
    blow the budget — and the surfaced error chains the real cause."""

    async def scenario():
        policy = BackoffPolicy(
            base_delay=0.001,
            multiplier=2.0,
            cap=0.01,
            jitter=0.0,
            max_elapsed=0.001,
        )
        client = FailoverClient(
            [("127.0.0.1", 1)],  # reserved port: connect always fails
            connect_timeout=0.2,
            max_attempts=50,
            backoff=policy,
        )
        try:
            with pytest.raises(ReplicaUnavailableError) as caught:
                await client.execute("SELECT val FROM kv WHERE id = 1")
            assert isinstance(caught.value.__cause__, NetworkError)
            assert policy.exhaustions == 1
            # Far fewer than max_attempts were made before the budget bound.
            assert client.retries < 5
        finally:
            await client.close()

    asyncio.run(scenario())


def test_fenced_endpoint_redirects_even_non_idempotent(tmp_path):
    """A deposed primary answers every write with FencedError — a
    known-outcome rejection (nothing executed), so the client redirects
    to the next endpoint and re-issues even a non-idempotent statement
    exactly once."""
    from repro.errors import FencedError
    from repro.replication import ClusterFence

    async def scenario():
        deposed = SoftDB.open(tmp_path / "deposed")
        deposed.execute("CREATE TABLE kv (id INT PRIMARY KEY, val INT)")
        deposed.execute("INSERT INTO kv VALUES (1, 10)")
        fence = ClusterFence()
        deposed.durability.fence = fence
        deposed.durability.promotion_epoch = fence.epoch
        fence.advance()  # the cluster moved on: this node is deposed
        current = SoftDB()
        current.execute("CREATE TABLE kv (id INT PRIMARY KEY, val INT)")
        current.execute("INSERT INTO kv VALUES (1, 10)")
        first = SessionServer(deposed)
        second = SessionServer(current)
        await first.start()
        await second.start()
        client = FailoverClient(
            [(first.host, first.port), (second.host, second.port)],
            backoff=fast_backoff(),
        )
        try:
            # Direct writes on the deposed node really are fenced.
            with pytest.raises(FencedError):
                deposed.execute("UPDATE kv SET val = 99 WHERE id = 1")
            got = await client.execute(
                "UPDATE kv SET val = val + 1 WHERE id = 1",
                idempotent=False,
            )
            assert got["rowcount"] == 1
            assert client.fenced_seen == 1
            assert client.failovers == 1
            # Applied exactly once, on the current primary only.
            assert current.query("SELECT val FROM kv") == [{"val": 11}]
            assert deposed.query("SELECT val FROM kv") == [{"val": 10}]
        finally:
            await client.close()
            await first.stop()
            await second.stop()
            deposed.close(checkpoint=False)
            current.close()

    asyncio.run(scenario())


def test_backoff_policy_is_capped_and_jittered():
    policy = BackoffPolicy(
        base_delay=0.01, multiplier=2.0, cap=0.05, jitter=0.5, seed=3
    )
    delays = [policy.delay(attempt) for attempt in range(10)]
    assert all(0 < delay <= 0.05 for delay in delays)
    # Jitter: two policies with different seeds disagree, same seed agrees.
    again = BackoffPolicy(
        base_delay=0.01, multiplier=2.0, cap=0.05, jitter=0.5, seed=3
    )
    assert [again.delay(a) for a in range(10)] == delays
    other = BackoffPolicy(
        base_delay=0.01, multiplier=2.0, cap=0.05, jitter=0.5, seed=4
    )
    assert [other.delay(a) for a in range(10)] != delays
