"""MVCC differential suite: random interleaved sessions vs a serial oracle.

The model: K sessions run seeded transaction scripts over one shared
``kv(id INT PRIMARY KEY, val INT)`` table, each session on its own
thread, with a seeded scheduler choosing which session steps next.  A
statement that blocks on a lock parks its session (detected by a step
timeout); the scheduler keeps driving the others and re-polls the
parked session after every commit/abort — so a deadlock must surface
as a typed :class:`~repro.errors.DeadlockError` on some session, never
as a hang.

Every write is a constant assignment to one key, so the final database
state is determined entirely by *which* transactions committed and in
*what order*.  The oracle replays exactly the committed transactions'
statements, serially, in observed commit order, on a fresh database:
under snapshot isolation with first-updater-wins, the interleaved run
must reach the identical final state.  Within a transaction, repeated
reads of an unwritten key must return the same value (snapshot
stability).
"""

import queue
import random
import threading

import pytest

from repro.api import SoftDB
from repro.errors import (
    DeadlockError,
    ReproError,
    TransactionConflictError,
)

pytestmark = pytest.mark.mvcc

SEEDS = (7, 23, 1009)
SESSIONS = 3
TXNS_PER_SESSION = 6
KEYS = 12
#: Step timeout that classifies a statement as lock-blocked.
BLOCK_TIMEOUT = 0.25
#: A commit/abort (or a resumed statement after its blocker resolved)
#: must finish well within this; beyond it the test fails as a hang.
RESOLVE_TIMEOUT = 30.0


class SessionThread:
    """One session pinned to one worker thread, driven step by step."""

    def __init__(self, session):
        self.session = session
        self.inbox = queue.Queue()
        self.outbox = queue.Queue()
        self.pending = False  # a statement is in flight (maybe blocked)
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        while True:
            sql = self.inbox.get()
            if sql is None:
                return
            try:
                result = self.session.execute(sql)
            except ReproError as error:
                self.outbox.put(("err", error))
            except BaseException as error:  # pragma: no cover - diagnostics
                self.outbox.put(("fatal", error))
            else:
                self.outbox.put(("ok", result))

    def submit(self, sql):
        assert not self.pending
        self.pending = True
        self.inbox.put(sql)

    def poll(self, timeout):
        """(status, payload) or None if still blocked."""
        try:
            outcome = self.outbox.get(timeout=timeout)
        except queue.Empty:
            return None
        self.pending = False
        if outcome[0] == "fatal":
            raise outcome[1]
        return outcome

    def stop(self):
        self.inbox.put(None)
        self.thread.join(timeout=5)


def build_script(rng, worker, txns):
    """One session's statement list, as (sql, kind) pairs.

    Writes are constant assignments; inserted keys live in a
    per-session partition so concurrent scripts never collide on a
    primary key.
    """
    script = []
    fresh = 0
    for txn_no in range(txns):
        script.append(("BEGIN", "begin"))
        stamp = 1000 * (worker + 1) + txn_no
        watched = rng.randrange(1, KEYS + 1)
        script.append(
            (f"SELECT val FROM kv WHERE id = {watched}", "read-first")
        )
        for _ in range(rng.randrange(1, 4)):
            kind = rng.random()
            if kind < 0.6:
                key = rng.randrange(1, KEYS + 1)
                script.append(
                    (
                        f"UPDATE kv SET val = {stamp} WHERE id = {key}",
                        "write",
                    )
                )
            elif kind < 0.8:
                fresh += 1
                key = 10_000 * (worker + 1) + fresh
                script.append(
                    (f"INSERT INTO kv VALUES ({key}, {stamp})", "write")
                )
            else:
                key = rng.randrange(1, KEYS + 1)
                script.append(
                    (f"DELETE FROM kv WHERE id = {key}", "write")
                )
        script.append(
            (f"SELECT val FROM kv WHERE id = {watched}", "read-again")
        )
        end = "ROLLBACK" if rng.random() < 0.12 else "COMMIT"
        script.append((end, end.lower()))
    return script


class InterleavedRunner:
    """Drive the sessions' scripts under a seeded random scheduler."""

    def __init__(self, db, seed):
        self.rng = random.Random(seed)
        self.workers = []
        self.scripts = []
        self.cursors = []
        # Per-session bookkeeping of the transaction being built.
        self.txn_statements = [[] for _ in range(SESSIONS)]
        self.txn_reads = [{} for _ in range(SESSIONS)]
        self.aborted = [False] * SESSIONS
        self.committed = []  # statement lists, in commit order
        self.deadlocks = 0
        self.conflicts = 0
        for worker in range(SESSIONS):
            self.workers.append(SessionThread(db.session()))
            self.scripts.append(
                build_script(random.Random(seed * 8191 + worker), worker,
                             TXNS_PER_SESSION)
            )
            self.cursors.append(0)

    def run(self):
        while True:
            # Drain any parked statement that has since completed (its
            # blocker committed or aborted) so the session can reach its
            # own COMMIT and release its strict-2PL locks — otherwise a
            # completed-but-undrained session would hold them forever.
            for w in range(SESSIONS):
                if self.workers[w].pending:
                    outcome = self.workers[w].poll(timeout=0.01)
                    if outcome is not None:
                        sql, kind = self.scripts[w][self.cursors[w] - 1]
                        self._record(w, sql, kind, outcome)
            runnable = [
                w
                for w in range(SESSIONS)
                if not self.workers[w].pending
                and self.cursors[w] < len(self.scripts[w])
            ]
            blocked = [
                w for w in range(SESSIONS) if self.workers[w].pending
            ]
            if not runnable and not blocked:
                break
            if not runnable:
                # Everyone still working is parked on a lock; wait for
                # one of them — deadlock detection guarantees progress.
                self._resolve(blocked[0], RESOLVE_TIMEOUT)
                continue
            worker = self.rng.choice(runnable)
            sql, kind = self.scripts[worker][self.cursors[worker]]
            self.cursors[worker] += 1
            if self.aborted[worker] and kind not in ("begin",):
                # The transaction died mid-script (deadlock victim or
                # first-updater conflict): skip to its next BEGIN.
                if kind in ("commit", "rollback"):
                    self.aborted[worker] = False
                continue
            self.workers[worker].submit(sql)
            timeout = (
                RESOLVE_TIMEOUT
                if kind in ("commit", "rollback", "begin")
                else BLOCK_TIMEOUT
            )
            outcome = self.workers[worker].poll(timeout)
            if outcome is None:
                assert kind == "write", f"{kind} statement blocked: {sql}"
                continue  # parked; revisit after the next resolution
            self._record(worker, sql, kind, outcome)
        for worker in self.workers:
            worker.stop()

    def _resolve(self, worker, timeout):
        outcome = self.workers[worker].poll(timeout)
        assert outcome is not None, (
            "blocked statement never resolved — lock manager hang"
        )
        sql, kind = self.scripts[worker][self.cursors[worker] - 1]
        self._record(worker, sql, kind, outcome)

    def _record(self, worker, sql, kind, outcome):
        status, payload = outcome
        if status == "err":
            assert isinstance(
                payload, (DeadlockError, TransactionConflictError)
            ), f"unexpected error for {sql!r}: {payload!r}"
            if isinstance(payload, DeadlockError):
                self.deadlocks += 1
            else:
                self.conflicts += 1
            # Victim rollback: the session layer rolled the whole
            # transaction back before re-raising.
            self.txn_statements[worker] = []
            self.txn_reads[worker] = {}
            self.aborted[worker] = True
            return
        if kind == "begin":
            self.txn_statements[worker] = []
            self.txn_reads[worker] = {}
        elif kind == "write":
            self.txn_statements[worker].append(sql)
        elif kind == "read-first":
            self.txn_reads[worker][sql] = payload.rows
        elif kind == "read-again":
            first_sql = sql  # identical SELECT text both times
            first = self.txn_reads[worker].get(first_sql)
            written = any(
                f"id = {sql.rsplit('=', 1)[1].strip()}" in s
                or "INSERT" in s
                or "DELETE" in s
                for s in self.txn_statements[worker]
            )
            if first is not None and not written:
                assert payload.rows == first, (
                    f"snapshot instability on worker {worker}: "
                    f"{first} then {payload.rows}"
                )
        elif kind == "commit":
            self.committed.append(list(self.txn_statements[worker]))
            self.txn_statements[worker] = []
            self.txn_reads[worker] = {}
        elif kind == "rollback":
            self.txn_statements[worker] = []
            self.txn_reads[worker] = {}


def seed_database():
    db = SoftDB()
    db.execute("CREATE TABLE kv (id INT PRIMARY KEY, val INT)")
    db.execute(
        "INSERT INTO kv VALUES "
        + ", ".join(f"({k}, {k * 10})" for k in range(1, KEYS + 1))
    )
    return db


def final_state(db):
    return db.query("SELECT id, val FROM kv ORDER BY id")


@pytest.mark.parametrize("seed", SEEDS)
def test_interleaved_sessions_match_serial_oracle(seed):
    db = seed_database()
    runner = InterleavedRunner(db, seed)
    runner.run()
    # Version chains must drain once every session is done.
    engine = db.database.concurrency
    engine.vacuum()
    assert engine.versions.live_chains == 0

    oracle = seed_database()
    for statements in runner.committed:
        for sql in statements:
            oracle.execute(sql)
    assert final_state(db) == final_state(oracle), (
        f"interleaved final state diverges from serial oracle "
        f"(seed {seed}, {len(runner.committed)} commits, "
        f"{runner.deadlocks} deadlocks, {runner.conflicts} conflicts)"
    )
    # The workload is adversarial enough to mean something.
    assert len(runner.committed) >= SESSIONS * TXNS_PER_SESSION // 2


@pytest.mark.parametrize("seed", SEEDS)
def test_interleaving_is_exercised(seed):
    """The runner genuinely interleaves: at least one conflict, block,
    or deadlock per seed would be ideal, but scheduling noise makes that
    flaky — instead require that *across* the run multiple sessions had
    transactions open concurrently (tracked by the engine's own
    instant-commit stamping being exercised only under tracking)."""
    db = seed_database()
    runner = InterleavedRunner(db, seed)
    runner.run()
    engine = db.database.concurrency
    assert engine.txns.begun >= SESSIONS * TXNS_PER_SESSION
    assert engine.versions.versions_recorded > 0
