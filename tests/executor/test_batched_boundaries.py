"""Batch-boundary cases: every one must match row-at-a-time output.

Covers batch sizes 1, 2, an exact multiple of the table size, and larger
than the table; empty tables; all-NULL join keys; and LIMIT landing in
the middle of a batch.  (The dialect has no OFFSET clause, so mid-batch
LIMIT is the only cut point to test.)
"""

import pytest

from repro import SoftDB
from repro.errors import ExecutionError
from repro.executor.runtime import Executor
from repro.executor.vectorized import BatchedInterpreter

pytestmark = pytest.mark.differential

TABLE_ROWS = 12  # every test table below has exactly this many rows
BOUNDARY_SIZES = (1, 2, 4, TABLE_ROWS, TABLE_ROWS + 1, 5 * TABLE_ROWS)


@pytest.fixture
def db() -> SoftDB:
    db = SoftDB()
    db.execute("CREATE TABLE t (a INT, b INT, c INT)")
    db.database.insert_many(
        "t",
        [
            (i, None if i % 4 == 0 else i % 5, 100 - i)
            for i in range(TABLE_ROWS)
        ],
    )
    db.runstats_all()
    return db


def both_ways(db: SoftDB, sql: str, batch_size: int):
    plan = db.plan(sql)
    oracle = Executor(db.database, batch_size=0).execute(plan)
    batched = Executor(db.database, batch_size=batch_size).execute(plan)
    return oracle, batched


@pytest.mark.parametrize("batch_size", BOUNDARY_SIZES)
class TestBatchSizeBoundaries:
    def test_scan_filter(self, db, batch_size):
        oracle, batched = both_ways(
            db, "SELECT a, b FROM t WHERE b >= 2", batch_size
        )
        assert batched.tuples() == oracle.tuples()
        assert batched.page_reads == oracle.page_reads

    def test_group_by(self, db, batch_size):
        oracle, batched = both_ways(
            db,
            "SELECT b, count(*) AS n, sum(a) AS s FROM t GROUP BY b",
            batch_size,
        )
        assert batched.tuples() == oracle.tuples()

    def test_order_by(self, db, batch_size):
        oracle, batched = both_ways(
            db, "SELECT a, b FROM t ORDER BY b DESC, a", batch_size
        )
        assert batched.tuples() == oracle.tuples()

    def test_distinct(self, db, batch_size):
        oracle, batched = both_ways(
            db, "SELECT DISTINCT b FROM t", batch_size
        )
        assert batched.tuples() == oracle.tuples()

    def test_self_join(self, db, batch_size):
        oracle, batched = both_ways(
            db,
            "SELECT x.a, y.a FROM t x, t y WHERE x.b = y.b AND x.a < y.a",
            batch_size,
        )
        assert sorted(batched.tuples()) == sorted(oracle.tuples())
        assert batched.row_count == oracle.row_count


class TestEmptyTables:
    @pytest.fixture
    def empty(self) -> SoftDB:
        db = SoftDB()
        db.execute("CREATE TABLE t (a INT, b INT, c INT)")
        db.execute("CREATE TABLE u (a INT, b INT)")
        db.runstats_all()
        return db

    @pytest.mark.parametrize("batch_size", (1, 1024))
    def test_scan_of_empty_table(self, empty, batch_size):
        oracle, batched = both_ways(empty, "SELECT a FROM t", batch_size)
        assert batched.tuples() == oracle.tuples() == []

    @pytest.mark.parametrize("batch_size", (1, 1024))
    def test_scalar_aggregate_over_empty(self, empty, batch_size):
        sql = "SELECT count(*) AS n, sum(a) AS s, min(b) AS lo FROM t"
        oracle, batched = both_ways(empty, sql, batch_size)
        assert batched.tuples() == oracle.tuples() == [(0, None, None)]

    @pytest.mark.parametrize("batch_size", (1, 1024))
    def test_join_with_empty_side(self, empty, batch_size):
        sql = "SELECT t.a FROM t, u WHERE t.a = u.a"
        oracle, batched = both_ways(empty, sql, batch_size)
        assert batched.tuples() == oracle.tuples() == []

    @pytest.mark.parametrize("batch_size", (1, 1024))
    def test_group_by_over_empty(self, empty, batch_size):
        sql = "SELECT a, count(*) AS n FROM t GROUP BY a"
        oracle, batched = both_ways(empty, sql, batch_size)
        assert batched.tuples() == oracle.tuples() == []


class TestAllNullJoinKeys:
    @pytest.fixture
    def nulls(self) -> SoftDB:
        db = SoftDB()
        db.execute("CREATE TABLE l (k INT, v INT)")
        db.execute("CREATE TABLE r (k INT, w INT)")
        db.database.insert_many("l", [(None, i) for i in range(6)])
        db.database.insert_many("r", [(None, 10 * i) for i in range(4)])
        db.runstats_all()
        return db

    @pytest.mark.parametrize("batch_size", (1, 3, 1024))
    def test_equi_join_matches_nothing(self, nulls, batch_size):
        sql = "SELECT l.v, r.w FROM l, r WHERE l.k = r.k"
        oracle, batched = both_ways(nulls, sql, batch_size)
        assert batched.tuples() == oracle.tuples() == []

    @pytest.mark.parametrize("batch_size", (1, 3, 1024))
    def test_cross_product_still_pairs(self, nulls, batch_size):
        # NULL keys only kill equality matches, not the cross product.
        sql = "SELECT l.v, r.w FROM l, r WHERE l.v < 2"
        oracle, batched = both_ways(nulls, sql, batch_size)
        assert sorted(batched.tuples()) == sorted(oracle.tuples())
        assert batched.row_count == oracle.row_count == 8


class TestLimitMidBatch:
    @pytest.mark.parametrize("batch_size", (2, 4, 5, TABLE_ROWS + 1))
    @pytest.mark.parametrize("limit", (0, 1, 5, 7, TABLE_ROWS, 99))
    def test_limit_lands_mid_batch(self, db, batch_size, limit):
        sql = f"SELECT a FROM t LIMIT {limit}"
        oracle, batched = both_ways(db, sql, batch_size)
        assert batched.tuples() == oracle.tuples()
        assert batched.row_count == min(limit, TABLE_ROWS)

    @pytest.mark.parametrize("batch_size", (2, 5))
    def test_limit_over_sort_mid_batch(self, db, batch_size):
        sql = "SELECT a FROM t ORDER BY c LIMIT 7"
        oracle, batched = both_ways(db, sql, batch_size)
        assert batched.tuples() == oracle.tuples()
        # The sort materializes its whole input either way, so even the
        # page accounting agrees under LIMIT here.
        assert batched.page_reads == oracle.page_reads


def test_batch_size_zero_is_row_at_a_time(db):
    rows = db.execute("SELECT a FROM t WHERE b = 2", batch_size=0).rows
    assert rows == db.execute("SELECT a FROM t WHERE b = 2").rows


def test_batched_interpreter_rejects_nonpositive_sizes(db):
    with pytest.raises(ExecutionError):
        BatchedInterpreter(db.database, batch_size=0)
    with pytest.raises(ExecutionError):
        BatchedInterpreter(db.database, batch_size=-4)
