"""Differential equivalence across every execution mode.

Every query runs in row/batched × compiled/interpreted form, plus the
batched pipeline with the columnar kernels off (list-based closures) and
with morsel-parallel scans (``workers=4``) — the interpreted
row-at-a-time executor is the oracle — and all modes must
produce identical sorted result multisets, row counts, page-read totals,
*and errors* (a query that raises must raise the same error type and
message in every mode).  Corpora: the property SQL oracle generators
(reused from ``tests/property/test_property_sql_oracle.py``), rewrite
on/off optimizer configurations including every individual rewrite
switch, and an error workload (division by zero, type errors, folded
constant errors).
"""

import dataclasses

import pytest
from hypothesis import given, settings

from repro import SoftDB
from repro.executor.runtime import ExecutionResult, Executor
from repro.feedback import FeedbackStore
from repro.harness.runner import _all_off
from repro.optimizer.planner import Optimizer, OptimizerConfig
from repro.sql.printer import sql_of

from tests.property.test_property_sql_oracle import (
    _key,
    build_db,
    predicates,
    tables,
)

pytestmark = pytest.mark.differential

#: A stride-y batch size plus the default: small batches stress chunk
#: boundaries, the default stresses the everything-in-one-batch path.
BATCH_SIZES = (3, 1024)

CONFIGS = {
    "rewrites-on": OptimizerConfig(),
    "rewrites-off": _all_off(),
    # Feedback collection must be invisible to query results: every mode
    # runs with its counters live while the oracle stays uninstrumented.
    "feedback-on": OptimizerConfig(collect_feedback=True),
}


def _executor(
    db: SoftDB, batch_size: int, config: OptimizerConfig, **kwargs
) -> Executor:
    """An executor for one mode; feedback-collecting when configured."""
    feedback = FeedbackStore() if config.collect_feedback else None
    return Executor(
        db.database, batch_size=batch_size, feedback=feedback, **kwargs
    )


def _outcome(fn):
    """Run ``fn`` and capture either its result or its error identity."""
    try:
        return ("ok", fn())
    except Exception as error:  # noqa: BLE001 - any error must match modes
        return ("error", type(error).__name__, str(error))


def _plans(db: SoftDB, sql: str, config: OptimizerConfig):
    """The query's interpreted and compiled plans under ``config``."""
    interpreted = Optimizer(
        db.database,
        db.registry,
        dataclasses.replace(config, compile_expressions=False),
    ).optimize(sql)
    compiled = Optimizer(
        db.database,
        db.registry,
        dataclasses.replace(config, compile_expressions=True),
    ).optimize(sql)
    assert not interpreted.compiled
    assert compiled.compiled
    return interpreted, compiled


def _modes(interpreted, compiled):
    """(name, plan, batch_size, executor kwargs) per non-oracle mode.

    The plain batched modes run with the default columnar kernels; each
    batch size additionally runs with ``columnar=False`` (the list-based
    batch closures) and the default size also runs with ``workers=4``
    (morsel-parallel seq scans), so the oracle comparison pins all three
    lowering targets *and* the parallel merge at once.
    """
    modes = [("row-compiled", compiled, 0, {})]
    for batch_size in BATCH_SIZES:
        modes.append(
            (f"batched-interpreted-{batch_size}", interpreted, batch_size, {})
        )
        modes.append(
            (f"batched-compiled-{batch_size}", compiled, batch_size, {})
        )
        modes.append(
            (
                f"batched-listpath-{batch_size}",
                compiled,
                batch_size,
                {"columnar": False},
            )
        )
    modes.append(
        ("batched-workers4-1024", compiled, 1024, {"workers": 4})
    )
    return modes


def assert_differential(db: SoftDB, sql: str, config: OptimizerConfig) -> None:
    """Execute ``sql`` in every mode under ``config``; compare all."""
    interpreted, compiled = _plans(db, sql, config)
    oracle = _outcome(
        lambda: Executor(db.database, batch_size=0).execute(interpreted)
    )
    for name, plan, batch_size, kwargs in _modes(interpreted, compiled):
        result = _outcome(
            lambda: _executor(db, batch_size, config, **kwargs).execute(plan)
        )
        context = f"{sql!r} ({name})"
        if oracle[0] == "error":
            assert result == oracle, context
        else:
            assert result[0] == "ok", context
            _assert_same(oracle[1], result[1], sql, name)


def _assert_same(
    oracle: ExecutionResult,
    batched: ExecutionResult,
    sql: str,
    mode: str,
) -> None:
    context = f"{sql!r} ({mode})"
    assert batched.columns == oracle.columns, context
    assert batched.row_count == oracle.row_count, context
    assert sorted(batched.tuples(), key=_key) == sorted(
        oracle.tuples(), key=_key
    ), context
    assert batched.page_reads == oracle.page_reads, context
    assert batched.rows_read == oracle.rows_read, context


@given(tables, predicates())
@settings(max_examples=60, deadline=None)
def test_select_where_differential(rows, predicate):
    db = build_db(rows)
    sql = f"SELECT a, b, c FROM t WHERE {sql_of(predicate)}"
    for config in CONFIGS.values():
        assert_differential(db, sql, config)


@given(tables, predicates())
@settings(max_examples=40, deadline=None)
def test_group_by_differential(rows, predicate):
    db = build_db(rows)
    sql = (
        f"SELECT a, count(*) AS n, sum(b) AS s, min(c) AS lo FROM t "
        f"WHERE {sql_of(predicate)} GROUP BY a"
    )
    for config in CONFIGS.values():
        assert_differential(db, sql, config)


@given(tables, predicates())
@settings(max_examples=30, deadline=None)
def test_order_distinct_differential(rows, predicate):
    db = build_db(rows)
    sql = (
        f"SELECT DISTINCT a, b FROM t WHERE {sql_of(predicate)} "
        f"ORDER BY a DESC, b"
    )
    for config in CONFIGS.values():
        assert_differential(db, sql, config)


@given(tables)
@settings(max_examples=20, deadline=None)
def test_scalar_aggregates_differential(rows):
    db = build_db(rows)
    sql = (
        "SELECT count(*) AS n, count(b) AS nb, sum(b) AS s, "
        "min(b) AS lo, max(b) AS hi, avg(b) AS mean FROM t"
    )
    for config in CONFIGS.values():
        assert_differential(db, sql, config)


# -- per-rewrite-switch sweep on a fixed multi-operator workload ------------


def _workload_db() -> SoftDB:
    db = SoftDB()
    db.execute(
        "CREATE TABLE emp (id INT PRIMARY KEY, dept_id INT, salary DOUBLE, "
        "age INT)"
    )
    db.execute("CREATE TABLE dept (id INT PRIMARY KEY, budget DOUBLE)")
    db.execute("CREATE INDEX ix_emp_age ON emp (age)")
    db.database.insert_many(
        "dept", [(d, float(100 * d)) for d in range(1, 6)]
    )
    db.database.insert_many(
        "emp",
        [
            (i, (i % 5) + 1 if i % 7 else None, float(i % 90) + 1.0, 20 + i % 45)
            for i in range(400)
        ],
    )
    db.runstats_all()
    return db


WORKLOAD = [
    "SELECT id, salary FROM emp WHERE age BETWEEN 30 AND 40",
    "SELECT e.id, d.budget FROM emp e, dept d WHERE e.dept_id = d.id "
    "AND d.budget > 200.0",
    "SELECT dept_id, count(*) AS n, avg(salary) AS pay FROM emp "
    "GROUP BY dept_id",
    "SELECT DISTINCT age FROM emp WHERE salary > 45.0 ORDER BY age",
    "SELECT id FROM emp WHERE age > 25 ORDER BY salary DESC LIMIT 17",
]

REWRITE_SWITCHES = [
    "enable_branch_elimination",
    "enable_join_elimination",
    "enable_groupby_simplification",
    "enable_ast_routing",
    "enable_predicate_introduction",
    "enable_hole_trimming",
    "enable_twinning",
    "use_twinning_in_estimation",
]


@pytest.mark.parametrize("switch", ["all-on", "all-off"] + REWRITE_SWITCHES)
def test_rewrite_configurations_differential(switch):
    """Every rewrite switch individually off (plus all-on / all-off)."""
    db = _workload_db()
    if switch == "all-on":
        config = OptimizerConfig()
    elif switch == "all-off":
        config = _all_off()
    else:
        config = dataclasses.replace(OptimizerConfig(), **{switch: False})
    for sql in WORKLOAD:
        # LIMIT needs no carve-out: batched scans clamp their fetch to the
        # remaining quota, so page accounting matches the oracle exactly.
        assert_differential(db, sql, config)


# -- error parity: every mode must raise the same error --------------------

#: Queries that raise during execution — division by zero (dynamic and
#: constant-folded), non-numeric arithmetic, LIKE over a number, and a
#: non-boolean predicate.  ``assert_differential`` captures the outcome,
#: so all four modes must produce the identical error type and message.
ERROR_WORKLOAD = [
    "SELECT id, salary / (age - age) AS broken FROM emp",
    "SELECT 1 / 0 AS boom FROM emp",
    "SELECT id FROM emp WHERE salary + 'oops' > 0.0",
    "SELECT id FROM emp WHERE age LIKE 'x%'",
    "SELECT id FROM emp WHERE NOT salary",
    "SELECT id FROM emp WHERE (salary > 1.0) AND age",
]


@pytest.mark.parametrize("sql", ERROR_WORKLOAD)
def test_error_workload_differential(sql):
    db = _workload_db()
    for config in CONFIGS.values():
        assert_differential(db, sql, config)
    # Sanity: these must actually error in the oracle, or the parity
    # comparison above degenerates to the ok-path.
    interpreted, _ = _plans(db, sql, OptimizerConfig())
    outcome = _outcome(
        lambda: Executor(db.database, batch_size=0).execute(interpreted)
    )
    assert outcome[0] == "error", sql
