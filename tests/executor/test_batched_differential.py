"""Differential equivalence: batched executor vs the row-at-a-time oracle.

The same compiled plan is executed through both interpreters and must
produce identical sorted result multisets, row counts, and page-read
totals — across the property SQL oracle corpus (generators reused from
``tests/property/test_property_sql_oracle.py``) and across rewrite
on/off optimizer configurations, including every individual rewrite
switch on a fixed multi-operator workload.
"""

import dataclasses

import pytest
from hypothesis import given, settings

from repro import SoftDB
from repro.executor.runtime import ExecutionResult, Executor
from repro.harness.runner import _all_off
from repro.optimizer.planner import Optimizer, OptimizerConfig
from repro.sql.printer import sql_of

from tests.property.test_property_sql_oracle import (
    _key,
    build_db,
    predicates,
    tables,
)

pytestmark = pytest.mark.differential

#: A stride-y batch size plus the default: small batches stress chunk
#: boundaries, the default stresses the everything-in-one-batch path.
BATCH_SIZES = (3, 1024)

CONFIGS = {
    "rewrites-on": OptimizerConfig(),
    "rewrites-off": _all_off(),
}


def assert_differential(db: SoftDB, sql: str, config: OptimizerConfig) -> None:
    """Execute ``sql`` both ways under ``config`` and compare everything."""
    plan = Optimizer(db.database, db.registry, config).optimize(sql)
    oracle = Executor(db.database, batch_size=0).execute(plan)
    for batch_size in BATCH_SIZES:
        batched = Executor(db.database, batch_size=batch_size).execute(plan)
        _assert_same(oracle, batched, sql, batch_size)


def _assert_same(
    oracle: ExecutionResult,
    batched: ExecutionResult,
    sql: str,
    batch_size: int,
) -> None:
    context = f"{sql!r} (batch_size={batch_size})"
    assert batched.columns == oracle.columns, context
    assert batched.row_count == oracle.row_count, context
    assert sorted(batched.tuples(), key=_key) == sorted(
        oracle.tuples(), key=_key
    ), context
    assert batched.page_reads == oracle.page_reads, context
    assert batched.rows_read == oracle.rows_read, context


@given(tables, predicates())
@settings(max_examples=60, deadline=None)
def test_select_where_differential(rows, predicate):
    db = build_db(rows)
    sql = f"SELECT a, b, c FROM t WHERE {sql_of(predicate)}"
    for config in CONFIGS.values():
        assert_differential(db, sql, config)


@given(tables, predicates())
@settings(max_examples=40, deadline=None)
def test_group_by_differential(rows, predicate):
    db = build_db(rows)
    sql = (
        f"SELECT a, count(*) AS n, sum(b) AS s, min(c) AS lo FROM t "
        f"WHERE {sql_of(predicate)} GROUP BY a"
    )
    for config in CONFIGS.values():
        assert_differential(db, sql, config)


@given(tables, predicates())
@settings(max_examples=30, deadline=None)
def test_order_distinct_differential(rows, predicate):
    db = build_db(rows)
    sql = (
        f"SELECT DISTINCT a, b FROM t WHERE {sql_of(predicate)} "
        f"ORDER BY a DESC, b"
    )
    for config in CONFIGS.values():
        assert_differential(db, sql, config)


@given(tables)
@settings(max_examples=20, deadline=None)
def test_scalar_aggregates_differential(rows):
    db = build_db(rows)
    sql = (
        "SELECT count(*) AS n, count(b) AS nb, sum(b) AS s, "
        "min(b) AS lo, max(b) AS hi, avg(b) AS mean FROM t"
    )
    for config in CONFIGS.values():
        assert_differential(db, sql, config)


# -- per-rewrite-switch sweep on a fixed multi-operator workload ------------


def _workload_db() -> SoftDB:
    db = SoftDB()
    db.execute(
        "CREATE TABLE emp (id INT PRIMARY KEY, dept_id INT, salary DOUBLE, "
        "age INT)"
    )
    db.execute("CREATE TABLE dept (id INT PRIMARY KEY, budget DOUBLE)")
    db.execute("CREATE INDEX ix_emp_age ON emp (age)")
    db.database.insert_many(
        "dept", [(d, float(100 * d)) for d in range(1, 6)]
    )
    db.database.insert_many(
        "emp",
        [
            (i, (i % 5) + 1 if i % 7 else None, float(i % 90) + 1.0, 20 + i % 45)
            for i in range(400)
        ],
    )
    db.runstats_all()
    return db


WORKLOAD = [
    "SELECT id, salary FROM emp WHERE age BETWEEN 30 AND 40",
    "SELECT e.id, d.budget FROM emp e, dept d WHERE e.dept_id = d.id "
    "AND d.budget > 200.0",
    "SELECT dept_id, count(*) AS n, avg(salary) AS pay FROM emp "
    "GROUP BY dept_id",
    "SELECT DISTINCT age FROM emp WHERE salary > 45.0 ORDER BY age",
    "SELECT id FROM emp WHERE age > 25 ORDER BY salary DESC LIMIT 17",
]

REWRITE_SWITCHES = [
    "enable_branch_elimination",
    "enable_join_elimination",
    "enable_groupby_simplification",
    "enable_ast_routing",
    "enable_predicate_introduction",
    "enable_hole_trimming",
    "enable_twinning",
    "use_twinning_in_estimation",
]


@pytest.mark.parametrize("switch", ["all-on", "all-off"] + REWRITE_SWITCHES)
def test_rewrite_configurations_differential(switch):
    """Every rewrite switch individually off (plus all-on / all-off)."""
    db = _workload_db()
    if switch == "all-on":
        config = OptimizerConfig()
    elif switch == "all-off":
        config = _all_off()
    else:
        config = dataclasses.replace(OptimizerConfig(), **{switch: False})
    for sql in WORKLOAD:
        if "LIMIT" in sql:
            # Batched scans read ahead up to one batch under LIMIT, so
            # page counts legitimately differ; compare rows only.
            plan = Optimizer(db.database, db.registry, config).optimize(sql)
            oracle = Executor(db.database, batch_size=0).execute(plan)
            for batch_size in BATCH_SIZES:
                batched = Executor(
                    db.database, batch_size=batch_size
                ).execute(plan)
                assert batched.tuples() == oracle.tuples()
        else:
            assert_differential(db, sql, config)
