"""Columnar execution: mutation guards, morsel determinism, LIMIT I/O.

Covers the contracts the columnar rewrite added on top of the batched
pipeline: frozen (tuple-backed) join build sides that make aliased
in-place mutation raise instead of corrupting sibling batches,
bit-identical results and I/O accounting between ``workers=1`` and
``workers=4`` morsel scans, LIMIT page-read parity with the
row-at-a-time oracle, and the numpy aggregate folds.
"""

import pytest

from repro import SoftDB
from repro.errors import QueryGuardError
from repro.executor.batch import RowBatch
from repro.executor.runtime import Executor
from repro.executor.vectorized import BatchedInterpreter
from repro.optimizer.logical import Aggregate
from repro.resilience.guards import QueryGuard

pytestmark = pytest.mark.differential


def _db(rows=5000):
    db = SoftDB()
    db.execute("CREATE TABLE t (a INT, b INT, c TEXT)")
    db.database.insert_many(
        "t", [(i, i % 13, f"v{i % 5}") for i in range(rows)]
    )
    db.runstats_all()
    return db


# ------------------------------------------------------ mutation guard


class TestFrozenBatches:
    def test_freeze_makes_mutation_raise(self):
        batch = RowBatch(("a",), {"a": [1, 2, 3]})
        batch.freeze()
        with pytest.raises(TypeError):
            batch.data["a"][0] = 99
        with pytest.raises(AttributeError):
            batch.data["a"].append(4)

    def test_frozen_batches_still_slice_take_and_tile(self):
        batch = RowBatch(("a",), {"a": [1, 2, 3]}).freeze()
        assert batch.slice(0, 2).data["a"] == (1, 2)
        assert batch.take([2, 0]).data["a"] == [3, 1]

    def test_join_build_side_columns_are_immutable(self):
        # The nested-loop inner side is aliased into every output chunk;
        # an in-place mutation through an emitted batch must raise, not
        # silently corrupt the chunks that share the column.
        db = SoftDB()
        db.execute("CREATE TABLE small (x INT)")
        db.execute("CREATE TABLE big (y INT)")
        db.database.insert_many("small", [(i,) for i in range(2)])
        db.database.insert_many("big", [(i,) for i in range(2000)])
        db.runstats_all()
        plan = db.optimizer.optimize("SELECT small.x, big.y FROM small, big")
        interpreter = BatchedInterpreter(db.database, 1024)
        first = next(iter(interpreter.run(plan.root)))
        aliased = [
            column
            for column in first.data.values()
            if isinstance(column, tuple)
        ]
        assert aliased, "expected at least one frozen (aliased) column"
        with pytest.raises(TypeError):
            aliased[0][0] = -1


# ------------------------------------- morsel-parallel determinism


class TestWorkerDeterminism:
    QUERIES = [
        "SELECT a, b FROM t WHERE a % 3 = 1 AND b < 9",
        "SELECT b, count(*) AS n, sum(a) AS s FROM t GROUP BY b",
        "SELECT a FROM t WHERE b = 4 ORDER BY a DESC",
        "SELECT count(*) AS n FROM t WHERE c LIKE 'v1%'",
    ]

    def test_workers4_bit_identical_to_workers1(self):
        db = _db()
        for sql in self.QUERIES:
            plan = db.optimizer.optimize(sql)
            serial = Executor(db.database, workers=1).execute(plan)
            parallel = Executor(db.database, workers=4).execute(plan)
            assert parallel.tuples() == serial.tuples(), sql
            assert parallel.page_reads == serial.page_reads, sql
            assert parallel.rows_read == serial.rows_read, sql

    def test_workers4_feedback_counters_identical(self):
        db = _db()
        sql = "SELECT a FROM t WHERE b = 7"
        plan1 = db.optimizer.optimize(sql)
        Executor(db.database, workers=1).execute(
            plan1, collect_feedback=True
        )
        counters1 = [
            (type(n).__name__, n.actual_rows, getattr(n, "actual_rows_scanned", None))
            for n in _walk(plan1.root)
        ]
        plan4 = db.optimizer.optimize(sql)
        Executor(db.database, workers=4).execute(
            plan4, collect_feedback=True
        )
        counters4 = [
            (type(n).__name__, n.actual_rows, getattr(n, "actual_rows_scanned", None))
            for n in _walk(plan4.root)
        ]
        assert counters4 == counters1

    def test_guarded_scan_breaches_identically_under_workers(self):
        db = _db()
        plan = db.optimizer.optimize("SELECT a FROM t WHERE b = 1")
        outcomes = []
        for workers in (1, 4):
            guard = QueryGuard(max_page_reads=3)
            with pytest.raises(QueryGuardError) as info:
                Executor(db.database, workers=workers).execute(
                    db.optimizer.optimize("SELECT a FROM t WHERE b = 1"),
                    guard=guard,
                )
            outcomes.append(str(info.value))
        assert outcomes[0] == outcomes[1]


def _walk(node):
    yield node
    for child in getattr(node, "children", lambda: [])():
        yield from _walk(child)


# ---------------------------------------------- LIMIT I/O accounting


class TestLimitAccounting:
    @pytest.mark.parametrize("batch_size", [3, 64, 1024])
    def test_limit_page_reads_match_oracle(self, batch_size):
        db = _db()
        for sql in (
            "SELECT a FROM t LIMIT 10",
            "SELECT a FROM t WHERE b < 6 LIMIT 25",
            "SELECT a FROM t LIMIT 0",
            "SELECT a, b FROM t WHERE a > 100 LIMIT 4999",
        ):
            plan_o = db.optimizer.optimize(sql)
            oracle = Executor(db.database, batch_size=0).execute(plan_o)
            plan_b = db.optimizer.optimize(sql)
            for columnar in (False, True):
                batched = Executor(
                    db.database, batch_size=batch_size, columnar=columnar
                ).execute(plan_b)
                context = (sql, batch_size, columnar)
                assert batched.tuples() == oracle.tuples(), context
                assert batched.page_reads == oracle.page_reads, context
                assert batched.rows_read == oracle.rows_read, context


# ------------------------------------------------- aggregate folds


class TestUpdateVec:
    def _pair(self, function, distinct=False):
        from repro.executor.aggregates import AggregateState

        spec = Aggregate(
            function=function,
            argument=None,
            distinct=distinct,
            output_name="o",
        )
        return AggregateState(spec), AggregateState(spec)

    @pytest.mark.parametrize(
        "function", ["count", "sum", "avg", "min", "max"]
    )
    def test_int_fold_matches_list_path(self, function):
        values = [5, None, -3, 12, None, 0, 7]
        vec_state, list_state = self._pair(function)
        vec_state.update_vec(values)
        list_state.update_values(values)
        assert vec_state.result() == list_state.result()
        assert vec_state.count == list_state.count

    def test_distinct_falls_back(self):
        values = [1, 1, 2, None, 2, 3]
        vec_state, list_state = self._pair("count", distinct=True)
        vec_state.update_vec(values)
        list_state.update_values(values)
        assert vec_state.result() == list_state.result() == 3

    def test_mixed_column_keeps_error_parity(self):
        from repro.errors import ExecutionError

        vec_state, list_state = self._pair("sum")
        with pytest.raises(ExecutionError) as vec_err:
            vec_state.update_vec([1, "x"])
        with pytest.raises(ExecutionError) as list_err:
            list_state.update_values([1, "x"])
        assert str(vec_err.value) == str(list_err.value)

    def test_float_sum_keeps_sequential_association(self):
        values = [0.1, 0.2, 0.3, None, 1e16, 1.0, -1e16]
        vec_state, list_state = self._pair("sum")
        vec_state.update_vec(values)
        list_state.update_values(values)
        assert vec_state.result() == list_state.result()

    def test_huge_int_sum_exact(self):
        values = [2**61, 2**61, 7]
        vec_state, list_state = self._pair("sum")
        vec_state.update_vec(values)
        list_state.update_values(values)
        assert vec_state.result() == list_state.result() == 2**62 + 7
