"""Edge cases for the sort and aggregate operators (both executors).

Fills coverage gaps called out alongside the batched-executor work:
DISTINCT aggregates over empty input, ORDER BY with mixed NULLs, and the
batched aggregate-state entry points (``update_values`` /
``update_count_star``) checked against the row-at-a-time ``update``.
"""

import pytest

from repro import SoftDB
from repro.errors import ExecutionError
from repro.executor.aggregates import AggregateState
from repro.executor.sorts import run_sort_batched
from repro.executor.batch import RowBatch
from repro.optimizer.logical import Aggregate
from repro.optimizer.physical import Sort
from repro.sql.parser import parse_expression


def _agg(function, argument="v", distinct=False) -> AggregateState:
    spec = Aggregate(
        function=function,
        argument=None if argument is None else parse_expression(argument),
        distinct=distinct,
        output_name="out",
    )
    return AggregateState(spec)


class TestDistinctAggregatesOverEmptyInput:
    """DISTINCT aggregates over zero rows: NULL for SUM/AVG/MIN/MAX, 0 for
    COUNT — through SQL on both executors and on the state directly."""

    @pytest.fixture
    def empty(self) -> SoftDB:
        db = SoftDB()
        db.execute("CREATE TABLE t (a INT, b INT)")
        db.runstats_all()
        return db

    SQL = (
        "SELECT count(DISTINCT b) AS n, sum(DISTINCT b) AS s, "
        "avg(DISTINCT b) AS m, min(DISTINCT b) AS lo, "
        "max(DISTINCT b) AS hi FROM t"
    )

    @pytest.mark.parametrize("batch_size", (0, 1, 1024))
    def test_empty_input(self, empty, batch_size):
        result = empty.execute(self.SQL, batch_size=batch_size)
        assert result.tuples() == [(0, None, None, None, None)]

    @pytest.mark.parametrize("batch_size", (0, 2, 1024))
    def test_all_null_input(self, empty, batch_size):
        empty.database.insert_many("t", [(i, None) for i in range(5)])
        result = empty.execute(self.SQL, batch_size=batch_size)
        assert result.tuples() == [(0, None, None, None, None)]

    def test_distinct_states_empty(self):
        for function in ("count", "sum", "avg", "min", "max"):
            state = _agg(function, distinct=True)
            expected = 0 if function == "count" else None
            assert state.result() == expected


class TestBatchedAggregateStates:
    """update_values/update_count_star must match per-row update exactly."""

    CASES = [
        ("sum", [1, None, 2, 2, 3], False),
        ("sum", [1, None, 2, 2, 3], True),
        ("avg", [2.0, None, 4.0, 4.0], True),
        ("min", [5, 1, None, 9], False),
        ("max", ["a", "c", None, "b"], False),
        ("count", [None, 7, 7, 8], True),
    ]

    @pytest.mark.parametrize("function,values,distinct", CASES)
    def test_matches_per_row_update(self, function, values, distinct):
        batched = _agg(function, distinct=distinct)
        batched.update_values(values)
        rowwise = _agg(function, distinct=distinct)
        for value in values:
            rowwise.update({"v": value})
        assert batched.result() == rowwise.result()
        assert batched.count == rowwise.count

    def test_split_across_batches(self):
        one = _agg("sum", distinct=True)
        one.update_values([2, 3, 2])
        one.update_values([2, 5, None])
        assert one.result() == 2 + 3 + 5

    def test_count_star_batched(self):
        state = _agg("count", argument=None)
        state.update_count_star(3)
        state.update_count_star(4)
        assert state.result() == 7

    def test_non_numeric_sum_rejected(self):
        state = _agg("sum")
        with pytest.raises(ExecutionError):
            state.update_values([1, "oops"])


class TestOrderByMixedNulls:
    @pytest.fixture
    def db(self) -> SoftDB:
        db = SoftDB()
        db.execute("CREATE TABLE t (a INT, b INT)")
        db.database.insert_many(
            "t",
            [(1, None), (2, 3), (3, None), (4, 1), (5, 3), (6, None), (7, 2)],
        )
        db.runstats_all()
        return db

    @pytest.mark.parametrize("batch_size", (0, 1, 3, 1024))
    def test_ascending_nulls_last(self, db, batch_size):
        result = db.execute(
            "SELECT a, b FROM t ORDER BY b, a", batch_size=batch_size
        )
        assert [row["b"] for row in result.rows] == [
            1, 2, 3, 3, None, None, None,
        ]
        # NULL ties broken by the secondary key.
        assert [row["a"] for row in result.rows][-3:] == [1, 3, 6]

    @pytest.mark.parametrize("batch_size", (0, 2, 1024))
    def test_descending_nulls_first(self, db, batch_size):
        result = db.execute(
            "SELECT a, b FROM t ORDER BY b DESC, a DESC", batch_size=batch_size
        )
        assert [row["b"] for row in result.rows] == [
            None, None, None, 3, 3, 2, 1,
        ]
        assert [row["a"] for row in result.rows][:3] == [6, 3, 1]

    @pytest.mark.parametrize("batch_size", (0, 2, 1024))
    def test_mixed_direction_keys(self, db, batch_size):
        result = db.execute(
            "SELECT a, b FROM t ORDER BY b DESC, a", batch_size=batch_size
        )
        assert [row["a"] for row in result.rows] == [1, 3, 6, 2, 5, 7, 4]

    def test_all_null_key_preserves_input_order(self):
        node = Sort("child", [(parse_expression("x"), True)])
        rows = [{"x": None, "tag": t} for t in "abcd"]
        batches = [RowBatch.from_rows(rows[:2]), RowBatch.from_rows(rows[2:])]
        ordered = []
        for batch in run_sort_batched(node, iter(batches), batch_size=3):
            ordered.extend(batch.to_rows())
        assert [row["tag"] for row in ordered] == ["a", "b", "c", "d"]

    def test_empty_input_yields_no_batches(self):
        node = Sort("child", [(parse_expression("x"), True)])
        assert list(run_sort_batched(node, iter(()), batch_size=4)) == []
