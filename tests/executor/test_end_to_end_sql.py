"""End-to-end SQL execution tests through the full pipeline."""

import pytest

from repro.api import SoftDB


@pytest.fixture
def db() -> SoftDB:
    db = SoftDB()
    db.execute(
        "CREATE TABLE emp (id INT PRIMARY KEY, name VARCHAR(20), "
        "dept VARCHAR(10), salary DOUBLE, manager_id INT)"
    )
    db.execute(
        "INSERT INTO emp VALUES "
        "(1, 'ann', 'eng', 120.0, NULL), "
        "(2, 'bob', 'eng', 100.0, 1), "
        "(3, 'cat', 'ops', 90.0, 1), "
        "(4, 'dan', 'ops', 80.0, 3), "
        "(5, 'eve', 'eng', 110.0, 1), "
        "(6, 'fay', 'hr', NULL, 1)"
    )
    db.runstats_all()
    return db


class TestSelection:
    def test_filter_and_project(self, db):
        rows = db.query("SELECT name FROM emp WHERE salary > 100.0")
        assert {row["name"] for row in rows} == {"ann", "eve"}

    def test_null_filtered_out_by_comparison(self, db):
        rows = db.query("SELECT name FROM emp WHERE salary < 1000.0")
        assert "fay" not in {row["name"] for row in rows}

    def test_is_null(self, db):
        rows = db.query("SELECT name FROM emp WHERE salary IS NULL")
        assert [row["name"] for row in rows] == ["fay"]

    def test_computed_output_column(self, db):
        rows = db.query(
            "SELECT name, salary * 1.1 AS raised FROM emp WHERE id = 2"
        )
        assert rows[0]["raised"] == pytest.approx(110.0)

    def test_between_and_in(self, db):
        rows = db.query(
            "SELECT id FROM emp WHERE salary BETWEEN 90.0 AND 110.0 "
            "AND dept IN ('eng', 'ops')"
        )
        assert sorted(row["id"] for row in rows) == [2, 3, 5]

    def test_like(self, db):
        rows = db.query("SELECT name FROM emp WHERE name LIKE '%a%'")
        assert {row["name"] for row in rows} == {"ann", "cat", "dan", "fay"}

    def test_distinct(self, db):
        rows = db.query("SELECT DISTINCT dept FROM emp")
        assert len(rows) == 3

    def test_order_by_limit(self, db):
        rows = db.query(
            "SELECT name FROM emp WHERE salary IS NOT NULL "
            "ORDER BY salary DESC LIMIT 2"
        )
        assert [row["name"] for row in rows] == ["ann", "eve"]

    def test_order_by_nulls_last_ascending(self, db):
        rows = db.query("SELECT name FROM emp ORDER BY salary")
        assert rows[-1]["name"] == "fay"


class TestJoins:
    def test_self_join(self, db):
        rows = db.query(
            "SELECT e.name, m.name AS boss FROM emp e, emp m "
            "WHERE e.manager_id = m.id"
        )
        bosses = {row["name"]: row["boss"] for row in rows}
        assert bosses["bob"] == "ann" and bosses["dan"] == "cat"

    def test_null_join_keys_never_match(self, db):
        rows = db.query(
            "SELECT e.id FROM emp e, emp m WHERE e.manager_id = m.id"
        )
        assert 1 not in {row["id"] for row in rows}  # ann has NULL manager

    def test_join_with_residual_predicate(self, db):
        rows = db.query(
            "SELECT e.name FROM emp e, emp m "
            "WHERE e.manager_id = m.id AND e.salary < m.salary"
        )
        # Everyone earns less than their manager; fay's NULL salary makes
        # the residual UNKNOWN, so she is filtered out.
        assert {row["name"] for row in rows} == {"bob", "cat", "dan", "eve"}

    def test_theta_join(self, db):
        rows = db.query(
            "SELECT e.id AS low, m.id AS high FROM emp e, emp m "
            "WHERE e.id < m.id AND e.id = 1 AND m.id = 2"
        )
        assert rows == [{"low": 1, "high": 2}]


class TestAggregation:
    def test_group_by_with_aggregates(self, db):
        rows = db.query(
            "SELECT dept, count(*) AS n, avg(salary) AS mean FROM emp "
            "GROUP BY dept ORDER BY dept"
        )
        assert rows[0] == {"dept": "eng", "n": 3, "mean": pytest.approx(110.0)}
        assert rows[1]["mean"] is None  # hr: all-NULL salaries

    def test_count_ignores_nulls_sum_too(self, db):
        rows = db.query(
            "SELECT count(salary) AS c, sum(salary) AS s FROM emp"
        )
        assert rows[0]["c"] == 5
        assert rows[0]["s"] == pytest.approx(500.0)

    def test_count_star_counts_rows(self, db):
        assert db.query("SELECT count(*) AS n FROM emp")[0]["n"] == 6

    def test_min_max(self, db):
        row = db.query(
            "SELECT min(salary) AS lo, max(salary) AS hi FROM emp"
        )[0]
        assert (row["lo"], row["hi"]) == (80.0, 120.0)

    def test_count_distinct(self, db):
        row = db.query("SELECT count(DISTINCT dept) AS n FROM emp")[0]
        assert row["n"] == 3

    def test_having(self, db):
        rows = db.query(
            "SELECT dept, count(*) AS n FROM emp GROUP BY dept "
            "HAVING count(*) >= 2"
        )
        assert {row["dept"] for row in rows} == {"eng", "ops"}

    def test_scalar_aggregate_on_empty_input(self, db):
        row = db.query(
            "SELECT count(*) AS n, sum(salary) AS s FROM emp WHERE id > 999"
        )[0]
        assert row["n"] == 0 and row["s"] is None

    def test_group_by_on_empty_input_yields_no_groups(self, db):
        rows = db.query(
            "SELECT dept, count(*) AS n FROM emp WHERE id > 999 GROUP BY dept"
        )
        assert rows == []

    def test_order_by_aggregate(self, db):
        rows = db.query(
            "SELECT dept, count(*) AS n FROM emp GROUP BY dept ORDER BY n DESC"
        )
        assert rows[0]["dept"] == "eng"


class TestUnionAll:
    def test_union_concatenates(self, db):
        rows = db.query(
            "SELECT id FROM emp WHERE dept = 'eng' "
            "UNION ALL SELECT id FROM emp WHERE dept = 'ops'"
        )
        assert len(rows) == 5

    def test_union_keeps_duplicates(self, db):
        rows = db.query(
            "SELECT id FROM emp WHERE id = 1 "
            "UNION ALL SELECT id FROM emp WHERE id = 1"
        )
        assert len(rows) == 2

    def test_union_order_by_and_limit(self, db):
        rows = db.query(
            "(SELECT id FROM emp WHERE dept = 'eng') "
            "UNION ALL (SELECT id FROM emp WHERE dept = 'ops') "
            "ORDER BY id DESC LIMIT 2"
        )
        assert [row["id"] for row in rows] == [5, 4]

    def test_union_renames_positionally(self, db):
        rows = db.query(
            "SELECT id AS x FROM emp WHERE id = 1 "
            "UNION ALL SELECT manager_id FROM emp WHERE id = 2"
        )
        assert sorted(row["x"] for row in rows) == [1, 1]


class TestDML:
    def test_insert_returns_count(self, db):
        assert db.execute("INSERT INTO emp VALUES (7, 'gil', 'hr', 70.0, 6)") == 1

    def test_update_with_expression(self, db):
        changed = db.execute(
            "UPDATE emp SET salary = salary + 10.0 WHERE dept = 'eng'"
        )
        assert changed == 3
        rows = db.query("SELECT salary FROM emp WHERE id = 1")
        assert rows[0]["salary"] == pytest.approx(130.0)

    def test_delete_where(self, db):
        assert db.execute("DELETE FROM emp WHERE dept = 'hr'") == 1
        assert db.query("SELECT count(*) AS n FROM emp")[0]["n"] == 5

    def test_insert_with_column_list(self, db):
        db.execute("INSERT INTO emp (id, name) VALUES (8, 'hal')")
        row = db.query("SELECT dept, salary FROM emp WHERE id = 8")[0]
        assert row == {"dept": None, "salary": None}

    def test_constraint_enforced_through_sql(self, db):
        from repro.errors import ConstraintViolation

        with pytest.raises(ConstraintViolation):
            db.execute("INSERT INTO emp VALUES (1, 'dup', 'x', 0.0, NULL)")
