"""Operator-level tests: scans, joins, sorts, aggregates in isolation."""

import pytest

from repro.executor.aggregates import AggregateState
from repro.executor.joins import run_hash_join, run_nested_loop_join
from repro.executor.runtime import Executor
from repro.executor.scans import run_index_scan, run_seq_scan
from repro.executor.sorts import run_sort
from repro.optimizer.logical import Aggregate
from repro.optimizer.physical import (
    HashJoin,
    IndexScan,
    NestedLoopJoin,
    SeqScan,
    Sort,
)
from repro.sql.parser import parse_expression


class TestScans:
    def test_seq_scan_rows_qualified(self, people_database):
        node = SeqScan("city", "c")
        rows = list(run_seq_scan(people_database, node))
        assert rows[0] == {"c.id": 1, "c.name": "toronto"}

    def test_seq_scan_filter(self, people_database):
        node = SeqScan("person", "p", parse_expression("p.age > 30"))
        rows = list(run_seq_scan(people_database, node))
        assert len(rows) == 3

    def test_index_scan_range(self, people_database):
        people_database.create_index("ix_age", "person", ["age"])
        node = IndexScan("person", "p", "ix_age", low=(30,), high=(40,))
        rows = list(run_index_scan(people_database, node))
        assert sorted(row["p.age"] for row in rows) == [34, 39]

    def test_index_scan_respects_residual(self, people_database):
        people_database.create_index("ix_age", "person", ["age"])
        node = IndexScan(
            "person", "p", "ix_age",
            low=(0,), high=(100,),
            predicate=parse_expression("p.city_id = 1"),
        )
        rows = list(run_index_scan(people_database, node))
        assert {row["p.name"] for row in rows} == {"ann", "bob"}

    def test_index_scan_skips_deleted(self, people_database):
        people_database.create_index("ix_id", "person", ["id"])
        # Delete via the heap only (index kept stale deliberately to model
        # the tombstone case the scan must tolerate).
        table = people_database.table("person")
        (rid,) = people_database.lookup_key("person", ["id"], [3])
        table.delete(rid)
        node = IndexScan("person", "p", "ix_id", low=(1,), high=(5,))
        rows = list(run_index_scan(people_database, node))
        assert 3 not in {row["p.id"] for row in rows}

    def test_clustered_fetches_share_pages(self, people_database):
        people_database.create_index("ix_id", "person", ["id"])
        people_database.counters.reset()
        node = IndexScan("person", "p", "ix_id", low=(1,), high=(5,))
        list(run_index_scan(people_database, node))
        # All five rows live on one page: descent + 1 data page.
        assert people_database.counters.page_reads <= 3


class TestJoins:
    LEFT = [{"l.k": 1, "l.v": "a"}, {"l.k": 2, "l.v": "b"}, {"l.k": None, "l.v": "n"}]
    RIGHT = [{"r.k": 1, "r.w": 10}, {"r.k": 1, "r.w": 11}, {"r.k": None, "r.w": 0}]

    def run_child(self, rows):
        def runner(node):
            return iter(rows[node])

        return runner

    def test_hash_join_matches_and_duplicates(self):
        node = HashJoin(
            left="L",
            right="R",
            left_keys=[parse_expression("l.k")],
            right_keys=[parse_expression("r.k")],
        )
        rows = list(
            run_hash_join(node, self.run_child({"L": self.LEFT, "R": self.RIGHT}))
        )
        assert len(rows) == 2
        assert {row["r.w"] for row in rows} == {10, 11}

    def test_hash_join_null_keys_dropped(self):
        node = HashJoin(
            left="L",
            right="R",
            left_keys=[parse_expression("l.k")],
            right_keys=[parse_expression("r.k")],
        )
        rows = list(
            run_hash_join(node, self.run_child({"L": self.LEFT, "R": self.RIGHT}))
        )
        assert all(row["l.k"] is not None for row in rows)

    def test_hash_join_residual(self):
        node = HashJoin(
            left="L",
            right="R",
            left_keys=[parse_expression("l.k")],
            right_keys=[parse_expression("r.k")],
            residual=parse_expression("r.w > 10"),
        )
        rows = list(
            run_hash_join(node, self.run_child({"L": self.LEFT, "R": self.RIGHT}))
        )
        assert len(rows) == 1 and rows[0]["r.w"] == 11

    def test_nested_loop_cross_product(self):
        node = NestedLoopJoin("L", "R", condition=None)
        rows = list(
            run_nested_loop_join(
                node, self.run_child({"L": self.LEFT, "R": self.RIGHT})
            )
        )
        assert len(rows) == 9

    def test_nested_loop_condition(self):
        node = NestedLoopJoin(
            "L", "R", condition=parse_expression("l.k < r.w")
        )
        rows = list(
            run_nested_loop_join(
                node, self.run_child({"L": self.LEFT, "R": self.RIGHT})
            )
        )
        assert len(rows) == 4  # k in {1, 2} x w in {10, 11}


class TestSort:
    ROWS = [
        {"x": 3, "y": "c"},
        {"x": 1, "y": "a"},
        {"x": None, "y": "n"},
        {"x": 2, "y": "b"},
    ]

    def test_ascending_nulls_last(self):
        node = Sort("child", [(parse_expression("x"), True)])
        ordered = list(run_sort(node, iter(self.ROWS)))
        assert [row["x"] for row in ordered] == [1, 2, 3, None]

    def test_descending_nulls_first(self):
        node = Sort("child", [(parse_expression("x"), False)])
        ordered = list(run_sort(node, iter(self.ROWS)))
        assert [row["x"] for row in ordered] == [None, 3, 2, 1]

    def test_multi_key_stability(self):
        rows = [
            {"a": 1, "b": 2},
            {"a": 1, "b": 1},
            {"a": 0, "b": 9},
        ]
        node = Sort(
            "child",
            [(parse_expression("a"), True), (parse_expression("b"), True)],
        )
        ordered = list(run_sort(node, iter(rows)))
        assert [(r["a"], r["b"]) for r in ordered] == [(0, 9), (1, 1), (1, 2)]


class TestAggregateStates:
    def agg(self, function, argument="v", distinct=False):
        spec = Aggregate(
            function=function,
            argument=None if argument is None else parse_expression(argument),
            distinct=distinct,
            output_name="out",
        )
        return AggregateState(spec)

    def test_count_star(self):
        state = self.agg("count", None)
        for _ in range(3):
            state.update({"v": None})
        assert state.result() == 3

    def test_count_column_skips_nulls(self):
        state = self.agg("count")
        for value in [1, None, 2]:
            state.update({"v": value})
        assert state.result() == 2

    def test_sum_avg(self):
        state = self.agg("avg")
        for value in [1.0, 2.0, None, 3.0]:
            state.update({"v": value})
        assert state.result() == pytest.approx(2.0)

    def test_empty_sum_is_null(self):
        assert self.agg("sum").result() is None

    def test_min_max(self):
        low, high = self.agg("min"), self.agg("max")
        for value in [5, 1, 9]:
            low.update({"v": value})
            high.update({"v": value})
        assert (low.result(), high.result()) == (1, 9)

    def test_distinct_sum(self):
        state = self.agg("sum", distinct=True)
        for value in [2, 2, 3]:
            state.update({"v": value})
        assert state.result() == 5

    def test_sum_of_strings_rejected(self):
        from repro.errors import ExecutionError

        state = self.agg("sum")
        with pytest.raises(ExecutionError):
            state.update({"v": "oops"})
