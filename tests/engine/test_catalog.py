"""Tests for the system catalog."""

import pytest

from repro.engine.catalog import Catalog
from repro.engine.constraints import ForeignKeyConstraint, PrimaryKeyConstraint
from repro.engine.index import BTreeIndex
from repro.engine.schema import Column, TableSchema
from repro.engine.table import HeapTable
from repro.engine.types import INTEGER
from repro.errors import DuplicateObjectError, UnknownObjectError


def make_table(name: str) -> HeapTable:
    return HeapTable(
        TableSchema(name, [Column("a", INTEGER), Column("b", INTEGER)])
    )


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.add_table(make_table("t"))
    cat.add_table(make_table("u"))
    return cat


class TestTables:
    def test_lookup_case_insensitive(self, catalog):
        assert catalog.table("T").schema.name == "t"

    def test_duplicate_rejected(self, catalog):
        with pytest.raises(DuplicateObjectError):
            catalog.add_table(make_table("t"))

    def test_unknown_raises(self, catalog):
        with pytest.raises(UnknownObjectError):
            catalog.table("nope")

    def test_drop_cascades_to_indexes(self, catalog):
        index = BTreeIndex("ix", catalog.table("t").schema, ["a"])
        catalog.add_index(index)
        catalog.drop_table("t")
        with pytest.raises(UnknownObjectError):
            catalog.index("ix")

    def test_table_names_sorted(self, catalog):
        assert catalog.table_names() == ["t", "u"]


class TestIndexes:
    def test_find_index_exact(self, catalog):
        catalog.add_index(BTreeIndex("ix", catalog.table("t").schema, ["a"]))
        assert catalog.find_index("t", ["a"]).name == "ix"
        assert catalog.find_index("t", ["b"]) is None

    def test_find_index_prefix(self, catalog):
        catalog.add_index(
            BTreeIndex("ix2", catalog.table("t").schema, ["a", "b"])
        )
        assert catalog.find_index("t", ["a"], prefix_ok=True).name == "ix2"
        assert catalog.find_index("t", ["a"], prefix_ok=False) is None

    def test_index_for_unknown_table_rejected(self, catalog):
        index = BTreeIndex("ix", make_table("ghost").schema, ["a"])
        with pytest.raises(UnknownObjectError):
            catalog.add_index(index)

    def test_indexes_on(self, catalog):
        catalog.add_index(BTreeIndex("i1", catalog.table("t").schema, ["a"]))
        catalog.add_index(BTreeIndex("i2", catalog.table("t").schema, ["b"]))
        assert [i.name for i in catalog.indexes_on("t")] == ["i1", "i2"]
        assert catalog.indexes_on("u") == []


class TestConstraints:
    def test_add_and_list(self, catalog):
        catalog.add_constraint(PrimaryKeyConstraint("pk", "t", ["a"]))
        assert [c.name for c in catalog.constraints_on("t")] == ["pk"]

    def test_duplicate_name_rejected(self, catalog):
        catalog.add_constraint(PrimaryKeyConstraint("pk", "t", ["a"]))
        with pytest.raises(DuplicateObjectError):
            catalog.add_constraint(PrimaryKeyConstraint("pk", "t", ["b"]))

    def test_foreign_keys_referencing(self, catalog):
        fk = ForeignKeyConstraint("fk", "u", ["a"], "t", ["a"])
        catalog.add_constraint(fk)
        assert catalog.foreign_keys_referencing("t") == [fk]
        assert catalog.foreign_keys_referencing("u") == []

    def test_drop_constraint(self, catalog):
        catalog.add_constraint(PrimaryKeyConstraint("pk", "t", ["a"]))
        catalog.drop_constraint("t", "pk")
        assert catalog.constraints_on("t") == []


class TestStatisticsAndSummaries:
    def test_statistics_roundtrip(self, catalog):
        catalog.set_statistics("t", {"rows": 5})
        assert catalog.statistics("t") == {"rows": 5}
        assert catalog.statistics("u") is None

    def test_summary_tables(self, catalog):
        catalog.add_summary_table("s1", object())
        assert "s1" in catalog.summary_tables()
        catalog.drop_summary_table("s1")
        with pytest.raises(UnknownObjectError):
            catalog.summary_table("s1")


class TestInvalidation:
    def test_callbacks_fire_once(self, catalog):
        fired = []
        catalog.on_invalidate("softconstraint:x", fired.append)
        assert catalog.fire_invalidation("softconstraint:x") == 1
        assert fired == ["softconstraint:x"]
        # Second fire: callback already consumed.
        assert catalog.fire_invalidation("softconstraint:x") == 0

    def test_multiple_callbacks(self, catalog):
        fired = []
        catalog.on_invalidate("constraint:c", lambda d: fired.append(1))
        catalog.on_invalidate("constraint:c", lambda d: fired.append(2))
        assert catalog.fire_invalidation("constraint:c") == 2
        assert fired == [1, 2]

    def test_drop_table_fires_invalidation(self, catalog):
        fired = []
        catalog.on_invalidate("table:t", fired.append)
        catalog.drop_table("t")
        assert fired == ["table:t"]
