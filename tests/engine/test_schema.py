"""Tests for table schemas."""

import pytest

from repro.engine.schema import Column, TableSchema
from repro.engine.types import DOUBLE, INTEGER, VARCHAR
from repro.errors import SchemaError, TypeMismatchError


@pytest.fixture
def schema() -> TableSchema:
    return TableSchema(
        "emp",
        [
            Column("id", INTEGER, nullable=False),
            Column("name", VARCHAR(20)),
            Column("salary", DOUBLE),
        ],
    )


class TestConstruction:
    def test_names_lowercased(self):
        schema = TableSchema("T", [Column("A", INTEGER)])
        assert schema.name == "t"
        assert schema.columns[0].name == "a"

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", INTEGER), Column("A", DOUBLE)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_empty_names_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("", [Column("a", INTEGER)])
        with pytest.raises(SchemaError):
            Column("", INTEGER)


class TestLookup:
    def test_contains_is_case_insensitive(self, schema):
        assert "ID" in schema
        assert "missing" not in schema

    def test_position(self, schema):
        assert schema.position("salary") == 2

    def test_column_lookup(self, schema):
        assert schema.column("name").type == VARCHAR(20)

    def test_unknown_column_raises(self, schema):
        with pytest.raises(SchemaError):
            schema.position("bonus")

    def test_iteration_order(self, schema):
        assert schema.column_names() == ["id", "name", "salary"]
        assert len(schema) == 3


class TestRowValidation:
    def test_valid_row_coerced(self, schema):
        row = schema.validate_row([1, "ann", 10])
        assert row == (1, "ann", 10.0)
        assert isinstance(row[2], float)

    def test_wrong_arity(self, schema):
        with pytest.raises(TypeMismatchError):
            schema.validate_row([1, "ann"])

    def test_not_null_enforced_structurally(self, schema):
        with pytest.raises(TypeMismatchError):
            schema.validate_row([None, "ann", 1.0])

    def test_nullable_columns_accept_none(self, schema):
        row = schema.validate_row([1, None, None])
        assert row == (1, None, None)

    def test_row_from_mapping_defaults_missing_to_null(self, schema):
        row = schema.row_from_mapping({"id": 9})
        assert row == (9, None, None)

    def test_row_from_mapping_rejects_unknown_keys(self, schema):
        with pytest.raises(SchemaError):
            schema.row_from_mapping({"id": 1, "bonus": 5})


class TestDerivation:
    def test_project(self, schema):
        projected = schema.project(["salary", "id"], "narrow")
        assert projected.name == "narrow"
        assert projected.column_names() == ["salary", "id"]

    def test_row_size_grows_with_strings(self, schema):
        small = schema.row_size((1, "a", 1.0))
        large = schema.row_size((1, "a" * 15, 1.0))
        assert large == small + 14

    def test_equality(self, schema):
        twin = TableSchema(
            "emp",
            [
                Column("id", INTEGER, nullable=False),
                Column("name", VARCHAR(20)),
                Column("salary", DOUBLE),
            ],
        )
        assert schema == twin
        assert hash(schema) == hash(twin)
