"""Page-level failure edges: overflow, forwarding, and DML atomicity.

These edges sit under the chaos harness: an oversized row must be
rejected *before* anything mutates, a growing row must forward (delete +
re-insert) with its write cost charged up front, and every failure path
must leave the page images and their incremental checksums consistent.
"""

import pytest

from repro.engine.page import MAX_ROW_BYTES, Page, PAGE_SIZE
from repro.engine.schema import Column, TableSchema
from repro.engine.table import HeapTable
from repro.engine.types import INTEGER, VARCHAR
from repro.errors import PageOverflowError, StorageError


@pytest.fixture
def table() -> HeapTable:
    schema = TableSchema(
        "t", [Column("id", INTEGER), Column("body", VARCHAR(8000))]
    )
    return HeapTable(schema)


def _verify_pages(table: HeapTable) -> None:
    for page in table.pages.pages:
        page.verify()


class TestOverflow:
    def test_oversized_insert_rejected_before_any_mutation(self, table):
        table.insert([1, "x"])
        pages_before = table.page_count
        writes_before = table.pages.counters.page_writes
        with pytest.raises(PageOverflowError):
            table.insert([2, "y" * (MAX_ROW_BYTES + 1)])
        assert table.row_count == 1
        assert table.page_count == pages_before
        assert table.pages.counters.page_writes == writes_before
        _verify_pages(table)

    def test_oversized_update_rejected_before_any_mutation(self, table):
        row_id = table.insert([1, "small"])
        with pytest.raises(PageOverflowError):
            table.update(row_id, [1, "y" * (MAX_ROW_BYTES + 1)])
        assert table.fetch(row_id) == (1, "small")
        _verify_pages(table)

    def test_page_level_insert_rejects_row_above_capacity(self):
        page = Page(0)
        with pytest.raises(PageOverflowError):
            page.insert(("too big",), PAGE_SIZE)

    def test_page_full_raises_not_corrupts(self):
        page = Page(0)
        page.insert(("a",), MAX_ROW_BYTES)
        with pytest.raises(PageOverflowError):
            page.insert(("b",), 100)
        assert page.live_rows == 1
        page.verify()


class TestForwarding:
    def test_grown_row_forwards_to_new_page(self, table):
        # Fill page 0 nearly full so the grown image cannot stay.
        row_id = table.insert([1, "a" * 2000])
        table.insert([2, "b" * 1900])
        new_id, old_row = table.update(row_id, [1, "c" * 3000])
        assert old_row == (1, "a" * 2000)
        assert new_id != row_id
        assert table.fetch(new_id) == (1, "c" * 3000)
        # The source slot is a tombstone now; the row count is unchanged.
        assert table.row_count == 2
        with pytest.raises(StorageError):
            table.fetch(row_id)
        _verify_pages(table)

    def test_forwarding_charges_both_page_writes(self, table):
        row_id = table.insert([1, "a" * 2000])
        table.insert([2, "b" * 1900])
        writes_before = table.pages.counters.page_writes
        table.update(row_id, [1, "c" * 3000])
        # Source-page delete + target-page insert: two logical writes.
        assert table.pages.counters.page_writes == writes_before + 2

    def test_in_place_update_charges_one_write(self, table):
        row_id = table.insert([1, "a" * 2000])
        writes_before = table.pages.counters.page_writes
        table.update(row_id, [1, "b" * 1999])
        assert table.pages.counters.page_writes == writes_before + 1
        _verify_pages(table)

    def test_can_update_predicts_update(self):
        page = Page(0)
        slot = page.insert(("a" * 100,), 104)
        assert page.can_update(slot, 104)
        assert page.can_update(slot, 50)  # shrink always fits
        assert page.can_update(slot, 104 + page.free_bytes)  # grow into free
        assert not page.can_update(slot, PAGE_SIZE)


class TestDeletedSlotEdges:
    def test_update_of_deleted_slot_raises(self, table):
        row_id = table.insert([1, "x"])
        table.delete(row_id)
        with pytest.raises(StorageError):
            table.update(row_id, [1, "y"])
        _verify_pages(table)

    def test_delete_of_deleted_slot_raises_without_mutation(self, table):
        row_id = table.insert([1, "x"])
        table.delete(row_id)
        count = table.row_count
        with pytest.raises(StorageError):
            table.delete(row_id)
        assert table.row_count == count
        _verify_pages(table)
