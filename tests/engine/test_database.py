"""Tests for the database facade: DML, lookups, change events."""

import pytest

from repro.engine.database import ChangeEvent, Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import INTEGER, VARCHAR


class TestDML:
    def test_insert_mapping(self, people_database):
        people_database.insert_mapping("person", {"id": 9, "name": "zed"})
        rows = list(people_database.scan_dicts("person"))
        assert rows[-1] == {
            "id": 9,
            "name": "zed",
            "age": None,
            "city_id": None,
        }

    def test_delete_where(self, people_database):
        deleted = people_database.delete_where(
            "person", lambda row: row["age"] is not None and row["age"] > 35
        )
        assert deleted == 2
        assert people_database.table("person").row_count == 3

    def test_update_where(self, people_database):
        updated = people_database.update_where(
            "person",
            lambda row: row["name"] == "ann",
            lambda row: {"age": row["age"] + 1},
        )
        assert updated == 1
        ann = next(
            row
            for row in people_database.scan_dicts("person")
            if row["name"] == "ann"
        )
        assert ann["age"] == 35

    def test_update_row_maintains_indexes(self, people_database):
        people_database.create_index("ix_age", "person", ["age"])
        (rid,) = people_database.lookup_key("person", ["age"], [34])
        people_database.update_row("person", rid, [1, "ann", 99, 1])
        assert people_database.lookup_key("person", ["age"], [34]) == []
        assert len(people_database.lookup_key("person", ["age"], [99])) == 1


class TestLookup:
    def test_lookup_without_index_scans(self, people_database):
        rids = people_database.lookup_key("person", ["city_id"], [1])
        assert len(rids) == 2

    def test_lookup_with_index_probes(self, people_database):
        people_database.create_index("ix_city", "person", ["city_id"])
        people_database.counters.reset()
        rids = people_database.lookup_key("person", ["city_id"], [1])
        assert len(rids) == 2
        # An index probe touches far fewer pages than a scan would.
        assert people_database.counters.page_reads <= 3

    def test_lookup_via_composite_prefix(self, people_database):
        people_database.create_index("ix2", "person", ["city_id", "age"])
        rids = people_database.lookup_key("person", ["city_id"], [1])
        assert len(rids) == 2

    def test_fetch_rows(self, people_database):
        rids = people_database.lookup_key("person", ["city_id"], [1])
        rows = people_database.fetch_rows("person", rids)
        assert {row[1] for row in rows} == {"ann", "bob"}


class TestCreateIndex:
    def test_index_backfilled_from_existing_data(self, people_database):
        index = people_database.create_index("ix_name", "person", ["name"])
        assert len(index) == 5

    def test_null_keys_skipped_on_backfill(self, people_database):
        index = people_database.create_index("ix_age", "person", ["age"])
        assert len(index) == 4  # dan has NULL age


class TestChangeEvents:
    def test_insert_event(self, people_database):
        events = []
        people_database.add_observer(events.append)
        people_database.insert("city", [9, "x"])
        assert events == [
            ChangeEvent("insert", "city", None, (9, "x"))
        ]

    def test_delete_event_carries_old_row(self, people_database):
        events = []
        people_database.add_observer(events.append)
        (rid,) = people_database.lookup_key("city", ["id"], [3])
        people_database.delete_row("city", rid)
        assert events[0].kind == "delete"
        assert events[0].old_row == (3, "montreal")

    def test_update_event_carries_both_images(self, people_database):
        events = []
        people_database.add_observer(events.append)
        (rid,) = people_database.lookup_key("city", ["id"], [1])
        people_database.update_row("city", rid, [1, "tdot"])
        assert events[0].old_row == (1, "toronto")
        assert events[0].new_row == (1, "tdot")

    def test_remove_observer(self, people_database):
        events = []
        people_database.add_observer(events.append)
        people_database.remove_observer(events.append)
        people_database.insert("city", [9, "x"])
        assert events == []
