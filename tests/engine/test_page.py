"""Tests for simulated pages and I/O accounting."""

import pytest

from repro.engine.page import PAGE_SIZE, IOCounters, Page, PageManager
from repro.errors import PageOverflowError


class TestPage:
    def test_insert_returns_slots_in_order(self):
        page = Page(0)
        assert page.insert(("a",), 10) == 0
        assert page.insert(("b",), 10) == 1
        assert page.live_rows == 2

    def test_free_space_decreases(self):
        page = Page(0)
        before = page.free_bytes
        page.insert(("a",), 100)
        assert page.free_bytes == before - 100

    def test_overflow_rejected(self):
        page = Page(0)
        with pytest.raises(PageOverflowError):
            page.insert(("x",), PAGE_SIZE)

    def test_page_fills_up(self):
        page = Page(0)
        row_bytes = 1000
        while page.can_fit(row_bytes):
            page.insert(("r",), row_bytes)
        with pytest.raises(PageOverflowError):
            page.insert(("r",), row_bytes)

    def test_delete_tombstones(self):
        page = Page(0)
        slot = page.insert(("a",), 50)
        page.delete(slot)
        assert page.live_rows == 0
        assert page.slots[slot] is None

    def test_tombstone_reused_when_fits(self):
        page = Page(0)
        slot = page.insert(("big",), 100)
        page.delete(slot)
        assert page.insert(("small",), 40) == slot

    def test_tombstone_not_reused_when_too_small(self):
        page = Page(0)
        slot = page.insert(("small",), 40)
        page.delete(slot)
        assert page.insert(("big",), 100) != slot

    def test_update_in_place_when_smaller(self):
        page = Page(0)
        slot = page.insert(("aaaa",), 100)
        assert page.update(slot, ("b",), 50) is True
        assert page.slots[slot] == ("b",)

    def test_update_grows_within_free_space(self):
        page = Page(0)
        slot = page.insert(("a",), 50)
        assert page.update(slot, ("bigger",), 80) is True

    def test_update_fails_when_page_full(self):
        page = Page(0)
        row_bytes = (PAGE_SIZE - 32) // 2
        slot = page.insert(("a",), row_bytes)
        page.insert(("b",), row_bytes)
        assert page.update(slot, ("c",), row_bytes + 100) is False


class TestPageManager:
    def test_allocates_on_demand(self):
        manager = PageManager()
        assert manager.page_count == 0
        manager.page_for_insert(100)
        assert manager.page_count == 1

    def test_reuses_page_with_room(self):
        manager = PageManager()
        first = manager.page_for_insert(100)
        first.insert(("x",), 100)
        second = manager.page_for_insert(100)
        assert second.page_id == first.page_id

    def test_allocates_when_full(self):
        manager = PageManager()
        page = manager.page_for_insert(PAGE_SIZE - 32)
        page.insert(("x",), PAGE_SIZE - 32)
        next_page = manager.page_for_insert(PAGE_SIZE - 32)
        assert next_page.page_id != page.page_id

    def test_read_counts(self):
        counters = IOCounters()
        manager = PageManager(counters)
        manager.allocate()
        manager.read_page(0)
        manager.read_page(0)
        assert counters.page_reads == 2

    def test_counters_snapshot_and_reset(self):
        counters = IOCounters()
        counters.page_reads = 5
        counters.rows_written = 2
        snap = counters.snapshot()
        assert snap["page_reads"] == 5
        counters.reset()
        assert counters.page_reads == 0
