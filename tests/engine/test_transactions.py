"""Tests for transactions and rollback."""

import pytest

from repro.engine.database import ChangeEvent
from repro.engine.page import Page
from repro.engine.transactions import Transaction
from repro.errors import RollbackError, TransactionError


class TestCommitRollback:
    def test_commit_keeps_changes(self, people_database):
        with Transaction(people_database) as txn:
            txn.insert("city", [9, "hamilton"])
        assert people_database.table("city").row_count == 4

    def test_rollback_undoes_insert(self, people_database):
        txn = Transaction(people_database)
        txn.insert("city", [9, "hamilton"])
        txn.rollback()
        assert people_database.table("city").row_count == 3

    def test_rollback_undoes_delete(self, people_database):
        txn = Transaction(people_database)
        (rid,) = people_database.lookup_key("city", ["id"], [2])
        txn.delete("city", rid)
        txn.rollback()
        names = {row["name"] for row in people_database.scan_dicts("city")}
        assert "ottawa" in names

    def test_rollback_undoes_update(self, people_database):
        txn = Transaction(people_database)
        (rid,) = people_database.lookup_key("city", ["id"], [1])
        txn.update("city", rid, [1, "tdot"])
        txn.rollback()
        names = {row["name"] for row in people_database.scan_dicts("city")}
        assert "toronto" in names and "tdot" not in names

    def test_rollback_is_lifo(self, people_database):
        txn = Transaction(people_database)
        rid = txn.insert("city", [9, "a"])
        txn.update("city", rid, [9, "b"])
        txn.delete("city", rid)
        txn.rollback()
        assert people_database.table("city").row_count == 3

    def test_exception_in_context_rolls_back(self, people_database):
        with pytest.raises(RuntimeError):
            with Transaction(people_database) as txn:
                txn.insert("city", [9, "x"])
                raise RuntimeError("boom")
        assert people_database.table("city").row_count == 3


class TestExceptionSafeRollback:
    def test_failing_undo_entry_does_not_abandon_the_rest(
        self, people_database, monkeypatch
    ):
        txn = Transaction(people_database)
        first = txn.insert("city", [8, "first"])
        second = txn.insert("city", [9, "second"])
        # Undo runs newest-first, so `second` is undone first; make exactly
        # that undo fail and prove `first` is still undone afterwards.
        original = people_database.delete_row

        def flaky_delete(table_name, row_id):
            if row_id == second:
                raise RuntimeError("storage fault during undo")
            return original(table_name, row_id)

        monkeypatch.setattr(people_database, "delete_row", flaky_delete)
        with pytest.raises(RollbackError) as info:
            txn.rollback()
        assert len(info.value.failures) == 1
        assert isinstance(info.value.failures[0], RuntimeError)
        # The surviving entries were applied and the txn deactivated.
        ids = {row["id"] for row in people_database.scan_dicts("city")}
        assert 8 not in ids
        assert not txn.is_active
        with pytest.raises(TransactionError):
            txn.rollback()

    def test_all_failures_aggregated(self, people_database, monkeypatch):
        txn = Transaction(people_database)
        txn.insert("city", [8, "a"])
        txn.insert("city", [9, "b"])

        def always_fails(table_name, row_id):
            raise RuntimeError("dead storage")

        monkeypatch.setattr(people_database, "delete_row", always_fails)
        with pytest.raises(RollbackError) as info:
            txn.rollback()
        assert len(info.value.failures) == 2
        assert not txn.is_active

    def test_clean_rollback_raises_nothing(self, people_database):
        txn = Transaction(people_database)
        txn.insert("city", [8, "a"])
        txn.rollback()  # no RollbackError on the happy path
        assert people_database.table("city").row_count == 3


class TestCompensatingEvents:
    """Rollback must publish the exact inverse of every change, newest
    first, so observers (the soft-constraint manager) unwind in lockstep
    with the data."""

    def test_inverse_events_in_strict_reverse_order(self, people_database):
        txn = Transaction(people_database)
        rid = txn.insert("city", [9, "x"])
        rid = txn.update("city", rid, [9, "y"])
        (ottawa,) = people_database.lookup_key("city", ["id"], [2])
        txn.delete("city", ottawa)
        txn.update("city", rid, [9, "z"])

        events = []
        people_database.add_observer(events.append)
        try:
            txn.rollback()
        finally:
            people_database.remove_observer(events.append)

        assert events == [
            ChangeEvent("update", "city", (9, "z"), (9, "y")),
            ChangeEvent("insert", "city", None, (2, "ottawa")),
            ChangeEvent("update", "city", (9, "y"), (9, "x")),
            ChangeEvent("delete", "city", (9, "x"), None),
        ]
        names = {row["name"] for row in people_database.scan_dicts("city")}
        assert names == {"toronto", "ottawa", "montreal"}

    def test_forwarded_update_chain_rolls_back_via_remap(
        self, people_database, monkeypatch
    ):
        # Force every update down the forwarding path (delete +
        # re-insert at a new rid), as a full page would: each undo step
        # then *moves* the row, and older undo entries only find it
        # through the rollback remap.
        monkeypatch.setattr(
            Page, "can_update", lambda self, slot_no, row_bytes: False
        )
        txn = Transaction(people_database)
        rid = txn.insert("city", [9, "a"])
        rid = txn.update("city", rid, [9, "bb"])
        rid = txn.update("city", rid, [9, "ccc"])

        events = []
        people_database.add_observer(events.append)
        try:
            txn.rollback()
        finally:
            people_database.remove_observer(events.append)

        assert events == [
            ChangeEvent("update", "city", (9, "ccc"), (9, "bb")),
            ChangeEvent("update", "city", (9, "bb"), (9, "a")),
            ChangeEvent("delete", "city", (9, "a"), None),
        ]
        # No leaked copy at any of the stale rids.
        assert people_database.table("city").row_count == 3
        ids = {row["id"] for row in people_database.scan_dicts("city")}
        assert 9 not in ids

    def test_interleaved_delete_update_on_one_row(
        self, people_database, monkeypatch
    ):
        monkeypatch.setattr(
            Page, "can_update", lambda self, slot_no, row_bytes: False
        )
        before = sorted(
            (row["id"], row["name"])
            for row in people_database.scan_dicts("city")
        )
        txn = Transaction(people_database)
        (rid,) = people_database.lookup_key("city", ["id"], [3])
        rid = txn.update("city", rid, [3, "mtl"])
        txn.delete("city", rid)
        rid = txn.insert("city", [3, "back"])
        txn.update("city", rid, [3, "again"])

        events = []
        people_database.add_observer(events.append)
        try:
            txn.rollback()
        finally:
            people_database.remove_observer(events.append)

        assert [e.kind for e in events] == [
            "update",  # again -> back
            "delete",  # undo the re-insert
            "insert",  # undo the delete: montreal's mtl image returns
            "update",  # mtl -> montreal
        ]
        after = sorted(
            (row["id"], row["name"])
            for row in people_database.scan_dicts("city")
        )
        assert after == before


class TestStateMachine:
    def test_commit_twice_rejected(self, people_database):
        txn = Transaction(people_database)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_write_after_commit_rejected(self, people_database):
        txn = Transaction(people_database)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.insert("city", [9, "x"])

    def test_rollback_after_commit_rejected(self, people_database):
        txn = Transaction(people_database)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.rollback()
