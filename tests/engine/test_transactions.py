"""Tests for transactions and rollback."""

import pytest

from repro.engine.transactions import Transaction
from repro.errors import TransactionError


class TestCommitRollback:
    def test_commit_keeps_changes(self, people_database):
        with Transaction(people_database) as txn:
            txn.insert("city", [9, "hamilton"])
        assert people_database.table("city").row_count == 4

    def test_rollback_undoes_insert(self, people_database):
        txn = Transaction(people_database)
        txn.insert("city", [9, "hamilton"])
        txn.rollback()
        assert people_database.table("city").row_count == 3

    def test_rollback_undoes_delete(self, people_database):
        txn = Transaction(people_database)
        (rid,) = people_database.lookup_key("city", ["id"], [2])
        txn.delete("city", rid)
        txn.rollback()
        names = {row["name"] for row in people_database.scan_dicts("city")}
        assert "ottawa" in names

    def test_rollback_undoes_update(self, people_database):
        txn = Transaction(people_database)
        (rid,) = people_database.lookup_key("city", ["id"], [1])
        txn.update("city", rid, [1, "tdot"])
        txn.rollback()
        names = {row["name"] for row in people_database.scan_dicts("city")}
        assert "toronto" in names and "tdot" not in names

    def test_rollback_is_lifo(self, people_database):
        txn = Transaction(people_database)
        rid = txn.insert("city", [9, "a"])
        txn.update("city", rid, [9, "b"])
        txn.delete("city", rid)
        txn.rollback()
        assert people_database.table("city").row_count == 3

    def test_exception_in_context_rolls_back(self, people_database):
        with pytest.raises(RuntimeError):
            with Transaction(people_database) as txn:
                txn.insert("city", [9, "x"])
                raise RuntimeError("boom")
        assert people_database.table("city").row_count == 3


class TestStateMachine:
    def test_commit_twice_rejected(self, people_database):
        txn = Transaction(people_database)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_write_after_commit_rejected(self, people_database):
        txn = Transaction(people_database)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.insert("city", [9, "x"])

    def test_rollback_after_commit_rejected(self, people_database):
        txn = Transaction(people_database)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.rollback()
