"""Tests for transactions and rollback."""

import pytest

from repro.engine.transactions import Transaction
from repro.errors import RollbackError, TransactionError


class TestCommitRollback:
    def test_commit_keeps_changes(self, people_database):
        with Transaction(people_database) as txn:
            txn.insert("city", [9, "hamilton"])
        assert people_database.table("city").row_count == 4

    def test_rollback_undoes_insert(self, people_database):
        txn = Transaction(people_database)
        txn.insert("city", [9, "hamilton"])
        txn.rollback()
        assert people_database.table("city").row_count == 3

    def test_rollback_undoes_delete(self, people_database):
        txn = Transaction(people_database)
        (rid,) = people_database.lookup_key("city", ["id"], [2])
        txn.delete("city", rid)
        txn.rollback()
        names = {row["name"] for row in people_database.scan_dicts("city")}
        assert "ottawa" in names

    def test_rollback_undoes_update(self, people_database):
        txn = Transaction(people_database)
        (rid,) = people_database.lookup_key("city", ["id"], [1])
        txn.update("city", rid, [1, "tdot"])
        txn.rollback()
        names = {row["name"] for row in people_database.scan_dicts("city")}
        assert "toronto" in names and "tdot" not in names

    def test_rollback_is_lifo(self, people_database):
        txn = Transaction(people_database)
        rid = txn.insert("city", [9, "a"])
        txn.update("city", rid, [9, "b"])
        txn.delete("city", rid)
        txn.rollback()
        assert people_database.table("city").row_count == 3

    def test_exception_in_context_rolls_back(self, people_database):
        with pytest.raises(RuntimeError):
            with Transaction(people_database) as txn:
                txn.insert("city", [9, "x"])
                raise RuntimeError("boom")
        assert people_database.table("city").row_count == 3


class TestExceptionSafeRollback:
    def test_failing_undo_entry_does_not_abandon_the_rest(
        self, people_database, monkeypatch
    ):
        txn = Transaction(people_database)
        first = txn.insert("city", [8, "first"])
        second = txn.insert("city", [9, "second"])
        # Undo runs newest-first, so `second` is undone first; make exactly
        # that undo fail and prove `first` is still undone afterwards.
        original = people_database.delete_row

        def flaky_delete(table_name, row_id):
            if row_id == second:
                raise RuntimeError("storage fault during undo")
            return original(table_name, row_id)

        monkeypatch.setattr(people_database, "delete_row", flaky_delete)
        with pytest.raises(RollbackError) as info:
            txn.rollback()
        assert len(info.value.failures) == 1
        assert isinstance(info.value.failures[0], RuntimeError)
        # The surviving entries were applied and the txn deactivated.
        ids = {row["id"] for row in people_database.scan_dicts("city")}
        assert 8 not in ids
        assert not txn.is_active
        with pytest.raises(TransactionError):
            txn.rollback()

    def test_all_failures_aggregated(self, people_database, monkeypatch):
        txn = Transaction(people_database)
        txn.insert("city", [8, "a"])
        txn.insert("city", [9, "b"])

        def always_fails(table_name, row_id):
            raise RuntimeError("dead storage")

        monkeypatch.setattr(people_database, "delete_row", always_fails)
        with pytest.raises(RollbackError) as info:
            txn.rollback()
        assert len(info.value.failures) == 2
        assert not txn.is_active

    def test_clean_rollback_raises_nothing(self, people_database):
        txn = Transaction(people_database)
        txn.insert("city", [8, "a"])
        txn.rollback()  # no RollbackError on the happy path
        assert people_database.table("city").row_count == 3


class TestStateMachine:
    def test_commit_twice_rejected(self, people_database):
        txn = Transaction(people_database)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_write_after_commit_rejected(self, people_database):
        txn = Transaction(people_database)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.insert("city", [9, "x"])

    def test_rollback_after_commit_rejected(self, people_database):
        txn = Transaction(people_database)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.rollback()
