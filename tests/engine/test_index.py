"""Tests for B-tree indexes."""

import pytest

from repro.engine.index import ENTRIES_PER_LEAF, BTreeIndex
from repro.engine.row import RowId
from repro.engine.schema import Column, TableSchema
from repro.engine.types import INTEGER, VARCHAR
from repro.errors import StorageError


@pytest.fixture
def schema() -> TableSchema:
    return TableSchema(
        "t",
        [Column("id", INTEGER), Column("k", INTEGER), Column("s", VARCHAR(10))],
    )


@pytest.fixture
def index(schema) -> BTreeIndex:
    return BTreeIndex("ix", schema, ["k"])


def rid(n: int) -> RowId:
    return RowId(n // 10, n % 10)


class TestMaintenance:
    def test_insert_and_search(self, index):
        index.insert((1, 50, "a"), rid(1))
        index.insert((2, 30, "b"), rid(2))
        assert index.search([50]) == [rid(1)]
        assert index.search([99]) == []

    def test_duplicates_allowed_when_not_unique(self, index):
        index.insert((1, 5, "a"), rid(1))
        index.insert((2, 5, "b"), rid(2))
        assert set(index.search([5])) == {rid(1), rid(2)}

    def test_unique_rejects_duplicates(self, schema):
        unique = BTreeIndex("u", schema, ["k"], unique=True)
        unique.insert((1, 5, "a"), rid(1))
        with pytest.raises(StorageError):
            unique.insert((2, 5, "b"), rid(2))

    def test_null_keys_not_indexed(self, index):
        index.insert((1, None, "a"), rid(1))
        assert len(index) == 0

    def test_delete(self, index):
        index.insert((1, 5, "a"), rid(1))
        index.delete((1, 5, "a"), rid(1))
        assert index.search([5]) == []

    def test_delete_specific_rid_among_duplicates(self, index):
        index.insert((1, 5, "a"), rid(1))
        index.insert((2, 5, "b"), rid(2))
        index.delete((1, 5, "a"), rid(1))
        assert index.search([5]) == [rid(2)]

    def test_delete_missing_raises(self, index):
        with pytest.raises(StorageError):
            index.delete((1, 5, "a"), rid(1))

    def test_update_moves_entry(self, index):
        index.insert((1, 5, "a"), rid(1))
        index.update((1, 5, "a"), rid(1), (1, 9, "a"), rid(1))
        assert index.search([5]) == []
        assert index.search([9]) == [rid(1)]

    def test_rebuild_bulk_load(self, index):
        entries = [((n,), rid(n)) for n in range(100, 0, -1)]
        index.rebuild(entries)
        assert len(index) == 100
        assert index.min_key() == (1,)
        assert index.max_key() == (100,)

    def test_rebuild_unique_detects_duplicates(self, schema):
        unique = BTreeIndex("u", schema, ["k"], unique=True)
        with pytest.raises(StorageError):
            unique.rebuild([((1,), rid(1)), ((1,), rid(2))])


class TestRangeScan:
    @pytest.fixture
    def loaded(self, index):
        for n in range(100):
            index.insert((n, n, "s"), rid(n))
        return index

    def test_closed_range(self, loaded):
        keys = [key[0] for key, _ in loaded.range_scan((10,), (15,))]
        assert keys == [10, 11, 12, 13, 14, 15]

    def test_open_bounds(self, loaded):
        keys = [
            key[0]
            for key, _ in loaded.range_scan(
                (10,), (15,), low_inclusive=False, high_inclusive=False
            )
        ]
        assert keys == [11, 12, 13, 14]

    def test_unbounded_low(self, loaded):
        keys = [key[0] for key, _ in loaded.range_scan(None, (3,))]
        assert keys == [0, 1, 2, 3]

    def test_unbounded_high(self, loaded):
        keys = [key[0] for key, _ in loaded.range_scan((97,), None)]
        assert keys == [97, 98, 99]

    def test_empty_range(self, loaded):
        assert list(loaded.range_scan((50,), (40,))) == []


class TestCompositeKeys:
    def test_prefix_search(self, schema):
        index = BTreeIndex("c", schema, ["k", "id"])
        index.insert((1, 5, "a"), rid(1))
        index.insert((2, 5, "b"), rid(2))
        index.insert((3, 6, "c"), rid(3))
        found = [r for _, r in index.range_scan((5,), (5,))]
        assert set(found) == {rid(1), rid(2)}

    def test_full_key_search(self, schema):
        index = BTreeIndex("c", schema, ["k", "id"])
        index.insert((1, 5, "a"), rid(1))
        index.insert((2, 5, "b"), rid(2))
        assert index.search([5, 2]) == [rid(2)]


class TestIOAccounting:
    def test_probe_charges_height(self, index):
        index.insert((1, 5, "a"), rid(1))
        before = index.counters.page_reads
        index.search([5])
        assert index.counters.page_reads == before + index.height

    def test_large_range_charges_extra_leaves(self, index):
        for n in range(ENTRIES_PER_LEAF * 3):
            index.insert((n, n, "s"), rid(n % 1000))
        before = index.counters.page_reads
        list(index.range_scan(None, None))
        charged = index.counters.page_reads - before
        assert charged >= index.leaf_pages - 1

    def test_geometry(self, index):
        assert index.leaf_pages == 1
        assert index.height == 1
        for n in range(ENTRIES_PER_LEAF + 1):
            index.insert((n, n, "s"), rid(n % 1000))
        assert index.leaf_pages == 2
        assert index.height == 2
