"""Tests for heap tables."""

import pytest

from repro.engine.page import IOCounters
from repro.engine.schema import Column, TableSchema
from repro.engine.table import HeapTable
from repro.engine.types import INTEGER, VARCHAR
from repro.errors import StorageError


@pytest.fixture
def table() -> HeapTable:
    schema = TableSchema(
        "t", [Column("id", INTEGER), Column("body", VARCHAR(3000))]
    )
    return HeapTable(schema)


class TestInsertFetch:
    def test_insert_and_fetch(self, table):
        row_id = table.insert([1, "hello"])
        assert table.fetch(row_id) == (1, "hello")

    def test_row_count_tracks_live_rows(self, table):
        ids = table.insert_many([[n, "x"] for n in range(10)])
        assert table.row_count == 10
        table.delete(ids[0])
        assert table.row_count == 9

    def test_rows_span_pages(self, table):
        # ~1KB rows: four per page, so 20 rows need several pages.
        table.insert_many([[n, "x" * 1000] for n in range(20)])
        assert table.page_count >= 5

    def test_fetch_deleted_raises(self, table):
        row_id = table.insert([1, "x"])
        table.delete(row_id)
        with pytest.raises(StorageError):
            table.fetch(row_id)

    def test_fetch_if_live_returns_none_for_deleted(self, table):
        row_id = table.insert([1, "x"])
        table.delete(row_id)
        assert table.fetch_if_live(row_id) is None

    def test_validation_applied_on_insert(self, table):
        from repro.errors import TypeMismatchError

        with pytest.raises(TypeMismatchError):
            table.insert(["not-an-int", "x"])


class TestDeleteUpdate:
    def test_delete_returns_old_image(self, table):
        row_id = table.insert([1, "old"])
        assert table.delete(row_id) == (1, "old")

    def test_double_delete_raises(self, table):
        row_id = table.insert([1, "x"])
        table.delete(row_id)
        with pytest.raises(StorageError):
            table.delete(row_id)

    def test_update_in_place(self, table):
        row_id = table.insert([1, "aaaa"])
        new_id, old = table.update(row_id, [1, "bb"])
        assert new_id == row_id
        assert old == (1, "aaaa")
        assert table.fetch(new_id) == (1, "bb")

    def test_update_moves_row_when_page_full(self, table):
        # Fill the first page, then grow the first row so it must move.
        ids = table.insert_many([[n, "x" * 1000] for n in range(4)])
        new_id, _ = table.update(ids[0], [0, "y" * 2500])
        assert new_id != ids[0]
        assert table.fetch(new_id) == (0, "y" * 2500)
        assert table.row_count == 4

    def test_deleted_space_reused(self, table):
        ids = table.insert_many([[n, "x" * 1000] for n in range(4)])
        pages_before = table.page_count
        table.delete(ids[0])
        table.insert([99, "z" * 900])
        assert table.page_count == pages_before


class TestScan:
    def test_scan_yields_live_rows_only(self, table):
        ids = table.insert_many([[n, "x"] for n in range(5)])
        table.delete(ids[2])
        values = [row[0] for row in table.scan_rows()]
        assert values == [0, 1, 3, 4]

    def test_scan_counts_pages_once_each(self, table):
        counters = table.pages.counters
        table.insert_many([[n, "x" * 1000] for n in range(8)])
        counters.reset()
        list(table.scan_rows())
        assert counters.page_reads == table.page_count

    def test_truncate(self, table):
        table.insert_many([[n, "x"] for n in range(5)])
        table.truncate()
        assert table.row_count == 0
        assert list(table.scan_rows()) == []


class TestSharedCounters:
    def test_two_tables_share_counters(self):
        counters = IOCounters()
        schema_a = TableSchema("a", [Column("x", INTEGER)])
        schema_b = TableSchema("b", [Column("y", INTEGER)])
        table_a = HeapTable(schema_a, counters)
        table_b = HeapTable(schema_b, counters)
        table_a.insert([1])
        table_b.insert([2])
        assert counters.rows_written == 2
