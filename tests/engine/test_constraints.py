"""Tests for integrity constraints and enforcement modes."""

import pytest

from repro.engine.constraints import (
    CheckConstraint,
    ConstraintMode,
    ForeignKeyConstraint,
    NotNullConstraint,
    PrimaryKeyConstraint,
    UniqueConstraint,
)
from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import INTEGER, VARCHAR
from repro.errors import ConstraintViolation


@pytest.fixture
def database() -> Database:
    db = Database()
    # The id column is structurally nullable so the PRIMARY KEY constraint
    # (not row validation) is what rejects NULL keys.
    db.create_table(
        TableSchema(
            "parent",
            [Column("id", INTEGER), Column("name", VARCHAR(10))],
        ),
        [PrimaryKeyConstraint("parent_pk", "parent", ["id"])],
    )
    db.create_table(
        TableSchema(
            "child",
            [
                Column("id", INTEGER, nullable=False),
                Column("parent_id", INTEGER),
            ],
        ),
        [
            ForeignKeyConstraint(
                "child_fk", "child", ["parent_id"], "parent", ["id"]
            )
        ],
    )
    db.insert("parent", [1, "a"])
    db.insert("parent", [2, "b"])
    return db


class TestPrimaryKey:
    def test_duplicate_rejected(self, database):
        with pytest.raises(ConstraintViolation):
            database.insert("parent", [1, "dup"])

    def test_null_key_rejected(self, database):
        with pytest.raises(ConstraintViolation):
            database.insert("parent", [None, "x"])

    def test_backing_index_created(self, database):
        constraint = database.catalog.constraint("parent", "parent_pk")
        assert constraint.backing_index_name is not None
        index = database.catalog.index(constraint.backing_index_name)
        assert index.unique

    def test_update_to_duplicate_rejected(self, database):
        (rid,) = database.lookup_key("parent", ["id"], [2])
        with pytest.raises(ConstraintViolation):
            database.update_row("parent", rid, [1, "b"])

    def test_update_same_key_allowed(self, database):
        (rid,) = database.lookup_key("parent", ["id"], [2])
        database.update_row("parent", rid, [2, "b2"])


class TestUnique:
    def test_nulls_exempt(self):
        db = Database()
        db.create_table(
            TableSchema("t", [Column("u", INTEGER)]),
            [UniqueConstraint("t_u", "t", ["u"])],
        )
        db.insert("t", [None])
        db.insert("t", [None])  # multiple NULLs allowed
        db.insert("t", [1])
        with pytest.raises(ConstraintViolation):
            db.insert("t", [1])

    def test_verify_table_finds_duplicates(self):
        db = Database()
        db.create_table(TableSchema("t", [Column("u", INTEGER)]))
        db.insert_many("t", [[1], [2], [1]])
        constraint = UniqueConstraint("late", "t", ["u"])
        assert len(constraint.verify_table(db)) == 1


class TestForeignKey:
    def test_orphan_insert_rejected(self, database):
        with pytest.raises(ConstraintViolation):
            database.insert("child", [1, 99])

    def test_valid_insert(self, database):
        database.insert("child", [1, 1])

    def test_null_fk_allowed(self, database):
        database.insert("child", [1, None])

    def test_parent_delete_restricted(self, database):
        database.insert("child", [1, 1])
        (rid,) = database.lookup_key("parent", ["id"], [1])
        with pytest.raises(ConstraintViolation):
            database.delete_row("parent", rid)

    def test_childless_parent_deletable(self, database):
        (rid,) = database.lookup_key("parent", ["id"], [2])
        database.delete_row("parent", rid)

    def test_parent_key_update_restricted(self, database):
        database.insert("child", [1, 1])
        (rid,) = database.lookup_key("parent", ["id"], [1])
        with pytest.raises(ConstraintViolation):
            database.update_row("parent", rid, [7, "a"])


class TestInformationalMode:
    def test_informational_fk_not_checked(self, database):
        database.catalog.drop_constraint("child", "child_fk")
        database.catalog.add_constraint(
            ForeignKeyConstraint(
                "child_fk2",
                "child",
                ["parent_id"],
                "parent",
                ["id"],
                mode=ConstraintMode.INFORMATIONAL,
            )
        )
        database.insert("child", [1, 999])  # orphan accepted: trusted

    def test_informational_unique_gets_no_index(self):
        db = Database()
        db.create_table(
            TableSchema("t", [Column("u", INTEGER)]),
            [
                UniqueConstraint(
                    "t_u", "t", ["u"], mode=ConstraintMode.INFORMATIONAL
                )
            ],
        )
        db.insert("t", [1])
        db.insert("t", [1])  # trusted, not checked
        assert db.catalog.indexes_on("t") == []

    def test_informational_flag(self):
        constraint = NotNullConstraint(
            "nn", "t", "c", mode=ConstraintMode.INFORMATIONAL
        )
        assert constraint.is_informational


class TestCheckConstraint:
    def make_db(self, mode=ConstraintMode.ENFORCED):
        db = Database()
        db.create_table(
            TableSchema("t", [Column("a", INTEGER), Column("b", INTEGER)]),
            [
                CheckConstraint(
                    "positive",
                    "t",
                    predicate=lambda row: None
                    if row["a"] is None
                    else row["a"] > 0,
                    sql_text="a > 0",
                    mode=mode,
                )
            ],
        )
        return db

    def test_violation_rejected(self):
        db = self.make_db()
        with pytest.raises(ConstraintViolation):
            db.insert("t", [-1, 0])

    def test_satisfying_row_accepted(self):
        db = self.make_db()
        db.insert("t", [5, 0])

    def test_unknown_satisfies(self):
        db = self.make_db()
        db.insert("t", [None, 0])  # NULL -> UNKNOWN -> passes

    def test_informational_check_skipped(self):
        db = self.make_db(mode=ConstraintMode.INFORMATIONAL)
        db.insert("t", [-1, 0])

    def test_verify_table(self):
        db = self.make_db(mode=ConstraintMode.INFORMATIONAL)
        db.insert_many("t", [[-1, 0], [2, 0], [-3, 0]])
        constraint = db.catalog.constraint("t", "positive")
        assert len(constraint.verify_table(db)) == 2


class TestNotNull:
    def test_enforced(self):
        db = Database()
        db.create_table(
            TableSchema("t", [Column("a", INTEGER)]),
            [NotNullConstraint("t_a_nn", "t", "a")],
        )
        with pytest.raises(ConstraintViolation):
            db.insert("t", [None])
        db.insert("t", [1])
