"""Tests for SQL types and value validation."""

import datetime

import pytest

from repro.engine.types import (
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    SqlType,
    VARCHAR,
    date_to_days,
    days_to_date,
    parse_date_literal,
    type_from_name,
)
from repro.errors import SchemaError, TypeMismatchError


class TestTypeIdentity:
    def test_singletons_equal_fresh_instances(self):
        assert INTEGER == SqlType(SqlType.INTEGER_KIND)
        assert VARCHAR(10) == SqlType(SqlType.VARCHAR_KIND, 10)

    def test_varchar_length_distinguishes(self):
        assert VARCHAR(10) != VARCHAR(20)

    def test_types_are_hashable(self):
        assert len({INTEGER, DOUBLE, BOOLEAN, DATE, VARCHAR(5)}) == 5

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError):
            SqlType("BLOB")

    def test_varchar_requires_length(self):
        with pytest.raises(SchemaError):
            SqlType(SqlType.VARCHAR_KIND)

    def test_non_varchar_rejects_length(self):
        with pytest.raises(SchemaError):
            SqlType(SqlType.INTEGER_KIND, 5)

    def test_repr(self):
        assert repr(VARCHAR(12)) == "VARCHAR(12)"
        assert repr(INTEGER) == "INTEGER"


class TestValidation:
    def test_null_validates_for_every_type(self):
        for sql_type in (INTEGER, DOUBLE, BOOLEAN, DATE, VARCHAR(3)):
            assert sql_type.validate(None) is None

    def test_integer_accepts_int(self):
        assert INTEGER.validate(42) == 42

    def test_integer_accepts_integral_float(self):
        assert INTEGER.validate(42.0) == 42

    def test_integer_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.validate(42.5)

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.validate(True)

    def test_double_coerces_int(self):
        value = DOUBLE.validate(7)
        assert value == 7.0
        assert isinstance(value, float)

    def test_double_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            DOUBLE.validate("x")

    def test_varchar_enforces_length(self):
        assert VARCHAR(3).validate("abc") == "abc"
        with pytest.raises(TypeMismatchError):
            VARCHAR(3).validate("abcd")

    def test_varchar_rejects_numbers(self):
        with pytest.raises(TypeMismatchError):
            VARCHAR(10).validate(5)

    def test_boolean(self):
        assert BOOLEAN.validate(True) is True
        with pytest.raises(TypeMismatchError):
            BOOLEAN.validate(1)

    def test_date_accepts_day_number(self):
        assert DATE.validate(10957) == 10957

    def test_date_accepts_python_date(self):
        assert DATE.validate(datetime.date(2000, 1, 1)) == 10957

    def test_date_accepts_iso_string(self):
        assert DATE.validate("2000-01-01") == 10957

    def test_date_rejects_garbage_string(self):
        with pytest.raises(TypeMismatchError):
            DATE.validate("not-a-date")


class TestDateConversion:
    def test_round_trip(self):
        day = date_to_days(datetime.date(2024, 2, 29))
        assert days_to_date(day) == datetime.date(2024, 2, 29)

    def test_epoch_is_zero(self):
        assert date_to_days(datetime.date(1970, 1, 1)) == 0

    def test_parse_literal(self):
        assert parse_date_literal("1970-01-02") == 1

    def test_parse_literal_rejects_bad_format(self):
        with pytest.raises(TypeMismatchError):
            parse_date_literal("01/02/1970")


class TestStorageSize:
    def test_null_costs_one_byte(self):
        assert INTEGER.storage_size(None) == 1

    def test_integer_width(self):
        assert INTEGER.storage_size(5) == 5

    def test_double_width(self):
        assert DOUBLE.storage_size(5.0) == 9

    def test_varchar_width_depends_on_value(self):
        assert VARCHAR(100).storage_size("abc") == 1 + 2 + 3


class TestTypeNames:
    def test_synonyms(self):
        assert type_from_name("int") == INTEGER
        assert type_from_name("BIGINT") == INTEGER
        assert type_from_name("float") == DOUBLE
        assert type_from_name("bool") == BOOLEAN
        assert type_from_name("date") == DATE

    def test_varchar_default_length(self):
        assert type_from_name("varchar") == VARCHAR(255)
        assert type_from_name("char", 7) == VARCHAR(7)

    def test_unknown_name(self):
        with pytest.raises(SchemaError):
            type_from_name("geometry")

    def test_numeric_property(self):
        assert INTEGER.is_numeric and DOUBLE.is_numeric and DATE.is_numeric
        assert not VARCHAR(5).is_numeric and not BOOLEAN.is_numeric
