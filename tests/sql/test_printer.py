"""Tests for the SQL printer, including parse/print round-trips."""

import pytest

from repro.sql.parser import parse_expression, parse_statement
from repro.sql.printer import sql_of

ROUND_TRIP_STATEMENTS = [
    "SELECT * FROM t",
    "SELECT a, b AS x FROM t WHERE a > 5 AND b <= 3",
    "SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 3",
    "SELECT t.a, u.b FROM t INNER JOIN u ON t.id = u.id",
    "SELECT a FROM t CROSS JOIN u",
    "SELECT a, count(*) AS n FROM t GROUP BY a HAVING count(*) > 1",
    "(SELECT a FROM t) UNION ALL (SELECT a FROM u)",
    "SELECT a FROM t WHERE b BETWEEN 1 AND 10",
    "SELECT a FROM t WHERE b IN (1, 2, 3) AND c IS NOT NULL",
    "SELECT a FROM t WHERE name LIKE 'x%'",
    "SELECT a FROM t WHERE d = DATE '1999-12-15'",
    "CREATE TABLE t (a INT NOT NULL, b VARCHAR(10), CHECK (a > 0))",
    "CREATE UNIQUE INDEX ix ON t (a, b)",
    "CREATE SUMMARY TABLE s AS (SELECT * FROM t WHERE a > 5)",
    "INSERT INTO t (a, b) VALUES (1, 'x''y'), (2, NULL)",
    "DELETE FROM t WHERE a = 1",
    "UPDATE t SET a = a + 1 WHERE b < 5",
    "DROP TABLE t",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_STATEMENTS)
def test_statement_round_trip(sql):
    """parse(print(parse(sql))) must equal parse(sql)."""
    first = parse_statement(sql)
    printed = sql_of(first)
    second = parse_statement(printed)
    assert first == second, printed


ROUND_TRIP_EXPRESSIONS = [
    "a + b * c",
    "(a + b) * c",
    "a - b - c",
    "NOT (a = 1 AND b = 2)",
    "a BETWEEN b + 1 AND b + 10",
    "a NOT IN (1, 2)",
    "-a",
    "abs(a - b) <= 5",
    "a = 1 OR b = 2 AND c = 3",
    "(a = 1 OR b = 2) AND c = 3",
]


@pytest.mark.parametrize("text", ROUND_TRIP_EXPRESSIONS)
def test_expression_round_trip(text):
    first = parse_expression(text)
    second = parse_expression(sql_of(first))
    assert first == second, sql_of(first)


class TestRendering:
    def test_date_literal_rendering(self):
        expression = parse_expression("DATE '2001-05-21'")
        assert sql_of(expression) == "DATE '2001-05-21'"

    def test_string_escaping(self):
        expression = parse_expression("name = 'it''s'")
        assert "''" in sql_of(expression)

    def test_parentheses_only_where_needed(self):
        expression = parse_expression("(a + b) * c")
        assert sql_of(expression) == "(a + b) * c"
        expression = parse_expression("a + b * c")
        assert sql_of(expression) == "a + b * c"

    def test_inline_pk_not_duplicated(self):
        statement = parse_statement("CREATE TABLE t (a INT PRIMARY KEY)")
        printed = sql_of(statement)
        assert printed.count("PRIMARY KEY") == 1

    def test_not_enforced_suffix(self):
        statement = parse_statement(
            "CREATE TABLE t (a INT, CONSTRAINT fk FOREIGN KEY (a) "
            "REFERENCES p (x) NOT ENFORCED)"
        )
        assert "NOT ENFORCED" in sql_of(statement)
