"""Tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse_expression, parse_statement


class TestSelectBasics:
    def test_select_star(self):
        statement = parse_statement("SELECT * FROM t")
        assert isinstance(statement, ast.SelectStatement)
        assert statement.select_items[0].star
        assert statement.from_clause == [ast.TableRef("t")]

    def test_qualified_star(self):
        statement = parse_statement("SELECT t.* FROM t")
        item = statement.select_items[0]
        assert item.star and item.star_table == "t"

    def test_aliases(self):
        statement = parse_statement("SELECT a AS x, b y FROM t AS u")
        assert statement.select_items[0].alias == "x"
        assert statement.select_items[1].alias == "y"
        assert statement.from_clause[0].alias == "u"

    def test_where(self):
        statement = parse_statement("SELECT a FROM t WHERE a > 5")
        assert isinstance(statement.where, ast.BinaryOp)
        assert statement.where.op == ">"

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_order_by_and_limit(self):
        statement = parse_statement(
            "SELECT a FROM t ORDER BY a DESC, b LIMIT 10"
        )
        assert statement.order_by[0].ascending is False
        assert statement.order_by[1].ascending is True
        assert statement.limit == 10

    def test_group_by_having(self):
        statement = parse_statement(
            "SELECT a, count(*) AS n FROM t GROUP BY a HAVING count(*) > 2"
        )
        assert len(statement.group_by) == 1
        assert isinstance(statement.having, ast.BinaryOp)

    def test_missing_from_allows_parse_error_later(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT FROM t")


class TestJoins:
    def test_comma_join(self):
        statement = parse_statement("SELECT * FROM a, b WHERE a.x = b.y")
        assert len(statement.from_clause) == 2

    def test_inner_join_on(self):
        statement = parse_statement(
            "SELECT * FROM a INNER JOIN b ON a.x = b.y"
        )
        join = statement.from_clause[0]
        assert isinstance(join, ast.Join)
        assert join.kind == "inner"
        assert isinstance(join.condition, ast.BinaryOp)

    def test_bare_join_means_inner(self):
        join = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.y"
        ).from_clause[0]
        assert join.kind == "inner"

    def test_cross_join(self):
        join = parse_statement("SELECT * FROM a CROSS JOIN b").from_clause[0]
        assert join.kind == "cross" and join.condition is None

    def test_left_join_parses(self):
        join = parse_statement(
            "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y"
        ).from_clause[0]
        assert join.kind == "left"

    def test_chained_joins(self):
        join = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y"
        ).from_clause[0]
        assert isinstance(join.left, ast.Join)


class TestUnionAll:
    def test_two_branches(self):
        statement = parse_statement(
            "SELECT a FROM t UNION ALL SELECT a FROM u"
        )
        assert isinstance(statement, ast.UnionAll)
        assert len(statement.branches) == 2

    def test_parenthesized_branches(self):
        statement = parse_statement(
            "(SELECT a FROM t) UNION ALL (SELECT a FROM u) "
            "UNION ALL (SELECT a FROM v)"
        )
        assert len(statement.branches) == 3

    def test_union_requires_all(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT a FROM t UNION SELECT a FROM u")


class TestExpressions:
    def test_precedence_arithmetic(self):
        expression = parse_expression("1 + 2 * 3")
        assert expression.op == "+"
        assert expression.right.op == "*"

    def test_precedence_logic(self):
        expression = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expression.op == "or"
        assert expression.right.op == "and"

    def test_parentheses_override(self):
        expression = parse_expression("(1 + 2) * 3")
        assert expression.op == "*"
        assert expression.left.op == "+"

    def test_not(self):
        expression = parse_expression("NOT a = 1")
        assert isinstance(expression, ast.UnaryOp) and expression.op == "not"

    def test_between(self):
        expression = parse_expression("a BETWEEN 1 AND 10")
        assert isinstance(expression, ast.BetweenExpr)
        assert not expression.negated

    def test_not_between(self):
        expression = parse_expression("a NOT BETWEEN 1 AND 10")
        assert expression.negated

    def test_between_binds_tighter_than_and(self):
        expression = parse_expression("a BETWEEN 1 AND 10 AND b = 2")
        assert expression.op == "and"
        assert isinstance(expression.left, ast.BetweenExpr)

    def test_in_list(self):
        expression = parse_expression("a IN (1, 2, 3)")
        assert isinstance(expression, ast.InExpr)
        assert len(expression.items) == 3

    def test_is_null_variants(self):
        assert not parse_expression("a IS NULL").negated
        assert parse_expression("a IS NOT NULL").negated

    def test_like(self):
        expression = parse_expression("name LIKE 'a%'")
        assert expression.op == "like"

    def test_date_literal(self):
        expression = parse_expression("DATE '2000-01-01'")
        assert isinstance(expression, ast.Literal)
        assert expression.is_date and expression.value == 10957

    def test_date_column_not_literal(self):
        expression = parse_expression("date > 5")
        assert isinstance(expression.left, ast.ColumnRef)
        assert expression.left.column == "date"

    def test_unary_minus(self):
        expression = parse_expression("-a + 3")
        assert expression.op == "+"
        assert isinstance(expression.left, ast.UnaryOp)

    def test_function_call(self):
        expression = parse_expression("abs(a - b)")
        assert isinstance(expression, ast.FunctionCall)
        assert expression.name == "abs"

    def test_count_star(self):
        expression = parse_expression("count(*)")
        assert expression.star

    def test_count_distinct(self):
        expression = parse_expression("count(DISTINCT a)")
        assert expression.distinct

    def test_qualified_column(self):
        expression = parse_expression("t.a")
        assert expression == ast.ColumnRef("a", "t")

    def test_boolean_literals(self):
        assert parse_expression("TRUE").value is True
        assert parse_expression("NULL").value is None


class TestDDL:
    def test_create_table_columns(self):
        statement = parse_statement(
            "CREATE TABLE t (a INT NOT NULL, b VARCHAR(10), c DOUBLE)"
        )
        assert isinstance(statement, ast.CreateTable)
        assert statement.columns[0].not_null
        assert statement.columns[1].length == 10

    def test_inline_primary_key(self):
        statement = parse_statement("CREATE TABLE t (a INT PRIMARY KEY)")
        assert statement.columns[0].primary_key
        assert any(
            isinstance(c, ast.PrimaryKeyDef) for c in statement.constraints
        )

    def test_table_level_constraints(self):
        statement = parse_statement(
            "CREATE TABLE t (a INT, b INT, "
            "CONSTRAINT pk PRIMARY KEY (a), UNIQUE (b), "
            "CONSTRAINT fk FOREIGN KEY (b) REFERENCES p (x), "
            "CHECK (a > 0))"
        )
        kinds = [type(c).__name__ for c in statement.constraints]
        assert kinds == [
            "PrimaryKeyDef", "UniqueDef", "ForeignKeyDef", "CheckDef",
        ]
        assert statement.constraints[0].name == "pk"

    def test_not_enforced(self):
        statement = parse_statement(
            "CREATE TABLE t (a INT, "
            "CONSTRAINT fk FOREIGN KEY (a) REFERENCES p (x) NOT ENFORCED)"
        )
        assert statement.constraints[0].enforced is False

    def test_inline_references(self):
        statement = parse_statement(
            "CREATE TABLE t (a INT REFERENCES p (x))"
        )
        fk = statement.constraints[0]
        assert isinstance(fk, ast.ForeignKeyDef)
        assert fk.parent_table == "p" and fk.parent_columns == ["x"]

    def test_create_index(self):
        statement = parse_statement("CREATE UNIQUE INDEX ix ON t (a, b)")
        assert statement.unique and statement.columns == ["a", "b"]

    def test_create_summary_table(self):
        statement = parse_statement(
            "CREATE SUMMARY TABLE late AS "
            "(SELECT * FROM purchase WHERE ship_date > order_date + 21)"
        )
        assert isinstance(statement, ast.CreateSummaryTable)
        assert statement.select.from_clause[0].name == "purchase"

    def test_drop_table(self):
        assert parse_statement("DROP TABLE t").name == "t"


class TestDML:
    def test_insert_multi_row(self):
        statement = parse_statement(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"
        )
        assert statement.columns == ["a", "b"]
        assert len(statement.rows) == 2

    def test_insert_without_columns(self):
        statement = parse_statement("INSERT INTO t VALUES (1, 2)")
        assert statement.columns == []

    def test_delete(self):
        statement = parse_statement("DELETE FROM t WHERE a = 1")
        assert statement.where is not None

    def test_delete_all(self):
        assert parse_statement("DELETE FROM t").where is None

    def test_update(self):
        statement = parse_statement(
            "UPDATE t SET a = a + 1, b = 'x' WHERE a < 5"
        )
        assert statement.assignments[0][0] == "a"
        assert len(statement.assignments) == 2


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT a FROM t where x = 1 garbage garbage")

    def test_error_mentions_position(self):
        with pytest.raises(ParseError) as info:
            parse_statement("SELECT FROM")
        assert "near" in str(info.value)

    def test_semicolon_allowed(self):
        parse_statement("SELECT a FROM t;")
