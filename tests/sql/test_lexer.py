"""Tests for the SQL lexer."""

import pytest

from repro.errors import LexError
from repro.sql.lexer import tokenize
from repro.sql.tokens import (
    EOF,
    FLOAT_LIT,
    IDENT,
    INTEGER_LIT,
    KEYWORD,
    OPERATOR,
    PUNCT,
    STRING_LIT,
)


def kinds(sql):
    return [token.kind for token in tokenize(sql)]


def values(sql):
    return [token.value for token in tokenize(sql)[:-1]]


class TestBasics:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind == EOF

    def test_keywords_case_insensitive(self):
        assert values("SELECT Select select") == ["select"] * 3
        assert kinds("select")[0] == KEYWORD

    def test_identifiers_lowercased(self):
        tokens = tokenize("MyTable")
        assert tokens[0].kind == IDENT
        assert tokens[0].value == "mytable"
        assert tokens[0].text == "MyTable"

    def test_underscore_identifiers(self):
        assert tokenize("ship_date")[0].value == "ship_date"

    def test_delimited_identifier(self):
        tokens = tokenize('"Weird Name"')
        assert tokens[0].kind == IDENT
        assert tokens[0].value == "weird name"

    def test_unterminated_delimited_identifier(self):
        with pytest.raises(LexError):
            tokenize('"oops')


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.kind == INTEGER_LIT and token.value == 42

    def test_float(self):
        token = tokenize("3.25")[0]
        assert token.kind == FLOAT_LIT and token.value == 3.25

    def test_leading_dot_float(self):
        assert tokenize(".5")[0].value == 0.5

    def test_scientific_notation(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-2")[0].value == 0.025

    def test_number_then_dot_identifier_not_confused(self):
        tokens = tokenize("1.5.x")
        assert tokens[0].value == 1.5


class TestStrings:
    def test_simple_string(self):
        token = tokenize("'hello'")[0]
        assert token.kind == STRING_LIT and token.value == "hello"

    def test_quote_escaping(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_string_position_is_opening_quote(self):
        tokens = tokenize("x = 'abc'")
        assert tokens[2].position == 4


class TestOperatorsAndComments:
    def test_multi_char_operators(self):
        assert values("a <= b >= c <> d != e") == [
            "a", "<=", "b", ">=", "c", "<>", "d", "!=", "e",
        ]

    def test_punctuation(self):
        tokens = tokenize("f(a, b.c);")
        assert [t.value for t in tokens[:-1]] == [
            "f", "(", "a", ",", "b", ".", "c", ")", ";",
        ]
        assert tokens[1].kind == PUNCT

    def test_line_comment(self):
        assert values("a -- comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* oops")

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_minus_is_operator_not_comment(self):
        assert values("a - b") == ["a", "-", "b"]
