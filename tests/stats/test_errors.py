"""Tests for estimation-error metrics."""

import pytest

from repro.stats.errors import q_error, relative_error


class TestQError:
    def test_perfect_estimate(self):
        assert q_error(100, 100) == 1.0

    def test_symmetric(self):
        assert q_error(10, 100) == q_error(100, 10) == 10.0

    def test_clamps_small_values(self):
        assert q_error(0, 0) == 1.0
        assert q_error(0.001, 1) == 1.0

    def test_never_below_one(self):
        assert q_error(3, 4) >= 1.0


class TestRelativeError:
    def test_signed(self):
        assert relative_error(150, 100) == pytest.approx(0.5)
        assert relative_error(50, 100) == pytest.approx(-0.5)

    def test_zero_actual_clamped(self):
        assert relative_error(5, 0) == pytest.approx(5.0)
