"""Tests for RUNSTATS collection."""

import pytest

from repro.stats.runstats import runstats


class TestRunstats:
    def test_row_and_page_counts(self, people_database):
        stats = runstats(people_database, "person")
        assert stats.row_count == 5
        assert stats.page_count == people_database.table("person").page_count

    def test_null_counts(self, people_database):
        stats = runstats(people_database, "person")
        assert stats.column("age").null_count == 1
        assert stats.column("city_id").null_count == 1
        assert stats.column("id").null_count == 0

    def test_distinct_counts(self, people_database):
        stats = runstats(people_database, "person")
        assert stats.column("city_id").distinct_count == 3
        assert stats.column("id").distinct_count == 5

    def test_low_high(self, people_database):
        stats = runstats(people_database, "person")
        column = stats.column("age")
        assert column.low == 28 and column.high == 45

    def test_histogram_built_for_all_ordered_columns(self, people_database):
        stats = runstats(people_database, "person")
        assert stats.column("age").histogram is not None
        assert stats.column("name").histogram is not None  # strings ordered

    def test_stored_in_catalog(self, people_database):
        stats = runstats(people_database, "person")
        assert people_database.catalog.statistics("person") is stats

    def test_store_false_skips_catalog(self, people_database):
        runstats(people_database, "city", store=False)
        assert people_database.catalog.statistics("city") is None

    def test_null_fraction(self, people_database):
        stats = runstats(people_database, "person")
        assert stats.column("age").null_fraction == pytest.approx(0.2)
        assert stats.column("age").non_null_count == 4

    def test_epoch_recorded(self, people_database):
        stats = runstats(people_database, "person", epoch=42)
        assert stats.epoch == 42

    def test_empty_table(self, empty_database):
        from repro.engine.schema import Column, TableSchema
        from repro.engine.types import INTEGER

        empty_database.create_table(TableSchema("e", [Column("a", INTEGER)]))
        stats = runstats(empty_database, "e")
        assert stats.row_count == 0
        assert stats.column("a").low is None
        assert stats.column("a").histogram is None
