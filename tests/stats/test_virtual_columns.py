"""Tests for virtual-column statistics (paper §5.1, second mechanism)."""

import pytest

from repro.sql.parser import parse_expression
from repro.stats.errors import q_error
from repro.stats.runstats import runstats_virtual
from repro.workload.schemas import build_project_table


@pytest.fixture(scope="module")
def project_db():
    db = build_project_table(rows=6000, long_fraction=0.1, seed=13)
    db.runstats_virtual("project", "duration", "end_date - start_date")
    return db


class TestCollection:
    def test_stats_attached_to_table(self, project_db):
        stats = project_db.database.catalog.statistics("project")
        assert "duration" in stats.virtual
        virtual = stats.virtual["duration"]
        assert virtual.row_count == 6000
        assert virtual.low >= 1
        assert virtual.histogram is not None

    def test_expression_stored_unqualified(self, project_db):
        stats = project_db.database.catalog.statistics("project")
        assert stats.virtual["duration"].expression == parse_expression(
            "end_date - start_date"
        )

    def test_accepts_parsed_expression(self, project_db):
        virtual = runstats_virtual(
            project_db.database,
            "project",
            "dur2",
            parse_expression("end_date - start_date"),
        )
        assert virtual.column_name == "dur2"

    def test_builds_base_stats_when_missing(self):
        db = build_project_table(rows=200, seed=14)
        db.database.catalog._statistics.clear()
        runstats_virtual(db.database, "project", "d", "end_date - start_date")
        assert db.database.catalog.statistics("project") is not None


class TestEstimation:
    def probe(self, db, predicate):
        actual = db.query(
            f"SELECT count(*) AS n FROM project WHERE {predicate}"
        )[0]["n"]
        estimate = db.plan(
            f"SELECT id FROM project WHERE {predicate}"
        ).estimated_rows
        return actual, estimate

    def test_upper_bound_predicate(self, project_db):
        actual, estimate = self.probe(
            project_db, "end_date - start_date <= 5"
        )
        assert q_error(estimate, actual) < 1.15

    def test_lower_bound_predicate(self, project_db):
        # The >30 cut falls inside a skewed bucket (durations pile up at
        # 30), so the within-bucket-uniformity assumption costs accuracy;
        # the estimate must still be far better than the 1/3 default.
        actual, estimate = self.probe(
            project_db, "end_date - start_date > 30"
        )
        assert q_error(estimate, actual) < 1.5
        assert q_error(estimate, actual) < q_error(6000 / 3, actual)

    def test_between_predicate(self, project_db):
        actual, estimate = self.probe(
            project_db, "end_date - start_date BETWEEN 5 AND 12"
        )
        assert q_error(estimate, actual) < 1.15

    def test_equality_predicate(self, project_db):
        actual, estimate = self.probe(project_db, "end_date - start_date = 7")
        assert q_error(estimate, actual) < 2.0

    def test_flipped_spelling(self, project_db):
        actual, estimate = self.probe(project_db, "5 >= end_date - start_date")
        assert q_error(estimate, actual) < 1.15

    def test_unmatched_expression_falls_back(self, project_db):
        # No virtual column for this expression: the default constant.
        estimate = project_db.plan(
            "SELECT id FROM project WHERE end_date + start_date <= 5"
        ).estimated_rows
        assert estimate == pytest.approx(6000 / 3, rel=0.01)

    def test_answers_never_affected(self, project_db):
        from repro.harness.runner import compare_optimizers

        compare_optimizers(
            project_db,
            "SELECT id FROM project WHERE end_date - start_date <= 5",
        )
