"""Tests for equi-depth histograms."""

import pytest

from repro.expr.intervals import Interval
from repro.stats.histogram import EquiDepthHistogram


class TestConstruction:
    def test_empty_returns_none(self):
        assert EquiDepthHistogram.build([]) is None

    def test_bucket_counts_sum_to_total(self):
        histogram = EquiDepthHistogram.build(list(range(100)), 10)
        assert sum(b.count for b in histogram.buckets) == 100

    def test_buckets_roughly_equal_depth(self):
        histogram = EquiDepthHistogram.build(list(range(1000)), 10)
        counts = [b.count for b in histogram.buckets]
        assert max(counts) - min(counts) <= 2

    def test_duplicates_do_not_straddle_buckets(self):
        values = [5] * 50 + list(range(100))
        histogram = EquiDepthHistogram.build(values, 10)
        owners = [
            b for b in histogram.buckets if b.low <= 5 <= b.high and b.count
        ]
        # The value 5 is fully inside whichever bucket covers it.
        covering = [b for b in owners if b.low <= 5 <= b.high]
        assert sum(1 for b in covering if 5 >= b.low and 5 <= b.high) >= 1
        total_fives = sum(
            b.count for b in histogram.buckets if b.low <= 5 <= b.high
        )
        assert total_fives >= 50

    def test_fewer_values_than_buckets(self):
        histogram = EquiDepthHistogram.build([1, 2, 3], 10)
        assert histogram.total_count == 3

    def test_single_value_column(self):
        histogram = EquiDepthHistogram.build([7] * 10, 4)
        assert histogram.low == 7 and histogram.high == 7


class TestEqualityFraction:
    def test_uniform_distribution(self):
        histogram = EquiDepthHistogram.build(list(range(1000)), 20)
        fraction = histogram.equality_fraction(500)
        assert fraction == pytest.approx(1 / 1000, rel=0.5)

    def test_out_of_range_is_zero(self):
        histogram = EquiDepthHistogram.build(list(range(100)), 10)
        assert histogram.equality_fraction(-5) == 0.0
        assert histogram.equality_fraction(200) == 0.0

    def test_heavy_hitter(self):
        values = [1] * 900 + list(range(2, 102))
        histogram = EquiDepthHistogram.build(values, 10)
        assert histogram.equality_fraction(1) > 0.5


class TestRangeFraction:
    @pytest.fixture
    def uniform(self):
        return EquiDepthHistogram.build(list(range(1000)), 20)

    def test_full_range_is_one(self, uniform):
        assert uniform.range_fraction(Interval(0, 999)) == pytest.approx(1.0)

    def test_half_range(self, uniform):
        fraction = uniform.range_fraction(Interval(0, 499))
        assert fraction == pytest.approx(0.5, abs=0.05)

    def test_narrow_range(self, uniform):
        fraction = uniform.range_fraction(Interval(100, 110))
        assert fraction == pytest.approx(0.011, abs=0.01)

    def test_empty_interval(self, uniform):
        assert uniform.range_fraction(Interval.empty()) == 0.0

    def test_disjoint_interval(self, uniform):
        assert uniform.range_fraction(Interval(2000, 3000)) == 0.0

    def test_unbounded_side(self, uniform):
        fraction = uniform.range_fraction(Interval.at_least(900))
        assert fraction == pytest.approx(0.1, abs=0.05)

    def test_skewed_data_beats_uniform_assumption(self):
        # 90% of mass at small values: a histogram knows this.
        values = list(range(100)) * 9 + list(range(100, 1000))
        histogram = EquiDepthHistogram.build(values, 20)
        fraction = histogram.range_fraction(Interval(0, 99))
        assert fraction == pytest.approx(0.5, abs=0.1)
