"""Tests for frequent-value statistics."""

import pytest

from repro.stats.frequent import FrequentValues


class TestBuild:
    def test_empty_returns_none(self):
        assert FrequentValues.build([]) is None

    def test_top_k_selected(self):
        values = ["a"] * 50 + ["b"] * 30 + ["c"] * 20 + list("defgh")
        frequent = FrequentValues.build(values, k=3)
        assert [entry[0] for entry in frequent.entries] == ["a", "b", "c"]

    def test_counts_exact(self):
        frequent = FrequentValues.build([1, 1, 1, 2, 2, 3], k=2)
        assert frequent.frequency_of(1) == 3
        assert frequent.frequency_of(2) == 2
        assert frequent.frequency_of(3) is None

    def test_distinct_count(self):
        frequent = FrequentValues.build([1, 1, 2, 3], k=1)
        assert frequent.total_distinct == 3


class TestEqualityFraction:
    def test_tracked_value_exact(self):
        frequent = FrequentValues.build([1] * 80 + [2] * 20, k=2)
        assert frequent.equality_fraction(1) == pytest.approx(0.8)

    def test_untracked_value_spreads_remainder(self):
        values = [1] * 90 + [2, 3, 4, 5, 6, 7, 8, 9, 10, 11]
        frequent = FrequentValues.build(values, k=1)
        # 10 untracked rows over 10 untracked distincts: 1 row each.
        assert frequent.equality_fraction(5) == pytest.approx(0.01)

    def test_unseen_value_when_all_tracked(self):
        frequent = FrequentValues.build([1, 1, 2], k=5)
        assert frequent.equality_fraction(99) == 0.0
