"""Tests for single-table selectivity estimation."""

import pytest

from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import INTEGER, VARCHAR
from repro.expr.intervals import Interval
from repro.sql.parser import parse_expression
from repro.stats.runstats import runstats
from repro.stats.selectivity import (
    DEFAULT_OTHER_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    SelectivityEstimator,
)


@pytest.fixture
def estimator() -> SelectivityEstimator:
    database = Database()
    database.create_table(
        TableSchema(
            "t",
            [Column("k", INTEGER), Column("v", INTEGER), Column("s", VARCHAR(5))],
        )
    )
    rows = []
    for n in range(1000):
        # k uniform over 0..99; v has 10% NULLs and is uniform 0..9.
        rows.append((n % 100, None if n % 10 == 0 else n % 10, "s"))
    database.insert_many("t", rows)
    stats = runstats(database, "t")
    return SelectivityEstimator(stats)


def sel(estimator, text):
    return estimator.selectivity(parse_expression(text))


class TestLeafPredicates:
    def test_none_is_one(self, estimator):
        assert estimator.selectivity(None) == 1.0

    def test_equality_uniform(self, estimator):
        assert sel(estimator, "k = 50") == pytest.approx(0.01, rel=0.3)

    def test_equality_out_of_range(self, estimator):
        assert sel(estimator, "k = 5000") == 0.0

    def test_inequality_complements(self, estimator):
        assert sel(estimator, "k <> 50") == pytest.approx(0.99, rel=0.05)

    def test_range(self, estimator):
        assert sel(estimator, "k < 50") == pytest.approx(0.5, abs=0.07)

    def test_between(self, estimator):
        assert sel(estimator, "k BETWEEN 0 AND 24") == pytest.approx(
            0.25, abs=0.07
        )

    def test_not_between(self, estimator):
        assert sel(estimator, "k NOT BETWEEN 0 AND 24") == pytest.approx(
            0.75, abs=0.07
        )

    def test_in_list(self, estimator):
        assert sel(estimator, "k IN (1, 2, 3)") == pytest.approx(
            0.03, rel=0.4
        )

    def test_is_null_uses_null_fraction(self, estimator):
        assert sel(estimator, "v IS NULL") == pytest.approx(0.1)
        assert sel(estimator, "v IS NOT NULL") == pytest.approx(0.9)

    def test_equality_discounts_nulls(self, estimator):
        assert sel(estimator, "v = 5") == pytest.approx(0.1, rel=0.3)

    def test_like_uses_default(self, estimator):
        assert sel(estimator, "s LIKE 'x%'") == pytest.approx(0.1)


class TestCompound:
    def test_and_multiplies(self, estimator):
        combined = sel(estimator, "k = 50 AND v = 5")
        assert combined == pytest.approx(
            sel(estimator, "k = 50") * sel(estimator, "v = 5"), rel=1e-6
        )

    def test_or_inclusion_exclusion(self, estimator):
        left = sel(estimator, "k < 50")
        right = sel(estimator, "v = 5")
        expected = left + right - left * right
        assert sel(estimator, "k < 50 OR v = 5") == pytest.approx(expected)

    def test_not_complements(self, estimator):
        assert sel(estimator, "NOT k < 50") == pytest.approx(
            1 - sel(estimator, "k < 50")
        )

    def test_clamped_to_unit_interval(self, estimator):
        value = sel(estimator, "k IN (1,2,3,4,5,6,7,8,9) OR v IS NOT NULL")
        assert 0.0 <= value <= 1.0


class TestFallbacks:
    def test_without_stats_defaults(self):
        estimator = SelectivityEstimator(None)
        assert sel(estimator, "a = 5") == pytest.approx(0.04)
        assert sel(estimator, "a < 5") == pytest.approx(
            DEFAULT_RANGE_SELECTIVITY
        )

    def test_unknown_column_defaults(self, estimator):
        assert sel(estimator, "zzz = 5") == pytest.approx(0.04)

    def test_two_column_predicate_defaults(self, estimator):
        assert sel(estimator, "k = v") == pytest.approx(
            DEFAULT_OTHER_SELECTIVITY
        )


class TestIntervalFraction:
    def test_point(self, estimator):
        assert estimator.interval_fraction("k", Interval.point(5)) == (
            pytest.approx(0.01, rel=0.3)
        )

    def test_empty(self, estimator):
        assert estimator.interval_fraction("k", Interval.empty()) == 0.0

    def test_unbounded_discounts_nulls(self, estimator):
        assert estimator.interval_fraction(
            "v", Interval.unbounded()
        ) == pytest.approx(0.9)
