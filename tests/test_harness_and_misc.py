"""Coverage for the harness, EXPLAIN, result helpers and misc utilities."""

import pytest

from repro.engine.row import RowId, project_row, row_as_dict
from repro.engine.schema import Column, TableSchema
from repro.engine.types import INTEGER, VARCHAR
from repro.errors import ExecutionError, OptimizerError
from repro.harness.reporting import format_table
from repro.harness.runner import compare_optimizers, measure_query
from repro.optimizer.explain import explain


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["long-name", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert "long-name" in lines[-1]

    def test_float_formatting(self):
        text = format_table(["x"], [[1.0], [2.345], [0.0001], [2.5e16]])
        assert "1.0" in text
        assert "2.35" in text or "2.34" in text
        assert "0.0001" in text
        assert "2.5e+16" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestMeasureAndCompare:
    def test_measure_query_records_everything(self, sales_softdb):
        measurement = measure_query(
            sales_softdb, "SELECT id FROM sale WHERE day = 1", label="probe"
        )
        assert measurement.label == "probe"
        assert measurement.row_count == 4
        assert measurement.page_reads > 0
        assert measurement.estimated_rows > 0
        assert isinstance(measurement.rewrites, list)

    def test_compare_detects_genuinely_different_answers(self, sales_softdb):
        # Force a bogus "rewrite" by comparing two different queries via a
        # doctored measurement path: easiest is to monkeypatch the
        # enabled optimizer's output. Instead, check the checker directly.
        from repro.harness.runner import _row_key

        left = sorted(map(_row_key, [(1, "a"), (2, "b")]))
        right = sorted(map(_row_key, [(1, "a")]))
        assert left != right

    def test_row_key_tolerates_float_noise(self):
        from repro.harness.runner import _row_key

        assert _row_key((0.1 + 0.2,)) == _row_key((0.3,))
        assert _row_key((None, 1)) == _row_key((None, 1))
        assert _row_key(("x",)) != _row_key(("y",))

    def test_compare_optimizers_returns_both(self, sales_softdb):
        enabled, disabled = compare_optimizers(
            sales_softdb, "SELECT id FROM sale WHERE day < 5"
        )
        assert enabled.row_count == disabled.row_count


class TestExplain:
    def test_explain_renders_every_operator_kind(self, sales_softdb):
        text = explain(
            sales_softdb.plan(
                "SELECT s.region, count(*) AS n FROM sale s, sale t "
                "WHERE s.id = t.id AND s.day < 10 "
                "GROUP BY s.region HAVING count(*) > 1 "
                "ORDER BY n DESC LIMIT 3"
            )
        )
        for fragment in ("Project", "Sort", "GroupBy", "HashJoin", "Limit"):
            assert fragment in text, fragment
        assert "rows~" in text and "cost~" in text

    def test_explain_union(self, sales_softdb):
        text = explain(
            sales_softdb.plan(
                "SELECT id FROM sale WHERE day = 1 "
                "UNION ALL SELECT id FROM sale WHERE day = 2"
            )
        )
        assert "UnionAll(2 branches)" in text

    def test_explain_empty_result_shortcut(self, sales_softdb):
        from repro.softcon.minmax import MinMaxSC

        sales_softdb.add_soft_constraint(
            MinMaxSC("cap", "sale", "day", 0, 49)
        )
        text = sales_softdb.explain("SELECT id FROM sale WHERE day > 100")
        assert "EmptyResult" in text


class TestExecutionResultHelpers:
    def test_tuples_and_column(self, sales_softdb):
        result = sales_softdb.execute(
            "SELECT id, day FROM sale WHERE id < 3"
        )
        assert result.tuples() == [(0, 0), (1, 1), (2, 2)]
        assert result.column("day") == [0, 1, 2]

    def test_scalar(self, sales_softdb):
        result = sales_softdb.execute("SELECT count(*) AS n FROM sale")
        assert result.scalar() == 200

    def test_scalar_rejects_non_scalar(self, sales_softdb):
        result = sales_softdb.execute("SELECT id FROM sale")
        with pytest.raises(ExecutionError):
            result.scalar()


class TestRowUtilities:
    def test_row_as_dict(self):
        schema = TableSchema(
            "t", [Column("a", INTEGER), Column("b", VARCHAR(5))]
        )
        assert row_as_dict(schema, (1, "x")) == {"a": 1, "b": "x"}

    def test_project_row(self):
        assert project_row((10, 20, 30), [2, 0]) == (30, 10)

    def test_rowid_repr(self):
        assert repr(RowId(3, 7)) == "RowId(3:7)"


class TestOptimizerLimits:
    def test_too_many_tables_rejected(self, softdb):
        for n in range(11):
            softdb.execute(f"CREATE TABLE t{n} (a INT)")
            softdb.execute(f"INSERT INTO t{n} VALUES ({n})")
        froms = ", ".join(f"t{n}" for n in range(11))
        with pytest.raises(OptimizerError):
            softdb.plan(f"SELECT t0.a FROM {froms}")

    def test_ten_tables_still_planned(self, softdb):
        for n in range(10):
            softdb.execute(f"CREATE TABLE s{n} (a INT)")
            softdb.execute(f"INSERT INTO s{n} VALUES ({n})")
        froms = ", ".join(f"s{n}" for n in range(10))
        conditions = " AND ".join(
            f"s{n}.a = s{n + 1}.a - 1" for n in range(9)
        )
        plan = softdb.plan(f"SELECT s0.a FROM {froms} WHERE {conditions}")
        result = softdb.executor.execute(plan)
        assert result.row_count == 1
