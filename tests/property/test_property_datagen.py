"""Property: seeded generation is deterministic, end to end.

Identical seeds must produce bit-identical :class:`DataGenerator`
sequences, bit-identical TPC warehouse tables, and identical corpus
text — the property the recorded ``BENCH_e15.json`` results and the
differential suites all lean on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.generator import corpus_text, generate_corpus
from repro.workload.datagen import DataGenerator
from repro.workload.tpc import build_tpc_db, table_snapshot

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _drain(generator, draws=200):
    """A mixed draw sequence exercising every sampling method."""
    out = []
    for at in range(draws):
        out.append(generator.uniform(0.0, 1000.0))
        out.append(generator.integer(0, 100))
        out.append(generator.choice(["a", "b", "c", "d"]))
        out.append(generator.bernoulli(0.3))
        out.append(generator.linear_pair(1.07, 0.0, 2.0, 1.0, 1000.0))
        out.append(generator.skewed_category(10))
        out.append(generator.string_code("x", at))
    return out


@given(seeds)
@settings(max_examples=20, deadline=None)
def test_same_seed_same_draw_sequence(seed):
    assert _drain(DataGenerator(seed)) == _drain(DataGenerator(seed))


@given(seeds)
@settings(max_examples=10, deadline=None)
def test_same_seed_bit_identical_warehouse(seed):
    first = table_snapshot(build_tpc_db(scale_factor=0.05, seed=seed))
    second = table_snapshot(build_tpc_db(scale_factor=0.05, seed=seed))
    assert first == second


@given(seeds)
@settings(max_examples=20, deadline=None)
def test_same_seed_identical_corpus_text(seed):
    assert corpus_text(generate_corpus(seed)) == corpus_text(
        generate_corpus(seed)
    )


@given(seeds)
@settings(max_examples=10, deadline=None)
def test_consecutive_seeds_diverge(seed):
    """Different seeds actually change the stream (no constant stub)."""
    assert _drain(DataGenerator(seed), draws=50) != _drain(
        DataGenerator(seed + 1), draws=50
    )
