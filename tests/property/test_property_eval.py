"""Property-based tests for expression evaluation and normalization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr.eval import evaluate
from repro.expr.normalize import normalize
from repro.expr import analysis
from repro.sql import ast

values = st.one_of(st.none(), st.integers(min_value=-20, max_value=20))


@st.composite
def predicates(draw, depth=0):
    """Random boolean expressions over columns a, b, c."""
    if depth >= 3:
        kind = draw(st.sampled_from(["cmp", "between", "in", "isnull"]))
    else:
        kind = draw(
            st.sampled_from(
                ["cmp", "between", "in", "isnull", "and", "or", "not"]
            )
        )
    column = lambda: ast.ColumnRef(draw(st.sampled_from(["a", "b", "c"])))
    literal = lambda: ast.Literal(draw(st.integers(-20, 20)))
    if kind == "cmp":
        op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
        return ast.BinaryOp(op, column(), literal())
    if kind == "between":
        return ast.BetweenExpr(
            column(), literal(), literal(), negated=draw(st.booleans())
        )
    if kind == "in":
        items = tuple(
            ast.Literal(v)
            for v in draw(st.lists(st.integers(-20, 20), min_size=1, max_size=4))
        )
        return ast.InExpr(column(), items, negated=draw(st.booleans()))
    if kind == "isnull":
        return ast.IsNullExpr(column(), negated=draw(st.booleans()))
    if kind == "not":
        return ast.UnaryOp("not", draw(predicates(depth + 1)))
    left = draw(predicates(depth + 1))
    right = draw(predicates(depth + 1))
    return ast.BinaryOp(kind, left, right)


rows = st.fixed_dictionaries({"a": values, "b": values, "c": values})


@given(predicates(), rows)
@settings(max_examples=300)
def test_normalization_preserves_semantics(expression, row):
    """normalize() must be a semantic no-op under three-valued logic."""
    normalized = normalize(expression, expand_between=True)
    assert evaluate(expression, row) == evaluate(normalized, row)


@given(predicates(), rows)
@settings(max_examples=200)
def test_evaluation_is_three_valued(expression, row):
    assert evaluate(expression, row) in (True, False, None)


@given(predicates(), rows)
@settings(max_examples=200)
def test_split_conjoin_round_trip(expression, row):
    conjuncts = analysis.split_conjuncts(expression)
    rebuilt = analysis.conjoin(conjuncts)
    assert evaluate(rebuilt, row) == evaluate(expression, row)


@given(predicates(), rows)
@settings(max_examples=200)
def test_column_interval_is_sound(expression, row):
    """If a row satisfies a conjunction, each column's value lies in the
    interval the analyzer derives for it — the soundness property branch
    knockout and range trimming rely on."""
    conjuncts = analysis.split_conjuncts(expression)
    if evaluate(expression, row) is not True:
        return
    for name, value in row.items():
        if value is None:
            continue
        interval = analysis.column_interval(conjuncts, ast.ColumnRef(name))
        assert interval.contains(value)
