"""Property-based end-to-end rewrite correctness.

The single most important invariant of the whole system: for any query in
a generated family, the fully-rewritten plan and the rewrite-free plan
return exactly the same answers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery.linear_miner import mine_linear_correlations
from repro.harness.runner import compare_optimizers
from repro.workload.queries import monthly_union_sql
from repro.workload.schemas import (
    YEAR_START,
    build_correlated_table,
    build_monthly_union_scenario,
    build_purchase_scenario,
)


@pytest.fixture(scope="module")
def corr_db():
    db = build_correlated_table(rows=2500, noise=4.0, seed=31)
    (asc,) = mine_linear_correlations(
        db.database, "meas", [("a", "b")], confidence_levels=(1.0,)
    )
    db.add_soft_constraint(asc, verify_first=True)
    return db


@pytest.fixture(scope="module")
def union_db():
    return build_monthly_union_scenario(
        months=6, rows_per_month=250, seed=32, declare_checks=True
    )


@pytest.fixture(scope="module")
def purchase_db():
    db = build_purchase_scenario(rows=3000, exception_rate=0.02, seed=33)
    db.execute(
        "CREATE SUMMARY TABLE late AS (SELECT * FROM purchase "
        "WHERE ship_date > order_date + 21 OR ship_date < order_date)"
    )
    return db


class TestPredicateIntroductionNeverChangesAnswers:
    @given(b_value=st.floats(min_value=0, max_value=1000, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_point_queries(self, corr_db, b_value):
        compare_optimizers(
            corr_db, f"SELECT id, a FROM meas WHERE b = {b_value!r}"
        )

    @given(
        low=st.floats(min_value=0, max_value=900, allow_nan=False),
        width=st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_range_queries(self, corr_db, low, width):
        compare_optimizers(
            corr_db,
            f"SELECT id FROM meas WHERE b BETWEEN {low!r} AND {low + width!r}",
        )


class TestBranchKnockoutNeverChangesAnswers:
    @given(
        low=st.integers(min_value=-20, max_value=200),
        width=st.integers(min_value=0, max_value=120),
    )
    @settings(max_examples=25, deadline=None)
    def test_range_over_union(self, union_db, low, width):
        db, tables = union_db
        sql = monthly_union_sql(
            tables, YEAR_START + low, YEAR_START + low + width
        )
        compare_optimizers(db, sql)


class TestAstRoutingNeverChangesAnswers:
    @given(day=st.integers(min_value=0, max_value=800))
    @settings(max_examples=25, deadline=None)
    def test_ship_date_probes(self, purchase_db, day):
        compare_optimizers(
            purchase_db,
            f"SELECT id, amount FROM purchase WHERE ship_date = {YEAR_START + day}",
        )

    @given(
        day=st.integers(min_value=0, max_value=700),
        width=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=20, deadline=None)
    def test_ship_date_ranges(self, purchase_db, day, width):
        low = YEAR_START + day
        compare_optimizers(
            purchase_db,
            f"SELECT id FROM purchase WHERE ship_date BETWEEN {low} "
            f"AND {low + width}",
        )
