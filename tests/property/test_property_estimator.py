"""Property-based tests on the cardinality estimator.

Invariants: selectivities stay in [0, 1]; estimates stay in [0, N]; the
twinning blend interpolates between the correlated and independence
estimates; interval consolidation never yields a *larger* estimate than
the loosest single predicate.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import INTEGER
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.logical import EstimationPredicate
from repro.sql import ast
from repro.stats.runstats import runstats


def _build_database(values) -> Database:
    database = Database()
    database.create_table(
        TableSchema("t", [Column("x", INTEGER), Column("y", INTEGER)])
    )
    database.insert_many("t", [(v, (v * 7) % 50) for v in values])
    runstats(database, "t")
    return database


def comparison(column, op, value):
    return ast.BinaryOp(op, ast.ColumnRef(column, "t"), ast.Literal(value))


predicate_specs = st.lists(
    st.tuples(
        st.sampled_from(["x", "y"]),
        st.sampled_from(["=", "<", "<=", ">", ">=", "<>"]),
        st.integers(min_value=-10, max_value=60),
    ),
    min_size=0,
    max_size=4,
)

column_values = st.lists(
    st.integers(min_value=0, max_value=50), min_size=1, max_size=120
)


@given(column_values, predicate_specs)
@settings(max_examples=80, deadline=None)
def test_estimates_bounded(values, specs):
    database = _build_database(values)
    estimator = CardinalityEstimator(database)
    conjuncts = [comparison(c, op, v) for c, op, v in specs]
    estimate = estimator.scan_rows("t", conjuncts)
    assert 0.0 <= estimate <= len(values) + 1e-9
    selectivity = estimator.conjunction_selectivity("t", conjuncts)
    assert 0.0 <= selectivity <= 1.0


@given(column_values, predicate_specs)
@settings(max_examples=60, deadline=None)
def test_adding_conjuncts_never_increases_estimate(values, specs):
    database = _build_database(values)
    estimator = CardinalityEstimator(database)
    conjuncts = [comparison(c, op, v) for c, op, v in specs]
    previous = estimator.scan_rows("t", [])
    for upto in range(1, len(conjuncts) + 1):
        current = estimator.scan_rows("t", conjuncts[:upto])
        assert current <= previous + 1e-9
        previous = current


@given(
    column_values,
    st.integers(min_value=0, max_value=50),
    st.floats(min_value=0.01, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_twinning_blend_interpolates(values, bound, confidence):
    database = _build_database(values)
    estimator = CardinalityEstimator(database)
    conjuncts = [comparison("x", "<=", bound), comparison("y", ">=", 5)]
    twin = EstimationPredicate(
        expression=comparison("y", "<=", bound + 10),
        confidence=confidence,
        source="sc",
        linked_columns=("x", "y"),
    )
    plain = estimator.scan_rows("t", conjuncts)
    blended = estimator.scan_rows("t", conjuncts, [twin])
    full = CardinalityEstimator(database).scan_rows(
        "t",
        conjuncts,
        [EstimationPredicate(twin.expression, 1.0, "sc", ("x", "y"))],
    )
    low, high = sorted([plain, full])
    assert low - 1e-9 <= blended <= high + 1e-9


@given(column_values)
@settings(max_examples=40, deadline=None)
def test_twinning_disabled_matches_plain(values):
    database = _build_database(values)
    with_twin = CardinalityEstimator(database, use_twinning=False)
    twin = EstimationPredicate(comparison("x", "<=", 10), 0.9, "sc")
    conjuncts = [comparison("x", ">=", 0)]
    assert with_twin.scan_rows("t", conjuncts, [twin]) == pytest.approx(
        CardinalityEstimator(database).scan_rows("t", conjuncts)
    )
