"""Property-based tests for interval arithmetic (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr.intervals import Interval

values = st.integers(min_value=-50, max_value=50)
maybe_values = st.one_of(st.none(), values)
booleans = st.booleans()


def intervals():
    return st.builds(
        Interval,
        low=maybe_values,
        high=maybe_values,
        low_inclusive=booleans,
        high_inclusive=booleans,
    )


@given(intervals(), intervals(), values)
def test_intersection_membership(first, second, point):
    """x ∈ A∩B iff x ∈ A and x ∈ B."""
    intersection = first.intersect(second)
    assert intersection.contains(point) == (
        first.contains(point) and second.contains(point)
    )


@given(intervals(), intervals())
def test_intersection_commutes(first, second):
    assert first.intersect(second) == second.intersect(first)


@given(intervals())
def test_intersection_idempotent(interval):
    assert interval.intersect(interval) == interval


@given(intervals(), intervals(), intervals())
def test_intersection_associative(a, b, c):
    left = a.intersect(b).intersect(c)
    right = a.intersect(b.intersect(c))
    assert left == right


@given(intervals())
def test_unbounded_is_identity(interval):
    assert interval.intersect(Interval.unbounded()) == interval


@given(intervals(), intervals())
def test_overlaps_iff_nonempty_intersection(first, second):
    assert first.overlaps(second) == (not first.intersect(second).is_empty)


@given(intervals(), intervals(), values)
def test_containment_transfers_membership(outer, inner, point):
    if outer.contains_interval(inner) and inner.contains(point):
        assert outer.contains(point)


@given(intervals())
def test_empty_interval_contains_nothing(interval):
    if interval.is_empty:
        for candidate in range(-60, 61, 10):
            assert not interval.contains(candidate)


@given(values, values)
def test_point_interval(first, second):
    point = Interval.point(first)
    assert point.contains(first)
    assert point.contains(second) == (first == second)
