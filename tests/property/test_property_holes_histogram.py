"""Property-based tests: hole trimming soundness and histogram bounds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery.hole_miner import HoleMiner
from repro.expr.intervals import Interval
from repro.softcon.holes import JoinHolesSC, Rectangle
from repro.stats.histogram import EquiDepthHistogram

coordinates = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def rectangles(draw):
    a_low = draw(coordinates)
    a_high = draw(coordinates)
    b_low = draw(coordinates)
    b_high = draw(coordinates)
    if a_low > a_high:
        a_low, a_high = a_high, a_low
    if b_low > b_high:
        b_low, b_high = b_high, b_low
    return Rectangle(a_low, a_high, b_low, b_high)


@st.composite
def query_boxes(draw):
    low = draw(coordinates)
    high = draw(coordinates)
    if low > high:
        low, high = high, low
    return Interval(low, high)


@given(
    st.lists(rectangles(), min_size=1, max_size=4),
    query_boxes(),
    query_boxes(),
    st.lists(st.tuples(coordinates, coordinates), min_size=1, max_size=30),
)
@settings(max_examples=200)
def test_trimming_never_loses_non_hole_points(holes, a_range, b_range, points):
    """Any point inside the query box but outside every hole must survive
    trimming — the invariant that makes hole-based rewrites exact."""
    constraint = JoinHolesSC(
        "h", "one", "a", "two", "b", "j", "j", holes=holes
    )
    trimmed_a, trimmed_b = constraint.trim(a_range, b_range)
    for a, b in points:
        inside_query = a_range.contains(a) and b_range.contains(b)
        in_hole = constraint.point_in_hole(a, b)
        if inside_query and not in_hole:
            assert trimmed_a.contains(a) and trimmed_b.contains(b)


@given(
    st.lists(st.tuples(coordinates, coordinates), min_size=1, max_size=120),
    st.integers(min_value=2, max_value=12),
)
@settings(max_examples=100)
def test_mined_holes_always_sound(points, grid):
    holes = HoleMiner(grid_size=grid, min_cells=1).holes_from_pairs(points)
    for hole in holes:
        for a, b in points:
            assert not hole.contains_point(a, b)


@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=300),
    st.integers(min_value=1, max_value=20),
)
@settings(max_examples=150)
def test_histogram_invariants(values, buckets):
    histogram = EquiDepthHistogram.build(values, buckets)
    assert histogram is not None
    # Counts partition the input.
    assert sum(b.count for b in histogram.buckets) == len(values)
    # Bucket bounds are ordered and non-overlapping.
    for first, second in zip(histogram.buckets, histogram.buckets[1:]):
        assert first.high <= second.low
    # Full-range fraction is 1; equality fractions are within [0, 1].
    full = Interval(min(values), max(values))
    assert 0.99 <= histogram.range_fraction(full) <= 1.0
    for probe in values[:10]:
        assert 0.0 <= histogram.equality_fraction(probe) <= 1.0


@given(
    st.lists(st.integers(min_value=0, max_value=100), min_size=5, max_size=200),
    st.integers(min_value=0, max_value=100),
    st.integers(min_value=0, max_value=100),
)
@settings(max_examples=150)
def test_histogram_range_estimate_bounded_error(values, low, high):
    """Estimated range fraction within 0.35 absolute of the truth for any
    interval (coarse histograms cannot do better in the worst case, but
    must never be wildly off)."""
    if low > high:
        low, high = high, low
    histogram = EquiDepthHistogram.build(values, 10)
    estimate = histogram.range_fraction(Interval(low, high))
    actual = sum(1 for v in values if low <= v <= high) / len(values)
    assert abs(estimate - actual) <= 0.35
