"""End-to-end SQL fuzzing against a naive Python oracle.

Random single-table queries run through the full parse → rewrite →
optimize → execute pipeline must return exactly the rows a trivial
in-memory interpreter computes over the same data.  This pins the whole
stack (including any soft-constraint rewrites that happen to fire) to the
semantics of the predicate evaluator.
"""

from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SoftDB
from repro.expr.eval import evaluate
from repro.sql import ast
from repro.sql.printer import sql_of

COLUMNS = ["a", "b", "c"]


@st.composite
def predicates(draw, depth=0):
    kind = draw(
        st.sampled_from(
            ["cmp", "between", "in", "isnull"]
            if depth >= 2
            else ["cmp", "between", "in", "isnull", "and", "or", "not"]
        )
    )
    column = lambda: ast.ColumnRef(draw(st.sampled_from(COLUMNS)))
    literal = lambda: ast.Literal(draw(st.integers(-10, 10)))
    if kind == "cmp":
        op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
        return ast.BinaryOp(op, column(), literal())
    if kind == "between":
        return ast.BetweenExpr(
            column(), literal(), literal(), negated=draw(st.booleans())
        )
    if kind == "in":
        items = tuple(
            ast.Literal(v)
            for v in draw(st.lists(st.integers(-10, 10), min_size=1, max_size=3))
        )
        return ast.InExpr(column(), items, negated=draw(st.booleans()))
    if kind == "isnull":
        return ast.IsNullExpr(column(), negated=draw(st.booleans()))
    if kind == "not":
        return ast.UnaryOp("not", draw(predicates(depth + 1)))
    return ast.BinaryOp(
        kind, draw(predicates(depth + 1)), draw(predicates(depth + 1))
    )


values = st.one_of(st.none(), st.integers(min_value=-10, max_value=10))
tables = st.lists(
    st.tuples(values, values, values), min_size=0, max_size=40
)


def build_db(rows) -> SoftDB:
    db = SoftDB()
    db.execute("CREATE TABLE t (a INT, b INT, c INT)")
    if rows:
        db.database.insert_many("t", rows)
    db.runstats_all()
    return db


def oracle_filter(rows, predicate) -> List[tuple]:
    out = []
    for a, b, c in rows:
        row = {"t.a": a, "t.b": b, "t.c": c}
        if evaluate(predicate, row) is True:
            out.append((a, b, c))
    return out


@given(tables, predicates())
@settings(max_examples=120, deadline=None)
def test_select_where_matches_oracle(rows, predicate):
    db = build_db(rows)
    qualified = _qualify(predicate)
    sql = f"SELECT a, b, c FROM t WHERE {sql_of(predicate)}"
    got = sorted(db.execute(sql).tuples(), key=_key)
    want = sorted(oracle_filter(rows, qualified), key=_key)
    assert got == want


@given(tables, predicates())
@settings(max_examples=60, deadline=None)
def test_group_count_matches_oracle(rows, predicate):
    db = build_db(rows)
    qualified = _qualify(predicate)
    sql = (
        f"SELECT a, count(*) AS n FROM t WHERE {sql_of(predicate)} GROUP BY a"
    )
    got = {
        (row["a"], row["n"]) for row in db.query(sql)
    }
    surviving = oracle_filter(rows, qualified)
    want = {}
    for a, _, _ in surviving:
        want[a] = want.get(a, 0) + 1
    assert got == set(want.items())


@given(tables)
@settings(max_examples=40, deadline=None)
def test_scalar_aggregates_match_oracle(rows):
    db = build_db(rows)
    result = db.query(
        "SELECT count(*) AS n, count(b) AS nb, sum(b) AS s, "
        "min(b) AS lo, max(b) AS hi FROM t"
    )[0]
    b_values = [b for _, b, _ in rows if b is not None]
    assert result["n"] == len(rows)
    assert result["nb"] == len(b_values)
    assert result["s"] == (sum(b_values) if b_values else None)
    assert result["lo"] == (min(b_values) if b_values else None)
    assert result["hi"] == (max(b_values) if b_values else None)


def _qualify(predicate):
    from repro.expr.analysis import columns_in, substitute_columns

    mapping = {
        ref.column: ast.ColumnRef(ref.column, "t")
        for ref in columns_in(predicate)
    }
    return substitute_columns(predicate, mapping)


def _key(row):
    return tuple((value is None, value if value is not None else 0) for value in row)
