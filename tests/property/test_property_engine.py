"""Property-based tests on storage-engine invariants.

A random DML sequence applied to a heap + index must keep: the live-row
multiset equal to a Python-dict model, the index consistent with the heap,
and all min/max soft constraints maintained by widening still absolute.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import INTEGER
from repro.softcon.maintenance import RepairPolicy
from repro.softcon.minmax import MinMaxSC
from repro.softcon.registry import SoftConstraintRegistry


@st.composite
def dml_scripts(draw):
    """A list of operations: ('insert', k, v) / ('delete', i) / ('update', i, v)."""
    operations = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("insert"),
                    st.integers(0, 50),
                    st.integers(-100, 100),
                ),
                st.tuples(st.just("delete"), st.integers(0, 30)),
                st.tuples(
                    st.just("update"), st.integers(0, 30), st.integers(-100, 100)
                ),
            ),
            min_size=1,
            max_size=40,
        )
    )
    return operations


def apply_script(operations):
    database = Database()
    database.create_table(
        TableSchema("t", [Column("k", INTEGER), Column("v", INTEGER)])
    )
    database.create_index("ix", "t", ["k"])
    model = {}  # row_id -> (k, v)
    live_ids = []
    for operation in operations:
        if operation[0] == "insert":
            _, k, v = operation
            rid = database.insert("t", [k, v])
            model[rid] = (k, v)
            live_ids.append(rid)
        elif operation[0] == "delete" and live_ids:
            victim = live_ids[operation[1] % len(live_ids)]
            database.delete_row("t", victim)
            del model[victim]
            live_ids.remove(victim)
        elif operation[0] == "update" and live_ids:
            _, pick, v = operation
            victim = live_ids[pick % len(live_ids)]
            k_old, _ = model[victim]
            new_id = database.update_row("t", victim, [k_old, v])
            del model[victim]
            live_ids.remove(victim)
            model[new_id] = (k_old, v)
            live_ids.append(new_id)
    return database, model


@given(dml_scripts())
@settings(max_examples=100)
def test_heap_matches_model(operations):
    database, model = apply_script(operations)
    heap_rows = sorted(database.table("t").scan_rows())
    assert heap_rows == sorted(model.values())
    assert database.table("t").row_count == len(model)


@given(dml_scripts())
@settings(max_examples=100)
def test_index_consistent_with_heap(operations):
    database, model = apply_script(operations)
    index = database.catalog.index("ix")
    index_pairs = sorted(
        (key[0], rid) for key, rid in index.range_scan(None, None)
    )
    heap_pairs = sorted(
        (row[0], rid) for rid, row in database.table("t").scan()
    )
    assert index_pairs == heap_pairs


@given(dml_scripts())
@settings(max_examples=60)
def test_minmax_with_repair_stays_absolute(operations):
    database = Database()
    database.create_table(
        TableSchema("t", [Column("k", INTEGER), Column("v", INTEGER)])
    )
    registry = SoftConstraintRegistry(database)
    constraint = MinMaxSC("mm", "t", "v", 0, 0)
    registry.register(constraint, policy=RepairPolicy(), activate=True)
    for operation in operations:
        if operation[0] == "insert":
            database.insert("t", [operation[1], operation[2]])
    violations, _ = constraint.verify(database)
    assert violations == 0  # widening repair keeps it absolute
