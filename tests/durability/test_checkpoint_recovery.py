"""Unit tests for checkpoints and the recovery path: atomic install,
CRC-guarded load, winner/loser transaction replay, storage verification
with index rebuild/quarantine, and post-recovery ASC re-validation."""

import pytest

from repro.api import SoftDB
from repro.durability.checkpoint import load_checkpoint, write_checkpoint
from repro.errors import (
    IndexCorruptionError,
    TransactionError,
    WALCorruptionError,
)
from repro.optimizer.planner import OptimizerConfig
from repro.resilience.faults import CrashSchedule, SimulatedCrash
from repro.softcon.base import SCState
from repro.softcon.maintenance import RepairPolicy
from repro.softcon.minmax import MinMaxSC


def build_durable(path, **kwargs) -> SoftDB:
    db = SoftDB.open(path, **kwargs)
    db.execute("CREATE TABLE emp (id INT PRIMARY KEY, salary INT)")
    db.execute(
        "INSERT INTO emp VALUES "
        + ", ".join(f"({n}, {1000 + n * 10})" for n in range(50))
    )
    db.execute("CREATE INDEX ix_emp_salary ON emp (salary)")
    return db


def rows_of(db: SoftDB):
    return sorted(
        (row["id"], row["salary"])
        for row in db.query("SELECT id, salary FROM emp")
    )


# -- checkpoint file format --------------------------------------------------


def test_checkpoint_write_load_roundtrip(tmp_path):
    payload = {"wal_offset": 123, "tables": [], "sequence": 1}
    target = tmp_path / "checkpoint.img"
    write_checkpoint(target, payload)
    assert load_checkpoint(target) == payload


def test_checkpoint_load_rejects_corruption(tmp_path):
    target = tmp_path / "checkpoint.img"
    write_checkpoint(target, {"wal_offset": 0})
    data = bytearray(target.read_bytes())
    data[-1] ^= 0xFF
    target.write_bytes(bytes(data))
    with pytest.raises(WALCorruptionError):
        load_checkpoint(target)


def test_checkpoint_crash_leaves_previous_image_installed(tmp_path):
    target = tmp_path / "checkpoint.img"
    write_checkpoint(target, {"wal_offset": 1, "generation": "old"})
    schedule = CrashSchedule(seed=1).add("checkpoint_write", at_visit=1)
    with pytest.raises(SimulatedCrash):
        write_checkpoint(
            target, {"wal_offset": 2, "generation": "new"}, schedule
        )
    # The tmp file may linger, but the installed image is the old one.
    assert load_checkpoint(target)["generation"] == "old"


# -- recovery: transactions --------------------------------------------------


def test_uncommitted_records_are_skipped(tmp_path):
    from repro.engine.row import RowId

    db = build_durable(tmp_path)
    manager = db.durability
    before = rows_of(db)
    # Forge a statement that crashed before its commit record: tagged
    # records with no commit must be invisible to recovery.
    txn_id = manager._begin()
    manager.log_insert("emp", RowId(99, 0), (999, 999))
    manager._txn_stack.pop()
    manager._flush_run()
    manager.wal.flush()
    assert txn_id is not None
    recovered = SoftDB.open(tmp_path)
    assert recovered.durability.last_recovery["skipped"] == 1
    assert rows_of(recovered) == before


def test_explicit_transaction_rollback_leaves_no_replayable_trace(tmp_path):
    from repro.engine.transactions import Transaction

    db = build_durable(tmp_path)
    before = rows_of(db)
    txn = Transaction(db.database)
    txn.insert("emp", (500, 9000))
    txn.insert("emp", (501, 9100))
    txn.rollback()
    assert rows_of(db) == before
    recovered = SoftDB.open(tmp_path)
    assert rows_of(recovered) == before


def test_checkpoint_refuses_open_transaction(tmp_path):
    from repro.engine.transactions import Transaction

    db = build_durable(tmp_path)
    txn = Transaction(db.database)
    txn.insert("emp", (500, 9000))
    with pytest.raises(TransactionError):
        db.checkpoint()
    txn.commit()
    assert db.checkpoint() >= 1


# -- recovery: storage verification ------------------------------------------


def test_recovery_rebuilds_mismatching_index(tmp_path):
    db = build_durable(tmp_path)
    db.close()
    recovered = SoftDB.open(tmp_path)
    # Damage the restored index in memory and re-run verification: the
    # heap cross-check must notice and rebuild it.
    index = recovered.database.catalog.index("ix_emp_salary")
    index._keys.pop(3)
    index._rids.pop(3)
    index.checksum = index.compute_checksum()
    summary = {"indexes_rebuilt": [], "indexes_quarantined": [], "warnings": []}
    recovered.durability._verify_storage(summary)
    assert summary["indexes_rebuilt"] == ["ix_emp_salary"]
    assert len(index._keys) == 50
    index.verify()


def test_recovery_quarantines_index_when_rebuild_fails(tmp_path, monkeypatch):
    db = build_durable(tmp_path)
    db.close()
    recovered = SoftDB.open(tmp_path)
    index = recovered.database.catalog.index("ix_emp_salary")
    index._keys.pop(0)
    index._rids.pop(0)
    index.checksum = index.compute_checksum()

    def failing_rebuild(name):
        raise IndexCorruptionError("rebuild failed too", index_name=name)

    monkeypatch.setattr(recovered.database, "rebuild_index", failing_rebuild)
    summary = {"indexes_rebuilt": [], "indexes_quarantined": [], "warnings": []}
    recovered.durability._verify_storage(summary)
    assert summary["indexes_quarantined"] == ["ix_emp_salary"]
    assert index.quarantined


# -- recovery: ASC re-validation ---------------------------------------------


def test_recovered_asc_contradicting_data_is_overturned(tmp_path):
    db = build_durable(tmp_path)
    # Adopt (recovery-style, no checks) an ACTIVE absolute ASC whose
    # bounds the actual data violates, then run the re-validation pass.
    wrong = MinMaxSC("emp_salary_range", "emp", "salary", 0, 1100, 1.0)
    wrong.state = SCState.ACTIVE
    db.registry.adopt(wrong)
    summary = {"asc_actions": [], "warnings": []}
    db.durability._revalidate_soft_constraints(summary)
    assert summary["asc_actions"], "re-validation must have acted"
    assert not wrong.usable_in_rewrite
    # DropPolicy (the default) overturns: ACTIVE -> VIOLATED.
    assert wrong.state is SCState.VIOLATED


def test_recovered_asc_is_repaired_into_consistency(tmp_path):
    db = build_durable(tmp_path)
    wrong = MinMaxSC("emp_salary_range", "emp", "salary", 0, 1100, 1.0)
    wrong.state = SCState.ACTIVE
    db.registry.adopt(wrong, policy=RepairPolicy())
    summary = {"asc_actions": [], "warnings": []}
    db.durability._revalidate_soft_constraints(summary)
    # RepairPolicy widens: the constraint stays absolute and now covers
    # every stored salary, so a second pass finds nothing.
    assert wrong.state is SCState.ACTIVE
    assert wrong.high >= 1000 + 49 * 10
    again = {"asc_actions": [], "warnings": []}
    db.durability._revalidate_soft_constraints(again)
    assert again["asc_actions"] == []


def test_consistent_asc_survives_revalidation_untouched(tmp_path):
    db = build_durable(tmp_path)
    db.add_soft_constraint(
        MinMaxSC("emp_salary_range", "emp", "salary", 0, 10_000, 1.0)
    )
    db.close()
    recovered = SoftDB.open(tmp_path)
    sc = recovered.registry.get("emp_salary_range")
    assert sc.state is SCState.ACTIVE
    assert recovered.durability.last_recovery["asc_actions"] == []
    assert (sc.low, sc.high) == (0, 10_000)


# -- recovery: session state --------------------------------------------------


def test_feedback_state_survives_checkpoint(tmp_path):
    config = OptimizerConfig(collect_feedback=True)
    db = build_durable(tmp_path, config=config)
    db.runstats_all()
    for _ in range(3):
        db.execute("SELECT id FROM emp WHERE salary > 1200")
    assert db.feedback.observations > 0
    snapshot = db.feedback.snapshot()
    db.close()
    recovered = SoftDB.open(tmp_path, config=OptimizerConfig(collect_feedback=True))
    assert recovered.feedback.snapshot() == snapshot


def test_constraint_sequence_survives_reopen(tmp_path):
    db = SoftDB.open(tmp_path)
    db.execute("CREATE TABLE t (a INT PRIMARY KEY, b INT UNIQUE)")
    sequence = db._constraint_sequence
    assert sequence >= 2
    db.close()
    recovered = SoftDB.open(tmp_path)
    assert recovered._constraint_sequence == sequence


def test_exception_table_binding_survives_crash(tmp_path):
    db = build_durable(tmp_path)
    db.execute(
        "CREATE SUMMARY TABLE high_paid AS "
        "(SELECT * FROM emp WHERE salary > 1400)"
    )
    exceptions_before = sorted(
        db.database.table("high_paid").scan_rows()
    )
    # No close(): simulate a crash and recover from the WAL alone.
    recovered = SoftDB.open(tmp_path)
    assert "high_paid" in recovered.database.catalog.summary_tables()
    assert sorted(
        recovered.database.table("high_paid").scan_rows()
    ) == exceptions_before
    # The binding is live again: new violations keep materializing.
    # (The AST's rule is NOT (salary > 1400); a 9999 salary violates it
    # and must land in the recovered exception table.)
    recovered.execute("INSERT INTO emp VALUES (900, 9999)")
    assert (900, 9999) in set(
        recovered.database.table("high_paid").scan_rows()
    )
