"""Unit tests for the write-ahead log: framing, scan, torn tails,
mid-log corruption, and the deterministic ``wal_append`` crash site."""

import pytest

from repro.durability.wal import WriteAheadLog, _decode_line, _frame
from repro.errors import WALCorruptionError
from repro.resilience.faults import CrashSchedule, SimulatedCrash


def test_append_scan_roundtrip(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    records = [
        {"op": "insert", "table": "t", "rid": [0, n], "row": [n, None]}
        for n in range(25)
    ]
    for record in records:
        wal.append(record)
    wal.flush()
    scanned, end_offset, torn = wal.scan()
    assert scanned == records
    assert not torn
    assert end_offset == (tmp_path / "wal.log").stat().st_size
    # Scanning from an intermediate offset yields the suffix.
    prefix = sum(len(_frame(record)) for record in records[:10])
    suffix, _, _ = wal.scan(prefix)
    assert suffix == records[10:]
    wal.close()


def test_scan_survives_reopen(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    wal.append({"op": "commit", "txn": 1})
    wal.close()
    reopened = WriteAheadLog(tmp_path / "wal.log")
    scanned, _, torn = reopened.scan()
    assert scanned == [{"op": "commit", "txn": 1}] and not torn
    reopened.close()


def test_torn_final_record_is_tolerated_and_truncated(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append({"op": "insert", "table": "t", "rid": [0, 0], "row": [1]})
    wal.append({"op": "commit", "txn": 1})
    wal.flush()
    intact_size = path.stat().st_size
    # Simulate a torn write: half of a final record, no newline.
    with open(path, "ab") as handle:
        torn_line = _frame({"op": "insert", "table": "t", "rid": [0, 1], "row": [2]})
        handle.write(torn_line[: len(torn_line) // 2])
    records, end_offset, torn = wal.scan()
    assert torn
    assert end_offset == intact_size
    assert [record["op"] for record in records] == ["insert", "commit"]
    wal.truncate_to(end_offset)
    assert path.stat().st_size == intact_size
    # After truncation the log is clean again and still appendable.
    wal.append({"op": "abort", "txn": 2})
    records, _, torn = wal.scan()
    assert not torn
    assert [record["op"] for record in records] == ["insert", "commit", "abort"]
    wal.close()


def test_corrupt_final_record_with_newline_counts_as_torn(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append({"op": "commit", "txn": 1})
    wal.flush()
    good_size = path.stat().st_size
    line = bytearray(_frame({"op": "commit", "txn": 2}))
    line[3] = ord("f") if line[3] != ord("f") else ord("0")  # break the CRC
    with open(path, "ab") as handle:
        handle.write(bytes(line))
    records, end_offset, torn = wal.scan()
    assert torn and end_offset == good_size
    assert records == [{"op": "commit", "txn": 1}]
    wal.close()


def test_mid_log_corruption_raises(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append({"op": "commit", "txn": 1})
    wal.append({"op": "commit", "txn": 2})
    wal.flush()
    data = bytearray(path.read_bytes())
    data[4] = data[4] ^ 0xFF  # flip a byte inside the FIRST record
    path.write_bytes(bytes(data))
    with pytest.raises(WALCorruptionError):
        wal.scan()
    wal.close()


def test_decode_line_rejects_malformed_frames():
    good = _frame({"op": "commit", "txn": 1}).rstrip(b"\n")
    assert _decode_line(good) == {"op": "commit", "txn": 1}
    assert _decode_line(b"") is None
    assert _decode_line(b"short") is None
    assert _decode_line(b"zzzzzzzz " + good[9:]) is None  # bad hex
    assert _decode_line(good[:-1]) is None  # payload truncated: CRC fails


def test_wal_append_crash_site_tears_the_record(tmp_path):
    path = tmp_path / "wal.log"
    schedule = CrashSchedule(seed=1).add("wal_append", at_visit=3)
    wal = WriteAheadLog(path, schedule)
    wal.append({"op": "insert", "table": "t", "rid": [0, 0], "row": [1]})
    wal.append({"op": "commit", "txn": 1})
    with pytest.raises(SimulatedCrash):
        wal.append({"op": "insert", "table": "t", "rid": [0, 1], "row": [2]})
    # The third record is half-written: a later scan sees a torn tail
    # covering exactly the two intact records.
    records, _, torn = wal.scan()
    assert torn
    assert len(records) == 2
    wal.close()
