"""Round-trip property tests for the durability serialization codecs.

Everything the WAL and checkpoints persist must decode back to an equal
object (identity) and encode to the same bytes again (checksum
stability) — the two properties the crash-differential harness leans on
when it compares a recovered database bit-for-bit against its twin.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability import codec
from repro.engine.database import Database
from repro.engine.row import RowId
from repro.engine.schema import Column, TableSchema
from repro.engine.types import SqlType
from repro.errors import WALCorruptionError
from repro.feedback.store import FeedbackStore
from repro.softcon.base import SCState
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.currency import CurrencyModel
from repro.softcon.fd import FunctionalDependencySC
from repro.softcon.holes import JoinHolesSC, Rectangle
from repro.softcon.joinlinear import JoinLinearSC
from repro.softcon.linear import LinearCorrelationSC
from repro.softcon.maintenance import (
    AsyncRepairPolicy,
    DropPolicy,
    RepairPolicy,
)
from repro.softcon.minmax import MinMaxSC

import pytest


#: Scalars the engine's type layer can store in a row: ints, finite
#: floats, strings, booleans, NULLs.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=20),
)


@given(st.lists(scalars, max_size=8))
@settings(max_examples=200, deadline=None)
def test_row_roundtrip_identity_and_stability(values):
    row = tuple(values)
    encoded = codec.encode_row(row)
    decoded = codec.decode_row(encoded)
    assert decoded == row
    assert all(type(a) is type(b) for a, b in zip(decoded, row))
    # Byte-stable: same logical row, same canonical bytes, same CRC.
    assert codec.canonical_dumps(encoded) == codec.canonical_dumps(
        codec.encode_row(decoded)
    )
    assert codec.crc_of(encoded) == codec.crc_of(codec.encode_row(decoded))


def test_row_roundtrip_negative_zero_and_bool_vs_int():
    row = (-0.0, 0.0, True, 1, False, 0)
    decoded = codec.decode_row(codec.encode_row(row))
    assert decoded == row
    assert math.copysign(1.0, decoded[0]) == -1.0
    assert type(decoded[2]) is bool and type(decoded[3]) is int


@given(st.integers(0, 10_000), st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_rid_roundtrip(page_id, slot_no):
    rid = RowId(page_id, slot_no)
    assert codec.decode_rid(codec.encode_rid(rid)) == rid


def _schema():
    return TableSchema(
        "t",
        [
            Column("a", SqlType("INTEGER"), nullable=False),
            Column("b", SqlType("VARCHAR", 30)),
            Column("c", SqlType("DOUBLE")),
            Column("d", SqlType("BOOLEAN")),
        ],
    )


def test_schema_roundtrip():
    schema = _schema()
    decoded = codec.decode_schema(codec.encode_schema(schema))
    assert decoded.name == schema.name
    assert [
        (c.name, c.type.kind, c.type.length, c.nullable)
        for c in decoded.columns
    ] == [
        (c.name, c.type.kind, c.type.length, c.nullable)
        for c in schema.columns
    ]


@given(
    st.lists(
        st.tuples(
            st.integers(-1000, 1000),
            st.one_of(st.none(), st.text(max_size=20)),
            st.floats(allow_nan=False, allow_infinity=False, width=64),
            st.one_of(st.none(), st.booleans()),
        ),
        min_size=1,
        max_size=30,
    ),
    st.lists(st.integers(0, 29), max_size=10),
)
@settings(max_examples=60, deadline=None)
def test_page_image_roundtrip(rows, delete_positions):
    """A page built by real inserts (and tombstoned by real deletes)
    round-trips: same slots, sizes, verified checksum, stable CRC."""
    database = Database()
    database.create_table(_schema())
    table = database.table("t")
    rids = [table.insert(row) for row in rows]
    for position in delete_positions:
        if position < len(rids) and rids[position] is not None:
            table.delete(rids[position])
            rids[position] = None
    for page in table.pages.pages:
        image = codec.encode_page(page)
        restored = codec.decode_page(image)
        assert restored.page_id == page.page_id
        assert restored.slots == page.slots
        assert restored.slot_sizes == page.slot_sizes
        assert restored.used_bytes == page.used_bytes
        restored.verify()
        assert codec.canonical_dumps(
            codec.encode_page(restored)
        ) == codec.canonical_dumps(image)


def test_page_image_crc_rejects_tampering():
    database = Database()
    database.create_table(_schema())
    table = database.table("t")
    table.insert((1, "x", 1.5, True))
    image = codec.encode_page(table.pages.pages[0])
    image["slots"][0][0] = 999
    with pytest.raises(WALCorruptionError):
        codec.decode_page(image)


def test_index_image_roundtrip():
    database = Database()
    database.create_table(_schema())
    table = database.table("t")
    for n in range(40):
        table_rid = table.insert((n, f"s{n}", float(n), n % 2 == 0))
        assert table_rid is not None
    index = database.create_index("ix_t_a", "t", ["a"])
    image = codec.encode_index(index)
    restored = codec.decode_index(image, table.schema, database.counters)
    assert restored.name == index.name
    assert restored._keys == index._keys
    assert restored._rids == index._rids
    assert restored.unique == index.unique
    restored.verify()
    assert codec.canonical_dumps(
        codec.encode_index(restored)
    ) == codec.canonical_dumps(image)
    image["rids"][0] = [999, 999]
    with pytest.raises(WALCorruptionError):
        codec.decode_index(image, table.schema, database.counters)


def _soft_constraints():
    yield MinMaxSC("mm", "t", "a", -5, 120, 0.97)
    yield CheckSoftConstraint("ck", "t", "a > 0 AND c < 100.5", 0.9)
    yield FunctionalDependencySC("fd", "t", ["a"], ["b", "c"], 1.0)
    yield LinearCorrelationSC("lc", "t", "a", "c", 2.0, -1.0, 0.25, 0.88)
    yield JoinHolesSC(
        "jh", "t", "a", "u", "x", "id", "t_id",
        holes=[Rectangle(0, 10, 5, 25), Rectangle(30, 40, 0, 1)],
        confidence=1.0,
    )
    yield JoinLinearSC("jl", "t", "a", "u", "x", "id", "t_id", 1.5, 0.0, 3.0, 0.75)


@pytest.mark.parametrize(
    "sc", list(_soft_constraints()), ids=lambda sc: sc.name
)
def test_soft_constraint_roundtrip(sc):
    sc.state = SCState.ACTIVE
    sc.updates_since_verified = 7
    sc.verified_epoch = 3
    sc.violation_count = 2
    sc.validity_version = 4
    sc.values_version = 9
    image = codec.encode_soft_constraint(sc)
    restored = codec.decode_soft_constraint(image)
    assert type(restored) is type(sc)
    assert restored.name == sc.name
    assert restored.state is sc.state
    assert restored.confidence == sc.confidence
    assert restored.updates_since_verified == 7
    assert restored.verified_epoch == 3
    assert restored.violation_count == 2
    assert restored.validity_version == 4
    assert restored.values_version == 9
    assert restored.statement_sql() == sc.statement_sql()
    assert codec.canonical_dumps(
        codec.encode_soft_constraint(restored)
    ) == codec.canonical_dumps(image)


def test_policy_roundtrip():
    assert codec.decode_policy(codec.encode_policy(None)) is None
    assert isinstance(
        codec.decode_policy(codec.encode_policy(DropPolicy())), DropPolicy
    )
    repair = codec.decode_policy(codec.encode_policy(RepairPolicy()))
    assert isinstance(repair, RepairPolicy)
    assert not isinstance(repair, AsyncRepairPolicy)
    sc = MinMaxSC("mm", "t", "a", 0, 1, 1.0)
    policy = AsyncRepairPolicy(drop_threshold=0.7)
    policy.queue.append(sc)
    image = codec.encode_policy(policy)
    assert image["queue"] == ["mm"]
    restored = codec.decode_policy(image)
    assert isinstance(restored, AsyncRepairPolicy)
    assert restored.drop_threshold == 0.7
    # The queue is re-resolved by name at restore time, not by the codec.
    assert restored.queue == []


def test_currency_roundtrip():
    assert codec.decode_currency(codec.encode_currency(None)) is None
    model = CurrencyModel(500)
    for _ in range(17):
        model.record_update()
    restored = codec.decode_currency(codec.encode_currency(model))
    assert restored.row_count == model.row_count
    assert restored.updates_seen == model.updates_seen
    assert restored.total_updates == model.total_updates
    assert restored.margin_of_error == model.margin_of_error


def test_feedback_store_state_roundtrip():
    store = FeedbackStore()
    store.record_scan("emp", "sig-a", 10.0, 25.0)
    store.record_scan("emp", "sig-a", 12.0, 30.0)
    store.record_index_range("emp", "ix", "rng", 7.0)
    store.record_join("edge", 0.01, 0.04, tables=("emp", "dept"))
    store.record_group("grp", 5.0, 8.0)
    store.record_base_rows("emp", 500.0)
    store.record_guard_trip("rows", ("emp",))
    state = store.state_dict()
    restored = FeedbackStore()
    restored.load_state(state)
    assert restored.scan_rows("emp", "sig-a") == store.scan_rows(
        "emp", "sig-a"
    )
    assert restored.matching_rows("emp", "ix", "rng") == 7.0
    assert restored.join_selectivity("edge") == store.join_selectivity("edge")
    assert restored.group_rows("grp") == store.group_rows("grp")
    assert restored.base_rows("emp") == 500.0
    assert restored.snapshot() == store.snapshot()
    # Canonical-byte stability: a load/dump cycle is the identity.
    assert codec.canonical_dumps(
        restored.state_dict()
    ) == codec.canonical_dumps(state)
    # EWMA continuation: recording the same next observation on both
    # stores keeps them equal (the moving average state survived).
    store.record_scan("emp", "sig-a", 20.0, 40.0)
    restored.record_scan("emp", "sig-a", 20.0, 40.0)
    assert restored.scan_rows("emp", "sig-a") == store.scan_rows(
        "emp", "sig-a"
    )
    assert codec.canonical_dumps(
        restored.state_dict()
    ) == codec.canonical_dumps(store.state_dict())
