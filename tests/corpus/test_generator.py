"""The corpus generator: size, stability, syntax coverage, parseability."""

import pytest

from repro.corpus.generator import (
    CorpusGenerator,
    corpus_text,
    generate_corpus,
)
from repro.sql.parser import parse_statement

CORPUS = generate_corpus(seed=11)


def test_at_least_one_hundred_queries():
    assert len(CORPUS) >= 100


def test_query_ids_unique_and_stable_format():
    ids = [query.query_id for query in CORPUS]
    assert len(set(ids)) == len(ids)
    assert ids == sorted(ids)
    assert all(id_.startswith("q") and id_[1:].isdigit() for id_ in ids)


def test_every_query_parses():
    for query in CORPUS:
        parse_statement(query.sql)  # raises on any dialect drift


def test_same_seed_same_corpus_text():
    again = generate_corpus(seed=11)
    assert corpus_text(CORPUS) == corpus_text(again)


def test_different_seed_different_constants():
    other = generate_corpus(seed=12)
    assert [q.query_id for q in other] == [q.query_id for q in CORPUS]
    assert corpus_text(other) != corpus_text(CORPUS)


def test_both_join_syntaxes_emitted():
    join_sqls = [
        q.sql for q in CORPUS if q.family.startswith("join_")
    ]
    explicit = [sql for sql in join_sqls if " JOIN " in sql]
    comma = [
        sql for sql in join_sqls
        if " JOIN " not in sql and ", " in sql.split(" WHERE ")[0]
    ]
    assert explicit, "no explicit JOIN ... ON variants in the corpus"
    assert comma, "no comma-WHERE join variants in the corpus"


def test_family_coverage():
    families = {query.family for query in CORPUS}
    assert {
        "sel_shipdate",
        "sel_charge",
        "sel_bounds",
        "sel_misc",
        "join_habit",
        "join_multi",
        "aggregate",
        "topk",
        "distinct",
    } <= families


def test_dialect_feature_coverage():
    text = corpus_text(CORPUS)
    for feature in ("GROUP BY", "HAVING", "ORDER BY", "LIMIT", "DISTINCT",
                    "BETWEEN", " IN (", "LIKE", "IS NULL", "IS NOT NULL"):
        assert feature in text, f"corpus never exercises {feature}"


def test_generator_instances_are_independent():
    first = CorpusGenerator(seed=5).generate()
    second = CorpusGenerator(seed=5).generate()
    assert first == second
