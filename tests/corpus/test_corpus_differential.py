"""Differential: every corpus query, batched+compiled vs the oracle.

The candidate is the full SC-on optimizer over the batched, compiled
executor; the oracle plans with no soft-constraint registry at all and
interprets row-at-a-time.  Every generated corpus query must produce the
same result multiset on both paths (rows compared order-insensitively,
floats quantized against summation-order noise).
"""

import pytest

from repro.corpus.generator import generate_corpus
from repro.executor.runtime import Executor
from repro.harness.classify import normalized_row_key
from repro.harness.runner import all_off
from repro.optimizer.planner import Optimizer
from repro.workload.tpc import build_tpc_db

pytestmark = pytest.mark.differential

CORPUS_SEED = 11


@pytest.fixture(scope="module")
def db():
    return build_tpc_db(scale_factor=0.15, seed=7)


@pytest.fixture(scope="module")
def oracle(db):
    optimizer = Optimizer(
        db.database, None, all_off(batch_size=0, compile_expressions=False)
    )
    executor = Executor(db.database, batch_size=0)
    return optimizer, executor


def _multiset(rows):
    return sorted(normalized_row_key(row) for row in rows)


@pytest.mark.parametrize(
    "query",
    generate_corpus(seed=CORPUS_SEED),
    ids=lambda query: f"{query.query_id}-{query.family}",
)
def test_corpus_query_matches_interpreted_oracle(query, db, oracle):
    candidate_plan = db.optimizer.optimize(query.sql)
    candidate = db.executor.execute(candidate_plan)
    oracle_optimizer, oracle_executor = oracle
    oracle_plan = oracle_optimizer.optimize(query.sql)
    expected = oracle_executor.execute(oracle_plan)
    assert candidate.row_count == expected.row_count, query.sql
    assert _multiset(candidate.tuples()) == _multiset(expected.tuples()), (
        query.sql
    )
