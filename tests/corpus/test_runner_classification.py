"""The corpus runner's classification protocol on a small warehouse.

Covers the routing table (structural -> FAIL, runtime -> ERROR), the
measured path (WIN with oracle validation), and guard truncation
(ceiling tagging + exclusion from measured aggregates).
"""

import pytest

from repro.corpus.generator import CorpusQuery
from repro.corpus.runner import CorpusRunner, run_corpus
from repro.harness.classify import (
    BOTH_TIMEOUT,
    CONFIDENCE_HIGH,
    CONFIDENCE_ZERO_ROW,
    ERROR,
    FAIL,
    MEASURED,
    NEUTRAL,
    VS_TIMEOUT_CEILING,
    WIN,
    summarize,
)
from repro.resilience.guards import QueryGuard
from repro.workload.schemas import YEAR_START
from repro.workload.tpc import TOTAL_HIGH, build_tpc_db


@pytest.fixture(scope="module")
def db():
    return build_tpc_db(scale_factor=0.3, seed=3)


@pytest.fixture(scope="module")
def runner(db):
    return CorpusRunner(db)


def _query(sql, query_id="qx", family="test"):
    return CorpusQuery(query_id, family, sql)


SHIP_RANGE_SQL = (
    f"SELECT id FROM orders "
    f"WHERE ship_date BETWEEN {YEAR_START + 100} AND {YEAR_START + 110}"
)


class TestFailRouting:
    def test_parse_error_is_fail(self, runner):
        outcome = runner.run_query(_query("SELECT FROM"))
        assert outcome.status == FAIL
        assert "ParseError" in outcome.error

    def test_unknown_table_is_fail(self, runner):
        outcome = runner.run_query(_query("SELECT x FROM no_such_table"))
        assert outcome.status == FAIL
        assert "no_such_table" in outcome.error

    def test_fail_carries_no_measurements(self, runner):
        outcome = runner.run_query(_query("SELECT FROM"))
        assert outcome.page_ratio is None
        assert outcome.validation is None


class TestErrorRouting:
    def test_runtime_division_by_zero_is_error(self, runner):
        outcome = runner.run_query(
            _query("SELECT 1 / (id - id) AS x FROM customer")
        )
        assert outcome.status == ERROR
        assert "division by zero" in outcome.error


class TestMeasuredPath:
    def test_ship_date_range_is_a_validated_win(self, runner):
        outcome = runner.run_query(_query(SHIP_RANGE_SQL))
        assert outcome.status == WIN
        assert outcome.speedup_type == MEASURED
        assert outcome.speedup == outcome.page_ratio > 1.10
        assert outcome.validation.confidence == CONFIDENCE_HIGH
        assert outcome.validation.ok
        assert outcome.qerror >= 1.0
        assert outcome.cached_wall_ratio is not None

    def test_out_of_range_predicate_is_zero_row_unverified(self, runner):
        outcome = runner.run_query(
            _query(
                f"SELECT id FROM orders WHERE total > {TOTAL_HIGH * 2}"
            )
        )
        assert outcome.row_count == 0
        assert outcome.validation.confidence == CONFIDENCE_ZERO_ROW

    def test_validation_switched_off(self, db):
        runner = CorpusRunner(db, validate=False)
        outcome = runner.run_query(_query(SHIP_RANGE_SQL))
        assert outcome.validation is None
        assert outcome.status == WIN

    def test_wall_metric_accepted(self, db):
        runner = CorpusRunner(db, metric="wall")
        outcome = runner.run_query(_query(SHIP_RANGE_SQL))
        assert outcome.speedup == outcome.wall_ratio

    def test_unknown_metric_rejected(self, db):
        with pytest.raises(ValueError):
            CorpusRunner(db, metric="cycles")


class TestCeilingTagging:
    def test_baseline_truncation_tags_vs_timeout_ceiling(self, db, runner):
        # Pick a guard ceiling between the candidate's page count and
        # the baseline's: SC-on completes, SC-off truncates.
        measured = runner.run_query(_query(SHIP_RANGE_SQL))
        ceiling = (measured.candidate_pages + measured.baseline_pages) // 2
        assert measured.candidate_pages < ceiling < measured.baseline_pages
        guarded = CorpusRunner(
            db, guard=QueryGuard(max_page_reads=ceiling, on_breach="partial")
        )
        outcome = guarded.run_query(_query(SHIP_RANGE_SQL))
        assert outcome.speedup_type == VS_TIMEOUT_CEILING
        assert outcome.ceiling_bounded
        # A truncated row set is not an answer: no validation, no
        # q-error, no cached axis.
        assert outcome.validation is None
        assert outcome.qerror is None
        assert outcome.cached_wall_ratio is None

    def test_both_truncated_pins_speedup_to_parity(self, db):
        guarded = CorpusRunner(
            db, guard=QueryGuard(max_page_reads=1, on_breach="partial")
        )
        outcome = guarded.run_query(
            _query("SELECT id FROM orders WHERE total > 0.0")
        )
        assert outcome.speedup_type == BOTH_TIMEOUT
        assert outcome.speedup == 1.0
        assert outcome.status == NEUTRAL

    def test_ceiling_outcomes_segregated_in_summary(self, db, runner):
        measured = runner.run_query(_query(SHIP_RANGE_SQL))
        ceiling = (measured.candidate_pages + measured.baseline_pages) // 2
        guarded = CorpusRunner(
            db, guard=QueryGuard(max_page_reads=ceiling, on_breach="partial")
        )
        truncated = guarded.run_query(_query(SHIP_RANGE_SQL))
        summary = summarize([measured, truncated])
        assert summary["measured_queries"] == 1
        assert summary["ceiling_bounded"] == 1
        assert summary["mean_measured_speedup"] == round(measured.speedup, 4)


class TestRunAndSummarize:
    def test_run_corpus_convenience(self, db):
        queries = [
            _query(SHIP_RANGE_SQL, "q001", "sel_shipdate"),
            _query("SELECT count(*) AS n FROM customer", "q002", "agg"),
        ]
        result = run_corpus(db, queries)
        assert len(result["outcomes"]) == 2
        assert result["summary"]["queries"] == 2
        assert result["summary"]["regressions"] == 0
        assert result["summary"]["validation_mismatches"] == 0
