"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.api import SoftDB
from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DATE, DOUBLE, INTEGER, VARCHAR


@pytest.fixture
def empty_database() -> Database:
    return Database()


@pytest.fixture
def people_database() -> Database:
    """A tiny two-table database used across engine tests."""
    database = Database()
    database.create_table(
        TableSchema(
            "person",
            [
                Column("id", INTEGER, nullable=False),
                Column("name", VARCHAR(30)),
                Column("age", INTEGER),
                Column("city_id", INTEGER),
            ],
        )
    )
    database.create_table(
        TableSchema(
            "city",
            [
                Column("id", INTEGER, nullable=False),
                Column("name", VARCHAR(30)),
            ],
        )
    )
    database.insert_many(
        "city", [(1, "toronto"), (2, "ottawa"), (3, "montreal")]
    )
    database.insert_many(
        "person",
        [
            (1, "ann", 34, 1),
            (2, "bob", 28, 1),
            (3, "cat", 45, 2),
            (4, "dan", None, 3),
            (5, "eve", 39, None),
        ],
    )
    return database


@pytest.fixture
def softdb() -> SoftDB:
    """An empty SoftDB session."""
    return SoftDB()


@pytest.fixture
def sales_softdb() -> SoftDB:
    """A populated SoftDB with a small sales table and statistics."""
    db = SoftDB()
    db.execute(
        "CREATE TABLE sale (id INT PRIMARY KEY, day INT, amount DOUBLE, "
        "region VARCHAR(10))"
    )
    rows = []
    regions = ["east", "west", "north", "south"]
    for n in range(200):
        rows.append((n, n % 50, float(n % 37) + 0.5, regions[n % 4]))
    db.database.insert_many("sale", rows)
    db.runstats_all()
    return db
