"""Failure injection: the system must degrade cleanly, never silently.

Covers dropped tables under live soft constraints, exception tables whose
base disappears, plans executed against changed schemas, and registry
behaviour at the edges of the lifecycle.
"""

import pytest

from repro import SoftDB
from repro.errors import (
    ExecutionError,
    SoftConstraintStateError,
    UnknownObjectError,
)
from repro.softcon.base import SCState
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.maintenance import AsyncRepairPolicy, DropPolicy


@pytest.fixture
def db() -> SoftDB:
    db = SoftDB()
    db.execute("CREATE TABLE t (a INT, b INT)")
    db.database.insert_many("t", [(n, 2 * n) for n in range(50)])
    db.runstats_all()
    return db


class TestDroppedObjects:
    def test_plan_against_dropped_table_fails_cleanly(self, db):
        plan = db.plan("SELECT a FROM t")
        db.execute("DROP TABLE t")
        with pytest.raises(UnknownObjectError):
            db.executor.execute(plan)

    def test_sc_on_dropped_table_survives_but_verify_fails(self, db):
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        db.add_soft_constraint(sc)
        db.execute("DROP TABLE t")
        with pytest.raises(UnknownObjectError):
            sc.verify(db.database)

    def test_dml_after_drop_does_not_crash_registry(self, db):
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        db.add_soft_constraint(sc)
        db.execute("DROP TABLE t")
        # A different table's DML still flows through the observer.
        db.execute("CREATE TABLE u (x INT)")
        db.execute("INSERT INTO u VALUES (1)")

    def test_exception_table_base_dropped(self, db):
        db.execute(
            "CREATE SUMMARY TABLE weird AS (SELECT * FROM t WHERE a > b)"
        )
        db.execute("DROP TABLE t")
        # The materialization still exists and is queryable on its own.
        rows = db.query("SELECT count(*) AS n FROM weird")
        assert rows[0]["n"] == 0


class TestLifecycleEdges:
    def test_dropped_sc_cannot_reactivate(self, db):
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        db.add_soft_constraint(sc)
        db.registry.drop("pos")
        with pytest.raises(SoftConstraintStateError):
            db.registry.activate("pos")

    def test_violated_sc_not_rechecked(self, db):
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        db.add_soft_constraint(sc, policy=DropPolicy())
        db.execute("INSERT INTO t VALUES (-1, 0)")
        assert sc.state is SCState.VIOLATED
        checks_before = db.registry.checks_performed
        db.execute("INSERT INTO t VALUES (-2, 0)")
        assert db.registry.checks_performed == checks_before

    def test_async_repair_of_dropped_constraint_skips(self, db):
        policy = AsyncRepairPolicy()
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        db.add_soft_constraint(sc, policy=policy)
        db.execute("INSERT INTO t VALUES (-1, 0)")
        sc.transition(SCState.DROPPED)
        outcomes = policy.run_pending(db.registry, db.database)
        assert outcomes == [("pos", "already-dropped")]

    def test_double_violation_single_overturn(self, db):
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        db.add_soft_constraint(sc, policy=DropPolicy())
        db.execute("INSERT INTO t VALUES (-1, 0), (-2, 0)")
        assert sc.state is SCState.VIOLATED
        assert db.registry.overturn_events == 1


class TestRuntimeFailures:
    def test_division_by_zero_in_query(self, db):
        from repro.errors import ExpressionError

        with pytest.raises(ExpressionError):
            db.query("SELECT a / 0 AS boom FROM t")

    def test_type_confusion_in_predicate(self, db):
        from repro.errors import ExpressionError

        db.execute("CREATE TABLE s (name VARCHAR(5))")
        db.execute("INSERT INTO s VALUES ('x')")
        with pytest.raises(ExpressionError):
            db.query("SELECT name FROM s WHERE name > 5")

    def test_rollback_restores_sc_relevant_state(self, db):
        """A rolled-back violating insert leaves the exception table as it
        was (the observer sees insert + compensating delete)."""
        from repro.engine.transactions import Transaction

        db.execute(
            "CREATE SUMMARY TABLE neg AS (SELECT * FROM t WHERE a < 0)"
        )
        before = db.database.table("neg").row_count
        txn = Transaction(db.database)
        txn.insert("t", [-5, 0])
        assert db.database.table("neg").row_count == before + 1
        txn.rollback()
        assert db.database.table("neg").row_count == before

    def test_unknown_summary_table_errors(self, db):
        with pytest.raises(UnknownObjectError):
            db.database.catalog.summary_table("ghost")
