"""The TPC-style warehouse: planted characteristics actually hold."""

import pytest

from repro.engine.constraints import ConstraintMode, ForeignKeyConstraint
from repro.softcon.base import SCState
from repro.workload.schemas import YEAR_START
from repro.workload.tpc import (
    CHARGE_EPS,
    CHARGE_SLOPE,
    DATE_DAYS,
    QUANTITY_HIGH,
    QUANTITY_LOW,
    SHIP_LAG_EPS,
    TOTAL_HIGH,
    TOTAL_LOW,
    TpcScale,
    build_tpc_db,
    table_snapshot,
)


@pytest.fixture(scope="module")
def db():
    return build_tpc_db(scale_factor=0.1, seed=5)


@pytest.fixture(scope="module")
def snapshot(db):
    return table_snapshot(db)


class TestScale:
    def test_linear_scaling(self):
        full = TpcScale.of(1.0)
        half = TpcScale.of(0.5)
        assert full.orders == 3000 and full.lineitems == 9000
        assert half.orders == 1500

    def test_floors_hold_at_tiny_scale(self):
        tiny = TpcScale.of(0.0001)
        assert tiny.customers >= 10
        assert tiny.lineitems >= 120

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(ValueError):
            TpcScale.of(0.0)


class TestPlantedCharacteristics:
    def test_ship_lag_within_window(self, snapshot):
        for row in snapshot["orders"]:
            order_date, ship_date = row[2], row[3]
            assert 0 <= ship_date - order_date <= 2 * SHIP_LAG_EPS
            assert YEAR_START <= order_date < YEAR_START + DATE_DAYS

    def test_charge_tracks_price_within_band(self, snapshot):
        for row in snapshot["lineitem"]:
            price, charge = row[5], row[7]
            assert abs(charge - CHARGE_SLOPE * price) <= CHARGE_EPS + 1e-3

    def test_hard_bounds_hold(self, snapshot):
        for row in snapshot["orders"]:
            assert TOTAL_LOW <= row[5] <= TOTAL_HIGH
        for row in snapshot["lineitem"]:
            assert QUANTITY_LOW <= row[4] <= QUANTITY_HIGH

    def test_foreign_keys_skewed_toward_low_ids(self, snapshot, db):
        parts = len(snapshot["part"])
        low_half = sum(
            1 for row in snapshot["lineitem"] if row[2] < parts // 2
        )
        assert low_half > 0.6 * len(snapshot["lineitem"])

    def test_some_customer_balances_are_null(self, snapshot):
        assert any(row[4] is None for row in snapshot["customer"])

    def test_heaps_clustered_on_indexed_columns(self, snapshot):
        order_dates = [row[2] for row in snapshot["orders"]]
        assert order_dates == sorted(order_dates)
        charges = [row[7] for row in snapshot["lineitem"]]
        assert charges == sorted(charges)


class TestRegisteredMetadata:
    def test_soft_constraints_active_and_absolute(self, db):
        for name in (
            "sc_orders_ship_lag",
            "sc_lineitem_charge",
            "sc_orders_total",
            "sc_lineitem_qty",
        ):
            constraint = db.registry.get(name)
            assert constraint.state is SCState.ACTIVE
            assert constraint.is_absolute
            assert constraint.usable_in_rewrite

    def test_foreign_keys_informational(self, db):
        fks = [
            constraint
            for table in ("orders", "lineitem")
            for constraint in db.database.catalog.constraints_on(table)
            if isinstance(constraint, ForeignKeyConstraint)
        ]
        assert len(fks) == 4
        assert all(
            fk.mode is ConstraintMode.INFORMATIONAL for fk in fks
        )

    def test_no_registration_leaves_data_only(self):
        bare = build_tpc_db(
            scale_factor=0.05, seed=5, register_soft_constraints=False
        )
        assert not list(bare.registry.all())

    def test_referential_integrity_despite_not_enforced(self, snapshot):
        customer_ids = {row[0] for row in snapshot["customer"]}
        order_ids = {row[0] for row in snapshot["orders"]}
        assert all(row[1] in customer_ids for row in snapshot["orders"])
        assert all(row[1] in order_ids for row in snapshot["lineitem"])


class TestStarWorkloadSatellite:
    def test_both_join_syntaxes_emitted(self):
        from repro.workload.queries import star_workload

        workload = star_workload()
        sqls = [entry.sql for entry in workload.queries]
        assert len(sqls) == 6
        assert sum(1 for sql in sqls if " JOIN " in sql) == 3
        assert sum(1 for sql in sqls if " JOIN " not in sql) == 3

    def test_legacy_comma_only_mode(self):
        from repro.workload.queries import star_workload

        workload = star_workload(include_explicit_joins=False)
        sqls = [entry.sql for entry in workload.queries]
        assert len(sqls) == 3
        assert all(" JOIN " not in sql for sql in sqls)
