"""Tests for the scenario builders: planted characteristics must hold."""

import pytest

from repro.softcon.checksc import CheckSoftConstraint
from repro.workload.datagen import DataGenerator
from repro.workload.schemas import (
    SHIP_WINDOW_DAYS,
    YEAR_START,
    build_correlated_table,
    build_denormalized_orders,
    build_join_hole_scenario,
    build_monthly_union_scenario,
    build_project_table,
    build_purchase_scenario,
    build_star_schema,
)


class TestDeterminism:
    def test_same_seed_same_data(self):
        first = build_correlated_table(rows=200, seed=5)
        second = build_correlated_table(rows=200, seed=5)
        assert list(first.database.table("meas").scan_rows()) == list(
            second.database.table("meas").scan_rows()
        )

    def test_different_seed_different_data(self):
        first = build_correlated_table(rows=200, seed=5)
        second = build_correlated_table(rows=200, seed=6)
        assert list(first.database.table("meas").scan_rows()) != list(
            second.database.table("meas").scan_rows()
        )


class TestPlantedCharacteristics:
    def test_correlation_tightness(self):
        db = build_correlated_table(rows=500, slope=3.0, intercept=10.0, noise=2.0)
        for row in db.database.scan_dicts("meas"):
            assert abs(row["a"] - (3.0 * row["b"] + 10.0)) <= 2.0

    def test_star_schema_referential_integrity(self):
        db = build_star_schema(facts=500, customers=20, products=10)
        customer_ids = {row["id"] for row in db.database.scan_dicts("customer")}
        for row in db.database.scan_dicts("sales"):
            assert row["customer_id"] in customer_ids

    def test_monthly_partitions_respect_ranges(self):
        db, tables = build_monthly_union_scenario(months=3, rows_per_month=100)
        for month, name in enumerate(tables):
            low = YEAR_START + month * 30
            for row in db.database.scan_dicts(name):
                assert low <= row["day"] <= low + 29

    def test_join_hole_exists(self):
        db = build_join_hole_scenario(rows_per_table=1500, seed=2)
        count = db.query(
            "SELECT count(*) AS n FROM orders o, deliveries d "
            "WHERE o.region_id = d.region_id AND o.lead_time > 25.0 "
            "AND d.distance > 25.0"
        )[0]["n"]
        assert count == 0

    def test_project_duration_mix(self):
        db = build_project_table(rows=2000, long_fraction=0.1, seed=3)
        durations = [
            row["end_date"] - row["start_date"]
            for row in db.database.scan_dicts("project")
        ]
        short = sum(1 for d in durations if d <= 30)
        assert short / len(durations) == pytest.approx(0.9, abs=0.03)

    def test_purchase_exception_rate(self):
        db = build_purchase_scenario(rows=3000, exception_rate=0.05, seed=4)
        rule = CheckSoftConstraint(
            "r", "purchase",
            f"ship_date <= order_date + {SHIP_WINDOW_DAYS}",
        )
        violations, total = rule.verify(db.database)
        assert violations / total == pytest.approx(0.05, abs=0.02)

    def test_purchase_clustered_on_order_date(self):
        db = build_purchase_scenario(rows=3000, seed=4)
        index = db.database.catalog.index("idx_purchase_od")
        assert index.cluster_ratio() > 0.9

    def test_denormalized_fds_hold(self):
        db = build_denormalized_orders(rows=1000, cities=20, states=4)
        seen = {}
        for row in db.database.scan_dicts("orders"):
            state = seen.setdefault(row["city_id"], row["state_id"])
            assert state == row["state_id"]


class TestDataGenerator:
    def test_duration_days_bounds(self):
        generator = DataGenerator(1)
        for _ in range(200):
            duration = generator.duration_days(short_max=30, long_max=100)
            assert 1 <= duration <= 100

    def test_value_outside_hole(self):
        generator = DataGenerator(1)
        for _ in range(200):
            value = generator.value_outside_hole(0, 100, 40, 60)
            assert 0 <= value <= 100
            assert not (40 < value < 60)

    def test_value_outside_hole_rejects_full_cover(self):
        generator = DataGenerator(1)
        with pytest.raises(ValueError):
            generator.value_outside_hole(0, 10, -1, 11)

    def test_skewed_category_prefers_low_ranks(self):
        generator = DataGenerator(1)
        draws = [generator.skewed_category(10) for _ in range(2000)]
        assert draws.count(0) > draws.count(9)

    def test_statistics_collected_by_builders(self):
        db = build_correlated_table(rows=100)
        assert db.database.catalog.statistics("meas") is not None
