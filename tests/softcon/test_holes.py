"""Tests for join-hole soft constraints: trimming, verify, repair."""

import pytest

from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DOUBLE, INTEGER
from repro.expr.intervals import Interval
from repro.softcon.holes import JoinHolesSC, Rectangle


@pytest.fixture
def sc() -> JoinHolesSC:
    return JoinHolesSC(
        "holes",
        table_one="one",
        column_a="a",
        table_two="two",
        column_b="b",
        join_column_one="j",
        join_column_two="j",
        holes=[Rectangle(25.0, 50.0, 25.0, 50.0)],
    )


class TestRectangle:
    def test_contains_point(self):
        rect = Rectangle(0, 10, 0, 10)
        assert rect.contains_point(5, 5)
        assert rect.contains_point(0, 10)
        assert not rect.contains_point(11, 5)
        assert not rect.contains_point(5, -1)

    def test_none_never_inside(self):
        rect = Rectangle(0, 10, 0, 10)
        assert not rect.contains_point(None, 5)

    def test_area(self):
        assert Rectangle(0, 4, 0, 5).area() == 20.0


class TestTrim:
    def test_trim_high_edge_of_a(self, sc):
        # Query box a in [0, 50] x b in [30, 40]: the hole covers the whole
        # b-range, so a can be trimmed to [0, 25).
        a_range, b_range = sc.trim(Interval(0.0, 50.0), Interval(30.0, 40.0))
        assert a_range.high == 25.0 and not a_range.high_inclusive
        assert b_range == Interval(30.0, 40.0)

    def test_trim_low_edge(self, sc):
        a_range, _ = sc.trim(Interval(30.0, 80.0), Interval(30.0, 40.0))
        assert a_range.low == 50.0 and not a_range.low_inclusive

    def test_query_inside_hole_becomes_empty(self, sc):
        a_range, b_range = sc.trim(Interval(30.0, 40.0), Interval(30.0, 40.0))
        assert a_range.is_empty or b_range.is_empty

    def test_no_trim_when_hole_does_not_span(self, sc):
        # b range extends past the hole: cannot trim a.
        a_range, b_range = sc.trim(Interval(0.0, 50.0), Interval(10.0, 40.0))
        assert a_range == Interval(0.0, 50.0)
        assert b_range == Interval(10.0, 40.0)

    def test_interior_hole_cannot_trim(self, sc):
        # Hole strictly inside the a-range (touches neither edge).
        a_range, _ = sc.trim(Interval(0.0, 80.0), Interval(30.0, 40.0))
        assert a_range == Interval(0.0, 80.0)

    def test_iterative_trimming(self):
        sc = JoinHolesSC(
            "holes2", "one", "a", "two", "b", "j", "j",
            holes=[
                Rectangle(40.0, 60.0, 0.0, 100.0),  # trims a to [0,40)
                Rectangle(0.0, 100.0, 80.0, 100.0),  # trims b to [0,80)
            ],
        )
        a_range, b_range = sc.trim(Interval(0.0, 60.0), Interval(50.0, 100.0))
        assert a_range.high == 40.0
        assert b_range.high == 80.0

    def test_trim_never_loses_answers(self, sc):
        # Points outside the hole must stay inside the trimmed box.
        points = [(10.0, 35.0), (20.0, 39.9), (24.9, 30.0)]
        a_range, b_range = sc.trim(Interval(0.0, 50.0), Interval(30.0, 40.0))
        for a, b in points:
            assert a_range.contains(a) and b_range.contains(b)


class TestVerifyAndRepair:
    @pytest.fixture
    def database(self) -> Database:
        db = Database()
        db.create_table(
            TableSchema(
                "one", [Column("j", INTEGER), Column("a", DOUBLE)]
            )
        )
        db.create_table(
            TableSchema(
                "two", [Column("j", INTEGER), Column("b", DOUBLE)]
            )
        )
        for n in range(20):
            db.insert("one", [n, 10.0])
            db.insert("two", [n, 10.0])
        return db

    def test_verify_clean(self, sc, database):
        violations, total = sc.verify(database)
        assert violations == 0 and total == 20

    def test_verify_detects_pair_in_hole(self, sc, database):
        database.insert("one", [0, 30.0])
        database.insert("two", [0, 30.0])
        violations, _ = sc.verify(database)
        assert violations >= 1

    def test_join_pairs_follow_join_key(self, sc, database):
        pairs = list(sc.join_pairs(database))
        assert len(pairs) == 20  # one match per key

    def test_split_hole_excludes_point(self, sc):
        hole = sc.holes[0]
        fragments = sc.split_hole(hole, 30.0, 30.0)
        assert hole not in sc.holes
        assert fragments
        assert not sc.point_in_hole(30.0, 30.0)

    def test_split_preserves_other_area(self, sc):
        sc.split_hole(sc.holes[0], 30.0, 30.0)
        # A far corner of the original hole is still covered by a fragment.
        assert sc.point_in_hole(49.0, 49.0)

    def test_drop_hole(self, sc):
        sc.drop_hole(sc.holes[0])
        assert sc.holes == []

    def test_row_satisfies_not_applicable(self, sc):
        with pytest.raises(NotImplementedError):
            sc.row_satisfies({})
