"""Tests for the currency (staleness) model — the paper's Section 3.3
margin-of-error arithmetic."""

import pytest

from repro.softcon.currency import CurrencyModel, project_margin_of_error


class TestProjection:
    def test_papers_example(self):
        """1M rows, 1000 updates/day: ~3% margin within a month."""
        margin = project_margin_of_error(1_000_000, 1000, 30)
        assert margin == pytest.approx(0.03)

    def test_papers_example_few_days(self):
        margin = project_margin_of_error(1_000_000, 1000, 3)
        assert margin == pytest.approx(0.003)

    def test_clamped_to_one(self):
        assert project_margin_of_error(100, 1000, 10) == 1.0

    def test_empty_table(self):
        assert project_margin_of_error(0, 10, 1) == 1.0


class TestCurrencyModel:
    def test_fresh_model_has_no_margin(self):
        model = CurrencyModel(1000)
        assert model.margin_of_error == 0.0

    def test_margin_grows_with_updates(self):
        model = CurrencyModel(1000)
        model.record_update(10)
        assert model.margin_of_error == pytest.approx(0.01)
        model.record_update(90)
        assert model.margin_of_error == pytest.approx(0.1)

    def test_reset_clears(self):
        model = CurrencyModel(1000)
        model.record_update(500)
        model.reset(2000)
        assert model.margin_of_error == 0.0
        assert model.row_count == 2000

    def test_confidence_bounds(self):
        model = CurrencyModel(100)
        model.record_update(5)
        low, high = model.confidence_bounds(0.9)
        assert low == pytest.approx(0.85)
        assert high == pytest.approx(0.95)

    def test_bounds_clamped(self):
        model = CurrencyModel(10)
        model.record_update(20)
        low, high = model.confidence_bounds(0.9)
        assert low == 0.0 and high == 1.0

    def test_zero_row_table_with_updates(self):
        model = CurrencyModel(0)
        model.record_update()
        assert model.margin_of_error == 1.0


class TestTotalUpdates:
    """Lifetime update counter and bad-count guard (satellite 1)."""

    def test_total_survives_reset(self):
        model = CurrencyModel(1000)
        model.record_update(10)
        model.record_update(5)
        assert model.total_updates == 15
        model.reset(1200)
        assert model.updates_seen == 0
        assert model.total_updates == 15
        model.record_update(3)
        assert model.total_updates == 18
        assert model.margin_of_error == pytest.approx(3 / 1200)

    def test_negative_count_rejected_without_side_effects(self):
        model = CurrencyModel(1000)
        model.record_update(7)
        with pytest.raises(ValueError):
            model.record_update(-1)
        assert model.updates_seen == 7
        assert model.total_updates == 7

    def test_default_increment_is_one(self):
        model = CurrencyModel(10)
        model.record_update()
        model.record_update()
        assert model.total_updates == 2

    def test_zero_count_is_a_noop(self):
        model = CurrencyModel(10)
        model.record_update(0)
        assert model.updates_seen == 0
        assert model.total_updates == 0
