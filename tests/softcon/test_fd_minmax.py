"""Tests for FD and min/max soft constraints."""

import pytest

from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import INTEGER, VARCHAR
from repro.expr.intervals import Interval
from repro.softcon.fd import FunctionalDependencySC
from repro.softcon.minmax import MinMaxSC


@pytest.fixture
def database() -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "addr",
            [
                Column("id", INTEGER),
                Column("city", VARCHAR(10)),
                Column("state", VARCHAR(10)),
            ],
        )
    )
    db.insert_many(
        "addr",
        [
            (1, "toronto", "on"),
            (2, "toronto", "on"),
            (3, "ottawa", "on"),
            (4, "montreal", "qc"),
        ],
    )
    return db


class TestFunctionalDependency:
    def test_clean_fd_verifies(self, database):
        fd = FunctionalDependencySC("fd", "addr", ["city"], ["state"])
        violations, total = fd.verify(database)
        assert violations == 0 and total == 4

    def test_violated_fd_counts(self, database):
        database.insert("addr", [5, "toronto", "qc"])
        fd = FunctionalDependencySC("fd", "addr", ["city"], ["state"])
        violations, _ = fd.verify(database)
        assert violations == 1
        assert fd.confidence == pytest.approx(4 / 5)

    def test_null_determinants_skipped(self, database):
        database.insert("addr", [5, None, "xx"])
        fd = FunctionalDependencySC("fd", "addr", ["city"], ["state"])
        violations, _ = fd.verify(database)
        assert violations == 0

    def test_row_conflicts_probe(self, database):
        fd = FunctionalDependencySC("fd", "addr", ["city"], ["state"])
        assert fd.row_conflicts(database, {"city": "toronto", "state": "qc"})
        assert not fd.row_conflicts(
            database, {"city": "toronto", "state": "on"}
        )
        assert not fd.row_conflicts(database, {"city": "halifax", "state": "ns"})

    def test_overlapping_sides_rejected(self):
        with pytest.raises(ValueError):
            FunctionalDependencySC("fd", "t", ["a"], ["a"])

    def test_empty_sides_rejected(self):
        with pytest.raises(ValueError):
            FunctionalDependencySC("fd", "t", [], ["a"])

    def test_statement_sql(self):
        fd = FunctionalDependencySC("fd", "t", ["a", "b"], ["c"])
        assert "(a, b) -> (c)" in fd.statement_sql()


class TestMinMax:
    def test_row_satisfies(self):
        sc = MinMaxSC("mm", "t", "x", 0, 100)
        assert sc.row_satisfies({"x": 50}) is True
        assert sc.row_satisfies({"x": 101}) is False
        assert sc.row_satisfies({"x": None}) is True

    def test_interval(self):
        sc = MinMaxSC("mm", "t", "x", 0, 100)
        assert sc.interval == Interval(0, 100)

    def test_widen_to(self):
        sc = MinMaxSC("mm", "t", "x", 0, 100)
        assert sc.widen_to(150) is True
        assert sc.high == 150
        assert sc.widen_to(50) is False  # already inside

    def test_widen_low_side(self):
        sc = MinMaxSC("mm", "t", "x", 0, 100)
        sc.widen_to(-5)
        assert sc.low == -5

    def test_widen_ignores_null(self):
        sc = MinMaxSC("mm", "t", "x", 0, 100)
        assert sc.widen_to(None) is False

    def test_crossed_bounds_rejected(self):
        with pytest.raises(ValueError):
            MinMaxSC("mm", "t", "x", 10, 0)

    def test_verify(self, database):
        sc = MinMaxSC("mm", "addr", "id", 1, 3)
        violations, total = sc.verify(database)
        assert violations == 1 and total == 4  # id=4 outside
