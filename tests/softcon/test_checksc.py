"""Tests for check-style soft constraints."""

import pytest

from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DATE, INTEGER
from repro.softcon.checksc import CheckSoftConstraint
from repro.sql import ast
from repro.sql.parser import parse_expression


@pytest.fixture
def database() -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "purchase",
            [
                Column("id", INTEGER),
                Column("order_date", DATE),
                Column("ship_date", DATE),
            ],
        )
    )
    for n in range(100):
        # Rows 0..89 ship within 21 days; 90..99 are late.
        delay = 5 if n < 90 else 60
        db.insert("purchase", [n, 1000 + n, 1000 + n + delay])
    return db


class TestRowSemantics:
    def test_satisfying_row(self):
        sc = CheckSoftConstraint("sc", "t", "a > 0")
        assert sc.row_satisfies({"a": 5}) is True

    def test_violating_row(self):
        sc = CheckSoftConstraint("sc", "t", "a > 0")
        assert sc.row_satisfies({"a": -1}) is False

    def test_unknown_counts_as_satisfying(self):
        sc = CheckSoftConstraint("sc", "t", "a > 0")
        assert sc.row_satisfies({"a": None}) is True

    def test_accepts_prebuilt_expression(self):
        expression = parse_expression("a <= b")
        sc = CheckSoftConstraint("sc", "t", expression)
        assert sc.expression is expression

    def test_statement_sql_mentions_table(self):
        sc = CheckSoftConstraint("sc", "purchase", "a > 0")
        assert "purchase" in sc.statement_sql()


class TestVerify:
    def test_counts_violations(self, database):
        sc = CheckSoftConstraint(
            "ship_soon", "purchase", "ship_date <= order_date + 21"
        )
        violations, total = sc.verify(database)
        assert (violations, total) == (10, 100)
        assert sc.confidence == pytest.approx(0.9)

    def test_clean_constraint_is_absolute(self, database):
        sc = CheckSoftConstraint(
            "ordered", "purchase", "ship_date >= order_date"
        )
        violations, _ = sc.verify(database)
        assert violations == 0
        assert sc.is_absolute

    def test_negated_expression_helper(self):
        sc = CheckSoftConstraint("sc", "t", "a > 0")
        negated = sc.negated_expression()
        assert isinstance(negated, ast.UnaryOp) and negated.op == "not"

    def test_table_names(self):
        sc = CheckSoftConstraint("sc", "T1", "a > 0")
        assert sc.table_names() == ["t1"]
        assert sc.affected_by("t1") and not sc.affected_by("t2")
