"""Tests for the soft-constraint registry and synchronous maintenance."""

import pytest

from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DOUBLE, INTEGER
from repro.errors import DuplicateObjectError, UnknownObjectError
from repro.softcon.base import SCState
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.fd import FunctionalDependencySC
from repro.softcon.holes import JoinHolesSC, Rectangle
from repro.softcon.linear import LinearCorrelationSC
from repro.softcon.maintenance import DropPolicy, RepairPolicy
from repro.softcon.minmax import MinMaxSC
from repro.softcon.registry import SoftConstraintRegistry


@pytest.fixture
def database() -> Database:
    db = Database()
    db.create_table(
        TableSchema("t", [Column("a", INTEGER), Column("b", INTEGER)])
    )
    for n in range(20):
        db.insert("t", [n, 2 * n])
    return db


@pytest.fixture
def registry(database) -> SoftConstraintRegistry:
    return SoftConstraintRegistry(database)


class TestRegistration:
    def test_register_and_get(self, registry):
        sc = CheckSoftConstraint("sc1", "t", "a >= 0")
        registry.register(sc)
        assert registry.get("sc1") is sc
        assert registry.names() == ["sc1"]

    def test_duplicate_rejected(self, registry):
        registry.register(CheckSoftConstraint("sc1", "t", "a >= 0"))
        with pytest.raises(DuplicateObjectError):
            registry.register(CheckSoftConstraint("sc1", "t", "a > 5"))

    def test_unknown_table_rejected(self, registry):
        with pytest.raises(UnknownObjectError):
            registry.register(CheckSoftConstraint("sc", "ghost", "a > 0"))

    def test_unknown_name_raises(self, registry):
        with pytest.raises(UnknownObjectError):
            registry.get("nope")

    def test_activate_with_verify_measures_confidence(self, registry):
        sc = CheckSoftConstraint("sc", "t", "a < 10")  # half the rows fail
        registry.register(sc)
        registry.activate("sc", verify_first=True)
        assert sc.state is SCState.ACTIVE
        assert sc.confidence == pytest.approx(0.5)
        assert sc.is_statistical  # honest demotion of a false "ASC"


class TestOptimizerViews:
    def test_rewrite_usable_excludes_sscs(self, registry):
        asc = CheckSoftConstraint("asc", "t", "a >= 0")
        ssc = CheckSoftConstraint("ssc", "t", "a >= 5", confidence=0.75)
        registry.register(asc, activate=True)
        registry.register(ssc, activate=True)
        assert registry.rewrite_usable("t") == [asc]
        assert set(registry.estimation_usable("t")) == {asc, ssc}

    def test_candidates_invisible(self, registry):
        registry.register(CheckSoftConstraint("sc", "t", "a >= 0"))
        assert registry.rewrite_usable("t") == []
        assert registry.estimation_usable("t") == []

    def test_table_filter(self, database, registry):
        database.create_table(TableSchema("u", [Column("x", INTEGER)]))
        registry.register(
            CheckSoftConstraint("sc_u", "u", "x > 0"), activate=True
        )
        assert registry.rewrite_usable("t") == []
        assert len(registry.rewrite_usable()) == 1


class TestSynchronousMaintenance:
    def test_asc_checked_on_insert(self, database, registry):
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        registry.register(sc, policy=DropPolicy(), activate=True)
        database.insert("t", [-1, 0])
        assert sc.state is SCState.VIOLATED
        assert registry.violations_seen == 1

    def test_ssc_never_checked(self, database, registry):
        sc = CheckSoftConstraint("pos", "t", "a >= 0", confidence=0.9)
        registry.register(sc, activate=True)
        database.insert("t", [-1, 0])
        assert sc.state is SCState.ACTIVE
        assert registry.checks_performed == 0

    def test_candidate_not_checked(self, database, registry):
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        registry.register(sc)
        database.insert("t", [-1, 0])
        assert registry.checks_performed == 0

    def test_delete_cannot_violate(self, database, registry):
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        registry.register(sc, activate=True)
        rid = database.lookup_key("t", ["a"], [3])[0]
        database.delete_row("t", rid)
        assert sc.state is SCState.ACTIVE

    def test_update_new_image_checked(self, database, registry):
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        registry.register(sc, policy=DropPolicy(), activate=True)
        rid = database.lookup_key("t", ["a"], [3])[0]
        database.update_row("t", rid, [-3, 0])
        assert sc.state is SCState.VIOLATED

    def test_unrelated_table_not_checked(self, database, registry):
        database.create_table(TableSchema("u", [Column("x", INTEGER)]))
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        registry.register(sc, activate=True)
        database.insert("u", [-1])
        assert registry.checks_performed == 0

    def test_fd_conflict_detected(self, database, registry):
        fd = FunctionalDependencySC("fd", "t", ["a"], ["b"])
        registry.register(fd, policy=DropPolicy(), activate=True)
        database.insert("t", [3, 999])  # a=3 already maps to b=6
        assert fd.state is SCState.VIOLATED

    def test_hole_violation_detected(self, database, registry):
        database.create_table(
            TableSchema("one", [Column("j", INTEGER), Column("a", DOUBLE)])
        )
        database.create_table(
            TableSchema("two", [Column("j", INTEGER), Column("b", DOUBLE)])
        )
        database.insert("two", [1, 30.0])
        sc = JoinHolesSC(
            "holes", "one", "a", "two", "b", "j", "j",
            holes=[Rectangle(25.0, 50.0, 25.0, 50.0)],
        )
        registry.register(sc, policy=DropPolicy(), activate=True)
        database.insert("one", [1, 30.0])  # forms a pair inside the hole
        assert sc.state is SCState.VIOLATED


class TestOverturnAndDemote:
    def test_overturn_fires_invalidation(self, database, registry):
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        registry.register(sc, activate=True)
        fired = []
        database.catalog.on_invalidate("softconstraint:pos", fired.append)
        database.insert("t", [-1, 0])
        assert fired == ["softconstraint:pos"]
        assert registry.overturn_events == 1

    def test_demote_lowers_confidence(self, database, registry):
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        registry.register(sc, activate=True)
        registry.demote(sc)
        assert sc.is_statistical
        assert sc.state is SCState.ACTIVE

    def test_drop_by_name(self, registry):
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        registry.register(sc, activate=True)
        registry.drop("pos")
        assert sc.state is SCState.DROPPED


class TestCurrencyTracking:
    def test_updates_counted(self, database, registry):
        sc = CheckSoftConstraint("pos", "t", "a >= 0", confidence=0.9)
        registry.register(sc, activate=True)
        for n in range(5):
            database.insert("t", [100 + n, 0])
        model = registry.currency("pos")
        assert model.updates_seen == 5
        assert model.margin_of_error == pytest.approx(5 / 20)

    def test_effective_confidence_degrades(self, database, registry):
        sc = CheckSoftConstraint("pos", "t", "a >= 0", confidence=0.9)
        registry.register(sc, activate=True)
        assert registry.effective_confidence(sc) == pytest.approx(0.9)
        for n in range(4):
            database.insert("t", [100 + n, 0])
        assert registry.effective_confidence(sc) == pytest.approx(0.9 - 4 / 20)

    def test_refresh_resets(self, database, registry):
        sc = CheckSoftConstraint("pos", "t", "a >= 0", confidence=0.9)
        registry.register(sc, activate=True)
        database.insert("t", [100, 0])
        registry.refresh_currency(sc, database)
        assert registry.currency("pos").updates_seen == 0

    def test_instrumentation_snapshot(self, registry):
        snapshot = registry.instrumentation()
        assert set(snapshot) == {
            "checks_performed",
            "check_rows_probed",
            "violations_seen",
            "overturn_events",
            "repairs_performed",
            "async_repairs_run",
        }
