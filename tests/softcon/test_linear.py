"""Tests for linear-correlation soft constraints."""

import pytest

from repro.expr.eval import evaluate
from repro.expr.intervals import Interval
from repro.softcon.linear import LinearCorrelationSC


@pytest.fixture
def sc() -> LinearCorrelationSC:
    # a = 2*b + 10 within ±3
    return LinearCorrelationSC("lin", "t", "a", "b", 2.0, 10.0, 3.0)


class TestModel:
    def test_predict_interval(self, sc):
        interval = sc.predict_interval(5.0)
        assert interval == Interval(17.0, 23.0)

    def test_predict_for_b_range(self, sc):
        interval = sc.predict_interval_for_b_range(Interval(0.0, 10.0))
        assert interval == Interval(7.0, 33.0)

    def test_predict_for_negative_slope(self):
        negative = LinearCorrelationSC("n", "t", "a", "b", -1.0, 0.0, 1.0)
        interval = negative.predict_interval_for_b_range(Interval(0.0, 10.0))
        assert interval == Interval(-11.0, 1.0)

    def test_predict_for_unbounded_range_stays_unbounded(self, sc):
        interval = sc.predict_interval_for_b_range(Interval.at_least(5.0))
        assert interval.is_unbounded

    def test_predict_for_empty_range_is_empty(self, sc):
        assert sc.predict_interval_for_b_range(Interval.empty()).is_empty

    def test_row_satisfies_inside_band(self, sc):
        assert sc.row_satisfies({"a": 20.0, "b": 5.0}) is True
        assert sc.row_satisfies({"a": 23.0, "b": 5.0}) is True

    def test_row_satisfies_outside_band(self, sc):
        assert sc.row_satisfies({"a": 24.0, "b": 5.0}) is False

    def test_null_rows_satisfy(self, sc):
        assert sc.row_satisfies({"a": None, "b": 5.0}) is True

    def test_residual(self, sc):
        assert sc.residual({"a": 25.0, "b": 5.0}) == pytest.approx(5.0)
        assert sc.residual({"a": None, "b": 5.0}) is None

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            LinearCorrelationSC("x", "t", "a", "b", 1.0, 0.0, -1.0)


class TestIntroducedPredicate:
    def test_predicate_semantics_match_model(self, sc):
        from repro.sql import ast

        predicate = sc.introduced_predicate(ast.Literal(5.0))
        # a BETWEEN 17 AND 23 given b = 5
        assert evaluate(predicate, {"a": 20.0}) is True
        assert evaluate(predicate, {"a": 16.9}) is False
        assert evaluate(predicate, {"a": 23.0}) is True

    def test_qualified_reference(self, sc):
        from repro.sql import ast

        predicate = sc.introduced_predicate(ast.Literal(5.0), qualifier="q")
        assert evaluate(predicate, {"q.a": 20.0}) is True

    def test_verify_against_database(self):
        from repro.engine.database import Database
        from repro.engine.schema import Column, TableSchema
        from repro.engine.types import DOUBLE

        db = Database()
        db.create_table(
            TableSchema("t", [Column("a", DOUBLE), Column("b", DOUBLE)])
        )
        for n in range(50):
            db.insert("t", [2.0 * n + 10.0, float(n)])
        db.insert("t", [999.0, 1.0])  # one outlier
        sc = LinearCorrelationSC("lin", "t", "a", "b", 2.0, 10.0, 0.5)
        violations, total = sc.verify(db)
        assert violations == 1 and total == 51
        assert sc.confidence == pytest.approx(50 / 51)
