"""Tests for inter-table linear correlations (JoinLinearSC)."""

import pytest

from repro.discovery.linear_miner import mine_join_linear_correlation
from repro.expr.intervals import Interval
from repro.softcon.base import SCState
from repro.softcon.joinlinear import JoinLinearSC
from repro.softcon.joinpath import JoinPathSpec
from repro.softcon.maintenance import DropPolicy, RepairPolicy
from repro.workload.schemas import build_join_linear_scenario


@pytest.fixture(scope="module")
def scenario():
    return build_join_linear_scenario(rows_per_table=1500, seed=61)


def make_sc(epsilon=10.0, confidence=1.0) -> JoinLinearSC:
    return JoinLinearSC(
        "jlin",
        table_one="freight",
        column_a="cost",
        table_two="shipments",
        column_b="weight",
        join_column_one="region_id",
        join_column_two="region_id",
        slope=3.0,
        intercept=50.0,
        epsilon=epsilon,
        confidence=confidence,
    )


class TestModel:
    def test_pair_residual_and_satisfies(self):
        sc = make_sc(epsilon=4.0)
        assert sc.pair_residual(3.0 * 10 + 50 + 2.0, 10.0) == pytest.approx(2.0)
        assert sc.pair_satisfies(3.0 * 10 + 50 + 2.0, 10.0)
        assert not sc.pair_satisfies(3.0 * 10 + 50 + 9.0, 10.0)
        assert sc.pair_satisfies(None, 10.0)  # NULLs exempt

    def test_predict_a_interval(self):
        sc = make_sc(epsilon=4.0)
        interval = sc.predict_a_interval(Interval(10.0, 20.0))
        assert interval == Interval(80.0 - 4.0, 110.0 + 4.0)

    def test_predict_b_interval_inverts(self):
        sc = make_sc(epsilon=6.0)
        interval = sc.predict_b_interval(Interval(80.0, 110.0))
        assert interval == Interval(10.0 - 2.0, 20.0 + 2.0)

    def test_unbounded_ranges_stay_unbounded(self):
        sc = make_sc()
        assert sc.predict_a_interval(Interval.at_least(1.0)).is_unbounded
        assert sc.predict_b_interval(Interval.unbounded()).is_unbounded

    def test_zero_slope_cannot_invert(self):
        sc = JoinLinearSC(
            "flat", "freight", "cost", "shipments", "weight",
            "region_id", "region_id", 0.0, 5.0, 1.0,
        )
        assert sc.predict_b_interval(Interval(0.0, 1.0)).is_unbounded

    def test_table_names_and_statement(self):
        sc = make_sc()
        assert sc.table_names() == ["freight", "shipments"]
        assert "JOINCHECK" in sc.statement_sql()

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            make_sc(epsilon=-1.0)


class TestJoinPathSpec:
    def test_join_pairs_follow_key(self, scenario):
        spec = JoinPathSpec(
            "freight", "cost", "shipments", "weight",
            "region_id", "region_id",
        )
        pairs = list(spec.join_pairs(scenario.database))
        assert len(pairs) > 1000

    def test_pairs_for_new_row_one_side(self, scenario):
        spec = JoinPathSpec(
            "freight", "cost", "shipments", "weight",
            "region_id", "region_id",
        )
        pairs = spec.pairs_for_new_row(
            scenario.database, "freight",
            {"region_id": 5, "cost": 123.0},
        )
        assert all(a == 123.0 for a, _ in pairs)

    def test_null_join_key_produces_no_pairs(self, scenario):
        spec = JoinPathSpec(
            "freight", "cost", "shipments", "weight",
            "region_id", "region_id",
        )
        assert spec.pairs_for_new_row(
            scenario.database, "freight", {"region_id": None, "cost": 1.0}
        ) == []


class TestMiningAndVerify:
    def test_mined_model_recovers_planted_correlation(self, scenario):
        candidates = mine_join_linear_correlation(
            scenario.database,
            "freight", "cost", "shipments", "weight",
            "region_id", "region_id",
            confidence_levels=(1.0,),
        )
        assert candidates
        asc = candidates[0]
        assert asc.slope == pytest.approx(3.0, abs=0.05)
        assert asc.intercept == pytest.approx(50.0, abs=10.0)
        violations, total = asc.verify(scenario.database)
        assert violations == 0 and total > 0

    def test_ssc_levels_emitted(self, scenario):
        candidates = mine_join_linear_correlation(
            scenario.database,
            "freight", "cost", "shipments", "weight",
            "region_id", "region_id",
            confidence_levels=(1.0, 0.9),
        )
        assert {c.confidence for c in candidates} == {1.0, 0.9}


class TestMaintenance:
    def test_violating_insert_detected_and_dropped(self):
        db = build_join_linear_scenario(rows_per_table=400, seed=62)
        sc = make_sc(epsilon=10.0)
        db.add_soft_constraint(sc, policy=DropPolicy(), verify_first=True)
        assert sc.state is SCState.ACTIVE
        # A freight row whose cost is far off the model for its region.
        db.execute("INSERT INTO freight VALUES (999999, 3, 99999.0)")
        assert sc.state is SCState.VIOLATED

    def test_repair_widens_epsilon(self):
        db = build_join_linear_scenario(rows_per_table=400, seed=63)
        sc = make_sc(epsilon=10.0)
        db.add_soft_constraint(sc, policy=RepairPolicy(), verify_first=True)
        db.execute("INSERT INTO freight VALUES (999999, 3, 99999.0)")
        assert sc.state is SCState.ACTIVE
        assert sc.epsilon > 10.0
        violations, _ = sc.verify(db.database)
        assert violations == 0

    def test_conforming_insert_keeps_asc(self):
        db = build_join_linear_scenario(rows_per_table=400, seed=64)
        sc = make_sc(epsilon=10.0)
        db.add_soft_constraint(sc, policy=DropPolicy(), verify_first=True)
        # region 3's base is whatever it is; probe an existing pair value.
        pairs = list(sc.path.join_pairs(db.database))
        a_value, _ = pairs[0]
        # Find the region of some freight row and reinsert a near-identical one.
        row = next(db.database.scan_dicts("freight"))
        db.execute(
            f"INSERT INTO freight VALUES (999999, {row['region_id']}, "
            f"{row['cost']})"
        )
        assert sc.state is SCState.ACTIVE
