"""Tests for exception tables (ASCs as ASTs, Section 4.4)."""

import pytest

from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DATE, INTEGER
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.exceptions_ast import ExceptionTable


@pytest.fixture
def database() -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "purchase",
            [
                Column("id", INTEGER),
                Column("order_date", DATE),
                Column("ship_date", DATE),
            ],
        )
    )
    for n in range(50):
        delay = 60 if n % 10 == 0 else 5  # 5 late shipments
        db.insert("purchase", [n, 1000, 1000 + delay])
    return db


@pytest.fixture
def constraint() -> CheckSoftConstraint:
    return CheckSoftConstraint(
        "ship_soon", "purchase", "ship_date <= order_date + 21"
    )


class TestPopulation:
    def test_initial_exceptions_materialized(self, database, constraint):
        exceptions = ExceptionTable(database, constraint)
        assert exceptions.exception_count == 5
        assert exceptions.exception_rate == pytest.approx(0.1)

    def test_registered_as_summary_table(self, database, constraint):
        exceptions = ExceptionTable(database, constraint)
        assert database.catalog.summary_table(exceptions.name) is exceptions

    def test_custom_name(self, database, constraint):
        exceptions = ExceptionTable(database, constraint, name="late")
        assert exceptions.name == "late"
        assert database.catalog.has_table("late")

    def test_schema_matches_base(self, database, constraint):
        exceptions = ExceptionTable(database, constraint)
        base = database.table("purchase").schema
        materialized = database.table(exceptions.name).schema
        assert materialized.column_names() == base.column_names()


class TestIncrementalMaintenance:
    def test_violating_insert_lands_in_exceptions(self, database, constraint):
        exceptions = ExceptionTable(database, constraint)
        database.insert("purchase", [99, 1000, 2000])
        assert exceptions.exception_count == 6

    def test_conforming_insert_ignored(self, database, constraint):
        exceptions = ExceptionTable(database, constraint)
        database.insert("purchase", [99, 1000, 1001])
        assert exceptions.exception_count == 5

    def test_delete_removes_exception(self, database, constraint):
        exceptions = ExceptionTable(database, constraint)
        (rid,) = database.lookup_key("purchase", ["id"], [0])  # a late one
        database.delete_row("purchase", rid)
        assert exceptions.exception_count == 4

    def test_update_moving_into_violation(self, database, constraint):
        exceptions = ExceptionTable(database, constraint)
        (rid,) = database.lookup_key("purchase", ["id"], [1])
        database.update_row("purchase", rid, [1, 1000, 2000])
        assert exceptions.exception_count == 6

    def test_update_moving_out_of_violation(self, database, constraint):
        exceptions = ExceptionTable(database, constraint)
        (rid,) = database.lookup_key("purchase", ["id"], [0])
        database.update_row("purchase", rid, [0, 1000, 1001])
        assert exceptions.exception_count == 4

    def test_exceptions_are_exact_partition(self, database, constraint):
        """base = conforming ∪ exceptions, disjointly — the invariant that
        makes the UNION ALL plan exact."""
        exceptions = ExceptionTable(database, constraint)
        database.insert("purchase", [99, 1000, 2000])
        database.insert("purchase", [100, 1000, 1005])
        base_rows = set(database.table("purchase").scan_rows())
        exception_rows = set(database.table(exceptions.name).scan_rows())
        names = database.table("purchase").schema.column_names()
        conforming = {
            row
            for row in base_rows
            if constraint.row_satisfies(dict(zip(names, row))) is not False
        }
        assert exception_rows <= base_rows
        assert conforming | exception_rows == base_rows
        assert not (conforming & exception_rows)


class TestRefresh:
    def test_refresh_rebuilds(self, database, constraint):
        exceptions = ExceptionTable(database, constraint)
        database.table(exceptions.name).truncate()
        assert exceptions.exception_count == 0
        exceptions.refresh()
        assert exceptions.exception_count == 5

    def test_definition_sql_mentions_constraint(self, database, constraint):
        exceptions = ExceptionTable(database, constraint)
        assert "purchase" in exceptions.definition_sql()
