"""Tests for maintenance policies: drop, repair, async repair."""

import pytest

from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DOUBLE, INTEGER
from repro.softcon.base import SCState
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.holes import JoinHolesSC, Rectangle
from repro.softcon.linear import LinearCorrelationSC
from repro.softcon.maintenance import (
    AsyncRepairPolicy,
    DropPolicy,
    RepairPolicy,
)
from repro.softcon.minmax import MinMaxSC
from repro.softcon.registry import SoftConstraintRegistry


@pytest.fixture
def database() -> Database:
    db = Database()
    db.create_table(
        TableSchema("t", [Column("a", DOUBLE), Column("b", DOUBLE)])
    )
    for n in range(10):
        db.insert("t", [float(n), 2.0 * n])
    return db


@pytest.fixture
def registry(database) -> SoftConstraintRegistry:
    return SoftConstraintRegistry(database)


class TestDropPolicy:
    def test_violation_overturns(self, database, registry):
        sc = MinMaxSC("mm", "t", "a", 0.0, 9.0)
        registry.register(sc, policy=DropPolicy(), activate=True)
        database.insert("t", [99.0, 0.0])
        assert sc.state is SCState.VIOLATED


class TestRepairPolicy:
    def test_minmax_widens_and_stays_active(self, database, registry):
        sc = MinMaxSC("mm", "t", "a", 0.0, 9.0)
        registry.register(sc, policy=RepairPolicy(), activate=True)
        database.insert("t", [99.0, 0.0])
        assert sc.state is SCState.ACTIVE
        assert sc.high == 99.0
        assert registry.repairs_performed == 1

    def test_repaired_minmax_still_absolute(self, database, registry):
        sc = MinMaxSC("mm", "t", "a", 0.0, 9.0)
        registry.register(sc, policy=RepairPolicy(), activate=True)
        database.insert("t", [99.0, 0.0])
        violations, _ = sc.verify(database)
        assert violations == 0

    def test_linear_epsilon_widens(self, database, registry):
        sc = LinearCorrelationSC("lin", "t", "b", "a", 2.0, 0.0, 0.1)
        registry.register(sc, policy=RepairPolicy(), activate=True)
        database.insert("t", [1.0, 7.0])  # residual = 7 - 2 = 5
        assert sc.state is SCState.ACTIVE
        assert sc.epsilon == pytest.approx(5.0)

    def test_hole_split_on_violation(self, database, registry):
        database.create_table(
            TableSchema("one", [Column("j", INTEGER), Column("x", DOUBLE)])
        )
        database.create_table(
            TableSchema("two", [Column("j", INTEGER), Column("y", DOUBLE)])
        )
        database.insert("two", [1, 30.0])
        sc = JoinHolesSC(
            "holes", "one", "x", "two", "y", "j", "j",
            holes=[Rectangle(25.0, 50.0, 25.0, 50.0)],
        )
        registry.register(sc, policy=RepairPolicy(), activate=True)
        database.insert("one", [1, 30.0])
        assert sc.state is SCState.ACTIVE
        assert not sc.point_in_hole(30.0, 30.0)
        assert len(sc.holes) > 1  # split into fragments

    def test_check_sc_demoted(self, database, registry):
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        registry.register(sc, policy=RepairPolicy(), activate=True)
        database.insert("t", [-1.0, 0.0])
        assert sc.state is SCState.ACTIVE
        assert sc.is_statistical  # absorbed the violation into confidence


class TestAsyncRepairPolicy:
    def test_violation_queues_and_overturns(self, database, registry):
        policy = AsyncRepairPolicy()
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        registry.register(sc, policy=policy, activate=True)
        database.insert("t", [-1.0, 0.0])
        assert sc.state is SCState.VIOLATED
        assert sc in policy.queue

    def test_run_pending_reinstates_clean(self, database, registry):
        policy = AsyncRepairPolicy()
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        registry.register(sc, policy=policy, activate=True)
        database.insert("t", [-1.0, 0.0])
        # Remove the offending row before the async pass runs.
        (rid,) = database.lookup_key("t", ["a"], [-1.0])
        database.delete_row("t", rid)
        outcomes = policy.run_pending(registry, database)
        assert outcomes == [("pos", "reinstated")]
        assert sc.state is SCState.ACTIVE and sc.is_absolute

    def test_run_pending_demotes_partial(self, database, registry):
        policy = AsyncRepairPolicy(drop_threshold=0.5)
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        registry.register(sc, policy=policy, activate=True)
        database.insert("t", [-1.0, 0.0])
        outcomes = policy.run_pending(registry, database)
        assert outcomes == [("pos", "demoted")]
        assert sc.state is SCState.ACTIVE
        assert sc.confidence == pytest.approx(10 / 11)

    def test_run_pending_drops_hopeless(self, database, registry):
        policy = AsyncRepairPolicy(drop_threshold=0.99)
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        registry.register(sc, policy=policy, activate=True)
        database.insert("t", [-1.0, 0.0])
        outcomes = policy.run_pending(registry, database)
        assert outcomes == [("pos", "dropped")]
        assert sc.state is SCState.DROPPED

    def test_queue_drained_after_run(self, database, registry):
        policy = AsyncRepairPolicy()
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        registry.register(sc, policy=policy, activate=True)
        database.insert("t", [-1.0, 0.0])
        policy.run_pending(registry, database)
        assert policy.queue == []

    def test_no_duplicate_queue_entries(self, database, registry):
        policy = AsyncRepairPolicy()
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        registry.register(sc, policy=policy, activate=True)
        database.insert("t", [-1.0, 0.0])
        # SC is now VIOLATED, so no further checks fire; but even direct
        # double-reporting must not duplicate the queue entry.
        policy.on_violation(registry, sc, None)
        assert policy.queue.count(sc) == 1


class TestAsyncRepairDropThreshold:
    """drop_threshold is a bound on *measured confidence* (satellite 2).

    ``drop_threshold=0.5`` means "drop once more than half the rows
    violate"; confidence exactly at the threshold keeps the constraint
    (demoted to statistical), only strictly-below drops it.
    """

    @pytest.mark.parametrize("bad", [-0.01, 1.01])
    def test_threshold_validated(self, bad):
        with pytest.raises(ValueError):
            AsyncRepairPolicy(drop_threshold=bad)

    def _queued(self, database, registry, policy):
        sc = CheckSoftConstraint("pos", "t", "a >= 0")
        registry.register(sc, policy=policy, activate=True)
        database.insert("t", [-1.0, 0.0])  # 1 of 11 rows violates
        return sc

    def test_confidence_exactly_at_threshold_is_kept(self, database, registry):
        policy = AsyncRepairPolicy(drop_threshold=10 / 11)
        sc = self._queued(database, registry, policy)
        assert policy.run_pending(registry, database) == [("pos", "demoted")]
        assert sc.state is SCState.ACTIVE and sc.is_statistical
        assert sc.confidence == pytest.approx(policy.drop_threshold)

    def test_confidence_below_threshold_is_dropped(self, database, registry):
        policy = AsyncRepairPolicy(drop_threshold=10 / 11 + 1e-6)
        sc = self._queued(database, registry, policy)
        assert policy.run_pending(registry, database) == [("pos", "dropped")]
        assert sc.state is SCState.DROPPED

    def test_majority_violation_crosses_half_threshold(self, database, registry):
        policy = AsyncRepairPolicy(drop_threshold=0.5)
        sc = self._queued(database, registry, policy)
        # Push past "more than half the rows violate".
        for _ in range(12):
            database.insert("t", [-1.0, 0.0])
        assert policy.run_pending(registry, database) == [("pos", "dropped")]
        assert sc.state is SCState.DROPPED

    def test_emptied_table_always_reinstates(self, database, registry):
        policy = AsyncRepairPolicy(drop_threshold=1.0)
        sc = self._queued(database, registry, policy)
        for row_id, _ in list(database.table("t").scan()):
            database.delete_row("t", row_id)
        assert policy.run_pending(registry, database) == [("pos", "reinstated")]
        assert sc.state is SCState.ACTIVE and sc.is_absolute
