"""Tests for the soft-constraint base class and lifecycle."""

import pytest

from repro.errors import SoftConstraintStateError
from repro.softcon.base import SCState, SoftConstraint
from repro.softcon.checksc import CheckSoftConstraint


def make_sc(confidence=1.0) -> CheckSoftConstraint:
    return CheckSoftConstraint("sc", "t", "a > 0", confidence=confidence)


class TestClassification:
    def test_full_confidence_is_absolute(self):
        sc = make_sc(1.0)
        assert sc.is_absolute and not sc.is_statistical

    def test_partial_confidence_is_statistical(self):
        sc = make_sc(0.9)
        assert sc.is_statistical and not sc.is_absolute

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValueError):
            make_sc(0.0)
        with pytest.raises(ValueError):
            make_sc(1.5)

    def test_rewrite_usability_requires_active_and_absolute(self):
        sc = make_sc(1.0)
        assert not sc.usable_in_rewrite  # still CANDIDATE
        sc.activate()
        assert sc.usable_in_rewrite

    def test_ssc_never_rewrite_usable(self):
        sc = make_sc(0.9)
        sc.activate()
        assert not sc.usable_in_rewrite
        assert sc.usable_in_estimation

    def test_asc_also_estimation_usable(self):
        sc = make_sc(1.0)
        sc.activate()
        assert sc.usable_in_estimation


class TestLifecycle:
    def test_candidate_to_active(self):
        sc = make_sc()
        sc.activate()
        assert sc.state is SCState.ACTIVE

    def test_candidate_through_probation(self):
        sc = make_sc()
        sc.transition(SCState.PROBATION)
        sc.transition(SCState.ACTIVE)
        assert sc.state is SCState.ACTIVE

    def test_active_to_violated_to_reinstated(self):
        sc = make_sc()
        sc.activate()
        sc.transition(SCState.VIOLATED)
        assert not sc.usable_in_rewrite
        sc.transition(SCState.ACTIVE)
        assert sc.usable_in_rewrite

    def test_dropped_is_terminal(self):
        sc = make_sc()
        sc.drop()
        with pytest.raises(SoftConstraintStateError):
            sc.activate()

    def test_illegal_transition_rejected(self):
        sc = make_sc()
        with pytest.raises(SoftConstraintStateError):
            sc.transition(SCState.VIOLATED)  # candidate cannot be violated


class TestVerificationBookkeeping:
    def test_record_verification_updates_confidence(self):
        sc = make_sc()
        sc.updates_since_verified = 7
        sc.record_verification(violations=10, total=100)
        assert sc.confidence == pytest.approx(0.9)
        assert sc.violation_count == 10
        assert sc.updates_since_verified == 0

    def test_empty_table_verifies_clean(self):
        sc = make_sc()
        sc.record_verification(0, 0)
        assert sc.confidence == 1.0

    def test_describe_mentions_flavor(self):
        assert "ASC" in make_sc(1.0).describe()
        assert "SSC" in make_sc(0.8).describe()
