"""Tests for the linear-correlation miner."""

import pytest

from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DOUBLE, INTEGER
from repro.discovery.linear_miner import LinearMiner, mine_linear_correlations
from repro.workload.datagen import DataGenerator


@pytest.fixture
def database() -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                Column("id", INTEGER),
                Column("a", DOUBLE),
                Column("b", DOUBLE),
                Column("noise", DOUBLE),
            ],
        )
    )
    generator = DataGenerator(11)
    for n in range(500):
        a, b = generator.linear_pair(2.0, 5.0, 1.0)
        db.insert("t", [n, a, b, generator.uniform(0, 1000)])
    return db


class TestFit:
    def test_recovers_planted_model(self, database):
        miner = LinearMiner()
        candidates = miner.mine_table(database, "t", [("a", "b")])
        asc = next(c for c in candidates if c.is_absolute)
        assert asc.slope == pytest.approx(2.0, abs=0.05)
        assert asc.intercept == pytest.approx(5.0, abs=1.0)
        assert asc.epsilon <= 1.2

    def test_asc_candidate_verifies_clean(self, database):
        candidates = mine_linear_correlations(database, "t", [("a", "b")])
        asc = next(c for c in candidates if c.is_absolute)
        violations, _ = asc.verify(database)
        assert violations == 0

    def test_ssc_epsilon_tighter_than_asc(self, database):
        candidates = mine_linear_correlations(
            database, "t", [("a", "b")], confidence_levels=(1.0, 0.9)
        )
        by_confidence = {c.confidence: c for c in candidates}
        assert by_confidence[0.9].epsilon < by_confidence[1.0].epsilon

    def test_ssc_confidence_roughly_holds(self, database):
        candidates = mine_linear_correlations(
            database, "t", [("a", "b")], confidence_levels=(1.0, 0.9)
        )
        ssc = next(c for c in candidates if c.confidence == 0.9)
        violations, total = ssc.verify(database)
        # ~10% of rows fall outside the 90%-quantile band.
        assert violations / total == pytest.approx(0.1, abs=0.03)

    def test_uncorrelated_pair_rejected_by_threshold(self, database):
        candidates = mine_linear_correlations(
            database, "t", [("a", "noise")], max_band_selectivity=0.25
        )
        assert candidates == []

    def test_selectivity_threshold_is_a_knob(self, database):
        # With the threshold wide open even the noise pair is reported.
        candidates = mine_linear_correlations(
            database, "t", [("a", "noise")], max_band_selectivity=10.0
        )
        assert candidates  # the ablation case for E1


class TestSearchControl:
    def test_default_searches_numeric_permutations(self, database):
        miner = LinearMiner(min_rows=10)
        candidates = miner.mine_table(database, "t")
        names = {c.name for c in candidates}
        assert any("lin_t_a_b" in name for name in names)

    def test_min_rows_guard(self):
        db = Database()
        db.create_table(
            TableSchema("s", [Column("a", DOUBLE), Column("b", DOUBLE)])
        )
        db.insert("s", [1.0, 1.0])
        assert mine_linear_correlations(db, "s", [("a", "b")]) == []

    def test_constant_b_rejected(self):
        db = Database()
        db.create_table(
            TableSchema("s", [Column("a", DOUBLE), Column("b", DOUBLE)])
        )
        for n in range(50):
            db.insert("s", [float(n), 7.0])
        assert mine_linear_correlations(db, "s", [("a", "b")]) == []

    def test_nulls_skipped(self, database):
        database.insert("t", [9999, None, 5.0, 0.0])
        candidates = mine_linear_correlations(database, "t", [("a", "b")])
        assert candidates  # NULL rows do not break mining

    def test_fit_pair_reports_r_squared(self):
        miner = LinearMiner()
        a_values = [2.0 * n for n in range(100)]
        b_values = [float(n) for n in range(100)]
        fit = miner.fit_pair(a_values, b_values)
        assert fit.r_squared == pytest.approx(1.0)
