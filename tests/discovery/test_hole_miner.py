"""Tests for the join-hole miner."""

import numpy as np
import pytest

from repro.discovery.hole_miner import (
    HoleMiner,
    maximal_empty_rectangles,
    mine_join_holes,
)
from repro.workload.datagen import DataGenerator
from repro.workload.schemas import build_join_hole_scenario


class TestGridAlgorithm:
    def test_single_empty_cell(self):
        occupied = np.ones((3, 3), dtype=bool)
        occupied[1, 1] = False
        holes = maximal_empty_rectangles(occupied)
        assert len(holes) == 1
        hole = holes[0]
        assert (hole.row_lo, hole.row_hi, hole.col_lo, hole.col_hi) == (
            1, 1, 1, 1,
        )

    def test_empty_grid_is_one_rectangle(self):
        occupied = np.zeros((4, 4), dtype=bool)
        holes = maximal_empty_rectangles(occupied)
        assert len(holes) == 1
        assert holes[0].cell_count == 16

    def test_full_grid_has_no_holes(self):
        occupied = np.ones((4, 4), dtype=bool)
        assert maximal_empty_rectangles(occupied) == []

    def test_l_shape_produces_two_maximal_rectangles(self):
        # Occupied in the top-right corner only.
        occupied = np.zeros((2, 2), dtype=bool)
        occupied[0, 1] = True
        holes = maximal_empty_rectangles(occupied)
        shapes = {
            (h.row_lo, h.row_hi, h.col_lo, h.col_hi) for h in holes
        }
        assert shapes == {(0, 1, 0, 0), (1, 1, 0, 1)}

    def test_all_results_are_empty_and_maximal(self):
        rng = np.random.default_rng(3)
        occupied = rng.random((12, 12)) < 0.3
        holes = maximal_empty_rectangles(occupied)
        for hole in holes:
            block = occupied[
                hole.row_lo : hole.row_hi + 1, hole.col_lo : hole.col_hi + 1
            ]
            assert not block.any()
        # No hole contains another.
        for first in holes:
            for second in holes:
                if first is second:
                    continue
                contains = (
                    first.row_lo <= second.row_lo
                    and first.row_hi >= second.row_hi
                    and first.col_lo <= second.col_lo
                    and first.col_hi >= second.col_hi
                )
                assert not contains


class TestHolesFromPairs:
    def test_planted_hole_recovered(self):
        generator = DataGenerator(2)
        pairs = []
        for _ in range(3000):
            if generator.bernoulli(0.5):
                pairs.append((generator.uniform(0, 25), generator.uniform(0, 50)))
            else:
                pairs.append((generator.uniform(25, 50), generator.uniform(0, 25)))
        holes = HoleMiner(grid_size=16).holes_from_pairs(pairs)
        assert holes
        biggest = holes[0]
        assert biggest.a_low == pytest.approx(25.0, abs=4.0)
        assert biggest.b_low == pytest.approx(25.0, abs=4.0)
        assert biggest.area() > 300

    def test_holes_are_sound(self):
        generator = DataGenerator(5)
        pairs = [
            (generator.uniform(0, 100), generator.uniform(0, 100))
            for _ in range(500)
        ]
        holes = HoleMiner(grid_size=12).holes_from_pairs(pairs)
        for hole in holes:
            for a, b in pairs:
                assert not hole.contains_point(a, b)

    def test_empty_input(self):
        assert HoleMiner().holes_from_pairs([]) == []

    def test_degenerate_range(self):
        pairs = [(1.0, 1.0)] * 10
        assert HoleMiner().holes_from_pairs(pairs) == []

    def test_max_holes_cap(self):
        generator = DataGenerator(7)
        pairs = [
            (generator.uniform(0, 100), generator.uniform(0, 100))
            for _ in range(200)
        ]
        holes = HoleMiner(grid_size=16, max_holes=3).holes_from_pairs(pairs)
        assert len(holes) <= 3


class TestEndToEnd:
    def test_mined_constraint_verifies_clean(self):
        db = build_join_hole_scenario(rows_per_table=1500, seed=4)
        constraint = mine_join_holes(
            db.database,
            "orders", "lead_time",
            "deliveries", "distance",
            "region_id", "region_id",
            grid_size=16,
        )
        assert constraint.holes
        violations, total = constraint.verify(db.database)
        assert violations == 0
        assert total > 0

    def test_mined_holes_cover_planted_region(self):
        db = build_join_hole_scenario(rows_per_table=2500, seed=4)
        constraint = mine_join_holes(
            db.database,
            "orders", "lead_time",
            "deliveries", "distance",
            "region_id", "region_id",
            grid_size=16,
        )
        # The centre of the planted hole must be covered.
        assert constraint.point_in_hole(40.0, 40.0)
