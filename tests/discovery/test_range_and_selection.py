"""Tests for the range miner, workload model, and selection engine."""

import pytest

from repro.discovery.range_miner import mine_min_max, mine_range_checks
from repro.discovery.selection import SelectionEngine
from repro.discovery.workload_model import Workload, WorkloadQuery
from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import INTEGER
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.fd import FunctionalDependencySC
from repro.softcon.linear import LinearCorrelationSC
from repro.softcon.minmax import MinMaxSC


@pytest.fixture
def database() -> Database:
    db = Database()
    db.create_table(
        TableSchema("t", [Column("a", INTEGER), Column("b", INTEGER)])
    )
    db.insert_many("t", [(n, n * 2) for n in range(10, 30)])
    db.create_table(
        TableSchema("part1", [Column("day", INTEGER)])
    )
    db.create_table(
        TableSchema("part2", [Column("day", INTEGER)])
    )
    db.insert_many("part1", [(d,) for d in range(0, 30)])
    db.insert_many("part2", [(d,) for d in range(30, 60)])
    return db


class TestRangeMiner:
    def test_min_max_found(self, database):
        (candidate,) = mine_min_max(database, "t", ["a"])
        assert candidate.low == 10 and candidate.high == 29
        violations, _ = candidate.verify(database)
        assert violations == 0

    def test_all_columns_by_default(self, database):
        candidates = mine_min_max(database, "t")
        assert {c.column_name for c in candidates} == {"a", "b"}

    def test_empty_column_skipped(self, database):
        database.create_table(TableSchema("e", [Column("x", INTEGER)]))
        assert mine_min_max(database, "e") == []

    def test_range_checks_per_partition(self, database):
        constraints = mine_range_checks(database, ["part1", "part2"], "day")
        assert len(constraints) == 2
        for constraint in constraints:
            violations, _ = constraint.verify(database)
            assert violations == 0

    def test_range_checks_partition_bounds_disjoint(self, database):
        first, second = mine_range_checks(database, ["part1", "part2"], "day")
        from repro.expr.analysis import column_interval
        from repro.sql import ast

        interval1 = column_interval([first.expression], ast.ColumnRef("day"))
        interval2 = column_interval([second.expression], ast.ColumnRef("day"))
        assert not interval1.overlaps(interval2)


class TestWorkloadModel:
    def test_predicate_classification(self):
        query = WorkloadQuery(
            "SELECT * FROM t WHERE a = 5 AND b BETWEEN 1 AND 9", 2.0
        )
        assert ("t", "a") in query.equality_columns
        assert ("t", "b") in query.range_columns

    def test_join_extraction(self):
        query = WorkloadQuery(
            "SELECT * FROM t, u WHERE t.a = u.b AND t.a > 3"
        )
        assert len(query.join_pairs) == 1

    def test_explicit_join_syntax_extracted(self):
        query = WorkloadQuery(
            "SELECT * FROM t JOIN u ON t.a = u.b"
        )
        assert len(query.join_pairs) == 1

    def test_group_by_extraction(self):
        query = WorkloadQuery(
            "SELECT a, count(*) AS n FROM t GROUP BY a ORDER BY a"
        )
        assert ("t", "a") in query.group_by_columns
        assert ("t", "a") in query.order_by_columns

    def test_frequency_aggregation(self):
        workload = Workload.from_sql(
            [("SELECT * FROM t WHERE a = 1", 3.0), "SELECT * FROM t WHERE a < 5"]
        )
        assert workload.predicate_frequency("t", "a") == 4.0
        assert workload.equality_frequency("t", "a") == 3.0
        assert workload.range_frequency("t", "a") == 1.0

    def test_join_frequency_order_free(self):
        workload = Workload.from_sql(["SELECT * FROM t, u WHERE u.b = t.a"])
        assert workload.join_frequency("t", "a", "u", "b") == 1.0
        assert workload.join_frequency("u", "b", "t", "a") == 1.0

    def test_grouping_frequency(self):
        workload = Workload.from_sql(
            ["SELECT a, b, count(*) AS n FROM t GROUP BY a, b"]
        )
        assert workload.grouping_frequency("t", ["a", "b"]) == 1.0
        assert workload.grouping_frequency("t", ["a", "b", "c"]) == 0.0

    def test_common_column_pairs(self):
        workload = Workload.from_sql(
            [
                ("SELECT * FROM t WHERE a = 1 AND b = 2", 5.0),
                "SELECT * FROM t WHERE a = 1 AND c = 3",
            ]
        )
        pairs = workload.common_column_pairs("t", minimum_frequency=2.0)
        assert pairs == [("a", "b")]

    def test_non_select_rejected(self):
        with pytest.raises(ValueError):
            WorkloadQuery("DELETE FROM t")


class TestSelectionEngine:
    @pytest.fixture
    def workload(self) -> Workload:
        return Workload.from_sql(
            [
                ("SELECT * FROM t WHERE b = 4", 10.0),
                ("SELECT a, b, count(*) AS n FROM t GROUP BY a, b", 2.0),
            ]
        )

    def test_linear_scored_by_b_predicates(self, database, workload):
        linear = LinearCorrelationSC("lin", "t", "a", "b", 0.5, 0.0, 1.0)
        score = SelectionEngine().score(linear, workload, database)
        assert score.matched_frequency == 10.0
        assert score.benefit > 0

    def test_index_presence_raises_helpfulness(self, database, workload):
        linear = LinearCorrelationSC("lin", "t", "a", "b", 0.5, 0.0, 1.0)
        engine = SelectionEngine()
        without_index = engine.score(linear, workload, database).benefit
        database.create_index("ix_a", "t", ["a"])
        with_index = engine.score(linear, workload, database).benefit
        assert with_index > without_index

    def test_ssc_has_no_maintenance_cost(self, database, workload):
        ssc = LinearCorrelationSC(
            "lin9", "t", "a", "b", 0.5, 0.0, 1.0, confidence=0.9
        )
        score = SelectionEngine().score(ssc, workload, database)
        assert score.maintenance_cost == 0.0

    def test_asc_pays_maintenance(self, database, workload):
        asc = MinMaxSC("mm", "t", "b", 0, 100)
        score = SelectionEngine(update_weight=1.0).score(asc, workload, database)
        assert score.maintenance_cost > 0

    def test_fd_scored_by_grouping(self, database, workload):
        fd = FunctionalDependencySC("fd", "t", ["a"], ["b"])
        score = SelectionEngine().score(fd, workload, database)
        assert score.matched_frequency == 2.0

    def test_rank_orders_by_net_utility(self, database, workload):
        candidates = [
            MinMaxSC("mm", "t", "b", 0, 100),
            LinearCorrelationSC("lin", "t", "a", "b", 0.5, 0.0, 1.0),
        ]
        ranked = SelectionEngine().rank(candidates, workload, database)
        assert ranked[0].net_utility >= ranked[1].net_utility

    def test_select_splits_activate_and_probation(self, database, workload):
        candidates = [
            LinearCorrelationSC("lin", "t", "a", "b", 0.5, 0.0, 1.0),
            CheckSoftConstraint("never", "t", "a > -999999"),
        ]
        activate, probation = SelectionEngine().select(
            candidates, workload, database, keep=2, activation_threshold=1.0
        )
        assert candidates[0] in activate

    def test_keep_limits_total(self, database, workload):
        candidates = [
            LinearCorrelationSC(f"lin{n}", "t", "a", "b", 0.5, 0.0, 1.0)
            for n in range(5)
        ]
        activate, probation = SelectionEngine().select(
            candidates, workload, database, keep=2
        )
        assert len(activate) + len(probation) <= 2
