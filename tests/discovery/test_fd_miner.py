"""Tests for the FD miner."""

import pytest

from repro.discovery.fd_miner import FDMiner, mine_functional_dependencies
from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import INTEGER


@pytest.fixture
def database() -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                Column("city", INTEGER),
                Column("state", INTEGER),
                Column("zip", INTEGER),
                Column("rand", INTEGER),
            ],
        )
    )
    rows = []
    for n in range(200):
        city = n % 20
        state = city % 5
        zip_code = n % 40  # zip -> city (two zips per city)
        rows.append((city, state, zip_code, n))
    db.insert_many("t", rows)
    return db


class TestExactMining:
    def test_planted_fd_found(self, database):
        miner = FDMiner(max_determinants=1, max_g3_error=0.0)
        candidates = miner.mine(database, "t")
        found = {(c.determinants, c.dependent) for c in candidates}
        assert (("city",), "state") in found
        assert (("zip",), "city") in found
        assert (("zip",), "state") in found  # transitive, also exact

    def test_key_determines_everything(self, database):
        miner = FDMiner(max_determinants=1, max_g3_error=0.0)
        candidates = miner.mine(database, "t")
        rand_dependents = {
            c.dependent for c in candidates if c.determinants == ("rand",)
        }
        assert rand_dependents == {"city", "state", "zip"}

    def test_non_fd_rejected(self, database):
        miner = FDMiner(max_determinants=1, max_g3_error=0.0)
        candidates = miner.mine(database, "t")
        assert not any(
            c.determinants == ("state",) and c.dependent == "city"
            for c in candidates
        )

    def test_pruning_skips_supersets(self, database):
        miner = FDMiner(max_determinants=2, max_g3_error=0.0)
        candidates = miner.mine(database, "t")
        # city -> state is exact at level 1, so (city, X) -> state must be
        # pruned at level 2.
        assert not any(
            len(c.determinants) == 2
            and "city" in c.determinants
            and c.dependent == "state"
            for c in candidates
        )


class TestApproximateMining:
    def test_g3_scoring(self, database):
        # Corrupt one row of the city->state FD.
        database.insert("t", [0, 99, 0, 999])
        miner = FDMiner(max_determinants=1, max_g3_error=0.05)
        candidates = miner.mine(database, "t")
        candidate = next(
            c
            for c in candidates
            if c.determinants == ("city",) and c.dependent == "state"
        )
        assert not candidate.is_exact
        assert candidate.g3_error == pytest.approx(1 / 201)
        assert candidate.confidence == pytest.approx(200 / 201)

    def test_threshold_excludes_weak_fds(self, database):
        for n in range(50):  # heavy corruption
            database.insert("t", [0, 100 + n, 0, 1000 + n])
        miner = FDMiner(max_determinants=1, max_g3_error=0.01)
        candidates = miner.mine(database, "t", columns=["city", "state"])
        assert not any(
            c.determinants == ("city",) and c.dependent == "state"
            for c in candidates
        )

    def test_null_determinants_ignored(self, database):
        database.insert("t", [None, 1, 1, 1])
        miner = FDMiner(max_determinants=1, max_g3_error=0.0)
        candidates = miner.mine(database, "t", columns=["city", "state"])
        assert any(
            c.determinants == ("city",) and c.dependent == "state"
            for c in candidates
        )


class TestWrapping:
    def test_soft_constraints_merged_by_lhs(self, database):
        constraints = mine_functional_dependencies(
            database, "t", columns=["city", "state", "zip"], max_g3_error=0.0
        )
        by_name = {c.name: c for c in constraints}
        zip_fd = by_name["fd_t_zip"]
        assert set(zip_fd.dependents) == {"city", "state"}

    def test_wrapped_constraints_verify(self, database):
        constraints = mine_functional_dependencies(
            database, "t", columns=["city", "state"], max_g3_error=0.0
        )
        for constraint in constraints:
            violations, _ = constraint.verify(database)
            assert violations == 0

    def test_empty_table(self):
        db = Database()
        db.create_table(
            TableSchema("e", [Column("a", INTEGER), Column("b", INTEGER)])
        )
        assert mine_functional_dependencies(db, "e") != []  # vacuously exact
