"""Error-taxonomy lint: core layers raise only typed ``ReproError``s.

Callers of the engine, executors, optimizer, expression system, feedback
loop and resilience layer are promised one catchable base class
(:class:`repro.errors.ReproError`) — the property the chaos harness
leans on when it asserts "oracle answer or *typed* error, never silently
wrong".  A stray ``raise ValueError`` would silently break that
contract, so this test walks the AST of every module in the scoped
packages and rejects any ``raise`` of a builtin exception.

Scope: the query path and storage path.  The softcon/sql/discovery
front-layers keep their own conventions (``NotImplementedError`` for
abstract methods, value validation at the user-facing boundary) and are
not linted here.
"""

import ast
import pathlib

from repro.errors import ReproError

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Packages whose raise sites must use the typed hierarchy.
SCOPED = (
    "concurrency",
    "durability",
    "engine",
    "executor",
    "expr",
    "replication",
    "feedback",
    "optimizer",
    "resilience",
    "stats",
)

#: Builtin exceptions that must never be raised directly in scope.
FORBIDDEN = {
    "ArithmeticError",
    "AttributeError",
    "BaseException",
    "Exception",
    "IndexError",
    "KeyError",
    "LookupError",
    "NotImplementedError",
    "OSError",
    "RuntimeError",
    "StopIteration",
    "TypeError",
    "ValueError",
    "ZeroDivisionError",
}


def _exception_name(node: ast.Raise):
    """The raised callable/class name, or None for re-raise / dynamic."""
    target = node.exc
    if isinstance(target, ast.Call):
        target = target.func
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


def _scoped_files():
    for package in SCOPED:
        root = SRC / package
        assert root.is_dir(), f"scoped package missing: {root}"
        yield from sorted(root.rglob("*.py"))


def test_scoped_raise_sites_use_typed_errors():
    offenders = []
    for path in _scoped_files():
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Raise):
                continue
            name = _exception_name(node)
            if name in FORBIDDEN:
                offenders.append(
                    f"{path.relative_to(SRC.parent.parent)}:{node.lineno} "
                    f"raises builtin {name}"
                )
    assert not offenders, (
        "core layers must raise ReproError subclasses, found:\n  "
        + "\n  ".join(offenders)
    )


def test_typed_errors_share_one_base():
    """Every class defined in repro.errors derives from ReproError."""
    import inspect

    from repro import errors

    for name, obj in vars(errors).items():
        if inspect.isclass(obj) and obj.__module__ == "repro.errors":
            assert issubclass(obj, ReproError), name


def test_failover_errors_slot_under_replication():
    """The failover additions extend the replication branch: one catch
    of ReplicationError covers fencing rejections and failed
    promotions, and FencedError carries both epochs so a client can log
    exactly how stale the deposed node was."""
    from repro.errors import (
        FencedError,
        PromotionError,
        ReplicationError,
    )

    for exc in (FencedError, PromotionError):
        assert issubclass(exc, ReplicationError)
    fenced = FencedError("stale", epoch=3, cluster_epoch=5)
    assert fenced.epoch == 3
    assert fenced.cluster_epoch == 5


def test_guard_errors_are_catchable_as_execution_errors():
    """The resource-governance errors slot under ExecutionError so
    existing catch-alls for runtime failures keep working."""
    from repro.errors import (
        BudgetExceededError,
        ExecutionError,
        QueryCancelledError,
        QueryGuardError,
        QueryTimeoutError,
    )

    for exc in (QueryTimeoutError, BudgetExceededError, QueryCancelledError):
        assert issubclass(exc, QueryGuardError)
    assert issubclass(QueryGuardError, ExecutionError)
