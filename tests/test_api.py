"""Tests for the SoftDB facade."""

import pytest

from repro import SoftDB
from repro.errors import SqlError
from repro.executor.runtime import ExecutionResult
from repro.softcon.minmax import MinMaxSC


class TestExecuteDispatch:
    def test_ddl_returns_none(self, softdb):
        assert softdb.execute("CREATE TABLE t (a INT)") is None

    def test_dml_returns_counts(self, softdb):
        softdb.execute("CREATE TABLE t (a INT)")
        assert softdb.execute("INSERT INTO t VALUES (1), (2)") == 2
        assert softdb.execute("UPDATE t SET a = a + 1") == 2
        assert softdb.execute("DELETE FROM t") == 2

    def test_query_returns_result(self, softdb):
        softdb.execute("CREATE TABLE t (a INT)")
        result = softdb.execute("SELECT a FROM t")
        assert isinstance(result, ExecutionResult)

    def test_drop_table(self, softdb):
        softdb.execute("CREATE TABLE t (a INT)")
        softdb.execute("DROP TABLE t")
        assert not softdb.database.catalog.has_table("t")

    def test_create_index_via_sql(self, softdb):
        softdb.execute("CREATE TABLE t (a INT)")
        softdb.execute("INSERT INTO t VALUES (5)")
        softdb.execute("CREATE INDEX ix ON t (a)")
        assert len(softdb.database.catalog.index("ix")) == 1


class TestConstraintDDL:
    def test_pk_enforced_via_sql(self, softdb):
        from repro.errors import ConstraintViolation

        softdb.execute("CREATE TABLE t (a INT PRIMARY KEY)")
        softdb.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ConstraintViolation):
            softdb.execute("INSERT INTO t VALUES (1)")

    def test_check_constraint_via_sql(self, softdb):
        from repro.errors import ConstraintViolation

        softdb.execute("CREATE TABLE t (a INT, CHECK (a > 0))")
        with pytest.raises(ConstraintViolation):
            softdb.execute("INSERT INTO t VALUES (-1)")

    def test_informational_check_skipped(self, softdb):
        softdb.execute("CREATE TABLE t (a INT, CHECK (a > 0) NOT ENFORCED)")
        softdb.execute("INSERT INTO t VALUES (-1)")  # trusted

    def test_fk_references_pk_by_default(self, softdb):
        from repro.errors import ConstraintViolation

        softdb.execute("CREATE TABLE p (id INT PRIMARY KEY)")
        softdb.execute("CREATE TABLE c (p_id INT REFERENCES p)")
        softdb.execute("INSERT INTO p VALUES (1)")
        softdb.execute("INSERT INTO c VALUES (1)")
        with pytest.raises(ConstraintViolation):
            softdb.execute("INSERT INTO c VALUES (99)")

    def test_fk_without_parent_pk_rejected(self, softdb):
        softdb.execute("CREATE TABLE p (id INT)")
        with pytest.raises(SqlError):
            softdb.execute("CREATE TABLE c (p_id INT REFERENCES p)")


class TestSummaryTableDDL:
    def test_creates_rule_and_exceptions(self, softdb):
        softdb.execute("CREATE TABLE t (a INT, b INT)")
        softdb.execute(
            "INSERT INTO t VALUES (1, 1), (2, 2), (10, 1)"
        )
        softdb.execute(
            "CREATE SUMMARY TABLE big_gap AS (SELECT * FROM t WHERE a > b + 5)"
        )
        rule = softdb.registry.get("big_gap_rule")
        assert rule.confidence == pytest.approx(2 / 3)
        assert softdb.database.table("big_gap").row_count == 1

    def test_multi_table_select_rejected(self, softdb):
        softdb.execute("CREATE TABLE t (a INT)")
        softdb.execute("CREATE TABLE u (b INT)")
        with pytest.raises(SqlError):
            softdb.execute(
                "CREATE SUMMARY TABLE s AS "
                "(SELECT * FROM t, u WHERE t.a = u.b)"
            )

    def test_projection_rejected(self, softdb):
        softdb.execute("CREATE TABLE t (a INT)")
        with pytest.raises(SqlError):
            softdb.execute(
                "CREATE SUMMARY TABLE s AS (SELECT a FROM t WHERE a > 0)"
            )


class TestHelpers:
    def test_plan_and_explain(self, sales_softdb):
        plan = sales_softdb.plan("SELECT id FROM sale WHERE day = 1")
        assert plan.output_names == ["id"]
        assert "SeqScan" in sales_softdb.explain("SELECT id FROM sale") or (
            "IndexScan" in sales_softdb.explain("SELECT id FROM sale")
        )

    def test_add_soft_constraint_activates(self, sales_softdb):
        sc = MinMaxSC("mm", "sale", "day", 0, 49)
        sales_softdb.add_soft_constraint(sc)
        assert sc.usable_in_rewrite

    def test_cached_execution(self, sales_softdb):
        sales_softdb.execute("SELECT id FROM sale", use_cache=True)
        sales_softdb.execute("SELECT id FROM sale", use_cache=True)
        assert sales_softdb.plan_cache.hits == 1

    def test_runstats_all(self, softdb):
        softdb.execute("CREATE TABLE t (a INT)")
        softdb.execute("CREATE TABLE u (b INT)")
        softdb.runstats_all()
        assert softdb.database.catalog.statistics("t") is not None
        assert softdb.database.catalog.statistics("u") is not None

    def test_insert_value_count_mismatch(self, softdb):
        from repro.errors import ExecutionError

        softdb.execute("CREATE TABLE t (a INT, b INT)")
        with pytest.raises(ExecutionError):
            softdb.execute("INSERT INTO t (a) VALUES (1, 2)")


class TestDescribe:
    def test_describe_lists_everything(self, softdb):
        from repro.softcon.checksc import CheckSoftConstraint

        softdb.execute(
            "CREATE TABLE t (a INT PRIMARY KEY, b INT, "
            "CHECK (b > 0) NOT ENFORCED)"
        )
        softdb.execute("CREATE INDEX ix_b ON t (b)")
        softdb.execute("INSERT INTO t VALUES (1, 2)")
        softdb.add_soft_constraint(
            CheckSoftConstraint("soft_b", "t", "b < 100")
        )
        softdb.execute(
            "CREATE SUMMARY TABLE exc AS (SELECT * FROM t WHERE b > 50)"
        )
        text = softdb.describe()
        assert "TABLE t (" in text
        assert "INDEX ix_b" in text
        assert "PRIMARY KEY t(a)" in text
        assert "NOT ENFORCED" in text
        assert "SUMMARY TABLE exc" in text
        assert "soft_b" in text
        assert "[ASC/active]" in text or "ASC" in text

    def test_describe_empty_database(self, softdb):
        assert softdb.describe() == ""
