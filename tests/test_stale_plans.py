"""Tests for stale-plan detection and re-issue (paper Section 4.1).

"There can be problems at run-time due to serializability: a transaction
(A) that executes a query rewritten by an ASC runs concurrently with
another transaction (B) that violated (and so overturns) the same ASC...
Abort transaction A ... Re-issue transaction A (modified now not to use
the ASC) after B commits."
"""

import pytest

from repro.discovery.linear_miner import mine_linear_correlations
from repro.errors import StalePlanError
from repro.softcon.maintenance import DropPolicy, RepairPolicy
from repro.softcon.minmax import MinMaxSC
from repro.workload.schemas import build_correlated_table

SQL = "SELECT id, a FROM meas WHERE b = 500.0"


@pytest.fixture
def corr_db():
    db = build_correlated_table(rows=2500, noise=4.0, seed=77)
    (asc,) = mine_linear_correlations(
        db.database, "meas", [("a", "b")], confidence_levels=(1.0,)
    )
    db.add_soft_constraint(asc, policy=DropPolicy(), verify_first=True)
    return db, asc


class TestGuard:
    def test_fresh_plan_executes(self, corr_db):
        db, _ = corr_db
        plan = db.plan(SQL)
        assert db.executor.execute(plan).row_count >= 0

    def test_overturned_dependency_raises(self, corr_db):
        """Transaction A's plan; transaction B overturns; A must not run."""
        db, asc = corr_db
        plan = db.plan(SQL)  # transaction A compiles
        db.execute("INSERT INTO meas VALUES (99999, 0.0, 500.0)")  # B
        with pytest.raises(StalePlanError) as info:
            db.executor.execute(plan)
        assert asc.name in info.value.stale_constraints

    def test_reissue_returns_correct_answers(self, corr_db):
        db, _ = corr_db
        plan = db.plan(SQL)
        db.execute("INSERT INTO meas VALUES (99999, 0.0, 500.0)")
        result = db.execute_plan(plan)  # behind-the-scenes re-issue
        assert any(row["id"] == 99999 for row in result.rows)

    def test_reissue_can_be_disabled(self, corr_db):
        db, _ = corr_db
        plan = db.plan(SQL)
        db.execute("INSERT INTO meas VALUES (99999, 0.0, 500.0)")
        with pytest.raises(StalePlanError):
            db.execute_plan(plan, retry_on_stale=False)

    def test_unguarded_executor_does_not_raise(self, corr_db):
        """Without a registry the executor is the raw runtime (the guard is
        the session layer's job) — this is what the harness uses when it
        deliberately replays old plans."""
        from repro.executor.runtime import Executor

        db, _ = corr_db
        plan = db.plan(SQL)
        db.execute("INSERT INTO meas VALUES (99999, 0.0, 500.0)")
        Executor(db.database).execute(plan)  # no guard, no exception

    def test_sc_free_plans_never_stale(self, corr_db):
        db, _ = corr_db
        plan = db.plan("SELECT id FROM meas WHERE a > 2900.0")
        db.execute("INSERT INTO meas VALUES (99999, 0.0, 500.0)")
        db.executor.execute(plan)  # no dependencies, no guard trip


class TestValueStaleness:
    def test_widening_repair_stales_inlined_plan(self):
        from repro import SoftDB
        from repro.optimizer.planner import OptimizerConfig

        db = SoftDB(OptimizerConfig(enable_runtime_parameters=False))
        db.execute("CREATE TABLE t (id INT, v INT)")
        db.database.insert_many("t", [(n, n) for n in range(100)])
        db.runstats_all()
        db.add_soft_constraint(
            MinMaxSC("vr", "t", "v", 0, 99), policy=RepairPolicy()
        )
        plan = db.plan("SELECT id FROM t WHERE v >= 90")
        db.execute("INSERT INTO t VALUES (999, 500)")  # widen repair
        with pytest.raises(StalePlanError):
            db.executor.execute(plan)
        # Re-issue finds the new row.
        result = db.execute_plan(plan)
        assert result.row_count == 11

    def test_widening_repair_does_not_stale_parameterized_plan(self):
        from repro import SoftDB
        from repro.optimizer.planner import OptimizerConfig

        db = SoftDB(OptimizerConfig(enable_runtime_parameters=True))
        db.execute("CREATE TABLE t (id INT, v INT)")
        db.database.insert_many("t", [(n, n) for n in range(100)])
        db.runstats_all()
        db.add_soft_constraint(
            MinMaxSC("vr", "t", "v", 0, 99), policy=RepairPolicy()
        )
        plan = db.plan("SELECT id FROM t WHERE v >= 90")
        db.execute("INSERT INTO t VALUES (999, 500)")
        result = db.executor.execute(plan)  # still fresh: PARAM is live
        assert result.row_count == 11
