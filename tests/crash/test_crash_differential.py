"""Crash-differential suite: kill the durability layer at every declared
crash site, recover, and require the recovered state to match a
never-crashed twin **bit for bit** for all committed work.

The model: a seeded workload of DML/DDL/soft-constraint actions runs
against a durable session with a :class:`CrashSchedule` armed at one
site/visit.  When :class:`SimulatedCrash` fires mid-action ``i``, the
in-memory session is discarded (that *is* the crash — nothing that only
lived in memory survives) and ``SoftDB.open`` recovers from disk.  The
twin is a plain in-memory session that applied exactly the committed
prefix — actions ``0..i-1`` — and never crashed.  Fingerprints cover
page images with CRCs, index images, the catalog's constraints, summary
tables, and the full soft-constraint registry state, compared with
``==``: committed work must be bit-identical, the crashed action must
leave zero trace, and no recovered ACTIVE absolute soft constraint may
contradict the recovered data.
"""

import random

import pytest

from repro.api import SoftDB
from repro.durability import codec
from repro.resilience.faults import CRASH_SITES, CrashSchedule, SimulatedCrash
from repro.softcon.base import SCState
from repro.softcon.maintenance import RepairPolicy
from repro.softcon.minmax import MinMaxSC

pytestmark = pytest.mark.crash

SEEDS = (7, 23, 1009)


# -- the seeded workload ------------------------------------------------------


def build_workload(seed):
    """A deterministic action list: multi-row DML, index/summary DDL,
    a repairable soft constraint that later inserts violate, and two
    mid-run checkpoints.  Same seed, same list — crashed and twin runs
    always agree on what action ``i`` was."""
    rng = random.Random(seed)
    actions = [
        ("sql", "CREATE TABLE emp (id INT PRIMARY KEY, salary INT)"),
        ("sql", "CREATE TABLE dept (id INT PRIMARY KEY, budget INT)"),
        (
            "sql",
            "INSERT INTO emp VALUES "
            + ", ".join(
                f"({n}, {1000 + rng.randrange(500)})" for n in range(30)
            ),
        ),
        (
            "sql",
            "INSERT INTO dept VALUES "
            + ", ".join(f"({n}, {5000 + 100 * n})" for n in range(8)),
        ),
        ("sql", "CREATE INDEX ix_emp_salary ON emp (salary)"),
        # Bounds cover the data so far; later inserts breach the high
        # bound and the RepairPolicy widens it mid-workload.
        ("softcon", ("emp_salary_range", "emp", "salary", 900, 1600)),
        (
            "sql",
            "CREATE SUMMARY TABLE high_paid AS "
            "(SELECT * FROM emp WHERE salary > 1400)",
        ),
        ("checkpoint", None),
    ]
    next_id = 30
    for step in range(10):
        kind = rng.choice(("insert", "insert", "update", "delete"))
        if kind == "insert":
            count = rng.randrange(1, 5)
            values = ", ".join(
                f"({next_id + n}, {1000 + rng.randrange(1200)})"
                for n in range(count)
            )
            next_id += count
            actions.append(("sql", f"INSERT INTO emp VALUES {values}"))
        elif kind == "update":
            bump = rng.randrange(5, 60)
            cutoff = 1000 + rng.randrange(400)
            actions.append(
                (
                    "sql",
                    f"UPDATE emp SET salary = salary + {bump} "
                    f"WHERE salary < {cutoff}",
                )
            )
        else:
            victim = rng.randrange(next_id)
            actions.append(("sql", f"DELETE FROM emp WHERE id = {victim}"))
        if step == 5:
            actions.append(("checkpoint", None))
    return actions


def apply_action(db, action):
    kind, payload = action
    if kind == "sql":
        db.execute(payload)
    elif kind == "softcon":
        name, table, column, low, high = payload
        db.add_soft_constraint(
            MinMaxSC(name, table, column, low, high, 1.0),
            policy=RepairPolicy(),
        )
    elif kind == "checkpoint":
        # The twin is in-memory: checkpoints are a durable-session-only
        # action and mutate no logical or physical table state.
        if db.durability is not None:
            db.checkpoint()


# -- fingerprinting -----------------------------------------------------------


def fingerprint(db):
    """Codec-encoded full state: page images carry a CRC over their
    slots, so ``==`` here is the bit-identity the suite demands."""
    catalog = db.database.catalog
    return {
        "tables": {
            name: {
                "pages": [
                    codec.encode_page(page)
                    for page in catalog.table(name).pages.pages
                ],
                "row_count": catalog.table(name).row_count,
            }
            for name in sorted(catalog.table_names())
        },
        "indexes": {
            name: codec.encode_index(catalog.index(name))
            for name in sorted(catalog.indexes)
        },
        "constraints": sorted(
            (codec.canonical_dumps(codec.encode_constraint(constraint)))
            for constraint in catalog.all_constraints()
        ),
        "summary_tables": sorted(catalog.summary_tables()),
        "softcons": {
            name: {
                "sc": codec.encode_soft_constraint(sc),
                "currency": codec.encode_currency(
                    db.registry._currency.get(name)
                ),
            }
            for name, sc in db.registry._constraints.items()
        },
    }


def run_twin(actions):
    twin = SoftDB()
    for action in actions:
        apply_action(twin, action)
    return twin


# -- the differential ---------------------------------------------------------


_CENSUS = {}


def site_visit_counts(tmp_path, seed):
    """Total visits per crash site in a fault-free durable run (a
    disarmed schedule still counts), so crashes can target first, middle
    and last visits of every site."""
    if seed not in _CENSUS:
        schedule = CrashSchedule(seed)
        schedule.disarm()
        db = SoftDB.open(tmp_path / "census", crash_points=schedule)
        for action in build_workload(seed):
            apply_action(db, action)
        _CENSUS[seed] = dict(schedule.visits)
    return _CENSUS[seed]


def crash_and_recover(path, actions, site, at_visit):
    """Run until the scheduled crash, discard the session, recover.

    Returns ``(recovered, crashed_at)`` — the index of the action that
    died — or ``(None, None)`` if the schedule never fired."""
    schedule = CrashSchedule(seed=0).add(site, at_visit=at_visit)
    db = SoftDB.open(path, crash_points=schedule)
    crashed_at = None
    for position, action in enumerate(actions):
        try:
            apply_action(db, action)
        except SimulatedCrash:
            crashed_at = position
            break
    if crashed_at is None:
        return None, None
    # The crash: the in-memory session is simply abandoned.  Recovery
    # opens the directory fresh, with no crash schedule.
    del db
    return SoftDB.open(path), crashed_at


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("site", CRASH_SITES)
def test_crash_differential(tmp_path, site, seed):
    actions = build_workload(seed)
    visits = site_visit_counts(tmp_path, seed)[site]
    assert visits > 0, f"workload never visits crash site {site!r}"
    targets = sorted({1, max(1, visits // 2), visits})
    for at_visit in targets:
        path = tmp_path / f"visit{at_visit}"
        recovered, crashed_at = crash_and_recover(
            path, actions, site, at_visit
        )
        assert recovered is not None, (
            f"{site} at_visit={at_visit} never fired despite the census"
        )
        summary = recovered.durability.last_recovery
        # Committed prefix, bit for bit; zero trace of the crashed action.
        twin = run_twin(actions[:crashed_at])
        assert fingerprint(recovered) == fingerprint(twin), (
            f"recovered state diverges from the fault-free twin after "
            f"crash at {site} visit {at_visit} (action {crashed_at}, "
            f"recovery summary {summary})"
        )
        # Storage integrity held without salvage work.
        assert summary["indexes_rebuilt"] == []
        assert summary["indexes_quarantined"] == []
        # WAL + registry stayed consistent: re-validation found nothing
        # to repair or overturn, and no ACTIVE absolute soft constraint
        # contradicts the recovered data.
        assert summary["asc_actions"] == []
        for sc in recovered.registry._constraints.values():
            if sc.state is SCState.ACTIVE and sc.is_absolute:
                assert recovered.durability._find_violation(sc) is None
        if site == "wal_append":
            # A torn final record is this site's on-disk signature.
            assert summary["torn_tail"]
        # The recovered session keeps working (and keeps logging).  The
        # very first crash point can predate CREATE TABLE emp itself.
        if "emp" in recovered.database.catalog.table_names():
            recovered.execute("INSERT INTO emp VALUES (7777, 1234)")
            assert recovered.query(
                "SELECT id FROM emp WHERE id = 7777"
            ) == [{"id": 7777}]
        recovered.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_fault_free_run_matches_twin_after_reopen(tmp_path, seed):
    """Baseline differential: no crash at all — close, reopen (which
    recovers from the final checkpoint), and compare against the twin
    that applied the identical full workload in memory."""
    actions = build_workload(seed)
    db = SoftDB.open(tmp_path / "db")
    for action in actions:
        apply_action(db, action)
    db.close()
    reopened = SoftDB.open(tmp_path / "db")
    twin = run_twin(actions)
    assert fingerprint(reopened) == fingerprint(twin)
    assert reopened.durability.last_recovery["asc_actions"] == []
