"""Concurrent crash differential: kill between two concurrent commits.

Two sessions run interleaved explicit transactions over one durable
database — session A's statements alternate with session B's, and each
round ends with the two COMMITs back to back.  A :class:`CrashSchedule`
tears the WAL mid-append at chosen visits, the in-memory state is
abandoned, and recovery must reconstruct exactly the transactions whose
commit record made it to disk — bit-identical to a serial twin that
applied only those transactions, in commit order.

Determinism: one driver thread steps both sessions, transactions touch
disjoint key partitions (no lock waits), and every write is an in-place
INT update — so the physical page images of "the committed subset,
replayed serially" equal the interleaved run's, byte for byte.

The census maps WAL-append visits to statements: a transaction is
durably committed iff the visit count after its COMMIT statement is
below the crash visit.  Crashing on the *second* commit of a round is
precisely the "between two concurrent commits" kill: recovery must keep
the first round-mate and drop the second.
"""

import pytest

from repro.api import SoftDB
from repro.resilience.faults import CrashSchedule, SimulatedCrash

from tests.crash.test_crash_differential import fingerprint

pytestmark = pytest.mark.crash

SEEDS = (7, 23, 1009)
KEYS = 12
ROUNDS = 3
SITE = "wal_append"


def setup_statements():
    return [
        "CREATE TABLE kv (id INT PRIMARY KEY, val INT)",
        "INSERT INTO kv VALUES "
        + ", ".join(f"({k}, {k * 10})" for k in range(1, KEYS + 1)),
    ]


def build_script(seed):
    """Interleaved two-session statements: (owner, sql, commit_txn).

    ``commit_txn`` is the transaction label ("A0", "B0", "A1", ...) on
    COMMIT statements, None elsewhere.  Session A updates keys 1..6,
    session B keys 7..12 — disjoint, so the single-threaded interleave
    never blocks and the committed subset replays to identical pages.
    """
    import random

    rng = random.Random(seed)
    script = []
    for r in range(ROUNDS):
        script.append(("A", "BEGIN", None))
        script.append(("B", "BEGIN", None))
        for step in range(2):
            ka = rng.randrange(1, KEYS // 2 + 1)
            kb = rng.randrange(KEYS // 2 + 1, KEYS + 1)
            sa = 1000 + 100 * r + step
            sb = 2000 + 100 * r + step
            script.append(
                ("A", f"UPDATE kv SET val = {sa} WHERE id = {ka}", None)
            )
            script.append(
                ("B", f"UPDATE kv SET val = {sb} WHERE id = {kb}", None)
            )
        first, second = ("A", "B") if rng.random() < 0.5 else ("B", "A")
        script.append((first, "COMMIT", f"{first}{r}"))
        script.append((second, "COMMIT", f"{second}{r}"))
    return script


def run_script(db, script, upto=None):
    """Drive both sessions from one thread; returns the statement index
    that crashed (None if the script completed)."""
    sessions = {"A": db.session("A"), "B": db.session("B")}
    crashed_at = None
    try:
        for position, (owner, sql, _txn) in enumerate(script):
            if upto is not None and position >= upto:
                break
            try:
                sessions[owner].execute(sql)
            except SimulatedCrash:
                crashed_at = position
                break
    finally:
        if crashed_at is None:
            for session in sessions.values():
                session.close()
    return crashed_at


def census(tmp_path, seed):
    """Fault-free durable run recording the cumulative WAL-append visit
    count after every statement (disarmed schedules still count)."""
    schedule = CrashSchedule(seed=0)
    schedule.disarm()
    db = SoftDB.open(tmp_path / "census", crash_points=schedule)
    for sql in setup_statements():
        db.execute(sql)
    script = build_script(seed)
    sessions = {"A": db.session("A"), "B": db.session("B")}
    after = []
    for owner, sql, _txn in script:
        sessions[owner].execute(sql)
        after.append(schedule.visits[SITE])
    for session in sessions.values():
        session.close()
    db.close()
    return after


def durable_txns(script, visits_after, crash_visit):
    """Transaction labels whose COMMIT fully appended before the crash
    (visit ``crash_visit`` itself is torn), in commit order."""
    return [
        txn
        for position, (_owner, _sql, txn) in enumerate(script)
        if txn is not None and visits_after[position] < crash_visit
    ]


def serial_twin(script, committed):
    """In-memory twin: only the committed transactions' statements,
    replayed serially in commit order."""
    twin = SoftDB()
    for sql in setup_statements():
        twin.execute(sql)
    by_txn = {}
    current = {"A": [], "B": []}
    for owner, sql, txn in script:
        if sql == "BEGIN":
            current[owner] = []
        elif txn is not None:
            by_txn[txn] = current[owner]
        else:
            current[owner].append(sql)
    for txn in committed:
        for sql in by_txn[txn]:
            twin.execute(sql)
    return twin


@pytest.mark.parametrize("seed", SEEDS)
def test_crash_between_concurrent_commits(tmp_path, seed):
    script = build_script(seed)
    visits_after = census(tmp_path, seed)

    # Target the first torn append of every COMMIT statement — for the
    # second commit of a round that is exactly a kill *between* two
    # concurrent commits — plus a mid-transaction DML tear per round.
    targets = set()
    for position, (_owner, _sql, txn) in enumerate(script):
        if txn is not None:
            before = visits_after[position - 1] if position else 0
            if visits_after[position] > before:
                targets.add(before + 1)
    for r in range(ROUNDS):
        # Some visit inside round r's DML (after both BEGINs).
        position = r * (len(script) // ROUNDS) + 2
        targets.add(visits_after[position] + 1)
    targets = sorted(
        v for v in targets if v <= visits_after[-1]
    )
    assert targets, "census found no WAL appends to tear"

    saw_split_round = False
    for at_visit in targets:
        path = tmp_path / f"visit{at_visit}"
        schedule = CrashSchedule(seed=0).add(SITE, at_visit=at_visit)
        db = SoftDB.open(path, crash_points=schedule)
        for sql in setup_statements():
            db.execute(sql)
        crashed_at = run_script(db, script)
        assert crashed_at is not None, (
            f"{SITE} at_visit={at_visit} never fired despite the census"
        )
        del db  # the crash: abandon everything in memory

        recovered = SoftDB.open(path)
        committed = durable_txns(script, visits_after, at_visit)
        twin = serial_twin(script, committed)
        assert fingerprint(recovered) == fingerprint(twin), (
            f"recovered state diverges from the serial twin of the "
            f"durably-committed set {committed} (seed {seed}, "
            f"crash at {SITE} visit {at_visit}, statement {crashed_at})"
        )
        # Exactly the pattern the suite exists for: one round-mate
        # committed durably, its concurrent partner torn away.
        rounds_seen = {txn[1:] for txn in committed}
        for r in sorted(rounds_seen):
            mates = [t for t in committed if t[1:] == r]
            if len(mates) == 1:
                saw_split_round = True
        # Recovery must report the torn tail this site leaves behind.
        assert recovered.durability.last_recovery["torn_tail"]
        recovered.close()
    assert saw_split_round, (
        "no crash target split a round's two concurrent commits"
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_fault_free_concurrent_run_matches_serial_twin(tmp_path, seed):
    """Baseline: no crash — close, reopen, and the recovered state must
    equal the serial twin of *all* transactions in commit order."""
    script = build_script(seed)
    db = SoftDB.open(tmp_path / "db")
    for sql in setup_statements():
        db.execute(sql)
    assert run_script(db, script) is None
    db.close()
    reopened = SoftDB.open(tmp_path / "db")
    committed = [txn for (_o, _s, txn) in script if txn is not None]
    twin = serial_twin(script, committed)
    assert fingerprint(reopened) == fingerprint(twin)
    reopened.close()
