"""Tests for access-path selection and join enumeration."""

import pytest

from repro.optimizer.access import AccessPathSelector
from repro.optimizer.builder import build_logical_plan
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.costmodel import CostModel
from repro.optimizer.joinorder import JoinOrderOptimizer
from repro.optimizer.physical import HashJoin, IndexScan, NestedLoopJoin, SeqScan
from repro.sql.parser import parse_expression, parse_statement
from repro.workload.schemas import build_star_schema


@pytest.fixture(scope="module")
def star_db():
    return build_star_schema(facts=5000, customers=100, products=50, seed=3)


def selector(db):
    estimator = CardinalityEstimator(db.database)
    return AccessPathSelector(db.database, estimator, CostModel(db.database))


class TestAccessPaths:
    def test_no_predicate_uses_seq_scan(self, star_db):
        scan = selector(star_db).best_scan("sales", "s", [])
        assert isinstance(scan, SeqScan)

    def test_selective_point_predicate_uses_pk_index(self, star_db):
        conjuncts = [parse_expression("s.id = 17")]
        scan = selector(star_db).best_scan("sales", "s", conjuncts)
        assert isinstance(scan, IndexScan)
        assert scan.low == (17,) and scan.high == (17,)

    def test_wide_range_prefers_seq_scan(self, star_db):
        conjuncts = [parse_expression("s.id >= 0")]
        scan = selector(star_db).best_scan("sales", "s", conjuncts)
        assert isinstance(scan, SeqScan)

    def test_narrow_range_prefers_index(self, star_db):
        conjuncts = [parse_expression("s.id BETWEEN 10 AND 20")]
        scan = selector(star_db).best_scan("sales", "s", conjuncts)
        assert isinstance(scan, IndexScan)

    def test_predicate_on_unindexed_column_seq_scans(self, star_db):
        conjuncts = [parse_expression("s.amount = 3.5")]
        scan = selector(star_db).best_scan("sales", "s", conjuncts)
        assert isinstance(scan, SeqScan)

    def test_index_scan_keeps_residual_filter(self, star_db):
        conjuncts = [
            parse_expression("s.id = 17"),
            parse_expression("s.amount > 100.0"),
        ]
        scan = selector(star_db).best_scan("sales", "s", conjuncts)
        assert isinstance(scan, IndexScan)
        assert scan.predicate is not None

    def test_estimates_attached(self, star_db):
        scan = selector(star_db).best_scan(
            "sales", "s", [parse_expression("s.id = 17")]
        )
        assert scan.estimated_rows > 0
        assert scan.estimated_cost > 0


class TestJoinOrder:
    def build_plan(self, db, sql):
        block = build_logical_plan(db.database, parse_statement(sql))
        estimator = CardinalityEstimator(db.database)
        cost_model = CostModel(db.database)
        select = AccessPathSelector(db.database, estimator, cost_model)
        scans = {
            bound.binding: select.best_scan(
                bound.table_name,
                bound.binding,
                estimator.single_binding_conjuncts(block, bound.binding),
            )
            for bound in block.tables
        }
        return JoinOrderOptimizer(estimator, cost_model).best_join_tree(
            block, scans
        )

    def test_single_table_passthrough(self, star_db):
        tree = self.build_plan(star_db, "SELECT id FROM customer")
        assert isinstance(tree, (SeqScan, IndexScan))

    def test_equijoin_becomes_hash_join(self, star_db):
        tree = self.build_plan(
            star_db,
            "SELECT s.id FROM sales s, customer c WHERE s.customer_id = c.id",
        )
        assert isinstance(tree, HashJoin)

    def test_theta_join_becomes_nested_loop(self, star_db):
        tree = self.build_plan(
            star_db,
            "SELECT s.id FROM sales s, customer c "
            "WHERE s.customer_id < c.id AND s.id < 3 AND c.id < 3",
        )
        assert isinstance(tree, NestedLoopJoin)

    def test_three_way_join_covers_all_tables(self, star_db):
        tree = self.build_plan(
            star_db,
            "SELECT s.id FROM sales s, customer c, product p "
            "WHERE s.customer_id = c.id AND s.product_id = p.id",
        )
        from repro.optimizer.joinorder import _bindings_of

        assert _bindings_of(tree) == {"s", "c", "p"}

    def test_connected_join_preferred_over_cartesian(self, star_db):
        tree = self.build_plan(
            star_db,
            "SELECT s.id FROM sales s, customer c, product p "
            "WHERE s.customer_id = c.id AND s.product_id = p.id",
        )
        # The top join and every join below it must carry a condition.
        def no_cartesian(node):
            if isinstance(node, NestedLoopJoin):
                assert node.condition is not None
            for child in node.children():
                no_cartesian(child)

        no_cartesian(tree)

    def test_pure_cross_join_still_planned(self, star_db):
        tree = self.build_plan(
            star_db,
            "SELECT c.id FROM customer c, product p",
        )
        assert isinstance(tree, NestedLoopJoin)

    def test_join_estimates_monotone(self, star_db):
        tree = self.build_plan(
            star_db,
            "SELECT s.id FROM sales s, customer c WHERE s.customer_id = c.id",
        )
        assert tree.estimated_rows == pytest.approx(5000, rel=0.5)
