"""Tests for difference-predicate selectivity hints (paper §5.1, closing
example: projects completed in 5 days, ``end_date - start_date <= 5``)."""

import pytest

from repro.optimizer.planner import Optimizer, OptimizerConfig
from repro.optimizer.rewrite.twinning import _interpolate_fraction
from repro.softcon.checksc import CheckSoftConstraint
from repro.stats.errors import q_error
from repro.workload.schemas import build_project_table

QUERY = "SELECT id FROM project WHERE end_date - start_date <= 5"
COUNT = "SELECT count(*) AS n FROM project WHERE end_date - start_date <= 5"


@pytest.fixture(scope="module")
def project_db():
    db = build_project_table(rows=8000, long_fraction=0.1, seed=91)
    for days, name in ((10, "d10"), (30, "d30"), (60, "d60")):
        sc = CheckSoftConstraint(
            name, "project", f"end_date <= start_date + {days}",
            confidence=0.5,
        )
        db.add_soft_constraint(sc, verify_first=True)
    return db


class TestInterpolation:
    POINTS = [(10.0, 0.3), (30.0, 0.9), (60.0, 0.95)]

    def test_exact_point(self):
        assert _interpolate_fraction(30.0, self.POINTS) == pytest.approx(0.9)

    def test_between_points(self):
        assert _interpolate_fraction(20.0, self.POINTS) == pytest.approx(0.6)

    def test_below_smallest_goes_through_origin(self):
        assert _interpolate_fraction(5.0, self.POINTS) == pytest.approx(0.15)

    def test_above_largest_clamps(self):
        assert _interpolate_fraction(100.0, self.POINTS) == pytest.approx(0.95)

    def test_single_point(self):
        assert _interpolate_fraction(15.0, [(30.0, 0.9)]) == pytest.approx(0.45)

    def test_nonpositive_smallest_bound(self):
        assert _interpolate_fraction(-5.0, [(0.0, 0.2), (10.0, 0.8)]) == (
            pytest.approx(0.2)
        )

    def test_result_clamped_to_unit(self):
        assert 0.0 <= _interpolate_fraction(1000.0, [(1.0, 1.5)]) <= 1.0


class TestEndToEnd:
    def test_hint_attached_with_note(self, project_db):
        plan = project_db.plan(QUERY)
        assert any("difference hint" in n for n in plan.estimation_notes)

    def test_estimate_beats_default(self, project_db):
        actual = project_db.query(COUNT)[0]["n"]
        hinted = project_db.plan(QUERY).estimated_rows
        plain = Optimizer(
            project_db.database, None, OptimizerConfig()
        ).optimize(QUERY).estimated_rows
        assert q_error(hinted, actual) < 1.3
        assert q_error(hinted, actual) < q_error(plain, actual)

    def test_answers_unchanged(self, project_db):
        from repro.harness.runner import compare_optimizers

        enabled, disabled = compare_optimizers(project_db, QUERY)
        assert enabled.row_count == disabled.row_count

    def test_reversed_spelling_also_recognized(self, project_db):
        plan = project_db.plan(
            "SELECT id FROM project WHERE end_date <= start_date + 5"
        )
        assert any("difference hint" in n for n in plan.estimation_notes)

    def test_unrelated_difference_not_hinted(self, project_db):
        plan = project_db.plan(
            "SELECT id FROM project WHERE id - start_date <= 5"
        )
        assert not any("difference hint" in n for n in plan.estimation_notes)

    def test_no_hints_without_constraints(self):
        db = build_project_table(rows=500, seed=92)
        plan = db.plan(QUERY)
        assert plan.estimation_notes == []
