"""Cost-model validation: estimated I/O must track executed I/O.

The cost model prices operators in page-read equivalents specifically so
these tests can hold it accountable against the executor's counters.
"""

import pytest

from repro.executor.runtime import Executor
from repro.optimizer.costmodel import CostModel
from repro.workload.schemas import build_purchase_scenario, build_star_schema


@pytest.fixture(scope="module")
def purchase_db():
    return build_purchase_scenario(rows=6000, exception_rate=0.01, seed=17)


class TestSeqScanCost:
    def test_cost_close_to_actual_pages(self, purchase_db):
        plan = purchase_db.plan("SELECT id FROM purchase WHERE amount < 50.0")
        result = purchase_db.executor.execute(plan)
        # The scan's cost is its page reads plus a per-tuple CPU term:
        # bounded below by the actual I/O and above by I/O + CPU budget.
        scan = plan.root
        while scan.children():
            scan = scan.children()[0]
        rows = purchase_db.database.table("purchase").row_count
        assert result.page_reads <= scan.estimated_cost
        assert scan.estimated_cost <= result.page_reads + rows * 0.02


class TestIndexScanCost:
    def test_clustered_range_cost_tracks_actual(self, purchase_db):
        plan = purchase_db.plan(
            "SELECT id FROM purchase WHERE order_date BETWEEN 11100 AND 11120"
        )
        from repro.optimizer.physical import IndexScan

        scans = _collect(plan.root, IndexScan)
        assert scans, "expected the clustered index path"
        result = purchase_db.executor.execute(plan)
        assert scans[0].estimated_cost == pytest.approx(
            result.page_reads, rel=1.0
        )

    def test_point_probe_cheap(self, purchase_db):
        purchase_db.database.reset_counters()
        result = purchase_db.execute(
            "SELECT id FROM purchase WHERE id = 50"
        )
        assert result.page_reads <= 5


class TestRelativeOrdering:
    """The model's job is to rank plans correctly, not to be exact."""

    def test_index_beats_scan_when_it_actually_does(self, purchase_db):
        narrow = purchase_db.plan(
            "SELECT id FROM purchase WHERE order_date BETWEEN 11100 AND 11105"
        )
        wide = purchase_db.plan(
            "SELECT id FROM purchase WHERE order_date > 10000"
        )
        from repro.optimizer.physical import IndexScan, SeqScan

        assert _collect(narrow.root, IndexScan)
        assert _collect(wide.root, SeqScan)
        executor = Executor(purchase_db.database)
        narrow_io = executor.execute(narrow).page_reads
        wide_io = executor.execute(wide).page_reads
        assert narrow_io < wide_io

    def test_join_elimination_lowers_estimated_cost(self):
        db = build_star_schema(facts=2000, customers=50, products=20, seed=2)
        from repro.harness.runner import _all_off
        from repro.optimizer.planner import Optimizer

        sql = (
            "SELECT s.id FROM sales s, customer c WHERE s.customer_id = c.id"
        )
        with_rewrites = db.plan(sql)
        without = Optimizer(db.database, db.registry, _all_off()).optimize(sql)
        assert with_rewrites.estimated_cost < without.estimated_cost


def _collect(root, node_type):
    found, stack = [], [root]
    while stack:
        node = stack.pop()
        if isinstance(node, node_type):
            found.append(node)
        stack.extend(node.children())
    return found
