"""Tests for runtime plan parameterization (paper Section 4.2).

"It may be worth considering ASCs just for runtime query
parameterization... The actual values in the ASC are not important...
Rather, the availability of this information (of the ASC) at runtime is
important."
"""

import pytest

from repro import SoftDB
from repro.optimizer.planner import Optimizer, OptimizerConfig, PlanCache
from repro.softcon.maintenance import RepairPolicy
from repro.softcon.minmax import MinMaxSC
from repro.sql import ast


def make_db(runtime_parameters=True) -> SoftDB:
    db = SoftDB(OptimizerConfig(enable_runtime_parameters=runtime_parameters))
    db.execute("CREATE TABLE t (id INT, v INT)")
    db.database.insert_many("t", [(n, n) for n in range(5000)])
    db.execute("CREATE INDEX ix_v ON t (v)")
    db.runstats_all()
    db.add_soft_constraint(
        MinMaxSC("vrange", "t", "v", 0, 4999), policy=RepairPolicy()
    )
    return db


HALF_OPEN = "SELECT id FROM t WHERE v >= 4990"


class TestRuntimeParameterNode:
    def test_current_value_tracks_constraint(self):
        sc = MinMaxSC("mm", "t", "x", 0, 10)
        parameter = ast.RuntimeParameter(sc, "high")
        assert parameter.current_value() == 10
        sc.widen_to(50)
        assert parameter.current_value() == 50

    def test_evaluation_is_live(self):
        from repro.expr.eval import evaluate

        sc = MinMaxSC("mm", "t", "x", 0, 10)
        expression = ast.BinaryOp(
            "<=", ast.ColumnRef("x"), ast.RuntimeParameter(sc, "high")
        )
        assert evaluate(expression, {"x": 20}) is False
        sc.widen_to(25)
        assert evaluate(expression, {"x": 20}) is True

    def test_printable_in_explain(self):
        from repro.sql.printer import sql_of

        sc = MinMaxSC("mm", "t", "x", 0, 10)
        expression = ast.BinaryOp(
            "<=", ast.ColumnRef("x"), ast.RuntimeParameter(sc, "high")
        )
        assert "PARAM(mm.high)" in sql_of(expression)

    def test_counts_as_constant_for_analysis(self):
        from repro.expr import analysis

        sc = MinMaxSC("mm", "t", "x", 0, 10)
        expression = ast.BinaryOp(
            "<=", ast.ColumnRef("x"), ast.RuntimeParameter(sc, "high")
        )
        match = analysis.match_column_comparison(expression)
        assert match is not None and match.value == 10


class TestParameterizedPlans:
    def test_abbreviation_uses_parameters(self):
        db = make_db(runtime_parameters=True)
        plan = db.plan(HALF_OPEN)
        assert any("runtime parameters" in r for r in plan.rewrites_applied)
        # Validity dependency only: value repairs must not evict.
        assert "vrange" in plan.sc_dependencies
        assert "vrange" not in plan.sc_value_dependencies

    def test_cached_plan_survives_widening_and_stays_correct(self):
        db = make_db(runtime_parameters=True)
        cache = PlanCache(db.optimizer)
        plan = cache.get_plan(HALF_OPEN)
        before = db.executor.execute(plan).row_count
        db.execute("INSERT INTO t VALUES (999999, 6000)")  # widens vrange
        again = cache.get_plan(HALF_OPEN)
        assert again is plan  # not invalidated
        assert cache.invalidations == 0
        assert db.executor.execute(again).row_count == before + 1

    def test_parameter_reaches_index_key(self):
        from repro.optimizer.physical import IndexScan

        db = make_db(runtime_parameters=True)
        plan = db.plan(HALF_OPEN)
        scans = _collect(plan.root, IndexScan)
        assert scans
        assert any(
            isinstance(part, ast.RuntimeParameter)
            for part in (scans[0].high or ())
        )

    def test_inlined_plan_is_invalidated_instead(self):
        db = make_db(runtime_parameters=False)
        cache = PlanCache(db.optimizer)
        plan = cache.get_plan(HALF_OPEN)
        assert "vrange" in plan.sc_value_dependencies
        before = db.executor.execute(plan).row_count
        db.execute("INSERT INTO t VALUES (999999, 6000)")
        assert cache.invalidations == 1
        fresh = cache.get_plan(HALF_OPEN)
        assert fresh is not plan
        assert db.executor.execute(fresh).row_count == before + 1

    def test_answers_match_unrewritten_plan_after_widening(self):
        db = make_db(runtime_parameters=True)
        plan = db.plan(HALF_OPEN)
        db.execute("INSERT INTO t VALUES (999999, 6000)")
        from repro.harness.runner import _all_off

        baseline = Optimizer(db.database, None, _all_off()).optimize(HALF_OPEN)
        got = sorted(r["id"] for r in db.executor.execute(plan).rows)
        want = sorted(r["id"] for r in db.executor.execute(baseline).rows)
        assert got == want


class TestValueChannelForOtherRepairs:
    def test_linear_epsilon_widening_fires_value_channel(self):
        from repro.softcon.linear import LinearCorrelationSC

        db = SoftDB()
        db.execute("CREATE TABLE t (a DOUBLE, b DOUBLE)")
        db.database.insert_many("t", [(x, 2.0 * x) for x in range(100)])
        db.execute("CREATE INDEX ix_b ON t (b)")
        db.runstats_all()
        sc = LinearCorrelationSC("lin", "t", "b", "a", 2.0, 0.0, 0.5)
        db.add_soft_constraint(sc, policy=RepairPolicy())
        cache = PlanCache(db.optimizer)
        sql = "SELECT b FROM t WHERE a = 50.0"
        plan = cache.get_plan(sql)
        assert "lin" in plan.sc_value_dependencies
        db.execute("INSERT INTO t VALUES (50.0, 109.0)")  # widens epsilon
        assert cache.invalidations == 1
        # The recompiled plan covers the widened band: the new row shows.
        rows = db.executor.execute(cache.get_plan(sql)).rows
        assert any(r["b"] == 109.0 for r in rows)


def _collect(root, node_type):
    found, stack = [], [root]
    while stack:
        node = stack.pop()
        if isinstance(node, node_type):
            found.append(node)
        stack.extend(node.children())
    return found
