"""Tests for join-path linear correlations in rewrite and twinning."""

import pytest

from repro.discovery.linear_miner import mine_join_linear_correlation
from repro.harness.runner import compare_optimizers
from repro.optimizer.physical import IndexScan
from repro.workload.schemas import build_join_linear_scenario

QUERY = (
    "SELECT s.id FROM shipments s, freight f "
    "WHERE s.region_id = f.region_id AND s.weight BETWEEN 100.0 AND 110.0"
)


@pytest.fixture(scope="module")
def scenario():
    db = build_join_linear_scenario(rows_per_table=3000, seed=65)
    candidates = mine_join_linear_correlation(
        db.database,
        "freight", "cost", "shipments", "weight",
        "region_id", "region_id",
        confidence_levels=(1.0,),
    )
    db.add_soft_constraint(candidates[0], verify_first=True)
    return db, candidates[0]


class TestIntroduction:
    def test_band_introduced_on_other_table(self, scenario):
        db, asc = scenario
        plan = db.plan(QUERY)
        fired = [
            r for r in plan.rewrites_applied if "join-path band" in r
        ]
        assert fired
        assert asc.name in plan.sc_dependencies

    def test_band_opens_index_on_freight(self, scenario):
        db, _ = scenario
        plan = db.plan(QUERY)
        scans = _collect(plan.root, IndexScan)
        assert any(s.index_name == "idx_freight_cost" for s in scans)

    def test_answers_identical_fewer_pages(self, scenario):
        db, _ = scenario
        enabled, disabled = compare_optimizers(db, QUERY)
        assert enabled.row_count == disabled.row_count
        assert enabled.page_reads < disabled.page_reads

    def test_reverse_direction_also_derives(self, scenario):
        db, _ = scenario
        plan = db.plan(
            "SELECT s.id FROM shipments s, freight f "
            "WHERE s.region_id = f.region_id "
            "AND f.cost BETWEEN 350.0 AND 380.0"
        )
        fired = [
            r
            for r in plan.rewrites_applied
            if "join-path band" in r and ".weight" in r
        ]
        assert fired

    def test_no_introduction_without_join_path(self, scenario):
        db, _ = scenario
        plan = db.plan(
            "SELECT s.id FROM shipments s WHERE s.weight BETWEEN 100.0 AND 110.0"
        )
        assert not any("join-path band" in r for r in plan.rewrites_applied)

    def test_no_introduction_without_range(self, scenario):
        db, _ = scenario
        plan = db.plan(
            "SELECT s.id FROM shipments s, freight f "
            "WHERE s.region_id = f.region_id"
        )
        assert not any("join-path band" in r for r in plan.rewrites_applied)


class TestTwinning:
    def test_ssc_twins_for_estimation_only(self):
        db = build_join_linear_scenario(rows_per_table=1500, seed=66)
        candidates = mine_join_linear_correlation(
            db.database,
            "freight", "cost", "shipments", "weight",
            "region_id", "region_id",
            confidence_levels=(0.9,),
        )
        ssc = next(c for c in candidates if c.confidence == 0.9)
        db.add_soft_constraint(ssc, verify_first=True)
        assert ssc.is_statistical
        sql = (
            "SELECT s.id FROM shipments s, freight f "
            "WHERE s.region_id = f.region_id "
            "AND s.weight BETWEEN 100.0 AND 110.0 AND f.cost > 0.0"
        )
        plan = db.plan(sql)
        # No real rewrite (SSC), but a twinned estimation predicate.
        assert not any("join-path band" in r for r in plan.rewrites_applied)
        assert any("cost" in note for note in plan.estimation_notes)
        # Answers untouched.
        enabled, disabled = compare_optimizers(db, sql)
        assert enabled.row_count == disabled.row_count


class TestSelection:
    def test_scored_by_join_and_predicate_frequency(self, scenario):
        from repro.discovery import SelectionEngine, Workload

        db, asc = scenario
        workload = Workload.from_sql([(QUERY, 8.0)])
        score = SelectionEngine().score(asc, workload, db.database)
        assert score.matched_frequency == 8.0
        assert score.benefit > 0

    def test_unjoined_workload_scores_zero(self, scenario):
        from repro.discovery import SelectionEngine, Workload

        db, asc = scenario
        workload = Workload.from_sql(
            ["SELECT id FROM shipments WHERE weight > 10.0"]
        )
        score = SelectionEngine().score(asc, workload, db.database)
        assert score.matched_frequency == 0.0


def _collect(root, node_type):
    found, stack = [], [root]
    while stack:
        node = stack.pop()
        if isinstance(node, node_type):
            found.append(node)
        stack.extend(node.children())
    return found
