"""Tests for binding SQL into logical query blocks."""

import pytest

from repro.errors import BindError
from repro.optimizer.builder import build_logical_plan
from repro.optimizer.logical import QueryBlock, UnionPlan
from repro.sql import ast
from repro.sql.parser import parse_statement


def build(database, sql):
    return build_logical_plan(database, parse_statement(sql))


class TestBindingBasics:
    def test_single_table(self, people_database):
        block = build(people_database, "SELECT id FROM person")
        assert isinstance(block, QueryBlock)
        assert [t.table_name for t in block.tables] == ["person"]
        assert block.output[0].name == "id"

    def test_unqualified_columns_qualified(self, people_database):
        block = build(people_database, "SELECT id FROM person WHERE age > 30")
        (conjunct,) = block.predicates
        assert isinstance(conjunct.left, ast.ColumnRef)
        assert conjunct.left.table == "person"

    def test_alias_binding(self, people_database):
        block = build(people_database, "SELECT p.id FROM person p")
        assert block.tables[0].binding == "p"
        assert block.output[0].expression.table == "p"

    def test_unknown_table(self, people_database):
        with pytest.raises(Exception):
            build(people_database, "SELECT x FROM ghost")

    def test_unknown_column(self, people_database):
        with pytest.raises(BindError):
            build(people_database, "SELECT wrong FROM person")

    def test_ambiguous_column(self, people_database):
        with pytest.raises(BindError):
            build(people_database, "SELECT id FROM person, city")

    def test_ambiguity_resolved_by_qualifier(self, people_database):
        block = build(
            people_database, "SELECT person.id FROM person, city"
        )
        assert block.output[0].expression.table == "person"

    def test_duplicate_binding_rejected(self, people_database):
        with pytest.raises(BindError):
            build(people_database, "SELECT 1 AS one FROM person, person")

    def test_self_join_with_aliases(self, people_database):
        block = build(
            people_database,
            "SELECT a.id FROM person a, person b WHERE a.id = b.id",
        )
        assert len(block.tables) == 2

    def test_no_from_rejected(self, people_database):
        with pytest.raises(BindError):
            build(people_database, "SELECT 1 AS one")


class TestPredicatePooling:
    def test_where_conjuncts_flattened(self, people_database):
        block = build(
            people_database,
            "SELECT id FROM person WHERE age > 30 AND city_id = 1 AND id < 9",
        )
        assert len(block.predicates) == 3

    def test_join_on_conditions_pooled(self, people_database):
        block = build(
            people_database,
            "SELECT p.id FROM person p JOIN city c ON p.city_id = c.id "
            "WHERE p.age > 30",
        )
        assert len(block.predicates) == 2

    def test_left_join_rejected(self, people_database):
        with pytest.raises(BindError):
            build(
                people_database,
                "SELECT p.id FROM person p LEFT JOIN city c "
                "ON p.city_id = c.id",
            )

    def test_where_normalized(self, people_database):
        block = build(
            people_database,
            "SELECT id FROM person WHERE NOT (age < 30 OR age > 40)",
        )
        assert len(block.predicates) == 2  # pushed NOT -> two conjuncts


class TestStarExpansion:
    def test_bare_star(self, people_database):
        block = build(people_database, "SELECT * FROM city")
        assert [o.name for o in block.output] == ["id", "name"]

    def test_qualified_star(self, people_database):
        block = build(
            people_database, "SELECT c.* FROM person p, city c"
        )
        assert [o.name for o in block.output] == ["id", "name"]

    def test_star_over_join_uniquifies_names(self, people_database):
        block = build(people_database, "SELECT * FROM person, city")
        names = [o.name for o in block.output]
        assert len(names) == len(set(names))
        assert "id" in names and "id_2" in names


class TestGrouping:
    def test_aggregates_extracted(self, people_database):
        block = build(
            people_database,
            "SELECT city_id, count(*) AS n, avg(age) AS a FROM person "
            "GROUP BY city_id",
        )
        assert [a.function for a in block.aggregates] == ["count", "avg"]
        assert block.aggregates[0].output_name == "n"

    def test_scalar_aggregate_without_group_by(self, people_database):
        block = build(people_database, "SELECT count(*) AS n FROM person")
        assert block.is_grouped and block.group_by == []

    def test_non_key_output_rejected(self, people_database):
        with pytest.raises(BindError):
            build(
                people_database,
                "SELECT name, count(*) AS n FROM person GROUP BY city_id",
            )

    def test_nested_aggregate_rejected(self, people_database):
        with pytest.raises(BindError):
            build(
                people_database,
                "SELECT count(*) + 1 AS n FROM person",
            )

    def test_having_rewritten_to_aggregate_ref(self, people_database):
        block = build(
            people_database,
            "SELECT city_id, count(*) AS n FROM person GROUP BY city_id "
            "HAVING count(*) > 1",
        )
        assert isinstance(block.having.left, ast.ColumnRef)
        assert block.having.left.column == "n"

    def test_having_adds_hidden_aggregate(self, people_database):
        block = build(
            people_database,
            "SELECT city_id FROM person GROUP BY city_id "
            "HAVING avg(age) > 30",
        )
        hidden = [a for a in block.aggregates if a.function == "avg"]
        assert len(hidden) == 1

    def test_having_without_group_by_is_syntax_error(self, people_database):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            build(people_database, "SELECT id FROM person HAVING id > 1")

    def test_non_column_group_key_rejected(self, people_database):
        with pytest.raises(BindError):
            build(
                people_database,
                "SELECT count(*) AS n FROM person GROUP BY age + 1",
            )


class TestTail:
    def test_order_by_output_alias(self, people_database):
        block = build(
            people_database,
            "SELECT age AS years FROM person ORDER BY years",
        )
        (expression, ascending) = block.order_by[0]
        assert expression == ast.ColumnRef("years")

    def test_order_by_table_column(self, people_database):
        block = build(
            people_database, "SELECT id FROM person ORDER BY age DESC"
        )
        expression, ascending = block.order_by[0]
        assert expression.table == "person" and not ascending

    def test_limit_and_distinct(self, people_database):
        block = build(
            people_database, "SELECT DISTINCT city_id FROM person LIMIT 2"
        )
        assert block.distinct and block.limit == 2


class TestUnion:
    def test_union_produces_union_plan(self, people_database):
        plan = build(
            people_database,
            "SELECT id FROM person UNION ALL SELECT id FROM city",
        )
        assert isinstance(plan, UnionPlan)
        assert len(plan.blocks) == 2

    def test_union_width_mismatch_rejected(self, people_database):
        with pytest.raises(BindError):
            build(
                people_database,
                "SELECT id, age FROM person UNION ALL SELECT id FROM city",
            )
