"""Tests for EXPLAIN ANALYZE (instrumented execution)."""

import pytest


class TestInstrumentedExecution:
    def test_actual_rows_recorded_per_node(self, sales_softdb):
        plan = sales_softdb.plan(
            "SELECT region, count(*) AS n FROM sale WHERE day < 10 "
            "GROUP BY region"
        )
        sales_softdb.executor.execute(plan, instrument=True)
        nodes = _all_nodes(plan.root)
        assert all(node.actual_rows is not None for node in nodes)
        # The group output has 4 regions; its input has 40 rows.
        root_actual = plan.root.actual_rows
        assert root_actual == 4

    def test_uninstrumented_leaves_no_actuals(self, sales_softdb):
        plan = sales_softdb.plan("SELECT id FROM sale")
        sales_softdb.executor.execute(plan)
        assert plan.root.actual_rows is None

    def test_instrumented_and_plain_agree(self, sales_softdb):
        plan = sales_softdb.plan("SELECT id FROM sale WHERE day BETWEEN 3 AND 9")
        plain = sales_softdb.executor.execute(plan)
        instrumented = sales_softdb.executor.execute(plan, instrument=True)
        assert plain.tuples() == instrumented.tuples()
        assert plain.page_reads == instrumented.page_reads

    def test_explain_analyze_text(self, sales_softdb):
        text = sales_softdb.explain(
            "SELECT id FROM sale WHERE day = 3", analyze=True
        )
        assert "est=" in text
        assert "act=" in text
        assert "qerr=" in text
        assert "pages read" in text

    def test_plain_explain_has_no_actuals(self, sales_softdb):
        text = sales_softdb.explain("SELECT id FROM sale WHERE day = 3")
        assert "act=" not in text
        assert "qerr=" not in text

    def test_estimates_track_actuals_on_uniform_data(self, sales_softdb):
        plan = sales_softdb.plan("SELECT id FROM sale WHERE day < 25")
        sales_softdb.executor.execute(plan, instrument=True)
        scan = plan.root
        while scan.children():
            scan = scan.children()[0]
        assert scan.actual_rows == pytest.approx(
            scan.estimated_rows, rel=0.25
        )


def _all_nodes(root):
    found, stack = [], [root]
    while stack:
        node = stack.pop()
        found.append(node)
        stack.extend(node.children())
    return found
