"""Tests for FD-based GROUP BY / ORDER BY simplification (E7 mechanics)."""

import pytest

from repro.discovery.fd_miner import mine_functional_dependencies
from repro.harness.runner import compare_optimizers
from repro.optimizer.planner import Optimizer, OptimizerConfig
from repro.workload.schemas import build_denormalized_orders


@pytest.fixture(scope="module")
def orders_db():
    db = build_denormalized_orders(rows=3000, cities=50, states=5, seed=12)
    for constraint in mine_functional_dependencies(
        db.database, "orders", columns=["city_id", "state_id"], max_g3_error=0.0
    ):
        db.add_soft_constraint(constraint, verify_first=True)
    return db


GROUP_SQL = (
    "SELECT city_id, state_id, sum(amount) AS total FROM orders "
    "GROUP BY city_id, state_id"
)


class TestGroupBySimplification:
    def test_dependent_key_dropped(self, orders_db):
        plan = orders_db.plan(GROUP_SQL)
        fired = [
            r
            for r in plan.rewrites_applied
            if "groupby_simplification" in r and "GROUP BY" in r
        ]
        assert fired
        assert "state_id" in fired[0]

    def test_answers_identical(self, orders_db):
        enabled, disabled = compare_optimizers(orders_db, GROUP_SQL)
        assert enabled.row_count == disabled.row_count

    def test_carried_column_still_projected(self, orders_db):
        rows = orders_db.query(GROUP_SQL)
        assert all(row["state_id"] == row["city_id"] % 5 for row in rows)

    def test_plan_depends_on_fd(self, orders_db):
        plan = orders_db.plan(GROUP_SQL)
        assert any(dep.startswith("fd_") for dep in plan.sc_dependencies)

    def test_pk_also_simplifies(self, orders_db):
        # id is the primary key: grouping by (id, city_id) collapses to id.
        plan = orders_db.plan(
            "SELECT id, city_id, count(*) AS n FROM orders GROUP BY id, city_id"
        )
        fired = [
            r for r in plan.rewrites_applied if "groupby_simplification" in r
        ]
        assert fired

    def test_determinant_never_dropped(self, orders_db):
        plan = orders_db.plan(GROUP_SQL)
        group_nodes = _group_nodes(plan.root)
        (group,) = group_nodes
        key_names = {key.column for key in group.keys}
        assert "city_id" in key_names
        assert "state_id" not in key_names

    def test_switch_disables(self, orders_db):
        optimizer = Optimizer(
            orders_db.database,
            orders_db.registry,
            OptimizerConfig(enable_groupby_simplification=False),
        )
        plan = optimizer.optimize(GROUP_SQL)
        assert not any(
            "groupby_simplification" in r for r in plan.rewrites_applied
        )


class TestOrderBySimplification:
    def test_trailing_determined_key_dropped(self, orders_db):
        plan = orders_db.plan(
            "SELECT city_id, state_id FROM orders "
            "ORDER BY city_id, state_id"
        )
        fired = [
            r
            for r in plan.rewrites_applied
            if "groupby_simplification" in r and "ORDER BY" in r
        ]
        assert fired

    def test_order_preserved(self, orders_db):
        enabled, disabled = compare_optimizers(
            orders_db,
            "SELECT city_id, state_id FROM orders "
            "ORDER BY city_id, state_id LIMIT 50",
            check_same_answers=False,
        )
        assert enabled.result.tuples() == disabled.result.tuples()

    def test_leading_key_kept(self, orders_db):
        # state -> city does NOT hold; ordering must keep both keys.
        plan = orders_db.plan(
            "SELECT city_id, state_id FROM orders "
            "ORDER BY state_id, city_id"
        )
        sorts = _sort_nodes(plan.root)
        assert sorts and len(sorts[0].order) == 2


def _group_nodes(root):
    from repro.optimizer.physical import GroupBy

    return _collect(root, GroupBy)


def _sort_nodes(root):
    from repro.optimizer.physical import Sort

    return _collect(root, Sort)


def _collect(root, node_type):
    found, stack = [], [root]
    while stack:
        node = stack.pop()
        if isinstance(node, node_type):
            found.append(node)
        stack.extend(node.children())
    return found
