"""Tests for exception-AST routing (E6 mechanics, paper Section 4.4)."""

import pytest

from repro.harness.runner import compare_optimizers
from repro.optimizer.physical import IndexScan, UnionAll
from repro.optimizer.planner import Optimizer, OptimizerConfig
from repro.softcon.checksc import CheckSoftConstraint
from repro.workload.schemas import build_purchase_scenario


@pytest.fixture(scope="module")
def purchase_db():
    db = build_purchase_scenario(rows=8000, exception_rate=0.01, seed=13)
    db.execute(
        "CREATE SUMMARY TABLE late_shipments AS (SELECT * FROM purchase "
        "WHERE ship_date > order_date + 21 OR ship_date < order_date)"
    )
    return db


QUERY = "SELECT id, amount FROM purchase WHERE ship_date = 11100"


class TestRouting:
    def test_union_plan_produced(self, purchase_db):
        plan = purchase_db.plan(QUERY)
        assert any("ast_routing" in r for r in plan.rewrites_applied)
        assert isinstance(plan.root.children()[0], UnionAll) or isinstance(
            plan.root, UnionAll
        ) or _find(plan.root, UnionAll)

    def test_conforming_branch_uses_order_date_index(self, purchase_db):
        plan = purchase_db.plan(QUERY)
        scans = _find(plan.root, IndexScan)
        assert any(scan.index_name == "idx_purchase_od" for scan in scans)

    def test_answers_exact(self, purchase_db):
        enabled, disabled = compare_optimizers(purchase_db, QUERY)
        assert enabled.row_count == disabled.row_count

    def test_late_rows_come_from_exception_branch(self, purchase_db):
        # Plant a known late shipment and make sure the routed plan finds it.
        purchase_db.execute(
            "INSERT INTO purchase VALUES (999999, 10999, 11100, 42.0)"
        )
        rows = purchase_db.query(QUERY)
        assert any(row["id"] == 999999 for row in rows)

    def test_fewer_pages_than_full_scan(self, purchase_db):
        enabled, disabled = compare_optimizers(purchase_db, QUERY)
        assert enabled.page_reads < disabled.page_reads * 0.5

    def test_plan_depends_on_rule_sc(self, purchase_db):
        plan = purchase_db.plan(QUERY)
        assert "late_shipments_rule" in plan.sc_dependencies


class TestGuards:
    def test_grouped_query_not_routed(self, purchase_db):
        plan = purchase_db.plan(
            "SELECT count(*) AS n FROM purchase WHERE ship_date = 11100"
        )
        assert not any("ast_routing" in r for r in plan.rewrites_applied)

    def test_query_without_usable_predicate_not_routed(self, purchase_db):
        plan = purchase_db.plan(
            "SELECT id FROM purchase WHERE amount > 400.0"
        )
        assert not any("ast_routing" in r for r in plan.rewrites_applied)

    def test_switch_disables(self, purchase_db):
        optimizer = Optimizer(
            purchase_db.database,
            purchase_db.registry,
            OptimizerConfig(enable_ast_routing=False),
        )
        plan = optimizer.optimize(QUERY)
        assert not any("ast_routing" in r for r in plan.rewrites_applied)

    def test_inactive_rule_not_routed(self, purchase_db):
        from repro.softcon.base import SCState

        rule = purchase_db.registry.get("late_shipments_rule")
        rule.transition(SCState.VIOLATED)
        plan = purchase_db.plan(QUERY)
        assert not any("ast_routing" in r for r in plan.rewrites_applied)
        rule.transition(SCState.ACTIVE)


class TestExceptionMaintenanceIntegration:
    def test_new_exception_visible_immediately(self, purchase_db):
        purchase_db.execute(
            "INSERT INTO purchase VALUES (888888, 10000, 11101, 1.0)"
        )
        rows = purchase_db.query(
            "SELECT id FROM purchase WHERE ship_date = 11101"
        )
        assert any(row["id"] == 888888 for row in rows)


def _find(root, node_type):
    found, stack = [], [root]
    while stack:
        node = stack.pop()
        if isinstance(node, node_type):
            found.append(node)
        stack.extend(node.children())
    return found
