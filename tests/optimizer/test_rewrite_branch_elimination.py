"""Tests for UNION ALL branch knockout (E3 mechanics)."""

import pytest

from repro.discovery.range_miner import mine_range_checks
from repro.harness.runner import compare_optimizers
from repro.optimizer.planner import Optimizer, OptimizerConfig
from repro.workload.queries import monthly_union_sql
from repro.workload.schemas import YEAR_START, build_monthly_union_scenario


@pytest.fixture(scope="module")
def union_db():
    db, tables = build_monthly_union_scenario(
        months=12, rows_per_month=400, seed=8, declare_checks=True
    )
    return db, tables


class TestKnockout:
    def test_first_quarter_keeps_three_branches(self, union_db):
        db, tables = union_db
        sql = monthly_union_sql(tables, YEAR_START, YEAR_START + 89)
        plan = db.plan(sql)
        knocked = [r for r in plan.rewrites_applied if "knocked out" in r]
        assert len(knocked) == 9

    def test_single_day_keeps_one_branch(self, union_db):
        db, tables = union_db
        sql = monthly_union_sql(tables, YEAR_START + 45, YEAR_START + 45)
        plan = db.plan(sql)
        knocked = [r for r in plan.rewrites_applied if "knocked out" in r]
        assert len(knocked) == 11

    def test_out_of_range_query_keeps_placeholder(self, union_db):
        db, tables = union_db
        sql = monthly_union_sql(tables, YEAR_START + 9999, YEAR_START + 10000)
        plan = db.plan(sql)
        result = db.executor.execute(plan)
        assert result.row_count == 0
        assert result.columns  # output shape preserved

    def test_answers_identical(self, union_db):
        db, tables = union_db
        sql = monthly_union_sql(tables, YEAR_START + 10, YEAR_START + 70)
        enabled, disabled = compare_optimizers(db, sql)
        assert enabled.row_count == disabled.row_count

    def test_pages_proportional_to_kept_branches(self, union_db):
        db, tables = union_db
        sql = monthly_union_sql(tables, YEAR_START, YEAR_START + 89)
        enabled, disabled = compare_optimizers(db, sql)
        ratio = enabled.page_reads / disabled.page_reads
        assert ratio == pytest.approx(3 / 12, abs=0.1)

    def test_switch_disables(self, union_db):
        db, tables = union_db
        sql = monthly_union_sql(tables, YEAR_START, YEAR_START + 89)
        optimizer = Optimizer(
            db.database,
            db.registry,
            OptimizerConfig(enable_branch_elimination=False),
        )
        plan = optimizer.optimize(sql)
        assert not any("knocked out" in r for r in plan.rewrites_applied)


class TestSoftConstraintSource:
    """Branch knockout driven by *mined* range SCs instead of declared
    CHECKs — the discovery story of the paper."""

    @pytest.fixture(scope="class")
    def mined_db(self):
        db, tables = build_monthly_union_scenario(
            months=6, rows_per_month=300, seed=8, declare_checks=False
        )
        for constraint in mine_range_checks(db.database, tables, "day"):
            db.add_soft_constraint(constraint)
        return db, tables

    def test_mined_ranges_enable_knockout(self, mined_db):
        db, tables = mined_db
        sql = monthly_union_sql(tables, YEAR_START, YEAR_START + 29)
        plan = db.plan(sql)
        knocked = [r for r in plan.rewrites_applied if "knocked out" in r]
        assert len(knocked) == 5
        assert plan.sc_dependencies  # depends on the mined SCs

    def test_ssc_cannot_knock_out(self, mined_db):
        db, tables = mined_db
        # Demote one branch's SC to statistical: it must stop knocking out.
        sc = db.registry.get(f"range_{tables[1]}_day")
        sc.confidence = 0.95
        sql = monthly_union_sql(tables, YEAR_START, YEAR_START + 29)
        plan = db.plan(sql)
        knocked = [r for r in plan.rewrites_applied if "knocked out" in r]
        assert len(knocked) == 4
        sc.confidence = 1.0

    def test_violated_sc_stops_knocking_out(self, mined_db):
        db, tables = mined_db
        from repro.softcon.base import SCState

        sc = db.registry.get(f"range_{tables[2]}_day")
        sc.transition(SCState.VIOLATED)
        sql = monthly_union_sql(tables, YEAR_START, YEAR_START + 29)
        plan = db.plan(sql)
        knocked = [r for r in plan.rewrites_applied if "knocked out" in r]
        assert len(knocked) == 4
        sc.transition(SCState.ACTIVE)
