"""Tests for cardinality estimation, including the twinning adjustment."""

import pytest

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.logical import EstimationPredicate
from repro.sql.parser import parse_expression
from repro.stats.errors import q_error
from repro.workload.schemas import build_project_table


@pytest.fixture(scope="module")
def project_db():
    return build_project_table(rows=4000, long_fraction=0.1, seed=9)


def conjuncts(*texts):
    return [parse_expression(text) for text in texts]


class TestBaselineEstimates:
    def test_no_predicates_returns_base_rows(self, project_db):
        estimator = CardinalityEstimator(project_db.database)
        assert estimator.scan_rows("project", []) == 4000

    def test_equality_estimate_reasonable(self, project_db):
        estimator = CardinalityEstimator(project_db.database)
        estimate = estimator.scan_rows("project", conjuncts("id = 17"))
        assert estimate == pytest.approx(1.0, abs=2.0)

    def test_range_estimate_tracks_actual(self, project_db):
        estimator = CardinalityEstimator(project_db.database)
        rows = project_db.query(
            "SELECT count(*) AS n FROM project WHERE start_date < 11300"
        )
        actual = rows[0]["n"]
        estimate = estimator.scan_rows(
            "project", conjuncts("start_date < 11300")
        )
        assert q_error(estimate, actual) < 1.5

    def test_same_column_intervals_consolidated(self, project_db):
        estimator = CardinalityEstimator(project_db.database)
        merged = estimator.conjunction_selectivity(
            "project", conjuncts("start_date >= 11000", "start_date <= 11100")
        )
        between = estimator.conjunction_selectivity(
            "project", conjuncts("start_date BETWEEN 11000 AND 11100")
        )
        assert merged == pytest.approx(between, rel=1e-9)

    def test_contradictory_intervals_give_zero(self, project_db):
        estimator = CardinalityEstimator(project_db.database)
        estimate = estimator.scan_rows(
            "project", conjuncts("start_date > 12000", "start_date < 11000")
        )
        assert estimate == 0.0

    def test_unknown_table_statistics_fall_back(self, project_db):
        estimator = CardinalityEstimator(project_db.database)
        # Live row count used when no stats exist.
        project_db.database.catalog._statistics.clear()
        assert estimator.base_rows("project") == 4000
        project_db.runstats_all()


class TestTwinningAdjustment:
    """The paper's Section 5.1 mechanism: the correlated date predicate."""

    QUERY = ("start_date <= 11500", "end_date >= 11500")

    def actual(self, project_db):
        return project_db.query(
            "SELECT count(*) AS n FROM project "
            "WHERE start_date <= 11500 AND end_date >= 11500"
        )[0]["n"]

    def twin(self, confidence):
        return EstimationPredicate(
            expression=parse_expression("start_date >= 11470"),
            confidence=confidence,
            source="short_projects",
        )

    def test_independence_underestimates_badly(self, project_db):
        estimator = CardinalityEstimator(project_db.database)
        plain = estimator.scan_rows("project", conjuncts(*self.QUERY))
        assert q_error(plain, self.actual(project_db)) > 3.0

    def test_twinned_estimate_is_much_better(self, project_db):
        estimator = CardinalityEstimator(project_db.database)
        twinned = estimator.scan_rows(
            "project", conjuncts(*self.QUERY), [self.twin(0.9)]
        )
        plain = estimator.scan_rows("project", conjuncts(*self.QUERY))
        actual = self.actual(project_db)
        assert q_error(twinned, actual) < q_error(plain, actual) / 2

    def test_confidence_blends(self, project_db):
        estimator = CardinalityEstimator(project_db.database)
        plain = estimator.scan_rows("project", conjuncts(*self.QUERY))
        full = estimator.scan_rows(
            "project", conjuncts(*self.QUERY), [self.twin(1.0)]
        )
        half = estimator.scan_rows(
            "project", conjuncts(*self.QUERY), [self.twin(0.5)]
        )
        assert full < half < plain or full > half > plain
        assert half == pytest.approx(0.5 * full + 0.5 * plain, rel=1e-6)

    def test_twinning_disabled_ignores_predicates(self, project_db):
        estimator = CardinalityEstimator(project_db.database, use_twinning=False)
        twinned = estimator.scan_rows(
            "project", conjuncts(*self.QUERY), [self.twin(0.9)]
        )
        plain = estimator.scan_rows("project", conjuncts(*self.QUERY))
        assert twinned == plain


class TestJoinSelectivity:
    def test_equijoin_uses_distinct_counts(self, sales_softdb):
        sales_softdb.execute(
            "CREATE TABLE regions (region VARCHAR(10), boss VARCHAR(10))"
        )
        sales_softdb.database.insert_many(
            "regions", [("east", "e"), ("west", "w")]
        )
        sales_softdb.runstats_all()
        estimator = CardinalityEstimator(sales_softdb.database)
        selectivity = estimator.join_selectivity(
            parse_expression("s.region = r.region"),
            {"s": "sale", "r": "regions"},
        )
        assert selectivity == pytest.approx(1 / 4)  # 4 distinct regions

    def test_non_equijoin_default(self, sales_softdb):
        estimator = CardinalityEstimator(sales_softdb.database)
        selectivity = estimator.join_selectivity(
            parse_expression("s.day < r.day"), {"s": "sale", "r": "sale"}
        )
        assert 0.0 < selectivity < 1.0


class TestGroupOutput:
    def test_group_rows_capped_by_input(self, sales_softdb):
        from repro.sql import ast

        estimator = CardinalityEstimator(sales_softdb.database)
        rows = estimator.group_output_rows(
            10.0, [ast.ColumnRef("day", "s")], {"s": "sale"}
        )
        assert rows <= 10.0

    def test_group_rows_uses_ndv(self, sales_softdb):
        from repro.sql import ast

        estimator = CardinalityEstimator(sales_softdb.database)
        rows = estimator.group_output_rows(
            200.0, [ast.ColumnRef("region", "s")], {"s": "sale"}
        )
        assert rows == pytest.approx(4.0)
