"""Tests for backup plans (Section 4.1) and probation tracking (Section 3.2)."""

import pytest

from repro.discovery.linear_miner import mine_linear_correlations
from repro.optimizer.planner import PlanCache
from repro.softcon.base import SCState
from repro.softcon.maintenance import DropPolicy
from repro.workload.schemas import build_correlated_table

SQL = "SELECT id, a FROM meas WHERE b = 500.0"


@pytest.fixture
def corr_db():
    db = build_correlated_table(rows=3000, noise=4.0, seed=55)
    (asc,) = mine_linear_correlations(
        db.database, "meas", [("a", "b")], confidence_levels=(1.0,)
    )
    db.add_soft_constraint(asc, policy=DropPolicy(), verify_first=True)
    return db, asc


class TestBackupPlans:
    """"One possible tactic is for a package to incorporate a 'backup'
    plan which is ASC-free.  If an ASC is overturned, a flag is raised and
    packages revert to the alternative plans.""" ""

    def test_backup_compiled_for_sc_dependent_plans(self, corr_db):
        db, asc = corr_db
        cache = PlanCache(db.optimizer, backup_plans=True)
        plan = cache.get_plan(SQL)
        assert asc.name in plan.sc_dependencies
        assert len(cache._backups) == 1

    def test_no_backup_for_sc_free_plans(self, corr_db):
        db, _ = corr_db
        cache = PlanCache(db.optimizer, backup_plans=True)
        cache.get_plan("SELECT id FROM meas WHERE a > 2900.0")
        assert cache._backups == {}

    def test_reverts_instead_of_evicting(self, corr_db):
        db, asc = corr_db
        cache = PlanCache(db.optimizer, backup_plans=True)
        primary = cache.get_plan(SQL)
        db.execute("INSERT INTO meas VALUES (99999, 0.0, 500.0)")  # overturn
        assert asc.state is SCState.VIOLATED
        fallback = cache.get_plan(SQL)
        assert fallback is not primary
        assert fallback.sc_dependencies == set()
        assert cache.fallbacks == 1
        assert cache.misses == 1  # no recompile happened

    def test_fallback_plan_returns_correct_answers(self, corr_db):
        db, _ = corr_db
        cache = PlanCache(db.optimizer, backup_plans=True)
        cache.get_plan(SQL)
        db.execute("INSERT INTO meas VALUES (99999, 123.0, 500.0)")
        fallback = cache.get_plan(SQL)
        rows = db.executor.execute(fallback).rows
        # The outlier row (which broke the ASC) must be found.
        assert any(row["id"] == 99999 for row in rows)

    def test_without_backups_entry_is_evicted(self, corr_db):
        db, _ = corr_db
        cache = PlanCache(db.optimizer, backup_plans=False)
        cache.get_plan(SQL)
        db.execute("INSERT INTO meas VALUES (99999, 0.0, 500.0)")
        assert len(cache) == 0
        cache.get_plan(SQL)
        assert cache.misses == 2  # required a recompile


class TestProbation:
    """"SCs might be inexpensively maintained ... but not employed over a
    probationary period to assess their likely utility.""" ""

    @pytest.fixture
    def probation_db(self):
        db = build_correlated_table(rows=3000, noise=4.0, seed=56)
        (asc,) = mine_linear_correlations(
            db.database, "meas", [("a", "b")], confidence_levels=(1.0,)
        )
        db.registry.register(asc)
        db.registry.hold_in_probation(asc.name)
        return db, asc

    def test_probation_sc_not_used_in_real_plans(self, probation_db):
        db, asc = probation_db
        plan = db.plan(SQL)
        assert asc.name not in plan.sc_dependencies
        assert not any(
            "predicate_introduction" in r for r in plan.rewrites_applied
        )

    def test_usage_counted_by_shadow_pass(self, probation_db):
        db, asc = probation_db
        for _ in range(3):
            db.plan(SQL)
        assert db.registry.probation_uses.get(asc.name) == 3

    def test_unhelpful_queries_not_counted(self, probation_db):
        db, asc = probation_db
        db.plan("SELECT id FROM meas WHERE a > 2900.0")
        assert db.registry.probation_uses.get(asc.name, 0) == 0

    def test_promote_ready_activates(self, probation_db):
        db, asc = probation_db
        db.plan(SQL)
        promoted = db.registry.promote_ready(min_uses=1)
        assert promoted == [asc.name]
        assert asc.state is SCState.ACTIVE
        # Once active, the rewrite fires for real.
        plan = db.plan(SQL)
        assert asc.name in plan.sc_dependencies

    def test_promote_respects_threshold(self, probation_db):
        db, asc = probation_db
        db.plan(SQL)
        assert db.registry.promote_ready(min_uses=5) == []
        assert asc.state is SCState.PROBATION

    def test_probation_report(self, probation_db):
        db, asc = probation_db
        db.plan(SQL)
        assert db.registry.probation_report() == [(asc.name, 1)]

    def test_probation_currency_still_tracked(self, probation_db):
        db, asc = probation_db
        db.execute("INSERT INTO meas VALUES (99999, 10.0, 0.0)")
        assert db.registry.currency(asc.name).updates_seen == 1
        # ...but no synchronous check ran (inexpensive maintenance).
        assert db.registry.checks_performed == 0

    def test_tracking_can_be_disabled(self):
        from repro.optimizer.planner import Optimizer, OptimizerConfig

        db = build_correlated_table(rows=2000, noise=4.0, seed=57)
        (asc,) = mine_linear_correlations(
            db.database, "meas", [("a", "b")], confidence_levels=(1.0,)
        )
        db.registry.register(asc)
        db.registry.hold_in_probation(asc.name)
        optimizer = Optimizer(
            db.database, db.registry,
            OptimizerConfig(track_probation_usage=False),
        )
        optimizer.optimize(SQL)
        assert db.registry.probation_uses == {}
