"""Tests for join elimination over referential integrity (E2 mechanics)."""

import pytest

from repro.harness.runner import compare_optimizers
from repro.optimizer.planner import Optimizer, OptimizerConfig
from repro.workload.schemas import build_star_schema


@pytest.fixture(scope="module")
def star_db():
    return build_star_schema(facts=3000, customers=100, products=50, seed=1)


def rewrites_of(db, sql, **config_kwargs):
    optimizer = Optimizer(
        db.database, db.registry, OptimizerConfig(**config_kwargs)
    )
    return optimizer.optimize(sql)


class TestFiring:
    def test_unreferenced_parent_join_removed(self, star_db):
        plan = rewrites_of(
            star_db,
            "SELECT s.id, s.amount FROM sales s, customer c "
            "WHERE s.customer_id = c.id",
        )
        assert any("join_elimination" in r for r in plan.rewrites_applied)

    def test_informational_fk_suffices(self, star_db):
        # The scenario declares its FKs NOT ENFORCED; elimination must
        # still fire (the whole point of informational constraints).
        plan = rewrites_of(
            star_db,
            "SELECT s.id FROM sales s, customer c WHERE s.customer_id = c.id",
        )
        assert any("join_elimination" in r for r in plan.rewrites_applied)

    def test_both_dimensions_removed(self, star_db):
        plan = rewrites_of(
            star_db,
            "SELECT s.id FROM sales s, customer c, product p "
            "WHERE s.customer_id = c.id AND s.product_id = p.id",
        )
        fired = [r for r in plan.rewrites_applied if "join_elimination" in r]
        assert len(fired) == 2

    def test_explicit_join_syntax(self, star_db):
        plan = rewrites_of(
            star_db,
            "SELECT s.id FROM sales s JOIN customer c ON s.customer_id = c.id",
        )
        assert any("join_elimination" in r for r in plan.rewrites_applied)


class TestGuards:
    def test_parent_output_blocks_elimination(self, star_db):
        plan = rewrites_of(
            star_db,
            "SELECT s.id, c.name FROM sales s, customer c "
            "WHERE s.customer_id = c.id",
        )
        assert not any("join_elimination" in r for r in plan.rewrites_applied)

    def test_parent_predicate_blocks_elimination(self, star_db):
        plan = rewrites_of(
            star_db,
            "SELECT s.id FROM sales s, customer c "
            "WHERE s.customer_id = c.id AND c.segment = 2",
        )
        assert not any("join_elimination" in r for r in plan.rewrites_applied)

    def test_parent_group_key_blocks_elimination(self, star_db):
        plan = rewrites_of(
            star_db,
            "SELECT c.segment, count(*) AS n FROM sales s, customer c "
            "WHERE s.customer_id = c.id GROUP BY c.segment",
        )
        assert not any("join_elimination" in r for r in plan.rewrites_applied)

    def test_nullable_fk_blocks_elimination(self, star_db):
        star_db.execute(
            "CREATE TABLE weak_sales (id INT PRIMARY KEY, customer_id INT, "
            "CONSTRAINT wfk FOREIGN KEY (customer_id) REFERENCES customer (id) "
            "NOT ENFORCED)"
        )
        star_db.database.insert_many("weak_sales", [(1, 2), (2, None)])
        plan = rewrites_of(
            star_db,
            "SELECT w.id FROM weak_sales w, customer c "
            "WHERE w.customer_id = c.id",
        )
        assert not any("join_elimination" in r for r in plan.rewrites_applied)

    def test_non_fk_join_not_eliminated(self, star_db):
        plan = rewrites_of(
            star_db,
            "SELECT s.id FROM sales s, customer c WHERE s.quantity = c.id",
        )
        assert not any("join_elimination" in r for r in plan.rewrites_applied)

    def test_switch_disables_rule(self, star_db):
        plan = rewrites_of(
            star_db,
            "SELECT s.id FROM sales s, customer c WHERE s.customer_id = c.id",
            enable_join_elimination=False,
        )
        assert not any("join_elimination" in r for r in plan.rewrites_applied)


class TestCorrectnessAndBenefit:
    def test_same_answers_fewer_pages(self, star_db):
        enabled, disabled = compare_optimizers(
            star_db,
            "SELECT s.id, s.amount FROM sales s, customer c "
            "WHERE s.customer_id = c.id AND s.amount > 250.0",
        )
        assert enabled.page_reads < disabled.page_reads
        assert enabled.row_count == disabled.row_count

    def test_aggregate_query_preserved(self, star_db):
        enabled, disabled = compare_optimizers(
            star_db,
            "SELECT s.customer_id, sum(s.amount) AS total "
            "FROM sales s, product p WHERE s.product_id = p.id "
            "GROUP BY s.customer_id",
        )
        assert enabled.row_count == disabled.row_count
