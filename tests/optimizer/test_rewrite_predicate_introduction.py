"""Tests for predicate introduction and hole trimming (E1/E4 mechanics)."""

import pytest

from repro.discovery.linear_miner import mine_linear_correlations
from repro.discovery.hole_miner import mine_join_holes
from repro.harness.runner import compare_optimizers
from repro.optimizer.physical import IndexScan
from repro.optimizer.planner import Optimizer, OptimizerConfig
from repro.softcon.minmax import MinMaxSC
from repro.workload.schemas import (
    build_correlated_table,
    build_join_hole_scenario,
)


@pytest.fixture(scope="module")
def corr_db():
    db = build_correlated_table(rows=5000, noise=5.0, seed=2)
    (asc,) = mine_linear_correlations(
        db.database, "meas", [("a", "b")], confidence_levels=(1.0,)
    )
    db.add_soft_constraint(asc, verify_first=True)
    return db


class TestLinearIntroduction:
    def test_point_predicate_introduces_band(self, corr_db):
        plan = corr_db.plan("SELECT id FROM meas WHERE b = 500.0")
        assert any(
            "predicate_introduction" in r for r in plan.rewrites_applied
        )
        assert plan.sc_dependencies  # plan depends on the ASC

    def test_introduced_band_opens_index_path(self, corr_db):
        plan = corr_db.plan("SELECT id FROM meas WHERE b = 500.0")
        scans = _nodes_of_type(plan.root, IndexScan)
        assert scans and scans[0].index_name == "idx_meas_a"

    def test_range_predicate_also_introduces(self, corr_db):
        plan = corr_db.plan(
            "SELECT id FROM meas WHERE b BETWEEN 500.0 AND 510.0"
        )
        assert any(
            "predicate_introduction" in r for r in plan.rewrites_applied
        )

    def test_answers_identical_and_cheaper(self, corr_db):
        enabled, disabled = compare_optimizers(
            corr_db, "SELECT id, a FROM meas WHERE b = 250.0"
        )
        # The index path reads the band's rows (one page fetch each) plus
        # the descent, against a full scan: clearly fewer pages.
        assert enabled.page_reads < disabled.page_reads * 0.7

    def test_no_introduction_without_b_predicate(self, corr_db):
        plan = corr_db.plan("SELECT id FROM meas WHERE a > 100.0")
        assert not any(
            "predicate_introduction" in r for r in plan.rewrites_applied
        )

    def test_ssc_cannot_introduce(self, corr_db):
        from repro.softcon.linear import LinearCorrelationSC

        ssc = LinearCorrelationSC(
            "weak", "meas", "a", "b", 3.0, 10.0, 1.0, confidence=0.9
        )
        corr_db.add_soft_constraint(ssc)
        plan = corr_db.plan("SELECT id FROM meas WHERE b = 500.0")
        assert "weak" not in plan.sc_dependencies

    def test_index_requirement_heuristic(self):
        db = build_correlated_table(rows=1000, noise=5.0, seed=2, with_index=False)
        (asc,) = mine_linear_correlations(
            db.database, "meas", [("a", "b")], confidence_levels=(1.0,)
        )
        db.add_soft_constraint(asc)
        plan = db.plan("SELECT id FROM meas WHERE b = 500.0")
        # No index on a: the DB2 heuristic suppresses the introduction.
        assert not any(
            "predicate_introduction" in r for r in plan.rewrites_applied
        )

    def test_heuristic_can_be_disabled(self):
        db = build_correlated_table(rows=1000, noise=5.0, seed=2, with_index=False)
        (asc,) = mine_linear_correlations(
            db.database, "meas", [("a", "b")], confidence_levels=(1.0,)
        )
        db.add_soft_constraint(asc)
        optimizer = Optimizer(
            db.database, db.registry,
            OptimizerConfig(introduce_only_with_index=False),
        )
        plan = optimizer.optimize("SELECT id FROM meas WHERE b = 500.0")
        assert any(
            "predicate_introduction" in r for r in plan.rewrites_applied
        )


class TestMinMaxAbbreviation:
    def test_out_of_range_query_becomes_empty(self, sales_softdb):
        sales_softdb.add_soft_constraint(
            MinMaxSC("mm_day", "sale", "day", 0, 49)
        )
        plan = sales_softdb.plan("SELECT id FROM sale WHERE day > 60")
        assert any(
            "predicate_introduction" in r for r in plan.rewrites_applied
        )
        result = sales_softdb.executor.execute(plan)
        assert result.row_count == 0

    def test_half_open_range_abbreviated(self, sales_softdb):
        sales_softdb.add_soft_constraint(
            MinMaxSC("mm_day2", "sale", "day", 0, 49)
        ) if "mm_day2" not in sales_softdb.registry.names() else None
        plan = sales_softdb.plan("SELECT id FROM sale WHERE day >= 40")
        fired = [
            r for r in plan.rewrites_applied if "abbreviated" in r
        ]
        assert fired


class TestHoleTrimming:
    @pytest.fixture(scope="class")
    def hole_db(self):
        db = build_join_hole_scenario(rows_per_table=2500, seed=6)
        constraint = mine_join_holes(
            db.database,
            "orders", "lead_time",
            "deliveries", "distance",
            "region_id", "region_id",
            grid_size=16,
        )
        db.add_soft_constraint(constraint, verify_first=True)
        return db

    QUERY = (
        "SELECT o.id FROM orders o, deliveries d "
        "WHERE o.region_id = d.region_id "
        "AND o.lead_time >= 30.0 AND d.distance BETWEEN 30.0 AND 45.0"
    )

    def test_trim_fires(self, hole_db):
        plan = hole_db.plan(self.QUERY)
        assert any("trimmed" in r for r in plan.rewrites_applied)

    def test_answers_preserved(self, hole_db):
        enabled, disabled = compare_optimizers(hole_db, self.QUERY)
        assert enabled.row_count == disabled.row_count

    def test_no_trim_without_join_path(self, hole_db):
        plan = hole_db.plan(
            "SELECT o.id FROM orders o WHERE o.lead_time >= 30.0"
        )
        assert not any("trimmed" in r for r in plan.rewrites_applied)


def _nodes_of_type(root, node_type):
    found = []
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, node_type):
            found.append(node)
        stack.extend(node.children())
    return found
