"""Tests for the optimizer facade, EXPLAIN, and the plan cache."""

import pytest

from repro.errors import OptimizerError
from repro.optimizer.explain import explain
from repro.optimizer.planner import Optimizer, OptimizerConfig, PlanCache
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.maintenance import DropPolicy


class TestOptimizeBasics:
    def test_accepts_sql_text(self, sales_softdb):
        plan = sales_softdb.optimizer.optimize("SELECT id FROM sale")
        assert plan.output_names == ["id"]

    def test_accepts_parsed_statement(self, sales_softdb):
        from repro.sql.parser import parse_statement

        statement = parse_statement("SELECT id FROM sale")
        plan = sales_softdb.optimizer.optimize(statement)
        assert plan.output_names == ["id"]

    def test_rejects_dml(self, sales_softdb):
        with pytest.raises(OptimizerError):
            sales_softdb.optimizer.optimize("DELETE FROM sale")

    def test_estimates_populated(self, sales_softdb):
        plan = sales_softdb.optimizer.optimize(
            "SELECT id FROM sale WHERE day = 7"
        )
        assert plan.estimated_rows > 0
        assert plan.estimated_cost > 0

    def test_explain_renders_tree_and_provenance(self, sales_softdb):
        text = sales_softdb.explain(
            "SELECT region, count(*) AS n FROM sale WHERE day < 10 "
            "GROUP BY region ORDER BY n DESC LIMIT 2"
        )
        assert "GroupBy" in text
        assert "Sort" in text
        assert "Limit" in text
        assert "rows~" in text

    def test_union_compilation(self, sales_softdb):
        plan = sales_softdb.optimizer.optimize(
            "SELECT id FROM sale WHERE day = 1 "
            "UNION ALL SELECT id FROM sale WHERE day = 2"
        )
        from repro.optimizer.physical import UnionAll

        assert isinstance(plan.root, UnionAll)


class TestPlanCache:
    def test_hit_returns_same_object(self, sales_softdb):
        cache = PlanCache(sales_softdb.optimizer)
        first = cache.get_plan("SELECT id FROM sale")
        second = cache.get_plan("SELECT id FROM sale")
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_invalidation_on_sc_overturn(self, sales_softdb):
        sc = CheckSoftConstraint("day_cap", "sale", "day <= 49")
        sales_softdb.add_soft_constraint(sc, policy=DropPolicy())
        # Force a plan that depends on the SC (min/max style knockout on
        # an out-of-range query uses it via branch logic; simplest: depend
        # through twinning/introduction is fiddly here, so register the
        # dependency path via a real query below).
        cache = PlanCache(sales_softdb.optimizer)
        plan = cache.get_plan("SELECT id FROM sale WHERE day = 7")
        # Manually register a dependency to exercise the eviction path.
        plan.sc_dependencies.add("day_cap")
        sales_softdb.database.catalog.on_invalidate(
            "softconstraint:day_cap",
            lambda _dep: cache._evict("SELECT id FROM sale WHERE day = 7"),
        )
        sales_softdb.execute("INSERT INTO sale VALUES (9999, 99, 1.0, 'east')")
        assert cache.invalidations == 1
        assert len(cache) == 0

    def test_automatic_dependency_registration(self):
        """End to end: a plan using an ASC is evicted when it overturns."""
        from repro.workload.schemas import build_correlated_table
        from repro.discovery.linear_miner import mine_linear_correlations

        db = build_correlated_table(rows=1500, noise=5.0, seed=5)
        (asc,) = mine_linear_correlations(
            db.database, "meas", [("a", "b")], confidence_levels=(1.0,)
        )
        db.add_soft_constraint(asc, policy=DropPolicy(), verify_first=True)
        cache = PlanCache(db.optimizer)
        plan = cache.get_plan("SELECT id FROM meas WHERE b = 500.0")
        assert asc.name in plan.sc_dependencies
        assert len(cache) == 1
        # An insert far off the correlation line overturns the ASC...
        db.execute("INSERT INTO meas VALUES (99999, 0.0, 500.0)")
        # ...and the dependent plan is gone.
        assert cache.invalidations == 1
        assert len(cache) == 0
        # Recompiling yields a plan without the (now overturned) rewrite.
        fresh = cache.get_plan("SELECT id FROM meas WHERE b = 500.0")
        assert asc.name not in fresh.sc_dependencies

    def test_clear(self, sales_softdb):
        cache = PlanCache(sales_softdb.optimizer)
        cache.get_plan("SELECT id FROM sale")
        cache.clear()
        assert len(cache) == 0


class TestConfigSwitches:
    def test_all_switches_independent(self, sales_softdb):
        config = OptimizerConfig(
            enable_twinning=False, enable_join_elimination=False
        )
        optimizer = Optimizer(
            sales_softdb.database, sales_softdb.registry, config
        )
        plan = optimizer.optimize("SELECT id FROM sale")
        assert plan.rewrites_applied == []
