"""Tests for the optimizer facade, EXPLAIN, and the plan cache."""

import pytest

from repro.errors import OptimizerError
from repro.optimizer.explain import explain
from repro.optimizer.planner import Optimizer, OptimizerConfig, PlanCache
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.maintenance import DropPolicy


class TestOptimizeBasics:
    def test_accepts_sql_text(self, sales_softdb):
        plan = sales_softdb.optimizer.optimize("SELECT id FROM sale")
        assert plan.output_names == ["id"]

    def test_accepts_parsed_statement(self, sales_softdb):
        from repro.sql.parser import parse_statement

        statement = parse_statement("SELECT id FROM sale")
        plan = sales_softdb.optimizer.optimize(statement)
        assert plan.output_names == ["id"]

    def test_rejects_dml(self, sales_softdb):
        with pytest.raises(OptimizerError):
            sales_softdb.optimizer.optimize("DELETE FROM sale")

    def test_estimates_populated(self, sales_softdb):
        plan = sales_softdb.optimizer.optimize(
            "SELECT id FROM sale WHERE day = 7"
        )
        assert plan.estimated_rows > 0
        assert plan.estimated_cost > 0

    def test_explain_renders_tree_and_provenance(self, sales_softdb):
        text = sales_softdb.explain(
            "SELECT region, count(*) AS n FROM sale WHERE day < 10 "
            "GROUP BY region ORDER BY n DESC LIMIT 2"
        )
        assert "GroupBy" in text
        assert "Sort" in text
        assert "Limit" in text
        assert "rows~" in text

    def test_union_compilation(self, sales_softdb):
        plan = sales_softdb.optimizer.optimize(
            "SELECT id FROM sale WHERE day = 1 "
            "UNION ALL SELECT id FROM sale WHERE day = 2"
        )
        from repro.optimizer.physical import UnionAll

        assert isinstance(plan.root, UnionAll)


class TestPlanCache:
    def test_hit_returns_same_object(self, sales_softdb):
        cache = PlanCache(sales_softdb.optimizer)
        first = cache.get_plan("SELECT id FROM sale")
        second = cache.get_plan("SELECT id FROM sale")
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_invalidation_on_sc_overturn(self, sales_softdb):
        sc = CheckSoftConstraint("day_cap", "sale", "day <= 49")
        sales_softdb.add_soft_constraint(sc, policy=DropPolicy())
        # Force a plan that depends on the SC (min/max style knockout on
        # an out-of-range query uses it via branch logic; simplest: depend
        # through twinning/introduction is fiddly here, so register the
        # dependency path via a real query below).
        cache = PlanCache(sales_softdb.optimizer)
        plan = cache.get_plan("SELECT id FROM sale WHERE day = 7")
        # Manually register a dependency to exercise the eviction path.
        plan.sc_dependencies.add("day_cap")
        sales_softdb.database.catalog.on_invalidate(
            "softconstraint:day_cap",
            lambda _dep: cache._evict("SELECT id FROM sale WHERE day = 7"),
        )
        sales_softdb.execute("INSERT INTO sale VALUES (9999, 99, 1.0, 'east')")
        assert cache.invalidations == 1
        assert len(cache) == 0

    def test_automatic_dependency_registration(self):
        """End to end: a plan using an ASC is evicted when it overturns."""
        from repro.workload.schemas import build_correlated_table
        from repro.discovery.linear_miner import mine_linear_correlations

        db = build_correlated_table(rows=1500, noise=5.0, seed=5)
        (asc,) = mine_linear_correlations(
            db.database, "meas", [("a", "b")], confidence_levels=(1.0,)
        )
        db.add_soft_constraint(asc, policy=DropPolicy(), verify_first=True)
        cache = PlanCache(db.optimizer)
        plan = cache.get_plan("SELECT id FROM meas WHERE b = 500.0")
        assert asc.name in plan.sc_dependencies
        assert len(cache) == 1
        # An insert far off the correlation line overturns the ASC...
        db.execute("INSERT INTO meas VALUES (99999, 0.0, 500.0)")
        # ...and the dependent plan is gone.
        assert cache.invalidations == 1
        assert len(cache) == 0
        # Recompiling yields a plan without the (now overturned) rewrite.
        fresh = cache.get_plan("SELECT id FROM meas WHERE b = 500.0")
        assert asc.name not in fresh.sc_dependencies

    def test_clear(self, sales_softdb):
        cache = PlanCache(sales_softdb.optimizer)
        cache.get_plan("SELECT id FROM sale")
        cache.clear()
        assert len(cache) == 0
        assert cache._backups == {}
        assert cache._reverted == set()

    def test_no_duplicate_hooks_across_recompiles(self):
        """Repeated miss/recompile cycles for one SQL keep exactly one
        live catalog hook per (channel, sql) instead of accumulating."""
        from repro.workload.schemas import build_correlated_table
        from repro.discovery.linear_miner import mine_linear_correlations

        db = build_correlated_table(rows=1500, noise=5.0, seed=5)
        (asc,) = mine_linear_correlations(
            db.database, "meas", [("a", "b")], confidence_levels=(1.0,)
        )
        db.add_soft_constraint(asc, policy=DropPolicy(), verify_first=True)
        cache = PlanCache(db.optimizer)
        sql = "SELECT id FROM meas WHERE b = 500.0"
        channel = f"softconstraint:{asc.name}"
        hooks = db.database.catalog._invalidation_hooks
        for _ in range(4):
            plan = cache.get_plan(sql)
            assert asc.name in plan.sc_dependencies
            assert len(hooks.get(channel, [])) == 1
            # Drop the entry directly (no hook fires) and recompile: the
            # live hook must be reused, not re-registered.
            del cache._plans[sql]
        # A real invalidation fires the single hook and evicts the entry.
        cache.get_plan(sql)
        fired = db.database.catalog.fire_invalidation(channel)
        assert fired == 1
        assert cache.invalidations == 1
        assert len(cache) == 0
        assert channel not in hooks

    def test_hook_reregistered_after_firing(self):
        """After an overturn pops the hook, a recompile hooks up again."""
        from repro.workload.schemas import build_correlated_table
        from repro.discovery.linear_miner import mine_linear_correlations

        db = build_correlated_table(rows=1500, noise=5.0, seed=5)
        (asc,) = mine_linear_correlations(
            db.database, "meas", [("a", "b")], confidence_levels=(1.0,)
        )
        db.add_soft_constraint(asc, policy=DropPolicy(), verify_first=True)
        cache = PlanCache(db.optimizer)
        sql = "SELECT id FROM meas WHERE b = 500.0"
        cache.get_plan(sql)
        # Overturn: hook fires, plan evicted, pair unregistered.
        db.execute("INSERT INTO meas VALUES (99999, 0.0, 500.0)")
        assert cache.invalidations == 1 and len(cache) == 0
        # Recompile: the new plan no longer depends on the dropped ASC,
        # so no hook; the tracking set must not block future SQL either.
        fresh = cache.get_plan(sql)
        assert asc.name not in fresh.sc_dependencies


class TestExpressionCompilation:
    @staticmethod
    def _nodes(plan):
        out = []
        stack = [plan.root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(node.children())
        return out

    def test_plans_compiled_by_default(self, sales_softdb):
        plan = sales_softdb.optimizer.optimize(
            "SELECT region, count(*) AS n FROM sale WHERE day < 10 "
            "GROUP BY region ORDER BY n DESC"
        )
        assert plan.compiled
        attached = [
            node
            for node in self._nodes(plan)
            if any(
                getattr(node, name) is not None
                for name in dir(node)
                if name.startswith("compiled_")
            )
        ]
        assert attached, "no node carries a compiled closure"

    def test_escape_hatch_restores_interpreted(self, sales_softdb):
        config = OptimizerConfig(compile_expressions=False)
        optimizer = Optimizer(
            sales_softdb.database, sales_softdb.registry, config
        )
        plan = optimizer.optimize(
            "SELECT region, count(*) AS n FROM sale WHERE day < 10 "
            "GROUP BY region ORDER BY n DESC"
        )
        assert not plan.compiled
        assert plan.compile_cache_hits == 0
        assert plan.compile_cache_misses == 0
        for node in self._nodes(plan):
            for name in dir(node):
                if name.startswith("compiled_"):
                    assert getattr(node, name) is None, (node, name)

    def test_explain_reports_compilation_mode(self, sales_softdb):
        compiled_plan = sales_softdb.optimizer.optimize(
            "SELECT id FROM sale WHERE day = 7"
        )
        text = explain(compiled_plan)
        assert "compiled=yes" in text
        assert "compile cache" in text
        interpreted = Optimizer(
            sales_softdb.database,
            sales_softdb.registry,
            OptimizerConfig(compile_expressions=False),
        ).optimize("SELECT id FROM sale WHERE day = 7")
        assert "compiled=no (interpreted)" in explain(interpreted)

    def test_identical_predicates_hit_the_compile_cache(self, sales_softdb):
        from repro.expr.compile import clear_cache

        clear_cache()
        sql = "SELECT id FROM sale WHERE day = 7 AND amount > 3.0"
        first = sales_softdb.optimizer.optimize(sql)
        second = sales_softdb.optimizer.optimize(sql)
        assert first.compile_cache_misses > 0
        # The recompile's expressions are all structurally identical, so
        # every lookup hits the shared cache.
        assert second.compile_cache_misses == 0
        assert second.compile_cache_hits > 0


class TestConfigSwitches:
    def test_all_switches_independent(self, sales_softdb):
        config = OptimizerConfig(
            enable_twinning=False, enable_join_elimination=False
        )
        optimizer = Optimizer(
            sales_softdb.database, sales_softdb.registry, config
        )
        plan = optimizer.optimize("SELECT id FROM sale")
        assert plan.rewrites_applied == []
