"""Tests for SSC twinned predicates (E5 mechanics, paper Section 5.1)."""

import pytest

from repro.optimizer.planner import Optimizer, OptimizerConfig
from repro.softcon.checksc import CheckSoftConstraint
from repro.stats.errors import q_error
from repro.workload.schemas import build_project_table

QUERY = (
    "SELECT id FROM project WHERE start_date <= 11500 AND end_date >= 11500"
)
COUNT_QUERY = (
    "SELECT count(*) AS n FROM project "
    "WHERE start_date <= 11500 AND end_date >= 11500"
)


@pytest.fixture(scope="module")
def project_db():
    db = build_project_table(rows=6000, long_fraction=0.1, seed=21)
    ssc = CheckSoftConstraint(
        "short_projects", "project", "end_date <= start_date + 30",
        confidence=0.9,
    )
    db.add_soft_constraint(ssc, verify_first=True)
    return db


class TestTwinnedPredicates:
    def test_twins_attached_as_estimation_only(self, project_db):
        plan = project_db.plan(QUERY)
        assert plan.estimation_notes
        assert any("start_date" in note for note in plan.estimation_notes)

    def test_twins_never_filter_rows(self, project_db):
        from repro.harness.runner import compare_optimizers

        enabled, disabled = compare_optimizers(project_db, QUERY)
        assert enabled.row_count == disabled.row_count

    def test_estimate_beats_independence(self, project_db):
        actual = project_db.query(COUNT_QUERY)[0]["n"]
        with_ssc = project_db.plan(QUERY).estimated_rows
        no_twin = Optimizer(
            project_db.database,
            project_db.registry,
            OptimizerConfig(enable_twinning=False),
        ).optimize(QUERY).estimated_rows
        assert q_error(with_ssc, actual) < q_error(no_twin, actual)
        assert q_error(with_ssc, actual) < 3.0

    def test_independence_overestimates(self, project_db):
        actual = project_db.query(COUNT_QUERY)[0]["n"]
        no_twin = Optimizer(
            project_db.database,
            project_db.registry,
            OptimizerConfig(enable_twinning=False),
        ).optimize(QUERY).estimated_rows
        assert no_twin > actual * 2  # independence is badly off (too high)

    def test_confidence_shown_in_notes(self, project_db):
        plan = project_db.plan(QUERY)
        assert any("%" in note for note in plan.estimation_notes)

    def test_twin_not_duplicated(self, project_db):
        plan = project_db.plan(QUERY)
        expressions = [
            note.split("[")[0] for note in plan.estimation_notes
        ]
        assert len(expressions) == len(set(expressions))


class TestStalenessIntegration:
    def test_effective_confidence_degrades_with_updates(self, project_db):
        registry = project_db.registry
        ssc = registry.get("short_projects")
        stated = ssc.confidence
        before = registry.effective_confidence(ssc)
        for n in range(600):  # 10% of the table updated
            project_db.database.insert(
                "project", [100000 + n, 11000, 11005]
            )
        after = registry.effective_confidence(ssc)
        assert after < before
        assert after == pytest.approx(stated - 0.1, abs=0.02)

    def test_stale_twin_carries_lower_confidence(self, project_db):
        plan = project_db.plan(QUERY)
        # After the updates above, the note shows the degraded confidence.
        note = next(n for n in plan.estimation_notes if "start_date" in n)
        shown = float(note.split("(")[1].split("%")[0])
        assert shown < 90.0
