"""Differential chaos: under injected storage faults, every query either
returns exactly the fault-free answer or raises a typed ``ReproError`` —
never a silently wrong result.

The structure mirrors the PR-1 differential-equivalence harness: a
fault-free twin database is the oracle, and the chaos run (seeded, fully
deterministic) is compared against it query by query and — for DML — row
by row.  Select with ``pytest -m chaos``; seeds are fixed so CI failures
reproduce locally by copying the seed.
"""

import pytest

from repro import SoftDB
from repro.engine.transactions import Transaction
from repro.errors import (
    IndexCorruptionError,
    ReproError,
    TransientIOError,
)
from repro.resilience.faults import FaultInjector
from repro.resilience.guards import QueryGuard

pytestmark = pytest.mark.chaos

#: Fixed seeds: one per CI chaos shard.  Failures name the seed, so a
#: broken run is reproducible with ``-k "seed-<n>"``.
SEEDS = (7, 23, 1009)

#: Both executors: the row-at-a-time oracle mode and a batched mode.
BATCH_SIZES = (0, 32)

QUERIES = (
    "SELECT count(*) AS n FROM emp",
    "SELECT id, salary FROM emp WHERE salary > 1200",
    "SELECT v FROM emp WHERE id <= 8",
    "SELECT dept_id, count(*) AS n, sum(salary) AS total "
    "FROM emp GROUP BY dept_id",
    "SELECT e.id, d.budget FROM emp e, dept d WHERE e.dept_id = d.id "
    "AND d.budget > 30000",
    "SELECT count(*) AS n FROM emp, dept "
    "WHERE emp.salary < dept.budget AND dept.id < 3",
    "SELECT DISTINCT dept_id FROM emp",
    "SELECT id FROM emp WHERE salary > 1500 ORDER BY salary DESC LIMIT 10",
    "SELECT id FROM emp WHERE id < 5 "
    "UNION ALL SELECT id FROM dept WHERE id < 5",
)


def build_db() -> SoftDB:
    db = SoftDB()
    db.execute(
        "CREATE TABLE emp (id INT PRIMARY KEY, dept_id INT, salary INT, "
        "v INT)"
    )
    db.execute("CREATE TABLE dept (id INT PRIMARY KEY, budget INT)")
    db.database.insert_many(
        "emp",
        [(n, n % 12, 900 + (n * 37) % 900, n * 3) for n in range(500)],
    )
    db.database.insert_many(
        "dept", [(n, 10_000 * (n + 1)) for n in range(12)]
    )
    db.execute("CREATE INDEX ix_emp_id ON emp (id)")
    db.runstats_all()
    return db


def chaos_injector(seed: int) -> FaultInjector:
    return (
        FaultInjector(seed=seed)
        .add("page_read", "transient", probability=0.05)
        .add("page_read", "corrupt", probability=0.03)
        .add("index_probe", "transient", probability=0.05)
        .add("index_probe", "corrupt", probability=0.02)
        .add("page_write", "transient", probability=0.05)
    )


def canonical(result) -> list:
    return sorted(
        tuple(row[name] for name in result.columns) for row in result.rows
    )


def heap_verify(db: SoftDB, table_name: str) -> None:
    """Every page's incremental checksum must match its contents."""
    for page in db.database.table(table_name).pages.pages:
        page.verify()


@pytest.mark.parametrize("seed", SEEDS, ids=[f"seed-{s}" for s in SEEDS])
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_queries_never_silently_wrong(seed, batch_size):
    oracle_db = build_db()
    oracle = {
        sql: canonical(oracle_db.execute(sql, batch_size=batch_size))
        for sql in QUERIES
    }
    db = build_db()
    injector = chaos_injector(seed)
    db.attach_fault_injector(injector)
    outcomes = {"ok": 0, "typed-error": 0}
    for _ in range(4):
        for sql in QUERIES:
            try:
                result = db.execute(sql, batch_size=batch_size)
            except ReproError as error:
                outcomes["typed-error"] += 1
                if isinstance(error, IndexCorruptionError) and error.index_name:
                    db.rebuild_index(error.index_name)
                continue
            assert canonical(result) == oracle[sql], (
                f"silently wrong answer under seed {seed}: {sql!r}"
            )
            outcomes["ok"] += 1
    # The run must actually have been stressed, and must have survived
    # at least some of it: an all-error or fault-free pass proves nothing.
    assert sum(injector.injected.values()) > 0
    assert outcomes["ok"] > 0


@pytest.mark.parametrize("seed", SEEDS, ids=[f"seed-{s}" for s in SEEDS])
def test_guarded_queries_never_silently_wrong(seed):
    """Faults and resource guards together still yield oracle-or-typed."""
    oracle_db = build_db()
    oracle = {sql: canonical(oracle_db.execute(sql)) for sql in QUERIES}
    db = build_db()
    db.attach_fault_injector(chaos_injector(seed))
    guard = QueryGuard(max_rows=100_000, max_page_reads=100_000)
    for sql in QUERIES:
        try:
            result = db.execute(sql, guard=guard)
        except ReproError as error:
            if isinstance(error, IndexCorruptionError) and error.index_name:
                db.rebuild_index(error.index_name)
            continue
        assert canonical(result) == oracle[sql]


@pytest.mark.parametrize("seed", SEEDS, ids=[f"seed-{s}" for s in SEEDS])
def test_dml_statement_atomicity_differential(seed):
    """Single-row DML under write faults: each statement either applies
    fully (matching a fault-free twin) or raises having changed nothing."""
    db = build_db()
    twin = build_db()
    injector = FaultInjector(seed=seed).add(
        "page_write", "transient", probability=0.2
    )
    db.attach_fault_injector(injector)
    statements = []
    for n in range(40):
        statements.append(
            f"INSERT INTO emp VALUES ({1000 + n}, {n % 12}, {1000 + n}, 0)"
        )
        statements.append(f"DELETE FROM emp WHERE id = {n * 7}")
        statements.append(
            f"UPDATE emp SET salary = {2000 + n} WHERE id = {200 + n}"
        )
    applied = failed = 0
    for sql in statements:
        try:
            db.execute(sql)
        except ReproError:
            failed += 1
            continue  # fail-before-mutate: the twin skips it too
        twin.execute(sql)
        applied += 1
    injector.pause()
    assert applied > 0 and failed > 0, "chaos run was not actually stressed"
    final = canonical(db.execute("SELECT id, dept_id, salary, v FROM emp"))
    expected = canonical(twin.execute("SELECT id, dept_id, salary, v FROM emp"))
    assert final == expected
    heap_verify(db, "emp")


@pytest.mark.parametrize("seed", SEEDS, ids=[f"seed-{s}" for s in SEEDS])
def test_multirow_dml_statement_atomicity_differential(seed):
    """Multi-row statements under write faults are all-or-nothing.

    A fault midway through a 6-row INSERT (or a many-row UPDATE/DELETE
    WHERE) must roll the already-applied prefix back: the surviving
    state always matches a twin that skipped the failed statement
    wholesale.  Rollback may relocate rows (undo re-inserts into fresh
    slots), so the comparison is logical, with page/index checksums
    verified separately."""
    db = build_db()
    twin = build_db()
    injector = FaultInjector(seed=seed).add(
        "page_write", "transient", probability=0.2
    )
    db.attach_fault_injector(injector)
    statements = []
    for n in range(25):
        base = 2000 + n * 6
        values = ", ".join(
            f"({base + k}, {k % 12}, {1100 + n * 17 + k}, {n})"
            for k in range(6)
        )
        statements.append(f"INSERT INTO emp VALUES {values}")
        statements.append(
            f"UPDATE emp SET v = {n} WHERE dept_id = {n % 12}"
        )
        statements.append(f"DELETE FROM emp WHERE id >= {3000 - n * 13}")
    applied = failed = 0
    for sql in statements:
        try:
            count = db.execute(sql)
        except ReproError:
            failed += 1
            continue
        assert twin.execute(sql) == count
        applied += 1
    injector.pause()
    assert applied > 0 and failed > 0, "chaos run was not actually stressed"
    final = canonical(db.execute("SELECT id, dept_id, salary, v FROM emp"))
    expected = canonical(twin.execute("SELECT id, dept_id, salary, v FROM emp"))
    assert final == expected
    assert (
        db.database.table("emp").row_count
        == twin.database.table("emp").row_count
    )
    heap_verify(db, "emp")
    for index in db.database.catalog.indexes_on("emp"):
        index.verify()


@pytest.mark.parametrize("seed", SEEDS, ids=[f"seed-{s}" for s in SEEDS])
def test_mid_transaction_fault_rolls_back_bit_consistent(seed):
    """A write fault mid-transaction aborts the statement pre-mutation;
    rollback then restores the pre-transaction state exactly."""
    db = build_db()
    table = db.database.table("dept")
    before_rows = sorted(table.scan_rows())
    before_count = table.row_count
    txn = Transaction(db.database)
    for n in range(5):
        txn.insert("dept", (100 + n, 1_000 + n))
    # Now the storage starts failing every write: the next statement must
    # surface the fault without touching the heap image.
    injector = FaultInjector(seed=seed).add(
        "page_write", "transient", every_nth=1
    )
    image_before_fault = [
        (page.page_id, tuple(page.slots), page.checksum)
        for page in table.pages.pages
    ]
    db.attach_fault_injector(injector)
    with pytest.raises(TransientIOError):
        txn.insert("dept", (200, 9_999))
    assert [
        (page.page_id, tuple(page.slots), page.checksum)
        for page in table.pages.pages
    ] == image_before_fault
    # Recovery pauses injection (as rebuild_index does) and rolls back.
    injector.pause()
    txn.rollback()
    assert not txn.is_active
    assert table.row_count == before_count
    assert sorted(table.scan_rows()) == before_rows
    heap_verify(db, "dept")
    # Index checksums survived the round trip too.
    for index in db.database.catalog.indexes_on("dept"):
        index.verify()
