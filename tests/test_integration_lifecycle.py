"""Full-lifecycle integration test: the paper's SC process end to end.

Discovery → selection → activation → exploitation in rewrite and
estimation → violation by updates → maintenance → plan invalidation.
This is the system's equivalent of the paper's Figure-less narrative,
exercised as one story.
"""

import pytest

from repro import SoftDB
from repro.discovery import (
    SelectionEngine,
    Workload,
    mine_functional_dependencies,
    mine_linear_correlations,
    mine_min_max,
)
from repro.optimizer.planner import PlanCache
from repro.softcon.base import SCState
from repro.softcon.maintenance import AsyncRepairPolicy, DropPolicy
from repro.workload.datagen import DataGenerator


@pytest.fixture
def db() -> SoftDB:
    db = SoftDB()
    db.execute(
        "CREATE TABLE shipments (id INT PRIMARY KEY, weight DOUBLE, "
        "cost DOUBLE, depot INT, region INT)"
    )
    generator = DataGenerator(77)
    batch = []
    for n in range(4000):
        weight = generator.uniform(1.0, 100.0)
        cost = 4.0 * weight + 20.0 + generator.uniform(-2.0, 2.0)
        depot = generator.integer(0, 19)
        batch.append((n, weight, cost, depot, depot % 4))
    db.database.insert_many("shipments", batch)
    db.execute("CREATE INDEX idx_cost ON shipments (cost)")
    db.runstats_all()
    return db


def test_full_soft_constraint_lifecycle(db):
    # -- 1. discovery ------------------------------------------------------
    candidates = []
    candidates += mine_linear_correlations(
        db.database, "shipments", [("cost", "weight")],
        confidence_levels=(1.0, 0.95),
    )
    candidates += mine_functional_dependencies(
        db.database, "shipments", columns=["depot", "region"], max_g3_error=0.0
    )
    candidates += mine_min_max(db.database, "shipments", ["weight"])
    assert len(candidates) >= 4

    # -- 2. selection against the workload ---------------------------------
    workload = Workload.from_sql(
        [
            ("SELECT id, cost FROM shipments WHERE weight = 50.0", 10.0),
            (
                "SELECT depot, region, sum(cost) AS total FROM shipments "
                "GROUP BY depot, region",
                3.0,
            ),
            ("SELECT id FROM shipments WHERE weight BETWEEN 10.0 AND 20.0", 2.0),
        ]
    )
    engine = SelectionEngine(update_weight=0.05)
    activate, probation = engine.select(
        candidates, workload, db.database, keep=5
    )
    assert activate  # something was worth keeping

    # -- 3. activation (with verification) -----------------------------------
    policy = AsyncRepairPolicy(drop_threshold=0.5)
    for constraint in activate:
        db.add_soft_constraint(constraint, policy=policy, verify_first=True)
    linear = next(c for c in activate if c.kind == "linear")
    assert linear.usable_in_rewrite

    # -- 4. exploitation ---------------------------------------------------------
    cache = PlanCache(db.optimizer)
    sql = "SELECT id, cost FROM shipments WHERE weight = 50.0"
    plan = cache.get_plan(sql)
    assert any("predicate_introduction" in r for r in plan.rewrites_applied)
    assert linear.name in plan.sc_dependencies
    result = db.executor.execute(plan)

    baseline = db.executor.execute(
        db.optimizer.optimize("SELECT id, cost FROM shipments WHERE weight = 50.0")
    )
    assert sorted(r["id"] for r in result.rows) == sorted(
        r["id"] for r in baseline.rows
    )

    grouped = db.plan(
        "SELECT depot, region, sum(cost) AS total FROM shipments "
        "GROUP BY depot, region"
    )
    assert any("groupby_simplification" in r for r in grouped.rewrites_applied)

    # -- 5. violation: an update overturns the linear ASC ------------------------
    db.execute("INSERT INTO shipments VALUES (99999, 50.0, 9999.0, 1, 1)")
    assert linear.state is SCState.VIOLATED
    assert cache.invalidations == 1  # the cached plan was dropped (S4.1)

    # A recompiled plan no longer uses the overturned constraint.
    fresh = cache.get_plan(sql)
    assert linear.name not in fresh.sc_dependencies

    # -- 6. asynchronous repair: reinstated as an SSC ------------------------------
    outcomes = policy.run_pending(db.registry, db.database)
    assert (linear.name, "demoted") in outcomes
    assert linear.state is SCState.ACTIVE
    assert linear.is_statistical
    # ...which still helps estimation via twinning.  Twinning pairs the
    # generated predicate with an existing one on the target column, so
    # probe with a query that loosely bounds cost (the SSC tightens it).
    twinned = db.plan(
        "SELECT id FROM shipments WHERE weight = 50.0 AND cost >= 0.0"
    )
    assert twinned.estimation_notes


def test_informational_constraint_lifecycle():
    """Loader-maintained RI: never checked, still optimized with."""
    db = SoftDB()
    db.execute("CREATE TABLE dim (id INT PRIMARY KEY, label VARCHAR(10))")
    db.execute(
        "CREATE TABLE fact (id INT PRIMARY KEY, dim_id INT NOT NULL, "
        "v DOUBLE, CONSTRAINT fk FOREIGN KEY (dim_id) REFERENCES dim (id) "
        "NOT ENFORCED)"
    )
    db.database.insert_many("dim", [(n, f"d{n}") for n in range(10)])
    db.database.insert_many(
        "fact", [(n, n % 10, float(n)) for n in range(500)]
    )
    db.runstats_all()
    # Orphans are accepted (the promise is external)...
    db.execute("INSERT INTO fact VALUES (9999, 42, 1.0)")
    # ...and the optimizer still uses the constraint for join elimination.
    plan = db.plan(
        "SELECT f.id FROM fact f, dim d WHERE f.dim_id = d.id"
    )
    assert any("join_elimination" in r for r in plan.rewrites_applied)
