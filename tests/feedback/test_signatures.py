"""Signature canonicalization: same logical work -> same key."""

import pytest

from repro.feedback import signatures
from repro.feedback.signatures import FULL_SCAN
from repro.sql import ast
from repro.sql.parser import parse_expression


class TestConjunctSignatures:
    def test_no_predicate_is_full_scan(self):
        assert signatures.predicate_signature(None) == FULL_SCAN

    def test_conjunct_order_is_irrelevant(self):
        a = parse_expression("t.age > 30 AND t.salary < 100")
        b = parse_expression("t.salary < 100 AND t.age > 30")
        assert signatures.predicate_signature(a) == (
            signatures.predicate_signature(b)
        )

    def test_binding_alias_is_stripped(self):
        a = parse_expression("e.age > 30")
        b = parse_expression("emp.age > 30")
        assert signatures.predicate_signature(a) == (
            signatures.predicate_signature(b)
        )

    def test_different_constants_differ(self):
        a = parse_expression("t.age > 30")
        b = parse_expression("t.age > 31")
        assert signatures.predicate_signature(a) != (
            signatures.predicate_signature(b)
        )

    def test_conjunct_list_matches_conjoined_predicate(self):
        # The estimator sees a conjunct list; the physical scan carries
        # their conjunction.  Both must key the same observation.
        from repro.expr import analysis

        conjuncts = [
            parse_expression("t.age > 30"),
            parse_expression("t.salary < 100"),
        ]
        conjoined = analysis.conjoin(list(conjuncts))
        assert signatures.conjunct_signature(conjuncts) == (
            signatures.predicate_signature(conjoined)
        )

    def test_duplicate_atoms_collapse(self):
        a = parse_expression("t.age > 30 AND t.age > 30")
        b = parse_expression("t.age > 30")
        assert signatures.predicate_signature(a) == (
            signatures.predicate_signature(b)
        )


class TestJoinSignatures:
    def test_edge_sides_are_sorted(self):
        binding_tables = {"e": "emp", "d": "dept"}
        left = ast.ColumnRef("dept", "e")
        right = ast.ColumnRef("id", "d")
        forward = signatures.join_edge_signature(left, right, binding_tables)
        backward = signatures.join_edge_signature(right, left, binding_tables)
        assert forward == backward == "dept.id=emp.dept"

    def test_unresolvable_binding_yields_none(self):
        left = ast.ColumnRef("dept", "e")
        right = ast.ColumnRef("id", "mystery")
        assert (
            signatures.join_edge_signature(left, right, {"e": "emp"}) is None
        )

    def test_theta_signature_carries_tables(self):
        condition = parse_expression("e.age > d.min_age")
        sig = signatures.theta_signature(condition, {"e": "emp", "d": "dept"})
        assert sig.startswith("theta[dept,emp]:")


class TestGroupAndRangeSignatures:
    def test_group_keys_sorted_and_resolved(self):
        keys = [ast.ColumnRef("region", "s"), ast.ColumnRef("day", "s")]
        sig = signatures.group_signature(keys, {"s": "sale"})
        assert sig == "group:sale.day,sale.region"

    def test_index_range_signature_distinguishes_bounds(self):
        closed = signatures.index_range_signature((5,), (9,), True, True)
        open_low = signatures.index_range_signature((5,), (9,), False, True)
        unbounded = signatures.index_range_signature((5,), None, True, True)
        assert closed != open_low
        assert closed != unbounded
        assert closed == signatures.index_range_signature((5,), (9,), True, True)

    @pytest.mark.parametrize("low,high", [((1,), (2,)), (None, (0.5,))])
    def test_range_signature_is_deterministic(self, low, high):
        first = signatures.index_range_signature(low, high, True, False)
        again = signatures.index_range_signature(low, high, True, False)
        assert first == again
