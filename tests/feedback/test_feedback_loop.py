"""End-to-end: feedback corrects estimates, evicts plans, steers SCs."""

import pytest

from repro.api import SoftDB
from repro.discovery.selection import FEEDBACK_BOOST_CAP, SelectionEngine
from repro.discovery.workload_model import Workload
from repro.errors import ExecutionError, OptimizerError
from repro.feedback import FeedbackAdjuster, FeedbackStore
from repro.optimizer.physical import IndexScan
from repro.optimizer.planner import OptimizerConfig, PlanCache
from repro.softcon.base import SCState
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.maintenance import DropPolicy
from repro.softcon.minmax import MinMaxSC


def feedback_db():
    return SoftDB(OptimizerConfig(collect_feedback=True))


def drifted_db():
    """Stats collected, then the data distribution moves on.

    ``a`` gains a brand-new value range after RUNSTATS (the histogram
    says nothing lives there); ``b`` keeps its old distribution.  A
    query filtering on both columns makes the optimizer pick the ``a``
    index off the stale histogram even though it now fetches every
    drifted row.
    """
    db = feedback_db()
    db.execute("CREATE TABLE events (id INT, a INT, b INT)")
    db.execute("CREATE INDEX idx_a ON events (a)")
    db.execute("CREATE INDEX idx_b ON events (b)")
    db.database.insert_many(
        "events",
        [(i, (i * 37) % 1800, (i * 13) % 2000) for i in range(2000)],
    )
    db.runstats_all()  # histograms frozen here
    db.database.insert_many(
        "events",
        [
            (2000 + i, 1800 + (i % 200), (i * 13) % 2000)
            for i in range(2000)
        ],
    )
    return db


DRIFT_SQL = "SELECT id FROM events WHERE a >= 1800 AND b >= 1990"


def _index_used(plan):
    stack = [plan.root]
    while stack:
        node = stack.pop()
        if isinstance(node, IndexScan):
            return node.index_name
        stack.extend(node.children())
    return None


class TestEstimatorCorrection:
    def test_replan_after_execution_fixes_the_estimate(self):
        db = drifted_db()
        stale = db.plan(DRIFT_SQL)
        # Stale stats: the optimizer believes almost nothing matches.
        assert stale.root.estimated_rows < 100
        result = db.execute(DRIFT_SQL)
        actual = result.row_count
        # Only drifted rows have a >= 1800; b is a full permutation of
        # [0, 2000) over those 2000 rows, so b >= 1990 keeps 10 of them.
        assert actual == 10
        corrected = db.plan(DRIFT_SQL)
        assert corrected.root.estimated_rows == pytest.approx(
            actual, rel=0.5
        )

    def test_feedback_off_estimates_stay_static(self):
        db = SoftDB()
        db.execute("CREATE TABLE t (x INT)")
        db.database.insert_many("t", [(i,) for i in range(100)])
        db.runstats_all()
        db.database.insert_many("t", [(i,) for i in range(900)])
        before = db.plan("SELECT x FROM t").root.estimated_rows
        db.execute("SELECT x FROM t")
        after = db.plan("SELECT x FROM t").root.estimated_rows
        assert before == after  # no store, no correction


class TestPlanCacheEviction:
    def test_qerror_breach_evicts_and_reoptimizes_to_a_new_index(self):
        db = drifted_db()
        first = db.execute(DRIFT_SQL, use_cache=True)
        assert _index_used(db.plan_cache.get_plan(DRIFT_SQL)) is not None
        assert first.max_qerror is not None
        assert first.max_qerror >= db.config.feedback_qerror_threshold
        # note_execution already ran inside execute(): plan evicted ...
        assert db.plan_cache.feedback_invalidations == 1
        # ... and get_plan above recompiled it with corrected estimates.
        stale_choice = "idx_a"
        fresh_plan = db.plan_cache.get_plan(DRIFT_SQL)
        assert _index_used(fresh_plan) != stale_choice
        second = db.execute(DRIFT_SQL, use_cache=True)
        # Same answer, possibly in a different (index-driven) order.
        assert sorted(r["id"] for r in second.rows) == (
            sorted(r["id"] for r in first.rows)
        )
        # The corrected plan estimates well: no further churn.
        assert second.max_qerror < db.config.feedback_qerror_threshold
        assert db.plan_cache.feedback_invalidations == 1

    def test_note_execution_semantics(self):
        db = feedback_db()
        db.execute("CREATE TABLE t (x INT)")
        db.database.insert_many("t", [(i,) for i in range(10)])
        db.runstats_all()
        sql = "SELECT x FROM t"
        cache = db.plan_cache
        assert cache.note_execution(sql, 100.0) is False  # not cached
        db.execute(sql, use_cache=True)
        assert cache.note_execution(sql, None) is False
        assert cache.note_execution(sql, 2.0) is False  # below threshold
        assert cache.note_execution(sql, 4.0) is True
        assert cache.note_execution(sql, 4.0) is False  # already evicted
        assert cache.feedback_invalidations == 1

    def test_without_threshold_cache_never_feedback_evicts(self):
        db = feedback_db()
        db.execute("CREATE TABLE t (x INT)")
        cache = PlanCache(db.optimizer)  # qerror_threshold=None
        db.execute("INSERT INTO t VALUES (1)")
        cache.get_plan("SELECT x FROM t")
        assert cache.note_execution("SELECT x FROM t", 1e9) is False
        assert cache.feedback_invalidations == 0

    def test_threshold_validation(self):
        db = feedback_db()
        with pytest.raises(OptimizerError):
            PlanCache(db.optimizer, qerror_threshold=0.5)


class TestAdjuster:
    def _misestimating_db(self):
        db = SoftDB()
        db.execute("CREATE TABLE emp (id INT, age INT)")
        db.database.insert_many(
            "emp", [(i, 20 + i % 60) for i in range(100)]
        )
        db.runstats_all()
        return db

    def test_ssc_confidence_refreshed_and_currency_reset(self):
        db = self._misestimating_db()
        ssc = CheckSoftConstraint(
            "emp_age_cap", "emp", "age < 70", confidence=0.5
        )
        db.add_soft_constraint(ssc)
        store = FeedbackStore()
        store.record_scan("emp", "age > 30", estimated=1, actual=500)
        adjuster = FeedbackAdjuster(db.registry, store, db.database)
        actions = adjuster.apply()
        assert len(actions) == 1 and actions[0].startswith("ssc emp_age_cap")
        # Measured: age = 20 + i % 60 reaches 70..79 only for i in
        # 50..59, so exactly 10 of 100 rows violate.
        assert ssc.confidence == pytest.approx(0.9)
        assert ssc.state is SCState.ACTIVE

    def test_violated_asc_routed_through_policy(self):
        db = self._misestimating_db()
        # Claimed absolute but never verified -- the data already
        # violates it (ages reach 79).  Update-time checking never saw
        # those rows, so only feedback-triggered re-verification can
        # catch the lie.
        asc = MinMaxSC("emp_age_bounds", "emp", "age", low=0, high=50)
        db.add_soft_constraint(asc, policy=DropPolicy())
        assert asc.is_absolute and asc.state is SCState.ACTIVE
        store = FeedbackStore()
        store.record_scan("emp", "age > 30", estimated=1, actual=500)
        adjuster = FeedbackAdjuster(db.registry, store, db.database)
        actions = adjuster.apply()
        assert len(actions) == 1 and actions[0].startswith("asc emp_age_bounds")
        assert asc.state is SCState.VIOLATED
        assert db.registry.overturn_events == 1

    def test_clean_tables_pay_no_verification(self):
        db = self._misestimating_db()
        db.execute("CREATE TABLE other (y INT)")
        db.database.insert("other", (1,))
        ssc = CheckSoftConstraint("other_pos", "other", "y > 0")
        db.add_soft_constraint(ssc)
        store = FeedbackStore()
        store.record_scan("emp", "age > 30", estimated=1, actual=500)
        assert FeedbackAdjuster(db.registry, store, db.database).apply() == []

    def test_join_edge_qerror_also_marks_suspects(self):
        db = self._misestimating_db()
        db.execute("CREATE TABLE dept (id INT)")
        db.database.insert("dept", (1,))
        store = FeedbackStore()
        store.record_join(
            "dept.id=emp.dept",
            estimated_selectivity=0.0001,
            actual_selectivity=0.5,
            tables=("dept", "emp"),
        )
        adjuster = FeedbackAdjuster(db.registry, store, db.database)
        assert set(adjuster.suspect_tables()) == {"dept", "emp"}

    def test_suspect_qerror_validation(self):
        from repro.errors import FeedbackError

        db = self._misestimating_db()
        with pytest.raises(FeedbackError):
            FeedbackAdjuster(
                db.registry, FeedbackStore(), db.database, suspect_qerror=0.9
            )


class TestSoftDBFacade:
    def test_apply_feedback_requires_collection(self):
        db = SoftDB()
        with pytest.raises(ExecutionError):
            db.apply_feedback()
        assert db.feedback_report() == {"enabled": False}

    def test_apply_feedback_and_report_round_trip(self):
        db = drifted_db()
        ssc = CheckSoftConstraint(
            "events_a_cap", "events", "a < 1800", confidence=0.99
        )
        db.add_soft_constraint(ssc)
        db.execute(DRIFT_SQL, use_cache=True)
        actions = db.apply_feedback()
        assert any("events_a_cap" in line for line in actions)
        # Half the rows now violate a < 1800.
        assert ssc.confidence == pytest.approx(0.5)
        report = db.feedback_report()
        assert report["enabled"] is True
        assert report["observations"] >= 1
        assert report["plan_cache_feedback_invalidations"] == 1


class TestDiscoveryTargeting:
    def _candidate(self):
        return MinMaxSC("t_x", "t", "x", low=0, high=10)

    def test_boost_multiplies_benefit_up_to_cap(self):
        store = FeedbackStore()
        store.record_scan("t", "x > 5", estimated=100, actual=300)
        engine = SelectionEngine(feedback=store)
        workload = Workload.from_sql(["SELECT x FROM t WHERE x > 5"])
        plain = SelectionEngine().score(self._candidate(), workload)
        boosted = engine.score(self._candidate(), workload)
        assert boosted.benefit == pytest.approx(plain.benefit * 3.0)

        store.record_scan("t", "x > 7", estimated=1, actual=1000)
        capped = engine.score(self._candidate(), workload)
        assert capped.benefit == pytest.approx(
            plain.benefit * FEEDBACK_BOOST_CAP
        )

    def test_untouched_tables_get_no_boost(self):
        store = FeedbackStore()
        store.record_scan("elsewhere", "x > 5", estimated=1, actual=1000)
        engine = SelectionEngine(feedback=store)
        assert engine._feedback_boost(self._candidate()) == 1.0
