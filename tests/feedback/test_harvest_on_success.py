"""Feedback is harvested only from successful, complete executions.

A query that raises mid-execution, or that a guard truncated, has
partially-advanced operator counters: harvesting them would poison the
store with under-counted actuals (a half-run scan looks like a tiny
table).  These are regression tests for the rule that error paths leave
the feedback store and the plan cache's execution bookkeeping untouched.
"""

import pytest

from repro import SoftDB
from repro.errors import BudgetExceededError, ReproError
from repro.optimizer.planner import OptimizerConfig
from repro.resilience.faults import FaultInjector
from repro.resilience.guards import QueryGuard


@pytest.fixture
def db() -> SoftDB:
    db = SoftDB(OptimizerConfig(collect_feedback=True))
    db.execute("CREATE TABLE t (a INT, b INT)")
    db.database.insert_many("t", [(n, n % 9) for n in range(300)])
    db.runstats_all()
    return db


def _store_state(db):
    return (
        db.feedback.harvests,
        db.feedback.observations,
        len(db.feedback),
    )


class TestNoHarvestOnError:
    def test_mid_execution_error_leaves_store_untouched(self, db):
        before = _store_state(db)
        with pytest.raises(ReproError):
            # Divides by zero once the scan reaches a = 5.
            db.query("SELECT b / (a - 5) AS x FROM t")
        assert _store_state(db) == before

    def test_error_does_not_count_as_plan_execution(self, db):
        sql = "SELECT b / (a - 5) AS x FROM t"
        with pytest.raises(ReproError):
            db.execute(sql, use_cache=True)
        # The plan is cached (planning succeeded) but its q-error history
        # must not include the failed run: no feedback eviction happened.
        assert db.plan_cache.feedback_invalidations == 0

    def test_storage_fault_leaves_store_untouched(self, db):
        before = _store_state(db)
        db.attach_fault_injector(
            FaultInjector().add("page_read", "transient", every_nth=1)
        )
        with pytest.raises(ReproError):
            db.query("SELECT a FROM t")
        assert _store_state(db) == before

    def test_truncated_execution_not_harvested(self, db):
        before = _store_state(db)
        result = db.execute(
            "SELECT a FROM t",
            guard=QueryGuard(max_rows=10, on_breach="partial"),
        )
        assert result.truncated
        assert _store_state(db) == before
        assert result.max_qerror is None

    def test_aborted_execution_not_harvested(self, db):
        before = _store_state(db)
        with pytest.raises(BudgetExceededError):
            db.execute("SELECT a FROM t", guard=QueryGuard(max_rows=10))
        assert _store_state(db) == before


class TestHarvestOnSuccess:
    def test_successful_run_harvests(self, db):
        before = db.feedback.harvests
        result = db.execute("SELECT a FROM t WHERE b = 3")
        assert db.feedback.harvests == before + 1
        assert result.max_qerror is not None

    def test_guarded_successful_run_still_harvests(self, db):
        before = db.feedback.harvests
        result = db.execute(
            "SELECT a FROM t WHERE b = 3", guard=QueryGuard(max_rows=10**6)
        )
        assert not result.truncated
        assert db.feedback.harvests == before + 1
