"""Harvesting executed plans into the store, and collection gating."""

import pytest

from repro.api import SoftDB
from repro.feedback import FeedbackStore
from repro.feedback.counters import binding_tables_of, clear_actuals, harvest
from repro.optimizer.physical import (
    HashJoin,
    IndexScan,
    SeqScan,
    Sort,
)


@pytest.fixture
def joined_db():
    db = SoftDB()
    db.execute("CREATE TABLE emp (id INT, age INT, dept INT)")
    db.database.insert_many(
        "emp", [(i, 20 + i % 50, i % 5) for i in range(200)]
    )
    db.execute("CREATE TABLE dept (id INT, name VARCHAR(10))")
    db.database.insert_many("dept", [(i, f"d{i}") for i in range(5)])
    db.execute("CREATE INDEX ix_emp_age ON emp (age)")
    db.runstats_all()
    return db


JOIN_SQL = (
    "SELECT d.name, count(*) AS n FROM emp e, dept d "
    "WHERE e.dept = d.id AND e.age > 30 GROUP BY d.name"
)


def _find(root, kind):
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, kind):
            return node
        stack.extend(node.children())
    return None


class TestCollectionGating:
    def test_default_execution_records_nothing(self, joined_db):
        plan = joined_db.plan(JOIN_SQL)
        joined_db.executor.execute(plan)
        scan = _find(plan.root, (SeqScan, IndexScan))
        join = _find(plan.root, HashJoin)
        assert scan.actual_rows is None
        assert scan.actual_rows_scanned is None
        assert join.actual_pairs is None

    @pytest.mark.parametrize("batch_size", [0, 7, 1024])
    def test_collected_execution_counts_inputs(self, joined_db, batch_size):
        plan = joined_db.plan(JOIN_SQL)
        joined_db.executor.execute(
            plan, collect_feedback=True, batch_size=batch_size
        )
        join = _find(plan.root, HashJoin)
        assert join.actual_pairs == join.actual_rows  # no residual here
        for side in (join.left, join.right):
            assert side.actual_rows is not None
            # Input counts cover the whole table, pre-filter.
            assert side.actual_rows_scanned in (200, 5)

    def test_collect_implies_instrument(self, joined_db):
        plan = joined_db.plan(JOIN_SQL)
        result = joined_db.executor.execute(plan, collect_feedback=True)
        assert plan.root.actual_rows is not None
        assert result.max_qerror is not None
        assert result.max_qerror >= 1.0


class TestClearActuals:
    def test_clears_every_counter(self, joined_db):
        plan = joined_db.plan(JOIN_SQL + " ORDER BY n")
        joined_db.executor.execute(plan, collect_feedback=True)
        sort = _find(plan.root, Sort)
        assert sort.actual_input_rows is not None
        clear_actuals(plan.root)
        stack = [plan.root]
        while stack:
            node = stack.pop()
            assert node.actual_rows is None
            assert node.actual_batches is None
            assert getattr(node, "actual_rows_scanned", None) is None
            assert getattr(node, "actual_pairs", None) is None
            assert getattr(node, "actual_input_rows", None) is None
            stack.extend(node.children())


class TestHarvest:
    def test_binding_tables_resolved_from_leaves(self, joined_db):
        plan = joined_db.plan(JOIN_SQL)
        assert binding_tables_of(plan.root) == {"e": "emp", "d": "dept"}

    @pytest.mark.parametrize("batch_size", [0, 1024])
    def test_harvest_records_scans_joins_groups(self, joined_db, batch_size):
        store = FeedbackStore()
        plan = joined_db.plan(JOIN_SQL)
        joined_db.executor.execute(
            plan, collect_feedback=True, batch_size=batch_size
        )
        summary = harvest(plan, store)
        assert summary.observations >= 4
        assert store.scan_rows("emp", "age > 30") is not None
        assert store.base_rows("dept") == 5.0
        observed = store.join_selectivity("dept.id=emp.dept")
        assert observed == pytest.approx(1.0 / 5.0)
        assert store.group_rows("group:dept.name") is not None
        assert store.harvests == 1

    def test_index_scan_records_matching_rows(self):
        db = SoftDB()
        db.execute("CREATE TABLE big (id INT, v INT)")
        db.database.insert_many(
            "big", [(i, (i * 37) % 1000) for i in range(2000)]
        )
        db.execute("CREATE INDEX ix_big_v ON big (v)")
        db.runstats_all()
        store = FeedbackStore()
        plan = db.plan("SELECT id FROM big WHERE v >= 995")
        node = _find(plan.root, IndexScan)
        assert node is not None, "expected the v index to be chosen"
        db.executor.execute(plan, collect_feedback=True)
        harvest(plan, store)
        from repro.feedback.signatures import index_range_signature

        sig = index_range_signature(
            node.low, node.high, node.low_inclusive, node.high_inclusive
        )
        fetched = store.matching_rows("big", node.index_name, sig)
        assert fetched == node.actual_rows_scanned
        assert fetched == 10  # v in {995..999}, 2 rows each

    def test_limit_truncated_nodes_not_harvested(self, joined_db):
        store = FeedbackStore()
        plan = joined_db.plan("SELECT id FROM emp WHERE age > 30 LIMIT 3")
        joined_db.executor.execute(
            plan, collect_feedback=True, batch_size=0
        )
        scan = _find(plan.root, (SeqScan, IndexScan))
        # The scan was cut short: its full output count was never seen.
        assert scan.actual_rows is None
        harvest(plan, store)
        assert store.scan_rows("emp", "age > 30") is None
        # And the partial input count must not poison base-rows either.
        assert store.base_rows("emp") is None

    def test_rerun_after_clear_does_not_double_count(self, joined_db):
        store = FeedbackStore()
        plan = joined_db.plan(JOIN_SQL)
        for _ in range(2):
            joined_db.executor.execute(plan, collect_feedback=True)
            harvest(plan, store)
        assert store.harvests == 2
        # EWMA of two identical runs equals one run's value.
        assert store.scan_rows("emp", "age > 30") == pytest.approx(156.0)
