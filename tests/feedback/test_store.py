"""FeedbackStore aggregation, lookups, and targeting helpers."""

import pytest

from repro.feedback import FeedbackStore, Observation, QErrorTracker
from repro.feedback.qerror import plan_max_qerror
from repro.optimizer.physical import SeqScan


class TestObservation:
    def test_ewma_folds_toward_new_values(self):
        obs = Observation()
        obs.record(100.0, alpha=0.5)
        assert obs.value == 100.0
        obs.record(200.0, alpha=0.5)
        assert obs.value == 150.0

    def test_qerror_tracked_only_with_estimates(self):
        obs = Observation()
        obs.record(100.0)  # no estimate
        assert obs.qerror.count == 0
        obs.record(100.0, estimated=10.0)
        assert obs.qerror.count == 1
        assert obs.qerror.max_qerror == pytest.approx(10.0)


class TestQErrorTracker:
    def test_symmetric_and_clamped(self):
        tracker = QErrorTracker()
        assert tracker.record(10, 100) == pytest.approx(10.0)
        assert tracker.record(100, 10) == pytest.approx(10.0)
        # Sub-row estimates clamp to one row: no infinite q-errors.
        assert tracker.record(0.0, 0.0) == pytest.approx(1.0)
        assert tracker.max_qerror == pytest.approx(10.0)
        assert tracker.mean_qerror == pytest.approx(7.0)


class TestStoreLookups:
    def test_scan_roundtrip_is_case_insensitive(self):
        store = FeedbackStore()
        store.record_scan("Emp", "age > 30", estimated=10, actual=300)
        assert store.scan_rows("emp", "age > 30") == 300.0
        assert store.scan_rows("emp", "age > 31") is None

    def test_index_range_and_base_rows(self):
        store = FeedbackStore()
        store.record_index_range("emp", "IX_Age", "[30..*)", fetched=5000)
        store.record_base_rows("emp", 60000)
        assert store.matching_rows("emp", "ix_age", "[30..*)") == 5000.0
        assert store.base_rows("emp") == 60000.0
        assert store.matching_rows("emp", "ix_age", "[31..*)") is None

    def test_join_selectivity_clamped_to_unit_interval(self):
        store = FeedbackStore()
        store.record_join("a.x=b.y", None, 1.7, tables=("a", "b"))
        assert store.join_selectivity("a.x=b.y") == 1.0
        assert store.join_selectivity("never.seen=edge.sig") is None

    def test_alpha_validation(self):
        from repro.errors import FeedbackError

        with pytest.raises(FeedbackError):
            FeedbackStore(alpha=0.0)
        with pytest.raises(FeedbackError):
            FeedbackStore(alpha=1.5)


class TestTargeting:
    def _store_with_bad_scan(self):
        store = FeedbackStore()
        store.record_scan("emp", "age > 30", estimated=1, actual=400)
        store.record_scan("dept", "<full-scan>", estimated=5, actual=5)
        store.record_join(
            "dept.id=emp.dept",
            estimated_selectivity=0.001,
            actual_selectivity=0.2,
            tables=("dept", "emp"),
        )
        return store

    def test_tables_with_qerror_filters_by_bar(self):
        store = self._store_with_bad_scan()
        suspects = store.tables_with_qerror(min_qerror=2.0)
        assert suspects == {"emp": pytest.approx(400.0)}

    def test_worst_scans_ranked(self):
        store = self._store_with_bad_scan()
        ranked = store.worst_scans()
        assert ranked[0][0] == "emp"
        assert ranked[0][2] == pytest.approx(400.0)

    def test_join_table_qerrors(self):
        store = self._store_with_bad_scan()
        pairs = store.join_table_qerrors()
        assert ("dept", "emp") in pairs
        assert pairs[("dept", "emp")] == pytest.approx(200.0)

    def test_snapshot_and_clear(self):
        store = self._store_with_bad_scan()
        snap = store.snapshot()
        assert snap["observations"] == 3
        assert snap["worst_scans"][0]["table"] == "emp"
        store.clear()
        assert len(store) == 0
        assert store.observations == 0


class TestPlanMaxQError:
    def test_walks_only_instrumented_nodes(self):
        scan = SeqScan("t", "t")
        scan.estimated_rows = 10.0
        assert plan_max_qerror(scan) is None
        scan.actual_rows = 1000
        assert plan_max_qerror(scan) == pytest.approx(100.0)
