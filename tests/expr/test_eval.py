"""Tests for expression evaluation with three-valued logic."""

import pytest

from repro.errors import ExpressionError
from repro.expr.eval import compile_predicate, evaluate
from repro.sql.parser import parse_expression


def ev(text, row=None):
    return evaluate(parse_expression(text), row or {})


class TestArithmetic:
    def test_basic_operations(self):
        assert ev("1 + 2 * 3") == 7
        assert ev("10 - 4") == 6
        assert ev("7 % 3") == 1

    def test_integer_division_truncates_toward_zero(self):
        assert ev("7 / 2") == 3
        assert ev("-7 / 2") == -3

    def test_float_division(self):
        assert ev("7.0 / 2") == 3.5

    def test_division_by_zero_raises(self):
        with pytest.raises(ExpressionError):
            ev("1 / 0")

    def test_null_propagates(self):
        assert ev("1 + NULL") is None
        assert ev("-a", {"a": None}) is None

    def test_unary_minus(self):
        assert ev("-(3 + 4)") == -7

    def test_arithmetic_on_strings_rejected(self):
        with pytest.raises(ExpressionError):
            ev("'a' + 1")


class TestComparisons:
    def test_numeric(self):
        assert ev("3 < 4") is True
        assert ev("3 >= 4") is False
        assert ev("3 <> 4") is True

    def test_mixed_int_float(self):
        assert ev("3 = 3.0") is True

    def test_strings(self):
        assert ev("'abc' < 'abd'") is True

    def test_incomparable_types_rejected(self):
        with pytest.raises(ExpressionError):
            ev("'abc' < 3")

    def test_null_comparison_is_unknown(self):
        assert ev("a = 1", {"a": None}) is None
        assert ev("NULL = NULL") is None


class TestLogic:
    def test_kleene_and(self):
        assert ev("TRUE AND NULL") is None
        assert ev("FALSE AND NULL") is False
        assert ev("TRUE AND TRUE") is True

    def test_kleene_or(self):
        assert ev("TRUE OR NULL") is True
        assert ev("FALSE OR NULL") is None
        assert ev("FALSE OR FALSE") is False

    def test_not_unknown(self):
        assert ev("NOT (a = 1)", {"a": None}) is None

    def test_short_circuit_avoids_errors(self):
        # FALSE AND <error> must not evaluate the right side.
        assert ev("1 = 2 AND 1 / 0 = 1") is False
        assert ev("1 = 1 OR 1 / 0 = 1") is True


class TestPredicates:
    def test_between(self):
        assert ev("5 BETWEEN 1 AND 10") is True
        assert ev("11 BETWEEN 1 AND 10") is False
        assert ev("5 NOT BETWEEN 1 AND 10") is False

    def test_between_with_null_operand(self):
        assert ev("a BETWEEN 1 AND 10", {"a": None}) is None

    def test_between_with_null_bound(self):
        assert ev("5 BETWEEN NULL AND 10") is None
        assert ev("11 BETWEEN NULL AND 10") is False  # already above high

    def test_in(self):
        assert ev("2 IN (1, 2, 3)") is True
        assert ev("9 IN (1, 2, 3)") is False
        assert ev("9 NOT IN (1, 2, 3)") is True

    def test_in_with_null_member_is_unknown_on_miss(self):
        assert ev("9 IN (1, NULL)") is None
        assert ev("1 IN (1, NULL)") is True

    def test_is_null(self):
        assert ev("a IS NULL", {"a": None}) is True
        assert ev("a IS NOT NULL", {"a": None}) is False
        assert ev("a IS NULL", {"a": 3}) is False

    def test_like(self):
        assert ev("'hello' LIKE 'h%'") is True
        assert ev("'hello' LIKE 'h_llo'") is True
        assert ev("'hello' LIKE 'x%'") is False
        assert ev("name NOT LIKE 'h%'", {"name": "hello"}) is False

    def test_like_null(self):
        assert ev("a LIKE 'x%'", {"a": None}) is None


class TestColumnResolution:
    def test_bare_column(self):
        assert ev("a + 1", {"a": 4}) == 5

    def test_qualified_column(self):
        assert ev("t.a", {"t.a": 7}) == 7

    def test_unqualified_falls_back_to_unique_suffix(self):
        assert ev("a", {"t.a": 7}) == 7

    def test_ambiguous_suffix_rejected(self):
        with pytest.raises(ExpressionError):
            ev("a", {"t.a": 1, "u.a": 2})

    def test_unknown_column_rejected(self):
        with pytest.raises(ExpressionError):
            ev("missing", {"a": 1})


class TestFunctions:
    def test_abs(self):
        assert ev("abs(-4)") == 4

    def test_abs_null(self):
        assert ev("abs(a)", {"a": None}) is None

    def test_aggregate_outside_group_rejected(self):
        with pytest.raises(ExpressionError):
            ev("count(*)")

    def test_unknown_function_rejected(self):
        with pytest.raises(ExpressionError):
            ev("frobnicate(1)")


class TestCompilePredicate:
    def test_returns_three_valued(self):
        predicate = compile_predicate(parse_expression("a > 5"))
        assert predicate({"a": 6}) is True
        assert predicate({"a": 4}) is False
        assert predicate({"a": None}) is None

    def test_non_boolean_result_rejected(self):
        predicate = compile_predicate(parse_expression("a + 1"))
        with pytest.raises(ExpressionError):
            predicate({"a": 1})
