"""Tests for predicate normalization."""

import pytest

from repro.expr.eval import evaluate
from repro.expr.normalize import normalize
from repro.sql import ast
from repro.sql.parser import parse_expression
from repro.sql.printer import sql_of


def norm(text, **kwargs):
    return normalize(parse_expression(text), **kwargs)


class TestNotPushing:
    def test_de_morgan_and(self):
        assert sql_of(norm("NOT (a = 1 AND b = 2)")) == "a <> 1 OR b <> 2"

    def test_de_morgan_or(self):
        assert sql_of(norm("NOT (a = 1 OR b = 2)")) == "a <> 1 AND b <> 2"

    def test_double_negation(self):
        assert sql_of(norm("NOT (NOT (a = 1))")) == "a = 1"

    def test_comparison_negation(self):
        assert sql_of(norm("NOT a < 5")) == "a >= 5"
        assert sql_of(norm("NOT a >= 5")) == "a < 5"

    def test_not_between_flips_flag(self):
        result = norm("NOT (a BETWEEN 1 AND 2)")
        assert isinstance(result, ast.BetweenExpr) and result.negated

    def test_not_in_flips_flag(self):
        result = norm("NOT (a IN (1, 2))")
        assert isinstance(result, ast.InExpr) and result.negated

    def test_not_is_null(self):
        result = norm("NOT (a IS NULL)")
        assert isinstance(result, ast.IsNullExpr) and result.negated

    def test_none_passes_through(self):
        assert normalize(None) is None


class TestConstantFolding:
    def test_arithmetic_folds(self):
        assert norm("a > 2 + 3") == parse_expression("a > 5")

    def test_true_and_simplifies(self):
        assert norm("TRUE AND a = 1") == parse_expression("a = 1")

    def test_false_and_annihilates(self):
        assert norm("FALSE AND a = 1") == ast.Literal(False)

    def test_true_or_annihilates(self):
        assert norm("a = 1 OR TRUE") == ast.Literal(True)

    def test_false_or_simplifies(self):
        assert norm("FALSE OR a = 1") == parse_expression("a = 1")

    def test_division_by_zero_left_symbolic(self):
        # Must not raise at normalize time.
        result = norm("a = 1 / 0")
        assert isinstance(result, ast.BinaryOp)


class TestBetweenExpansion:
    def test_expanded(self):
        result = norm("a BETWEEN 1 AND 10", expand_between=True)
        assert sql_of(result) == "a >= 1 AND a <= 10"

    def test_negated_not_expanded(self):
        result = norm("a NOT BETWEEN 1 AND 10", expand_between=True)
        assert isinstance(result, ast.BetweenExpr)


class TestSemanticsPreserved:
    """Normalization must agree with direct evaluation on all inputs."""

    CASES = [
        "NOT (a = 1 AND b = 2)",
        "NOT (a < 3 OR b >= 2)",
        "NOT (a BETWEEN 1 AND 5)",
        "NOT (a IN (1, 2))",
        "NOT (a IS NULL)",
        "NOT NOT a = 1",
        "a BETWEEN 1 AND 5 AND NOT b = 2",
    ]
    VALUES = [None, 0, 1, 2, 3, 5, 6]

    @pytest.mark.parametrize("text", CASES)
    def test_equivalence(self, text):
        original = parse_expression(text)
        normalized = normalize(original, expand_between=True)
        for a in self.VALUES:
            for b in self.VALUES:
                row = {"a": a, "b": b}
                assert evaluate(original, row) == evaluate(normalized, row), (
                    text,
                    row,
                )
