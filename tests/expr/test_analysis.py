"""Tests for predicate analysis."""

import pytest

from repro.expr import analysis
from repro.expr.intervals import Interval
from repro.sql import ast
from repro.sql.parser import parse_expression


def parse(text):
    return parse_expression(text)


class TestConjuncts:
    def test_split_flattens_nested_ands(self):
        conjuncts = analysis.split_conjuncts(parse("a = 1 AND b = 2 AND c = 3"))
        assert len(conjuncts) == 3

    def test_split_none(self):
        assert analysis.split_conjuncts(None) == []

    def test_or_not_split(self):
        assert len(analysis.split_conjuncts(parse("a = 1 OR b = 2"))) == 1

    def test_conjoin_round_trip(self):
        original = parse("a = 1 AND b = 2")
        rebuilt = analysis.conjoin(analysis.split_conjuncts(original))
        assert rebuilt == original

    def test_conjoin_empty_is_none(self):
        assert analysis.conjoin([]) is None


class TestColumnExtraction:
    def test_columns_in(self):
        columns = analysis.columns_in(parse("t.a + b * 2 > c"))
        names = {c.qualified for c in columns}
        assert names == {"t.a", "b", "c"}

    def test_columns_in_all_node_kinds(self):
        text = "a BETWEEN b AND c AND d IN (e, 1) AND f IS NULL AND abs(g) > 0"
        names = {c.column for c in analysis.columns_in(parse(text))}
        assert names == {"a", "b", "c", "d", "e", "f", "g"}

    def test_tables_in(self):
        assert analysis.tables_in(parse("t.a = u.b AND c = 1")) == {"t", "u"}

    def test_is_constant(self):
        assert analysis.is_constant(parse("1 + 2 * 3"))
        assert not analysis.is_constant(parse("a + 1"))

    def test_aggregates_not_constant(self):
        assert not analysis.is_constant(parse("count(*)"))
        assert analysis.contains_aggregate(parse("1 + count(*)"))

    def test_constant_value(self):
        assert analysis.constant_value(parse("2 + 3")) == 5


class TestMatchers:
    def test_column_comparison(self):
        match = analysis.match_column_comparison(parse("a >= 5"))
        assert match.column.column == "a"
        assert match.op == ">=" and match.value == 5

    def test_flipped_comparison(self):
        match = analysis.match_column_comparison(parse("5 < a"))
        assert match.op == ">" and match.value == 5

    def test_comparison_with_expression_constant(self):
        match = analysis.match_column_comparison(parse("a = 2 + 3"))
        assert match.value == 5

    def test_two_column_comparison_no_match(self):
        assert analysis.match_column_comparison(parse("a = b")) is None

    def test_between_matcher(self):
        column, low, high = analysis.match_column_between(
            parse("a BETWEEN 1 AND 10")
        )
        assert column.column == "a" and (low, high) == (1, 10)

    def test_negated_between_no_match(self):
        assert analysis.match_column_between(parse("a NOT BETWEEN 1 AND 2")) is None

    def test_in_matcher(self):
        column, values = analysis.match_column_in(parse("a IN (3, 1, 2)"))
        assert values == [3, 1, 2]

    def test_equijoin_matcher(self):
        pair = analysis.match_equijoin(parse("t.a = u.b"))
        assert pair[0].qualified == "t.a" and pair[1].qualified == "u.b"

    def test_same_table_equality_is_not_join(self):
        assert analysis.match_equijoin(parse("t.a = t.b")) is None

    def test_unqualified_equality_is_not_join(self):
        assert analysis.match_equijoin(parse("a = b")) is None


class TestColumnInterval:
    def column(self, name="a", table=None):
        return ast.ColumnRef(name, table)

    def test_equality_gives_point(self):
        interval = analysis.column_interval([parse("a = 5")], self.column())
        assert interval.is_point and interval.low == 5

    def test_range_conjunction_intersects(self):
        conjuncts = [parse("a >= 2"), parse("a < 10")]
        interval = analysis.column_interval(conjuncts, self.column())
        assert interval == Interval(2, 10, high_inclusive=False)

    def test_between_contributes(self):
        interval = analysis.column_interval(
            [parse("a BETWEEN 3 AND 7")], self.column()
        )
        assert interval == Interval(3, 7)

    def test_contradiction_is_empty(self):
        conjuncts = [parse("a > 10"), parse("a < 5")]
        assert analysis.column_interval(conjuncts, self.column()).is_empty

    def test_other_columns_ignored(self):
        conjuncts = [parse("b = 9"), parse("a <= 4")]
        interval = analysis.column_interval(conjuncts, self.column())
        assert interval == Interval.at_most(4)

    def test_in_list_gives_bounding_range(self):
        interval = analysis.column_interval([parse("a IN (7, 2, 5)")], self.column())
        assert interval == Interval(2, 7)

    def test_qualifier_tolerance(self):
        conjuncts = [parse("t.a = 5")]
        assert analysis.column_interval(conjuncts, self.column("a")).is_point
        assert analysis.column_interval(
            conjuncts, self.column("a", "t")
        ).is_point
        assert analysis.column_interval(
            conjuncts, self.column("a", "u")
        ).is_unbounded

    def test_inequality_contributes_nothing(self):
        interval = analysis.column_interval([parse("a <> 5")], self.column())
        assert interval.is_unbounded


class TestSubstitution:
    def test_substitute_bare_column(self):
        result = analysis.substitute_columns(
            parse("a + b"), {"a": ast.ColumnRef("a", "t")}
        )
        assert analysis.tables_in(result) == {"t"}

    def test_substitute_with_literal(self):
        result = analysis.substitute_columns(
            parse("a > 5"), {"a": ast.Literal(10)}
        )
        assert analysis.is_constant(result)
        assert analysis.constant_value(result) is True

    def test_qualified_key_preferred(self):
        expression = parse("t.a")
        result = analysis.substitute_columns(
            expression, {"t.a": ast.Literal(1), "a": ast.Literal(2)}
        )
        assert result == ast.Literal(1)

    def test_substitution_covers_all_node_kinds(self):
        text = "a BETWEEN 1 AND b AND a IN (b, 2) AND a IS NULL AND abs(a) > 0"
        mapping = {"a": ast.ColumnRef("a", "x"), "b": ast.ColumnRef("b", "x")}
        result = analysis.substitute_columns(parse(text), mapping)
        assert analysis.tables_in(result) == {"x"}
