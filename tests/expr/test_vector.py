"""The vector (columnar) expression kernels against the other two targets.

Every assertion is differential across the three lowering targets: the
row interpreter (:func:`~repro.expr.eval.evaluate`), the list-batch
closures (:func:`~repro.expr.eval.evaluate_batch` / the compiled batch
closure), and the numpy vector kernels (:mod:`repro.expr.vector`).
Targeted corpora cover NULL-vs-NaN distinctness, the object-dtype
fallback for mixed-type columns, empty batches, 3VL constant folding,
and the dtype-promotion rules of :mod:`repro.executor.vecbatch`.
"""

import math

import numpy as np
import pytest

from repro.executor.batch import RowBatch
from repro.executor.vecbatch import ColumnarBatch, promote, try_int64
from repro.expr.compile import compile_expr
from repro.expr.eval import evaluate, evaluate_batch
from repro.expr.vector import (
    VectorFallback,
    compile_vector,
    filter_indices,
    vector_values,
)
from repro.sql.parser import parse_expression


def _batch(rows):
    return RowBatch.from_rows(rows)


def _cbatch(rows):
    return ColumnarBatch.from_row_batch(_batch(rows))


def _same(left, right):
    """Value equality that treats NaN as equal to itself (for parity)."""
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if isinstance(a, float) and isinstance(b, float):
            if math.isnan(a) and math.isnan(b):
                continue
        if a is None or b is None:
            if a is not b:
                return False
            continue
        if a != b or type(a) is not type(b):
            return False
    return True


def assert_three_way(text, rows):
    """Row, list-batch, and vector targets must agree on ``text``."""
    expression = parse_expression(text)
    row_results = [evaluate(expression, row) for row in rows]
    batch = _batch(rows)
    batch_results = evaluate_batch(expression, batch)
    compiled = compile_expr(expression)
    compiled_results = compiled.batch(batch)
    vec_results = vector_values(expression, _cbatch(rows))
    assert _same(batch_results, row_results), text
    assert _same(compiled_results, row_results), text
    assert _same(vec_results, row_results), text


# ------------------------------------------------------- NULL vs NaN


class TestNullVersusNan:
    ROWS = [
        {"b": 1.5},
        {"b": None},
        {"b": float("nan")},
        {"b": -0.0},
    ]

    def test_is_null_sees_only_none(self):
        assert vector_values(
            parse_expression("b IS NULL"), _cbatch(self.ROWS)
        ) == [False, True, False, False]

    def test_is_not_null(self):
        assert_three_way("b IS NOT NULL", self.ROWS)

    def test_nan_compares_false_null_compares_null(self):
        # NaN = NaN is False (IEEE), NULL = NULL is NULL (3VL) — the
        # mask must keep the two regimes apart.
        assert vector_values(
            parse_expression("b = b"), _cbatch(self.ROWS)
        ) == [True, None, False, True]

    def test_comparison_parity(self):
        for text in ("b > 0.0", "b <= 1.5", "b <> b", "b = 1.5"):
            assert_three_way(text, self.ROWS)


# --------------------------------------------- object-dtype fallback


class TestMixedTypeFallback:
    def test_mixed_int_string_column_is_object(self):
        vec = promote([1, "x", 3])
        assert vec.values.dtype.kind == "O"

    def test_mixed_int_float_column_is_object(self):
        # Promoting [1, 2.5] to float64 would change materialized values
        # (1 -> 1.0) and lose precision past 2**53; the columnar layer
        # must keep the Python objects instead.
        vec = promote([1, 2.5])
        assert vec.values.dtype.kind == "O"
        assert vec.to_list() == [1, 2.5]

    def test_bool_column_is_object(self):
        assert promote([True, False]).values.dtype.kind == "O"

    def test_huge_int_column_is_object(self):
        vec = promote([2**70, 1])
        assert vec.values.dtype.kind == "O"
        assert vec.to_list() == [2**70, 1]

    def test_numeric_kernel_falls_back_on_object_column(self):
        rows = [{"a": 1}, {"a": "x"}]
        kernel = compile_vector(parse_expression("a + 1"))
        with pytest.raises(VectorFallback):
            kernel(_cbatch(rows))

    def test_filter_falls_back_on_object_predicate(self):
        rows = [{"a": "x"}, {"a": "y"}]
        kernel = compile_vector(parse_expression("a"))
        with pytest.raises(VectorFallback):
            filter_indices(kernel, _cbatch(rows))

    def test_string_equality_falls_back_but_like_does_not(self):
        rows = [{"c": "apple"}, {"c": None}, {"c": "apricot"}]
        with pytest.raises(VectorFallback):
            compile_vector(parse_expression("c = 'apple'"))(_cbatch(rows))
        assert vector_values(
            parse_expression("c LIKE 'ap%'"), _cbatch(rows)
        ) == [True, None, True]

    def test_all_null_column_stays_null(self):
        rows = [{"a": None}, {"a": None}]
        assert vector_values(
            parse_expression("a + 1"), _cbatch(rows)
        ) == [None, None]


# ------------------------------------------------------ empty batches


class TestEmptyBatches:
    EMPTY = [
        "a + 1",
        "a = 1",
        "a > 1 AND a < 5",
        "a IS NULL",
        "a IN (1, 2)",
        "a BETWEEN 1 AND 2",
        "-a",
    ]

    def test_kernels_return_empty(self):
        batch = ColumnarBatch.from_row_batch(
            RowBatch(("a",), {"a": []}, 0)
        )
        for text in self.EMPTY:
            assert vector_values(parse_expression(text), batch) == [], text

    def test_filter_indices_empty(self):
        batch = ColumnarBatch.from_row_batch(
            RowBatch(("a",), {"a": []}, 0)
        )
        kernel = compile_vector(parse_expression("a = 1"))
        indices = filter_indices(kernel, batch)
        assert indices is None or len(indices) == 0


# ------------------------------------------- 3VL constant-fold parity


#: Constant 3VL expressions: the row target folds them at compile time,
#: the vector target broadcasts the folded constant — all three must
#: agree elementwise.
CONSTANT_3VL = [
    "1 = 1 AND NULL",
    "1 = 2 AND NULL",
    "NULL AND NULL",
    "1 = 1 OR NULL",
    "1 = 2 OR NULL",
    "NOT NULL",
    "NULL + 1",
    "NULL = NULL",
    "NULL IS NULL",
    "NULL IS NOT NULL",
    "1 IN (1, NULL)",
    "2 IN (1, NULL)",
    "NULL IN (1, 2)",
    "NULL BETWEEN 1 AND 2",
    "2 BETWEEN NULL AND 3",
    "2 BETWEEN NULL AND 1",
]


@pytest.mark.parametrize("text", CONSTANT_3VL)
def test_constant_3vl_parity(text):
    rows = [{"a": 1}, {"a": 2}, {"a": None}]
    assert_three_way(text, rows)


# ----------------------------------------------- mixed-operator parity


PARITY_ROWS = [
    {"a": 4, "b": 2, "f": 1.5, "s": "alpha"},
    {"a": -7, "b": 3, "f": -0.5, "s": "beta"},
    {"a": None, "b": 4, "f": None, "s": None},
    {"a": 9, "b": None, "f": 2.25, "s": "gamma"},
    {"a": 0, "b": -2, "f": 0.0, "s": "alphabet"},
]

PARITY_EXPRESSIONS = [
    "a + b",
    "a - b * 2",
    "a / b",          # int division truncates toward zero
    "a % b",
    "-a",
    "a * b + 1",
    "f * 2.0",
    "f / 0.5",
    "a = b",
    "a <> b",
    "a < b",
    "a >= b",
    "f > 0.0",
    "a > b AND f > 0.0",
    "a > b OR f > 0.0",
    "NOT (a > b)",
    "a BETWEEN -5 AND 5",
    "a NOT BETWEEN 0 AND 5",
    "a IN (4, 9)",
    "a NOT IN (4, 9)",
    "a IN (4, NULL)",
    "b IS NULL",
    "s IS NOT NULL",
    "s LIKE 'alpha%'",
    "s LIKE '%a'",
    "s NOT LIKE 'b_ta'",
]


@pytest.mark.parametrize("text", PARITY_EXPRESSIONS)
def test_operator_parity(text):
    assert_three_way(text, PARITY_ROWS)


def test_int_division_truncates_toward_zero():
    rows = [
        {"a": 7, "b": 2},
        {"a": -7, "b": 2},
        {"a": 7, "b": -2},
        {"a": -7, "b": -2},
    ]
    assert vector_values(
        parse_expression("a / b"), _cbatch(rows)
    ) == [3, -3, -3, 3]
    assert_three_way("a / b", rows)


def test_division_by_zero_falls_back( ):
    rows = [{"a": 1, "b": 0}]
    kernel = compile_vector(parse_expression("a / b"))
    with pytest.raises(VectorFallback):
        kernel(_cbatch(rows))


def test_null_divisor_does_not_fall_back():
    # Row semantics return NULL before the zero check; the kernel must
    # not treat the masked slot's 0 filler as a real zero divisor.
    rows = [{"a": 1, "b": None}, {"a": 8, "b": 2}]
    assert vector_values(
        parse_expression("a / b"), _cbatch(rows)
    ) == [None, 4]


# ------------------------------------------------------ promotion rules


class TestPromotion:
    def test_int_column(self):
        vec = promote([1, 2, 3])
        assert vec.values.dtype == np.int64
        assert vec.mask is None

    def test_int_with_nulls_masked(self):
        vec = promote([1, None, 3])
        assert vec.values.dtype == np.int64
        assert list(vec.mask) == [False, True, False]
        assert vec.to_list() == [1, None, 3]

    def test_all_null_fully_masked(self):
        vec = promote([None, None])
        assert vec.mask.all()
        assert vec.to_list() == [None, None]

    def test_float_with_nulls(self):
        vec = promote([1.5, None])
        assert vec.values.dtype == np.float64
        assert vec.to_list() == [1.5, None]

    def test_value_arrays_frozen(self):
        vec = promote([1, 2, 3])
        with pytest.raises(ValueError):
            vec.values[0] = 9

    def test_try_int64(self):
        assert try_int64([3, 1, 2]) is not None
        assert try_int64([3, None, 2]) is None
        assert try_int64([3, 1.0]) is None
        assert try_int64([2**70]) is None


# -------------------------------------------------- filter semantics


def test_filter_indices_non_boolean_numeric_drops_all():
    # WHERE <int column> keeps only rows whose value ``is True`` — i.e.
    # none — in the row pipeline; the vector filter must agree, not
    # raise.
    rows = [{"a": 1}, {"a": 0}]
    kernel = compile_vector(parse_expression("a"))
    indices = filter_indices(kernel, _cbatch(rows))
    assert indices is not None and len(indices) == 0


def test_filter_indices_all_true_returns_none():
    rows = [{"a": 1}, {"a": 2}]
    kernel = compile_vector(parse_expression("a > 0"))
    assert filter_indices(kernel, _cbatch(rows)) is None


def test_filter_indices_partial():
    rows = [{"a": 1}, {"a": None}, {"a": 5}]
    kernel = compile_vector(parse_expression("a > 2"))
    indices = filter_indices(kernel, _cbatch(rows))
    assert list(indices) == [2]
