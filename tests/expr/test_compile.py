"""The expression compiler against the interpreter oracle.

Every assertion here is differential: the compiled row and batch
closures from :mod:`repro.expr.compile` must return the same value — or
raise the same :class:`~repro.errors.ExpressionError` — as
:func:`~repro.expr.eval.evaluate` / :func:`~repro.expr.eval.evaluate_batch`
on the same input.  Targeted corpora cover NULL propagation,
short-circuit AND/OR, BETWEEN/IN with NULLs, LIKE edge cases, constant
folding (including deferred fold errors), and the compile cache.
"""

import pytest

from repro.errors import ExpressionError
from repro.executor.batch import RowBatch
from repro.expr.compile import (
    cache_stats,
    clear_cache,
    compile_batch,
    compile_expr,
    compile_row,
)
from repro.expr.eval import evaluate, evaluate_batch
from repro.sql.parser import parse_expression


def _batch_of(rows):
    """Column-major batch over the union of the rows' keys."""
    names = []
    for row in rows:
        for name in row:
            if name not in names:
                names.append(name)
    data = {name: [row.get(name) for row in rows] for name in names}
    return RowBatch(tuple(names), data, len(rows))


def _outcome(fn):
    try:
        return ("ok", fn())
    except ExpressionError as error:
        return ("error", str(error))


def assert_parity(text, rows):
    """Compiled row/batch closures agree with the interpreter on ``rows``."""
    expression = parse_expression(text)
    row_fn = compile_row(expression)
    batch_fn = compile_batch(expression)
    for row in rows:
        expected = _outcome(lambda: evaluate(expression, row))
        got = _outcome(lambda: row_fn(row))
        assert got == expected, f"{text!r} over {row!r}"
    batch = _batch_of(rows)
    expected = _outcome(lambda: evaluate_batch(expression, batch))
    got = _outcome(lambda: batch_fn(batch))
    assert got == expected, f"{text!r} over batch {rows!r}"


ROWS = [
    {"a": 1, "b": 2.5, "s": "hello", "flag": True},
    {"a": None, "b": None, "s": None, "flag": None},
    {"a": -7, "b": 0.0, "s": "", "flag": False},
    {"a": 0, "b": 3.0, "s": "h%llo", "flag": True},
]


class TestNullPropagation:
    @pytest.mark.parametrize(
        "text",
        [
            "a + 1",
            "a * b",
            "-a",
            "a = 1",
            "a < b",
            "a <> 3",
            "abs(a)",
            "abs(b) + a",
            "a IS NULL",
            "a IS NOT NULL",
            "NOT (a = 1)",
        ],
    )
    def test_parity(self, text):
        assert_parity(text, ROWS)

    def test_null_comparand_constant(self):
        assert_parity("a = NULL", ROWS)
        assert_parity("s LIKE NULL", ROWS)


class TestShortCircuit:
    def test_false_and_error_is_false(self):
        # The error side must never run when the left is a definite False.
        assert_parity("a > 100 AND 1 / (a - a) = 1", [{"a": 5}])

    def test_true_or_error_is_true(self):
        assert_parity("a < 100 OR 1 / (a - a) = 1", [{"a": 5}])

    def test_unknown_left_still_evaluates_right(self):
        # NULL AND <error> raises (the right side IS evaluated).
        assert_parity("a > 100 AND 1 / 0 = 1", [{"a": None}])

    def test_non_boolean_operand_raises(self):
        assert_parity("a AND flag", ROWS)
        assert_parity("flag OR b", ROWS)

    def test_selection_vector_mixed_batch(self):
        # Rows where the right side would divide by zero are exactly the
        # rows the left side short-circuits away.
        rows = [{"a": 10, "d": 0}, {"a": 1, "d": 2}, {"a": 10, "d": 5}]
        assert_parity("a < 5 AND 10 / d > 1", rows)
        assert_parity("a >= 5 OR 10 / d > 1", rows)


class TestBetweenAndIn:
    @pytest.mark.parametrize(
        "text",
        [
            "a BETWEEN 0 AND 5",
            "a NOT BETWEEN 0 AND 5",
            "a BETWEEN NULL AND 5",
            "a BETWEEN 0 AND NULL",
            "b BETWEEN a AND 10",
            "s BETWEEN 'a' AND 'i'",
            "a IN (1, 2, 3)",
            "a NOT IN (1, 2, 3)",
            "a IN (1, NULL, 3)",
            "a NOT IN (1, NULL)",
            "a IN (NULL)",
            "s IN ('hello', 'x')",
            "a IN (b, 1)",
        ],
    )
    def test_parity(self, text):
        assert_parity(text, ROWS)

    def test_in_set_class_mismatch_raises_like_interpreter(self):
        # bool operand against an all-int list: the interpreter raises at
        # the first comparison; the compiled set fast path must too, with
        # the identical message.
        assert_parity("flag IN (1, 2)", ROWS)
        assert_parity("a IN (NULL, 'x')", ROWS)

    def test_between_incomparable_operand(self):
        assert_parity("s BETWEEN 0 AND 5", ROWS)


class TestLike:
    @pytest.mark.parametrize(
        "text",
        [
            "s LIKE 'h%'",
            "s LIKE '%llo'",
            "s LIKE 'h_llo'",
            "s LIKE ''",
            "s LIKE '%'",
            "s LIKE 'h.llo'",
            "s LIKE 'h[%'",
            "s LIKE s",
            "a LIKE 'x%'",
            "s LIKE 5",
        ],
    )
    def test_parity(self, text):
        assert_parity(text, ROWS)


class TestConstantFolding:
    def test_constants_fold(self):
        compiled = compile_expr(parse_expression("1 + 2 * 3"))
        assert compiled.constant
        assert compiled.value == 7
        assert compiled.row({}) == 7
        assert compiled.batch(_batch_of([{}, {}])) == [7, 7]

    def test_three_valued_folding(self):
        assert compile_expr(parse_expression("NULL + 1")).value is None
        assert compile_expr(parse_expression("1 = 2 AND 1 / 0 = 1")).value is False

    def test_folded_error_defers_to_call_time(self):
        compiled = compile_expr(parse_expression("1 / 0"))
        assert not compiled.constant
        with pytest.raises(ExpressionError, match="division by zero"):
            compiled.row({})
        # The batch interpreter's per-row loop never raises over an empty
        # batch; the compiled closure must match.
        assert compiled.batch(_batch_of([])) == []
        with pytest.raises(ExpressionError, match="division by zero"):
            compiled.batch(_batch_of([{}]))

    def test_column_is_not_constant(self):
        assert not compile_expr(parse_expression("a + 1")).constant

    def test_fold_parity_in_context(self):
        assert_parity("a + (2 * 3 - 6)", ROWS)
        assert_parity("1 / 0 > a", ROWS)


class TestAggregateAndUnknownFunctions:
    def test_aggregate_outside_group_by_raises_everywhere(self):
        assert_parity("sum(a) > 1", [{"a": 1}])

    def test_aggregate_raises_even_on_empty_batch(self):
        expression = parse_expression("count(a)")
        with pytest.raises(ExpressionError, match="outside GROUP BY"):
            compile_batch(expression)(_batch_of([]))

    def test_scalar_function_arity_error_matches(self):
        expression = parse_expression("abs(1, 2)")
        with pytest.raises(TypeError):
            evaluate(expression, {})
        with pytest.raises(TypeError):
            compile_row(expression)({})


class TestColumnResolution:
    def test_qualified_bare_and_ambiguous(self):
        assert_parity("t.a = 1", [{"t.a": 1}, {"a": 1}])
        assert_parity("a = 1", [{"t.a": 1}, {"t.a": 1, "u.a": 2}, {"x": 1}])


class TestCompileCache:
    def test_equal_expressions_share_closures(self):
        clear_cache()
        first = compile_expr(parse_expression("a + 1 > b"))
        hits_before, misses_before = cache_stats()
        second = compile_expr(parse_expression("a + 1 > b"))
        hits_after, misses_after = cache_stats()
        assert second is first
        assert hits_after == hits_before + 1
        assert misses_after == misses_before

    def test_distinct_expressions_do_not_alias(self):
        assert compile_expr(parse_expression("a + 1")) is not compile_expr(
            parse_expression("a + 2")
        )

    def test_clear_cache_resets(self):
        compile_expr(parse_expression("a * 3"))
        clear_cache()
        assert cache_stats() == (0, 0)
