"""Tests for interval arithmetic."""

import pytest

from repro.expr.intervals import Interval


class TestConstruction:
    def test_unbounded(self):
        interval = Interval.unbounded()
        assert interval.is_unbounded and not interval.is_empty

    def test_point(self):
        interval = Interval.point(5)
        assert interval.is_point and interval.contains(5)

    def test_empty(self):
        assert Interval.empty().is_empty

    def test_crossed_bounds_are_empty(self):
        assert Interval(10, 5).is_empty

    def test_open_point_is_empty(self):
        assert Interval(5, 5, low_inclusive=False).is_empty
        assert not Interval(5, 5).is_empty


class TestContains:
    def test_closed_bounds(self):
        interval = Interval(1, 10)
        assert interval.contains(1) and interval.contains(10)
        assert not interval.contains(0) and not interval.contains(11)

    def test_open_bounds(self):
        interval = Interval(1, 10, low_inclusive=False, high_inclusive=False)
        assert not interval.contains(1) and not interval.contains(10)
        assert interval.contains(2)

    def test_half_unbounded(self):
        assert Interval.at_least(5).contains(1000000)
        assert not Interval.at_least(5).contains(4)
        assert Interval.at_most(5).contains(-1000000)

    def test_none_never_contained(self):
        assert not Interval.unbounded().contains(None)

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 8))
        assert Interval(0, 10).contains_interval(Interval(0, 10))
        assert not Interval(0, 10).contains_interval(Interval(2, 12))
        assert not Interval(0, 10).contains_interval(Interval.unbounded())
        assert Interval.unbounded().contains_interval(Interval(0, 10))

    def test_contains_interval_open_edge(self):
        open_low = Interval(0, 10, low_inclusive=False)
        assert not open_low.contains_interval(Interval(0, 5))
        assert open_low.contains_interval(Interval(1, 5))

    def test_empty_contained_everywhere(self):
        assert Interval(5, 5, low_inclusive=False).is_empty
        assert Interval(0, 1).contains_interval(Interval.empty())


class TestIntersect:
    def test_overlap(self):
        result = Interval(0, 10).intersect(Interval(5, 15))
        assert result == Interval(5, 10)

    def test_disjoint_is_empty(self):
        assert Interval(0, 4).intersect(Interval(5, 10)).is_empty

    def test_touching_closed_is_point(self):
        result = Interval(0, 5).intersect(Interval(5, 10))
        assert result.is_point and result.low == 5

    def test_touching_open_is_empty(self):
        result = Interval(0, 5, high_inclusive=False).intersect(Interval(5, 10))
        assert result.is_empty

    def test_with_unbounded(self):
        assert Interval(1, 2).intersect(Interval.unbounded()) == Interval(1, 2)

    def test_inclusivity_tightens_on_shared_bound(self):
        result = Interval(0, 5).intersect(Interval(0, 5, low_inclusive=False))
        assert not result.low_inclusive

    def test_overlaps(self):
        assert Interval(0, 5).overlaps(Interval(5, 9))
        assert not Interval(0, 5).overlaps(Interval(6, 9))


class TestMisc:
    def test_width(self):
        assert Interval(2, 7).width() == 5.0
        assert Interval.at_least(2).width() is None
        assert Interval.unbounded().width() is None

    def test_equality_of_empties(self):
        assert Interval(10, 5) == Interval(3, 2)
        assert hash(Interval(10, 5)) == hash(Interval(3, 2))

    def test_repr(self):
        assert "Interval" in repr(Interval(1, 2))
        assert "empty" in repr(Interval.empty())

    def test_string_intervals(self):
        interval = Interval("apple", "mango")
        assert interval.contains("cherry")
        assert not interval.contains("zebra")
        assert interval.width() is None
