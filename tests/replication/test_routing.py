"""RoutedSession placement rules: writes to the primary, reads to
replicas under a currency bound, graceful degradation everywhere else.
"""

import pytest

from repro.api import SoftDB
from repro.concurrency import RoutedSession
from repro.errors import ReadOnlyReplicaError
from repro.replication import Replica, WalShipper

pytestmark = pytest.mark.replication

PROBE = "SELECT id, v FROM t ORDER BY id"


@pytest.fixture
def fleet(tmp_path):
    primary = SoftDB.open(tmp_path / "primary")
    primary.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    primary.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
    shipper = WalShipper(primary)
    replicas = [Replica(tmp_path / f"r{n}") for n in range(2)]
    for replica in replicas:
        shipper.attach(replica)
    assert shipper.pump_until_synced()
    yield primary, shipper, replicas
    for replica in replicas:
        replica.close()
    primary.close(checkpoint=False)


def test_writes_route_to_primary_only(fleet):
    primary, shipper, replicas = fleet
    routed = RoutedSession(primary, shipper)
    assert routed.execute("INSERT INTO t VALUES (3, 30)") == 1
    assert routed.last_route == ("primary", "write", 0.0)
    assert routed.writes == 1
    # The replicas have not been pumped: the write exists only on the
    # primary until shipping catches them up.
    for replica in replicas:
        assert replica.query(PROBE) == [
            {"id": 1, "v": 10},
            {"id": 2, "v": 20},
        ]
    assert shipper.pump_until_synced()
    for replica in replicas:
        assert {"id": 3, "v": 30} in replica.query(PROBE)


def test_reads_round_robin_across_synced_replicas(fleet):
    primary, shipper, replicas = fleet
    routed = RoutedSession(primary, shipper, max_staleness=0.0)
    served = [routed.execute(PROBE) and routed.last_route for _ in range(4)]
    names = [route[1] for route in served]
    assert all(route[0] == "replica" for route in served)
    assert set(names) == {replica.name for replica in replicas}
    assert names[:2] == names[2:], "round-robin order should repeat"
    assert routed.reads_on_replica == 4
    assert routed.reads_on_primary == 0


def test_strict_bound_degrades_stale_replicas_to_primary(fleet):
    primary, shipper, replicas = fleet
    routed = RoutedSession(primary, shipper, max_staleness=0.0)
    # An unpumped write makes every replica stale *right now* — the
    # router must notice against the live frontier, not the lag recorded
    # at the last pump (which still says zero).
    primary.execute("INSERT INTO t VALUES (4, 40)")
    got = routed.execute(PROBE)
    assert routed.last_route == ("primary", "fallback", 0.0)
    assert {"id": 4, "v": 40} in got.rows
    assert routed.degraded == len(replicas)
    # Once shipped, replicas serve again.
    assert shipper.pump_until_synced()
    assert {"id": 4, "v": 40} in routed.execute(PROBE).rows
    assert routed.last_route[0] == "replica"


def test_loose_bound_serves_bounded_stale_snapshot(fleet):
    primary, shipper, replicas = fleet
    frozen = replicas[0].query(PROBE)
    primary.execute("INSERT INTO t VALUES (5, 50)")
    routed = RoutedSession(primary, shipper, max_staleness=1.0)
    assert routed.query(PROBE) == frozen
    where, name, margin = routed.last_route
    assert where == "replica"
    assert 0.0 < margin <= 1.0
    # Per-query override tightens the bound below this staleness.
    assert routed.query(PROBE, max_staleness=0.0) == primary.query(PROBE)
    assert routed.last_route[0] == "primary"


def test_dead_replica_skipped_until_restart(fleet):
    primary, shipper, replicas = fleet
    routed = RoutedSession(primary, shipper, max_staleness=0.0)
    replicas[0].kill()
    for _ in range(3):
        routed.execute(PROBE)
        assert routed.last_route[:2] == ("replica", replicas[1].name)
    replicas[0].restart()
    assert shipper.pump_until_synced()
    names = set()
    for _ in range(3):
        routed.execute(PROBE)
        names.add(routed.last_route[1])
    assert replicas[0].name in names


def test_all_replicas_down_falls_back_to_primary(fleet):
    primary, shipper, replicas = fleet
    for replica in replicas:
        replica.kill()
    routed = RoutedSession(primary, shipper, max_staleness=1.0)
    assert routed.query(PROBE) == primary.query(PROBE)
    assert routed.last_route == ("primary", "fallback", 0.0)


def test_replica_rejects_writes_with_typed_error(fleet):
    primary, shipper, replicas = fleet
    with pytest.raises(ReadOnlyReplicaError):
        replicas[0].execute("INSERT INTO t VALUES (9, 90)")
    with pytest.raises(ReadOnlyReplicaError):
        replicas[0].execute("CREATE TABLE u (x INT)")
    # The router never trips over this: it sends writes to the primary.
    routed = RoutedSession(primary, shipper)
    assert routed.execute("DELETE FROM t WHERE id = 2") == 1
