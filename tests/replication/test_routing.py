"""RoutedSession placement rules: writes to the primary, reads to
replicas under a currency bound, graceful degradation everywhere else.
"""

import pytest

from repro.api import SoftDB
from repro.concurrency import RoutedSession
from repro.errors import ReadOnlyReplicaError
from repro.replication import Replica, WalShipper

pytestmark = pytest.mark.replication

PROBE = "SELECT id, v FROM t ORDER BY id"


@pytest.fixture
def fleet(tmp_path):
    primary = SoftDB.open(tmp_path / "primary")
    primary.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    primary.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
    shipper = WalShipper(primary)
    replicas = [Replica(tmp_path / f"r{n}") for n in range(2)]
    for replica in replicas:
        shipper.attach(replica)
    assert shipper.pump_until_synced()
    yield primary, shipper, replicas
    for replica in replicas:
        replica.close()
    primary.close(checkpoint=False)


def test_writes_route_to_primary_only(fleet):
    primary, shipper, replicas = fleet
    routed = RoutedSession(primary, shipper)
    assert routed.execute("INSERT INTO t VALUES (3, 30)") == 1
    assert routed.last_route == ("primary", "write", 0.0)
    assert routed.writes == 1
    # The replicas have not been pumped: the write exists only on the
    # primary until shipping catches them up.
    for replica in replicas:
        assert replica.query(PROBE) == [
            {"id": 1, "v": 10},
            {"id": 2, "v": 20},
        ]
    assert shipper.pump_until_synced()
    for replica in replicas:
        assert {"id": 3, "v": 30} in replica.query(PROBE)


def test_reads_round_robin_across_synced_replicas(fleet):
    primary, shipper, replicas = fleet
    routed = RoutedSession(primary, shipper, max_staleness=0.0)
    served = [routed.execute(PROBE) and routed.last_route for _ in range(4)]
    names = [route[1] for route in served]
    assert all(route[0] == "replica" for route in served)
    assert set(names) == {replica.name for replica in replicas}
    assert names[:2] == names[2:], "round-robin order should repeat"
    assert routed.reads_on_replica == 4
    assert routed.reads_on_primary == 0


def test_strict_bound_degrades_stale_replicas_to_primary(fleet):
    primary, shipper, replicas = fleet
    routed = RoutedSession(primary, shipper, max_staleness=0.0)
    # An unpumped write makes every replica stale *right now* — the
    # router must notice against the live frontier, not the lag recorded
    # at the last pump (which still says zero).
    primary.execute("INSERT INTO t VALUES (4, 40)")
    got = routed.execute(PROBE)
    assert routed.last_route == ("primary", "fallback", 0.0)
    assert {"id": 4, "v": 40} in got.rows
    assert routed.degraded == len(replicas)
    # Once shipped, replicas serve again.
    assert shipper.pump_until_synced()
    assert {"id": 4, "v": 40} in routed.execute(PROBE).rows
    assert routed.last_route[0] == "replica"


def test_loose_bound_serves_bounded_stale_snapshot(fleet):
    primary, shipper, replicas = fleet
    frozen = replicas[0].query(PROBE)
    primary.execute("INSERT INTO t VALUES (5, 50)")
    routed = RoutedSession(primary, shipper, max_staleness=1.0)
    assert routed.query(PROBE) == frozen
    where, name, margin = routed.last_route
    assert where == "replica"
    assert 0.0 < margin <= 1.0
    # Per-query override tightens the bound below this staleness.
    assert routed.query(PROBE, max_staleness=0.0) == primary.query(PROBE)
    assert routed.last_route[0] == "primary"


def test_dead_replica_skipped_until_restart(fleet):
    primary, shipper, replicas = fleet
    routed = RoutedSession(primary, shipper, max_staleness=0.0)
    replicas[0].kill()
    for _ in range(3):
        routed.execute(PROBE)
        assert routed.last_route[:2] == ("replica", replicas[1].name)
    replicas[0].restart()
    assert shipper.pump_until_synced()
    names = set()
    for _ in range(3):
        routed.execute(PROBE)
        names.add(routed.last_route[1])
    assert replicas[0].name in names


def test_all_replicas_down_falls_back_to_primary(fleet):
    primary, shipper, replicas = fleet
    for replica in replicas:
        replica.kill()
    routed = RoutedSession(primary, shipper, max_staleness=1.0)
    assert routed.query(PROBE) == primary.query(PROBE)
    assert routed.last_route == ("primary", "fallback", 0.0)


def test_snapshot_reports_per_endpoint_route_counts(fleet):
    primary, shipper, replicas = fleet
    routed = RoutedSession(primary, shipper, max_staleness=0.0)
    routed.execute("INSERT INTO t VALUES (7, 70)")
    assert shipper.pump_until_synced()
    for _ in range(4):
        routed.execute(PROBE)
    snapshot = routed.snapshot()
    counts = snapshot["route_counts"]
    # One write on the primary, four reads split round-robin.
    assert counts["primary"] == 1
    for replica in replicas:
        assert counts[replica.name] == 2
    assert sum(counts.values()) == 5
    assert snapshot["rebinds"] == 0
    assert snapshot["last_degradation"] is None


def test_snapshot_records_last_degradation_reason(fleet):
    primary, shipper, replicas = fleet
    routed = RoutedSession(primary, shipper, max_staleness=0.0)
    # A fresh unshipped write makes every replica too stale: the read
    # falls back and the snapshot names the margin breach.
    primary.execute("INSERT INTO t VALUES (8, 80)")
    routed.execute(PROBE)
    snapshot = routed.snapshot()
    assert snapshot["route_counts"]["primary"] == 1
    assert "margin" in snapshot["last_degradation"]
    assert "exceeds bound" in snapshot["last_degradation"]
    # A dead replica degrades with an unavailability reason instead.
    assert shipper.pump_until_synced()
    for replica in replicas:
        replica.kill()
    routed.execute(PROBE)
    assert "unavailable" in routed.snapshot()["last_degradation"]


def test_rebind_swaps_write_target_after_failover(fleet, tmp_path):
    """After a promotion the coordinator hands the session the new
    primary and its shipper; writes land there, reads fan out over the
    re-attached survivors, and the ledgers persist across the swap."""
    primary, shipper, replicas = fleet
    routed = RoutedSession(primary, shipper, max_staleness=0.0)
    routed.execute("INSERT INTO t VALUES (5, 50)")
    # Promote replicas[0] by hand: the routing layer only cares that
    # the write target and link set changed.
    assert shipper.pump_until_synced()
    from repro.replication import WalShipper
    from repro.replication.failover import ClusterFence

    fence = ClusterFence()
    fence.advance()
    promoted = replicas[0].promote(1, fence)
    new_shipper = WalShipper(promoted)
    new_shipper.attach(replicas[1])
    routed.rebind(promoted, new_shipper)
    assert routed.execute("INSERT INTO t VALUES (6, 60)") == 1
    assert routed.writes == 2
    assert routed.snapshot()["rebinds"] == 1
    assert {"id": 6, "v": 60} in promoted.query(PROBE)
    assert new_shipper.pump_until_synced()
    got = routed.execute(PROBE)
    assert routed.last_route[:2] == ("replica", replicas[1].name)
    assert {"id": 6, "v": 60} in got.rows
    # The ledger accumulated across the rebind: primary counts include
    # pre-failover routes.
    assert routed.snapshot()["route_counts"]["primary"] == 2


def test_replica_rejects_writes_with_typed_error(fleet):
    primary, shipper, replicas = fleet
    with pytest.raises(ReadOnlyReplicaError):
        replicas[0].execute("INSERT INTO t VALUES (9, 90)")
    with pytest.raises(ReadOnlyReplicaError):
        replicas[0].execute("CREATE TABLE u (x INT)")
    # The router never trips over this: it sends writes to the primary.
    routed = RoutedSession(primary, shipper)
    assert routed.execute("DELETE FROM t WHERE id = 2") == 1
