"""Replication chaos differential: WAL-shipped replicas must stay
bit-identical twins under every failure the link and the fleet can
produce — or fail with a typed error, never a silently wrong answer.

The workload is the crash suite's seeded action list (DML, DDL, soft
constraints, summary tables, checkpoints), so the bit-identity oracle
is the same :func:`fingerprint` the crash differential trusts.  On top
of it this suite inflicts:

* a lossy link — seeded ``net_frame`` drop / truncate / delay faults on
  every shipment;
* replica death mid-stream (a scheduled ``wal_append`` crash tears the
  mirrored log's final record) followed by restart-as-crash-recovery;
* a partition (severed link) healed later;
* primary WAL compaction racing a lagging replica, which must force a
  full resync rather than ship across the discontinuity.

After every scenario the converged replica's fingerprint must equal the
primary's, and every routed read along the way must be correct at its
snapshot or raise a :class:`~repro.errors.ReproError` subclass.
"""

import pytest

from repro.api import SoftDB
from repro.concurrency.routing import RoutedSession
from repro.errors import ReplicaUnavailableError, ReproError
from repro.replication import Replica, WalShipper
from repro.resilience.faults import (
    CrashSchedule,
    FaultInjector,
    SimulatedCrash,
)
from tests.crash.test_crash_differential import (
    SEEDS,
    apply_action,
    build_workload,
    fingerprint,
)

pytestmark = pytest.mark.replication


def make_pair(tmp_path, replicas=1, injector=None, schedules=None):
    """A durable primary with ``replicas`` attached twins."""
    primary = SoftDB.open(tmp_path / "primary")
    shipper = WalShipper(primary, injector=injector, max_chunk=256)
    fleet = []
    for n in range(replicas):
        schedule = schedules[n] if schedules else None
        replica = Replica(tmp_path / f"replica{n}", crash_points=schedule)
        shipper.attach(replica)
        fleet.append(replica)
    return primary, shipper, fleet


def teardown(primary, fleet):
    for replica in fleet:
        replica.close()
    primary.close(checkpoint=False)


@pytest.mark.parametrize("seed", SEEDS)
def test_streamed_replicas_are_bit_identical_twins(tmp_path, seed):
    """Fault-free steady state: pump after every action, converge, and
    the full crash-suite fingerprint matches on every replica."""
    primary, shipper, fleet = make_pair(tmp_path, replicas=2)
    for action in build_workload(seed):
        apply_action(primary, action)
        shipper.pump()
    assert shipper.pump_until_synced()
    reference = fingerprint(primary)
    for replica in fleet:
        assert fingerprint(replica.db) == reference
        lag = replica.lag()
        assert lag.bytes_behind == 0
        assert lag.records_behind == 0
        assert replica.currency_bound() == 0.0
    teardown(primary, fleet)


@pytest.mark.parametrize("seed", SEEDS)
def test_lossy_link_converges_bit_identical(tmp_path, seed):
    """Seeded drop/truncate/delay faults on every shipment: the pull
    cursor re-ships, torn frames are rejected not applied, late packets
    are ignored as duplicates — and the twin still converges exactly."""
    injector = FaultInjector(seed=seed)
    injector.add("net_frame", "drop", probability=0.2)
    injector.add("net_frame", "truncate", probability=0.2)
    injector.add("net_frame", "delay", probability=0.15)
    primary, shipper, fleet = make_pair(tmp_path, injector=injector)
    replica = fleet[0]
    for action in build_workload(seed):
        apply_action(primary, action)
        shipper.pump()
    injector.pause()
    assert shipper.pump_until_synced()
    assert fingerprint(replica.db) == fingerprint(primary)
    link = shipper.links[replica.name]
    assert link.dropped + link.truncated + link.delayed > 0, (
        "the fault schedule never fired; the scenario tested nothing"
    )
    if link.truncated:
        assert replica.torn_frames > 0
    # Faults may delay convergence but never corrupt: no gap was ever
    # silently accepted.
    assert replica.gap_rejects == 0
    teardown(primary, fleet)


@pytest.mark.parametrize("seed", SEEDS)
def test_replica_killed_mid_stream_restarts_bit_identical(tmp_path, seed):
    """A scheduled crash kills the replica mid-mirror (torn final
    record).  While dead it answers with typed errors only; restart runs
    real crash recovery over the mirrored prefix and re-ships the rest."""
    schedule = CrashSchedule(seed=seed).add("wal_append", at_visit=12)
    primary, shipper, fleet = make_pair(tmp_path, schedules=[schedule])
    replica = fleet[0]
    crashed = False
    for action in build_workload(seed):
        apply_action(primary, action)
        try:
            shipper.pump()
        except SimulatedCrash:
            crashed = True
    assert crashed, "the replica crash schedule never fired"
    assert replica.dead
    # Dead replica: unavailability is typed at both layers.
    assert shipper.pump()[replica.name] == "unavailable"
    with pytest.raises(ReplicaUnavailableError):
        replica.execute("SELECT id FROM emp")
    assert replica.currency_bound() == 1.0
    replica.restart()
    assert replica.restarts == 1
    assert shipper.pump_until_synced()
    assert fingerprint(replica.db) == fingerprint(primary)
    teardown(primary, fleet)


@pytest.mark.parametrize("seed", SEEDS)
def test_partitioned_replica_falls_behind_then_catches_up(tmp_path, seed):
    """A severed link is a partition: shipments fail typed, nothing is
    lost, resync over the partition is refused, and after restore the
    replica converges to the full fingerprint."""
    primary, shipper, fleet = make_pair(tmp_path)
    replica = fleet[0]
    link = shipper.links[replica.name]
    actions = build_workload(seed)
    mid = len(actions) // 2
    for action in actions[:mid]:
        apply_action(primary, action)
        shipper.pump()
    link.sever()
    for action in actions[mid:]:
        apply_action(primary, action)
        assert shipper.pump()[replica.name] == "unavailable"
    with pytest.raises(ReplicaUnavailableError):
        shipper.full_resync(link)
    link.restore()
    assert shipper.pump_until_synced()
    assert fingerprint(replica.db) == fingerprint(primary)
    teardown(primary, fleet)


@pytest.mark.parametrize("seed", SEEDS)
def test_compaction_racing_lagging_replica_forces_resync(tmp_path, seed):
    """The primary compacts its WAL while a replica lags: its cursor
    now points into a log that no longer exists.  The next pump must
    rebuild the replica from a fresh image — never ship across the
    generation discontinuity."""
    primary, shipper, fleet = make_pair(tmp_path)
    replica = fleet[0]
    actions = build_workload(seed)
    for action in actions[:8]:
        apply_action(primary, action)
        shipper.pump()
    assert shipper.pump_until_synced()
    # The replica now lags: the primary keeps going unshipped, then
    # compacts away the very bytes the replica's cursor points at.
    for action in actions[8:]:
        apply_action(primary, action)
    primary.checkpoint(compact=True)
    resyncs_before = shipper.resyncs
    assert shipper.pump()[replica.name] == "resync"
    assert shipper.resyncs == resyncs_before + 1
    assert shipper.pump()[replica.name] == 0
    assert fingerprint(replica.db) == fingerprint(primary)
    # The resynced replica survives its own restart (the rebased image
    # plus empty mirror recover cleanly).
    replica.restart()
    assert shipper.pump_until_synced()
    assert fingerprint(replica.db) == fingerprint(primary)
    teardown(primary, fleet)


@pytest.mark.parametrize("seed", SEEDS)
def test_routed_reads_correct_at_snapshot_or_typed(tmp_path, seed):
    """Routing under chaos: a faulty link plus a mid-run replica crash.
    Every read placed with ``max_staleness=0.0`` must equal the
    primary's current answer (served by a caught-up replica or by
    primary fallback); nothing may escape except typed errors."""
    injector = FaultInjector(seed=seed)
    injector.add("net_frame", "drop", probability=0.15)
    injector.add("net_frame", "truncate", probability=0.15)
    schedule = CrashSchedule(seed=seed).add("wal_append", at_visit=20)
    primary, shipper, fleet = make_pair(
        tmp_path, replicas=2, injector=injector, schedules=[schedule, None]
    )
    routed = RoutedSession(primary, shipper, max_staleness=0.0)
    probe = "SELECT id, salary FROM emp ORDER BY id"
    for action in build_workload(seed):
        apply_action(primary, action)
        try:
            shipper.pump()
        except SimulatedCrash:
            pass
        if "emp" not in primary.database.catalog.table_names():
            continue
        expected = primary.query(probe)
        try:
            got = routed.query(probe)
        except ReproError:
            continue  # typed degradation is allowed; wrong answers are not
        assert got == expected, (
            f"routed read diverged from the primary (route "
            f"{routed.last_route})"
        )
    # The crashed replica comes back; the fleet converges to twins.
    # (The scheduled crash may fire during this very convergence if the
    # lossy link kept the fatal record from shipping inside the loop.)
    injector.pause()
    try:
        synced = shipper.pump_until_synced()
    except SimulatedCrash:
        synced = False
    if fleet[0].dead:
        fleet[0].restart()
        synced = shipper.pump_until_synced()
    assert synced
    reference = fingerprint(primary)
    for replica in fleet:
        assert fingerprint(replica.db) == reference
    snapshot = routed.snapshot()
    assert snapshot["reads_on_replica"] + snapshot["reads_on_primary"] > 0
    teardown(primary, fleet)


@pytest.mark.parametrize("seed", SEEDS)
def test_stale_read_is_correct_at_its_own_snapshot(tmp_path, seed):
    """With a loose bound a lagging replica may serve — and its answer
    must be exactly its own (bounded-stale) snapshot, with the route and
    margin reported, not a half-applied hybrid."""
    primary, shipper, fleet = make_pair(tmp_path)
    replica = fleet[0]
    for action in build_workload(seed):
        apply_action(primary, action)
        shipper.pump()
    assert shipper.pump_until_synced()
    probe = "SELECT id, salary FROM emp ORDER BY id"
    frozen = replica.query(probe)
    # The primary moves on; the replica is not pumped.
    primary.execute("INSERT INTO emp VALUES (9001, 1500)")
    routed = RoutedSession(primary, shipper, max_staleness=1.0)
    got = routed.query(probe)
    assert got == frozen
    assert got != primary.query(probe)
    where, name, margin = routed.last_route
    assert where == "replica" and name == replica.name
    assert 0.0 < margin <= 1.0
    # The same read under a strict bound degrades to the primary.
    assert routed.query(probe, max_staleness=0.0) == primary.query(probe)
    assert routed.last_route[0] == "primary"
    teardown(primary, fleet)
