"""Failover unit coverage: leases, heartbeat faults, election,
fencing at both durability points, epoch persistence, and rejoin.

Everything runs on the virtual clock — no wall time, no sleeps — so
each scenario replays identically from its seed.
"""

import pytest

from repro.api import SoftDB
from repro.errors import (
    FencedError,
    PromotionError,
    ReadOnlyReplicaError,
    ReplicaUnavailableError,
)
from repro.replication import (
    ClusterFence,
    FailoverCluster,
    FailureDetector,
    HeartbeatChannel,
    Replica,
)
from repro.resilience.faults import FaultInjector
from repro.resilience.guards import VirtualClock

pytestmark = pytest.mark.failover


# -- fence --------------------------------------------------------------------


def test_fence_rejects_lagging_epoch_with_typed_error():
    fence = ClusterFence()
    fence.check(0, node="n1")  # founding epoch passes
    assert fence.advance() == 1
    with pytest.raises(FencedError) as caught:
        fence.check(0, node="n1")
    assert caught.value.epoch == 0
    assert caught.value.cluster_epoch == 1
    assert fence.rejections == 1
    fence.check(1, node="n2")  # the current holder still passes


# -- failure detector ---------------------------------------------------------


def test_lease_expires_on_the_virtual_clock_alone():
    clock = VirtualClock()
    detector = FailureDetector(clock, lease_timeout=1.0)
    assert detector.expired("p"), "an unknown node has no lease"
    detector.observe("p", epoch=0)
    assert not detector.expired("p")
    assert detector.remaining("p") == pytest.approx(1.0)
    clock.sleep(0.99)
    assert not detector.expired("p")
    clock.sleep(0.02)
    assert detector.expired("p")
    assert detector.remaining("p") == 0.0


def test_late_renewal_after_expiry_counts_as_flap_not_rewind():
    clock = VirtualClock()
    detector = FailureDetector(clock, lease_timeout=0.5)
    detector.observe("p", epoch=0)
    clock.sleep(1.0)
    assert detector.expired("p")
    assert detector.observe("p", epoch=0)
    assert detector.flaps == 1
    assert not detector.expired("p")


def test_stale_epoch_heartbeat_never_renews():
    """A deposed primary's pulse must not look like cluster health."""
    clock = VirtualClock()
    detector = FailureDetector(clock, lease_timeout=0.5)
    assert not detector.observe("old", epoch=1, min_epoch=2)
    assert detector.stale_rejected == 1
    assert detector.expired("old")


# -- heartbeat channel --------------------------------------------------------


def test_intact_heartbeat_round_trips_the_crc_frame():
    channel = HeartbeatChannel()
    record = {"op": "heartbeat", "node": "p", "epoch": 0, "seq": 1}
    assert channel.send(record) == [record]
    assert channel.delivered == 1


def test_dropped_and_torn_heartbeats_never_deliver():
    injector = FaultInjector(seed=0)
    injector.add("heartbeat", "drop", every_nth=2)
    injector.add("heartbeat", "truncate", every_nth=3)
    channel = HeartbeatChannel(injector)
    arrived = []
    for seq in range(12):
        arrived += channel.send({"op": "heartbeat", "seq": seq})
    assert channel.dropped > 0
    assert channel.torn > 0
    # Whatever did arrive passed its CRC: torn frames are discarded,
    # never half-parsed.
    assert all(frame["op"] == "heartbeat" for frame in arrived)


def test_delayed_heartbeat_rides_the_next_delivery():
    injector = FaultInjector(seed=0)
    injector.add("heartbeat", "delay", every_nth=1, limit=1)
    channel = HeartbeatChannel(injector)
    assert channel.send({"op": "heartbeat", "seq": 1}) == []
    assert channel.delayed == 1
    arrived = channel.send({"op": "heartbeat", "seq": 2})
    assert [frame["seq"] for frame in arrived] == [1, 2]
    assert channel.late_deliveries == 1


def test_asym_partition_latches_until_healed():
    injector = FaultInjector(seed=0)
    injector.add("heartbeat", "asym_partition", every_nth=1, limit=1)
    channel = HeartbeatChannel(injector)
    assert channel.send({"op": "heartbeat", "seq": 1}) == []
    assert channel.partitioned
    # The partition persists across sends — not a one-shot drop.
    assert channel.send({"op": "heartbeat", "seq": 2}) == []
    assert channel.partition_losses == 2
    channel.heal()
    assert channel.send({"op": "heartbeat", "seq": 3}) != []


# -- cluster ------------------------------------------------------------------


@pytest.fixture
def cluster(tmp_path):
    primary = SoftDB.open(tmp_path / "primary")
    primary.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    fleet = FailoverCluster(primary, lease_timeout=1.0)
    replicas = [Replica(tmp_path / f"r{n}", name=f"r{n}") for n in range(3)]
    for replica in replicas:
        fleet.attach(replica)
    yield fleet, replicas
    for replica in replicas:
        replica.close()
    if not fleet.primary_crashed and fleet.primary_db.durability is not None:
        fleet.primary_db.durability.close()


def test_promotion_refused_while_lease_is_live(cluster):
    fleet, _replicas = cluster
    assert not fleet.primary_suspected()
    with pytest.raises(PromotionError):
        fleet.promote()
    assert fleet.maybe_failover() is None
    assert fleet.epoch == 0


def test_election_picks_the_most_caught_up_reachable_replica(cluster):
    fleet, replicas = cluster
    fleet.execute("INSERT INTO t VALUES (1, 10)", tag=1)
    # Strand r0 behind (severed: it missed the latest shipments) and
    # kill r2; only r1 is both live and caught up.
    fleet.shipper.links["r0"].sever()
    fleet.execute("INSERT INTO t VALUES (2, 20)", tag=2)
    replicas[2].kill()
    fleet.kill_primary()
    fleet.clock.sleep(2.0)
    report = fleet.promote()
    assert report["winner"] == "r1"
    assert report["epoch"] == 1
    assert report["acks"]["r1"] > 0
    assert "r2" not in report["acks"], "a dead replica is not electable"
    assert fleet.primary_db.query("SELECT id FROM t ORDER BY id") == [
        {"id": 1},
        {"id": 2},
    ]


def test_promotion_with_no_candidates_is_typed_error(cluster):
    fleet, replicas = cluster
    for replica in replicas:
        replica.kill()
    fleet.kill_primary()
    fleet.clock.sleep(2.0)
    with pytest.raises(PromotionError):
        fleet.promote()


def test_promoted_replica_accepts_writes_and_ships_to_survivors(cluster):
    fleet, replicas = cluster
    fleet.execute("INSERT INTO t VALUES (1, 10)", tag=1)
    fleet.kill_primary()
    fleet.clock.sleep(2.0)
    report = fleet.promote()
    survivors = [r for r in replicas if r.name != report["winner"]]
    assert sorted(report["survivors"]) == sorted(
        r.name for r in survivors
    )
    fleet.execute("INSERT INTO t VALUES (2, 20)", tag=2)
    assert 2 in fleet.cluster_acked
    for survivor in survivors:
        assert survivor.query("SELECT id FROM t ORDER BY id") == [
            {"id": 1},
            {"id": 2},
        ]


def test_deposed_primary_rejects_every_write_with_fenced_error(cluster):
    """The asymmetric partition: the primary is alive and serving, its
    heartbeats are lost, a replica is promoted behind its back.  Every
    write on the deposed node must be a typed FencedError — reads may
    continue (it is a consistent, if stale, snapshot)."""
    fleet, _replicas = cluster
    fleet.execute("INSERT INTO t VALUES (1, 10)", tag=1)
    deposed = fleet.primary_db
    fleet.channel.partition()
    fleet.tick(advance=2.0, heartbeats=4)
    assert fleet.primary_suspected()
    fleet.promote()
    for sql in (
        "INSERT INTO t VALUES (99, 990)",
        "UPDATE t SET v = 0 WHERE id = 1",
        "DELETE FROM t WHERE id = 1",
        "CREATE TABLE u (x INT)",
    ):
        with pytest.raises(FencedError):
            deposed.execute(sql)
    assert deposed.query("SELECT id FROM t") == [{"id": 1}]
    # Nothing the fence rejected reached the new primary either.
    assert fleet.primary_db.query("SELECT id FROM t") == [{"id": 1}]


def test_fence_trips_at_commit_for_transaction_straddling_promotion(
    tmp_path,
):
    """An explicit transaction opened before the promotion must fail at
    its commit point: the begin-time check passed, so only the
    commit-time re-check stands between the deposed primary and a
    forked history."""
    primary = SoftDB.open(tmp_path / "primary")
    primary.execute("CREATE TABLE t (id INT PRIMARY KEY)")
    fleet = FailoverCluster(primary, lease_timeout=1.0)
    replica = Replica(tmp_path / "r0", name="r0")
    fleet.attach(replica)
    fleet.replicate()
    primary.execute("BEGIN")
    primary.execute("INSERT INTO t VALUES (1)")
    fleet.clock.sleep(2.0)
    fleet.promote()
    with pytest.raises(FencedError):
        primary.execute("COMMIT")
    replica.close()


def test_promotion_epoch_survives_restart_and_compaction(cluster):
    fleet, _replicas = cluster
    fleet.execute("INSERT INTO t VALUES (1, 10)", tag=1)
    fleet.kill_primary()
    fleet.clock.sleep(2.0)
    fleet.promote()
    path = fleet.primary_db.durability.path
    fleet.primary_db.durability.close()
    # Plain restart: the epoch comes back from the promote WAL record.
    reopened = SoftDB.open(path)
    assert reopened.durability.promotion_epoch == 1
    # Compaction resets the log; the epoch must ride the checkpoint's
    # session state instead of vanishing with the old generation.
    reopened.checkpoint(compact=True)
    reopened.durability.close()
    compacted = SoftDB.open(path)
    assert compacted.durability.promotion_epoch == 1
    compacted.durability.close()


def test_deposed_primary_rejoins_as_replica_via_resync(cluster):
    fleet, _replicas = cluster
    fleet.execute("INSERT INTO t VALUES (1, 10)", tag=1)
    fleet.kill_primary()
    fleet.clock.sleep(2.0)
    fleet.promote()
    fleet.execute("INSERT INTO t VALUES (2, 20)", tag=2)
    rejoined = fleet.rejoin_deposed()
    assert rejoined.query("SELECT id FROM t ORDER BY id") == [
        {"id": 1},
        {"id": 2},
    ]
    # It is a replica now: read-only, and it keeps up with shipping.
    with pytest.raises(ReadOnlyReplicaError):
        rejoined.execute("INSERT INTO t VALUES (3, 30)")
    fleet.execute("INSERT INTO t VALUES (3, 30)", tag=3)
    assert {"id": 3} in rejoined.query("SELECT id FROM t")
    rejoined.close()


def test_double_failover_monotonic_epochs(cluster):
    fleet, replicas = cluster
    fleet.execute("INSERT INTO t VALUES (1, 10)", tag=1)
    fleet.kill_primary()
    fleet.clock.sleep(2.0)
    first = fleet.promote()
    fleet.execute("INSERT INTO t VALUES (2, 20)", tag=2)
    fleet.kill_primary()
    fleet.clock.sleep(2.0)
    second = fleet.promote()
    assert (first["epoch"], second["epoch"]) == (1, 2)
    assert second["winner"] != first["winner"]
    fleet.execute("INSERT INTO t VALUES (3, 30)", tag=3)
    assert fleet.primary_db.query("SELECT count(*) AS c FROM t") == [
        {"c": 3}
    ]
    assert fleet.cluster_acked == [1, 2, 3]


def test_crashed_primary_rejects_cluster_writes_with_typed_error(cluster):
    fleet, _replicas = cluster
    fleet.kill_primary()
    with pytest.raises(ReplicaUnavailableError):
        fleet.execute("INSERT INTO t VALUES (1, 10)", tag=1)
