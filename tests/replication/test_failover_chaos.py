"""Failover chaos suite: kill and partition primaries mid-commit-storm
and hold every promotion to three hard invariants:

1. **zero cluster-acked commits lost** — any statement acknowledged at
   cluster level (durable on the primary *and* mirrored by at least one
   replica) survives every promotion, because a full copy existed
   somewhere the election could reach;
2. **bit-identity** — after convergence every node's fingerprint (the
   crash differential's page/index/constraint codec image) equals the
   surviving primary's, byte for byte;
3. **typed fencing** — every write attempted on a deposed primary
   raises :class:`~repro.errors.FencedError`; no write on a deposed
   node ever lands, and nothing non-typed ever escapes.

Scenarios: primary killed mid-commit-storm, an asymmetric partition
provoking a split-brain attempt that fencing defuses, double failover,
and a promotion racing WAL compaction.  All deterministic from the
seed: virtual clock, seeded fault injector, seeded storm.
"""

import random

import pytest

from repro.api import SoftDB
from repro.errors import FencedError, ReproError
from repro.replication import FailoverCluster, Replica
from repro.resilience.faults import FaultInjector
from tests.crash.test_crash_differential import SEEDS, fingerprint

pytestmark = pytest.mark.failover


def make_cluster(tmp_path, seed, replicas=2, injector=None):
    primary = SoftDB.open(tmp_path / "primary")
    primary.execute("CREATE TABLE ledger (id INT PRIMARY KEY, v INT)")
    fleet = FailoverCluster(
        primary,
        injector=injector,
        lease_timeout=1.0,
        heartbeat_interval=0.25,
    )
    twins = [
        Replica(tmp_path / f"replica{n}", name=f"replica{n}")
        for n in range(replicas)
    ]
    for twin in twins:
        fleet.attach(twin)
    return fleet, twins


def teardown(fleet, twins):
    for twin in twins:
        twin.close()
    if not fleet.primary_crashed and fleet.primary_db.durability is not None:
        fleet.primary_db.durability.close()
    for _name, old_db in fleet.deposed:
        old_db.durability.close()


def storm(fleet, rng, start, count):
    """A commit storm: ``count`` tagged single-row inserts, each pumped
    and ledgered as cluster-acked or local-only."""
    for n in range(start, start + count):
        fleet.execute(
            f"INSERT INTO ledger VALUES ({n}, {rng.randrange(10_000)})",
            tag=n,
        )
        fleet.tick(advance=0.1)
    return start + count


def assert_invariants(fleet, twins):
    """The three hard invariants, checked after convergence."""
    primary = fleet.primary_db
    # 1. Zero cluster-acked commits lost.
    present = {
        row["id"] for row in primary.query("SELECT id FROM ledger")
    }
    lost = [tag for tag in fleet.cluster_acked if tag not in present]
    assert not lost, f"cluster-acked commits lost in promotion: {lost}"
    assert len(present) == len(set(present)), "duplicated ledger rows"
    # 2. Converged nodes are bit-identical to the surviving primary.
    assert fleet.shipper.pump_until_synced()
    reference = fingerprint(primary)
    for link in fleet.shipper.links.values():
        assert fingerprint(link.replica.db) == reference, (
            f"{link.replica.name} diverged from the promoted primary"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_kill_primary_mid_commit_storm(tmp_path, seed):
    """The founding primary dies without warning mid-storm; the lease
    runs out, the most-caught-up replica is promoted, the storm resumes
    against it — and not one cluster-acked commit is missing."""
    rng = random.Random(seed)
    fleet, twins = make_cluster(tmp_path, seed, replicas=3)
    next_id = storm(fleet, rng, 0, 20 + rng.randrange(10))
    acked_before_crash = list(fleet.cluster_acked)
    assert acked_before_crash, "storm produced no cluster-acked commits"
    fleet.kill_primary()
    fleet.tick(advance=2.5, heartbeats=5)
    assert fleet.primary_suspected()
    report = fleet.maybe_failover()
    assert report is not None and report["epoch"] == 1
    # The storm resumes against the promoted primary.
    storm(fleet, rng, next_id, 10)
    assert set(acked_before_crash) <= set(fleet.cluster_acked)
    assert_invariants(fleet, twins)
    teardown(fleet, twins)


@pytest.mark.parametrize("seed", SEEDS)
def test_partition_then_heal_split_brain_attempt(tmp_path, seed):
    """The canonical split-brain inducer: an asymmetric partition eats
    the heartbeats while the primary keeps serving.  A replica is
    promoted behind the live primary's back; fencing must turn every
    one of the old primary's subsequent writes into a typed
    FencedError, and the healed node rejoins as a replica and
    converges."""
    rng = random.Random(seed)
    injector = FaultInjector(seed=seed)
    # The partition latches on the first heartbeat after the storm.
    fleet, twins = make_cluster(
        tmp_path, seed, replicas=2, injector=injector
    )
    next_id = storm(fleet, rng, 0, 15)
    deposed_db = fleet.primary_db
    injector.add("heartbeat", "asym_partition", every_nth=1, limit=1)
    fleet.tick(advance=2.5, heartbeats=5)
    assert fleet.channel.partitioned, "the partition never latched"
    assert fleet.primary_suspected()
    report = fleet.promote()
    assert report["epoch"] == 1
    # The deposed primary is alive and still thinks it serves: every
    # write must be fenced, and only FencedError may escape.
    fenced = 0
    for n in range(next_id, next_id + 5):
        try:
            deposed_db.execute(f"INSERT INTO ledger VALUES ({n}, 0)")
            raise AssertionError(
                "a deposed primary accepted a write: split brain"
            )
        except FencedError:
            fenced += 1
        except ReproError as error:
            raise AssertionError(
                f"deposed write failed non-fenced: {type(error).__name__}"
            )
    assert fenced == 5
    # Its *reads* still work — a consistent, stale snapshot.
    deposed_rows = {
        row["id"] for row in deposed_db.query("SELECT id FROM ledger")
    }
    assert deposed_rows == set(range(next_id))
    # Heal: the deposed node rejoins as a replica and converges.
    next_id = storm(fleet, rng, next_id, 10)
    rejoined = fleet.rejoin_deposed()
    twins.append(rejoined)
    assert_invariants(fleet, twins)
    assert {row["id"] for row in rejoined.query("SELECT id FROM ledger")} == set(
        range(next_id)
    )
    teardown(fleet, twins)


@pytest.mark.parametrize("seed", SEEDS)
def test_double_failover_keeps_every_acked_commit(tmp_path, seed):
    """Two promotions back to back: epochs stay monotonic, each new
    primary carries every cluster-acked commit, and the final fleet
    converges bit-identical."""
    rng = random.Random(seed)
    fleet, twins = make_cluster(tmp_path, seed, replicas=3)
    next_id = storm(fleet, rng, 0, 12)
    fleet.kill_primary()
    fleet.tick(advance=2.5, heartbeats=5)
    first = fleet.promote()
    next_id = storm(fleet, rng, next_id, 12)
    fleet.kill_primary()
    fleet.tick(advance=2.5, heartbeats=5)
    second = fleet.promote()
    assert (first["epoch"], second["epoch"]) == (1, 2)
    assert second["winner"] != first["winner"]
    next_id = storm(fleet, rng, next_id, 8)
    # Both fallen primaries rejoin; everyone converges.
    twins.append(fleet.rejoin_deposed(first["deposed"]))
    twins.append(fleet.rejoin_deposed(second["deposed"]))
    assert_invariants(fleet, twins)
    assert fleet.epoch == 2
    teardown(fleet, twins)


@pytest.mark.parametrize("seed", SEEDS)
def test_promotion_racing_compaction_forces_resync_not_gap(tmp_path, seed):
    """A compacting checkpoint fires inside the promotion window — the
    new primary compacts its WAL before a partitioned survivor ever
    re-attaches.  That survivor's cursor points into a log generation
    that no longer exists; it must come back via full resync, and no
    node may ever accept a gapped stream (gap_rejects stays zero on
    every converged node)."""
    rng = random.Random(seed)
    fleet, twins = make_cluster(tmp_path, seed, replicas=3)
    next_id = storm(fleet, rng, 0, 15)
    # Partition one replica so promotion cannot re-attach it.
    stranded = twins[-1]
    fleet.shipper.links[stranded.name].sever()
    fleet.kill_primary()
    fleet.tick(advance=2.5, heartbeats=5)
    report = fleet.promote()
    assert stranded.name in report["unreachable"]
    # Inside the promotion window: the new primary compacts, then the
    # storm resumes in the fresh WAL generation.
    fleet.primary_db.checkpoint(compact=True)
    next_id = storm(fleet, rng, next_id, 8)
    # The partition heals; the stranded replica re-attaches.  Its old
    # cursor is doubly invalid (new primary, compacted log) — the only
    # legal path back is a full resync.
    resyncs_before = fleet.shipper.resyncs
    fleet.attach(stranded)
    assert fleet.shipper.resyncs == resyncs_before + 1
    assert_invariants(fleet, twins)
    for twin in twins:
        assert twin.gap_rejects == 0, (
            f"{twin.name} accepted (then rejected) a gapped shipment "
            f"path during failover"
        )
    teardown(fleet, twins)
