"""WAL ``scan``/``truncate_to``/``reset`` versus a concurrent shipper
cursor (ISSUE 9, satellite 3).

The shipping protocol leans on three WAL invariants:

* the **durable frontier** (``durable_offset``) never covers bytes a
  crash could revoke — in particular never a torn final record;
* **truncation** (recovery discarding a torn tail, or a compacting
  reset) pulls the frontier back / bumps the generation, so a cursor
  pointing past the new end is *detected* — the shipper full-resyncs
  instead of shipping across a silent gap;
* the replica's **continuity check** is authoritative: overlaps are
  duplicates (skipped), unterminated or CRC-bad frames reject the
  remainder for re-shipment, and a gap is a typed
  :class:`~repro.errors.ResyncRequiredError`, never an apply.
"""

import pytest

from repro.api import SoftDB
from repro.durability.wal import WriteAheadLog, _frame
from repro.errors import ResyncRequiredError
from repro.replication import Replica, WalShipper
from repro.resilience.faults import FaultInjector

pytestmark = pytest.mark.replication


def record(n):
    return {"op": "noop", "n": n, "txn": None}


# -- WAL-level invariants -----------------------------------------------------


def test_durable_offset_never_covers_torn_tail(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    wal.append(record(1))
    wal.append(record(2))
    wal.flush()
    durable = wal.durable_offset
    assert durable == wal.offset()
    # Die mid-append: a torn prefix reaches the disk, but the durable
    # frontier — the shipping horizon — must not advance over it.
    wal.tear(_frame(record(3)))
    assert wal.durable_offset == durable
    assert wal.durable_seq == 2
    wal.close()
    # A fresh scan sees exactly the durable prefix plus the torn tail.
    reopened = WriteAheadLog(tmp_path / "wal.log")
    records, end, torn = reopened.scan(0)
    assert [r["n"] for r in records] == [1, 2]
    assert end == durable
    assert torn
    reopened.close()


def test_truncate_to_pulls_durable_frontier_back(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    boundaries = []
    for n in range(3):
        wal.append(record(n))
        boundaries.append(wal.offset())
    assert wal.durable_offset == boundaries[-1]
    wal.truncate_to(boundaries[1])
    # A shipper cursor at boundaries[2] now points past the durable
    # frontier — the ack-beyond-durable resync condition.
    assert wal.durable_offset == boundaries[1]
    records, end, torn = wal.scan(0)
    assert [r["n"] for r in records] == [0, 1]
    assert end == boundaries[1]
    assert not torn
    wal.close()


def test_reset_bumps_generation_and_stamps_epoch(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    wal.append(record(1))
    wal.flush()
    assert wal.generation == 0
    wal.reset(epoch_sequence=42)
    assert wal.generation == 1
    head = wal.head_record()
    assert head is not None
    epoch, end = head
    assert epoch == {"op": "epoch", "sequence": 42, "txn": None}
    # The epoch marker is itself durable immediately: a cursor rebased
    # to the new generation may ship from offset 0 right away.
    assert wal.durable_offset == end
    records, _end, torn = wal.scan(0)
    assert records == [epoch]
    assert not torn
    wal.close()


# -- cursor-level behavior ----------------------------------------------------


@pytest.fixture
def pair(tmp_path):
    primary = SoftDB.open(tmp_path / "primary")
    primary.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    shipper = WalShipper(primary, max_chunk=128)
    replica = Replica(tmp_path / "replica")
    shipper.attach(replica)
    yield primary, shipper, replica
    replica.close()
    primary.close(checkpoint=False)


def test_gap_shipment_is_typed_rejection_not_an_apply(pair):
    primary, shipper, replica = pair
    primary.execute("INSERT INTO t VALUES (1, 10)")
    assert shipper.pump_until_synced()
    applied = replica.rows_applied
    with pytest.raises(ResyncRequiredError):
        replica.receive(replica.ack() + 7, b"deadbeef bytes from beyond\n")
    assert replica.gap_rejects == 1
    assert replica.rows_applied == applied, "a gapped shipment applied"


def test_duplicate_shipment_is_skipped_not_reapplied(pair):
    primary, shipper, replica = pair
    base = shipper.links[replica.name].replica._base
    primary.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
    assert shipper.pump_until_synced()
    applied = replica.rows_applied
    # Re-ship the entire already-mirrored range verbatim (what a delayed
    # packet delivered late looks like).
    wal = primary.durability.wal
    with open(wal.path, "rb") as handle:
        handle.seek(base)
        data = handle.read(wal.durable_offset - base)
    assert data
    assert replica.receive(base, data) == 0
    assert replica.duplicates == 1
    assert replica.rows_applied == applied
    assert replica.query("SELECT id FROM t ORDER BY id") == [
        {"id": 1},
        {"id": 2},
    ]


def test_torn_frame_mid_shipment_rejected_then_reshipped(pair):
    """A truncated delivery keeps its intact frames, rejects the torn
    one, and the cursor protocol re-ships the remainder to convergence."""
    primary, shipper, replica = pair
    injector = FaultInjector(seed=0)
    injector.add("net_frame", "truncate", every_nth=1, limit=1)
    link = shipper.links[replica.name]
    link.injector = injector
    for n in range(8):
        primary.execute(f"INSERT INTO t VALUES ({n + 10}, {n})")
    assert shipper.pump_until_synced()
    assert link.truncated == 1
    assert replica.torn_frames >= 1
    assert replica.gap_rejects == 0
    assert replica.query("SELECT count(*) AS c FROM t") == [{"c": 8}]


def test_primary_truncation_racing_cursor_forces_resync(pair):
    """Recovery-style ``truncate_to`` on the primary strands the
    replica's ack beyond the durable frontier; the shipper must detect
    ack > durable and rebuild — a silent gap would fork the twin."""
    primary, shipper, replica = pair
    primary.execute("INSERT INTO t VALUES (1, 10)")
    assert shipper.pump_until_synced()
    wal = primary.durability.wal
    end_before = wal.offset()
    primary.execute("INSERT INTO t VALUES (2, 20)")
    assert shipper.pump_until_synced()
    assert replica.ack() > end_before
    wal.truncate_to(end_before)
    resyncs = shipper.resyncs
    assert shipper.pump()[replica.name] == "resync"
    assert shipper.resyncs == resyncs + 1
    # The resync image carries the primary's live state (including the
    # truncated-away-but-applied row): the twins agree again.
    assert shipper.pump()[replica.name] == 0
    assert replica.query("SELECT id FROM t ORDER BY id") == [
        {"id": 1},
        {"id": 2},
    ]


def test_compaction_reset_invalidates_cursor_via_generation(pair):
    primary, shipper, replica = pair
    primary.execute("INSERT INTO t VALUES (1, 10)")
    assert shipper.pump_until_synced()
    link = shipper.links[replica.name]
    generation_before = link.generation
    primary.checkpoint(compact=True)
    assert primary.durability.wal.generation == generation_before + 1
    assert shipper.pump()[replica.name] == "resync"
    assert link.generation == generation_before + 1
    assert shipper.pump()[replica.name] == 0
    # Post-compaction increments ship normally in the new generation.
    primary.execute("INSERT INTO t VALUES (2, 20)")
    assert shipper.pump()[replica.name] > 0
    assert replica.query("SELECT id FROM t ORDER BY id") == [
        {"id": 1},
        {"id": 2},
    ]


def test_compaction_inside_promotion_window_forces_resync(tmp_path):
    """ISSUE 10, satellite (c): a ``checkpoint(compact=True)`` firing
    inside the promotion window — after the epoch bump, before a
    lagging survivor re-attaches — must force that cursor into a full
    resync.  Gap-shipping across the epoch bump would hand the replica
    a stream whose offsets belong to a dead log generation."""
    from repro.replication.failover import ClusterFence

    primary = SoftDB.open(tmp_path / "primary")
    primary.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    shipper = WalShipper(primary, max_chunk=128)
    winner = Replica(tmp_path / "winner", name="winner")
    lagger = Replica(tmp_path / "lagger", name="lagger")
    shipper.attach(winner)
    shipper.attach(lagger)
    primary.execute("INSERT INTO t VALUES (1, 10)")
    assert shipper.pump_until_synced()
    # The lagger partitions; the primary moves on, then dies.
    shipper.links["lagger"].sever()
    primary.execute("INSERT INTO t VALUES (2, 20)")
    shipper.pump()
    primary.close(checkpoint=False)
    # Promotion: the winner drains through recovery and becomes the
    # primary of a fresh shipper.
    fence = ClusterFence()
    promoted = winner.promote(fence.advance(), fence)
    new_shipper = WalShipper(promoted, max_chunk=128)
    # Inside the promotion window: compact before the lagger is back.
    promoted.checkpoint(compact=True)
    promoted.execute("INSERT INTO t VALUES (3, 30)")
    # The lagger heals and re-attaches.  Its cursor is doubly stale —
    # old primary's offsets, pre-compaction generation — so the only
    # legal path is the attach-time full resync; incremental shipping
    # from its old ack would be a gap-ship across the epoch bump.
    resyncs_before = new_shipper.resyncs
    new_shipper.attach(lagger)
    assert new_shipper.resyncs == resyncs_before + 1
    assert new_shipper.pump_until_synced()
    assert lagger.gap_rejects == 0, "a gapped shipment reached the lagger"
    assert lagger.query("SELECT id FROM t ORDER BY id") == [
        {"id": 1},
        {"id": 2},
        {"id": 3},
    ]
    # The promoted primary's epoch survived its own compaction: the
    # lagger's image carries it too.
    assert promoted.durability.promotion_epoch == 1
    assert lagger.db.durability.promotion_epoch == 1
    lagger.close()
    winner.close()


def test_generation_check_precedes_ack_comparison_after_promotion(tmp_path):
    """Even when the byte offsets happen to look compatible, a cursor
    from another log generation must resync: the generation check runs
    before any ack arithmetic, so no pathological offset coincidence
    can gap-ship across a compaction inside the promotion window."""
    primary = SoftDB.open(tmp_path / "primary")
    primary.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    shipper = WalShipper(primary)
    replica = Replica(tmp_path / "replica", name="replica")
    link = shipper.attach(replica)
    primary.execute("INSERT INTO t VALUES (1, 10)")
    assert shipper.pump_until_synced()
    generation_before = link.generation
    primary.checkpoint(compact=True)
    # The compacted log is much shorter: the replica's ack now exceeds
    # nothing (offset arithmetic alone might even look shippable), but
    # the generation mismatch decides first.
    assert primary.durability.wal.generation == generation_before + 1
    assert shipper.pump()[replica.name] == "resync"
    assert replica.gap_rejects == 0
    replica.close()
    primary.close(checkpoint=False)


def test_scan_sees_exactly_what_the_cursor_shipped(pair):
    """The replica's local ``scan`` decodes byte-identical records to
    the primary's log over the shipped range — the prefix-mirror claim
    at the record level, cheap enough to assert directly."""
    primary, shipper, replica = pair
    base = replica._base
    for n in range(5):
        primary.execute(f"INSERT INTO t VALUES ({n}, {n})")
    assert shipper.pump_until_synced()
    primary_records, _, _ = primary.durability.wal.scan(base)
    replica_records, _, _ = replica.db.durability.wal.scan(0)
    assert replica_records == primary_records
