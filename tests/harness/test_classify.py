"""The classification layer's contract: thresholds, routing, segregation."""

from repro.harness.classify import (
    BOTH_TIMEOUT,
    CONFIDENCE_HIGH,
    CONFIDENCE_ROW_COUNT_ONLY,
    CONFIDENCE_ZERO_ROW,
    ERROR,
    FAIL,
    IMPROVED,
    MEASURED,
    NEUTRAL,
    QueryOutcome,
    REGRESSION,
    VS_TIMEOUT_CEILING,
    WIN,
    classify_speedup,
    normalized_row_key,
    qerror,
    result_checksum,
    speedup_type,
    summarize,
    validate_rows,
)


class TestThresholds:
    """Boundary cases are inclusive, per the contract table."""

    def test_exactly_1_10x_is_a_win(self):
        assert classify_speedup(1.10) == WIN

    def test_just_below_1_10x_is_improved(self):
        assert classify_speedup(1.0999) == IMPROVED

    def test_exactly_1_05x_is_improved(self):
        assert classify_speedup(1.05) == IMPROVED

    def test_exactly_0_95x_is_neutral(self):
        assert classify_speedup(0.95) == NEUTRAL

    def test_just_below_0_95x_is_a_regression(self):
        assert classify_speedup(0.9499) == REGRESSION

    def test_parity_is_neutral(self):
        assert classify_speedup(1.0) == NEUTRAL

    def test_big_win(self):
        assert classify_speedup(37.0) == WIN


class TestSpeedupType:
    def test_both_complete_is_measured(self):
        assert speedup_type(False, False) == MEASURED

    def test_either_truncation_is_ceiling(self):
        assert speedup_type(True, False) == VS_TIMEOUT_CEILING
        assert speedup_type(False, True) == VS_TIMEOUT_CEILING

    def test_both_truncated_is_both_timeout(self):
        assert speedup_type(True, True) == BOTH_TIMEOUT


class TestValidation:
    def test_matching_rows_high_confidence(self):
        rows = [(1, "a", 2.0), (2, "b", None)]
        validation = validate_rows(rows, list(reversed(rows)))
        assert validation.confidence == CONFIDENCE_HIGH
        assert validation.rows_match and validation.checksum_match
        assert validation.ok

    def test_row_count_mismatch(self):
        validation = validate_rows([(1,)], [(1,), (2,)])
        assert not validation.rows_match
        assert not validation.ok

    def test_same_count_different_values_fails_checksum(self):
        validation = validate_rows([(1,), (2,)], [(1,), (3,)])
        assert validation.rows_match
        assert validation.checksum_match is False
        assert not validation.ok

    def test_zero_rows_is_unverified(self):
        validation = validate_rows([], [])
        assert validation.confidence == CONFIDENCE_ZERO_ROW
        assert validation.ok
        assert validation.checksum_match is None

    def test_checksum_skipped_is_row_count_only(self):
        validation = validate_rows([(1,)], [(9,)], with_checksum=False)
        assert validation.confidence == CONFIDENCE_ROW_COUNT_ONLY
        assert validation.rows_match  # counts match; values never compared

    def test_checksum_is_order_insensitive(self):
        a = [(1, 2.0), (3, 4.0)]
        assert result_checksum(a) == result_checksum(list(reversed(a)))

    def test_checksum_tolerates_summation_order_noise(self):
        total = sum([0.1] * 10)  # 0.9999999999999999
        assert result_checksum([(total,)]) == result_checksum([(1.0,)])

    def test_checksum_distinguishes_none_from_empty_string(self):
        assert result_checksum([(None,)]) != result_checksum([("",)])

    def test_normalized_key_orders_none_last_style(self):
        assert normalized_row_key((None,)) != normalized_row_key((0,))


class TestQError:
    def test_symmetric(self):
        assert qerror(10, 100) == qerror(100, 10) == 10.0

    def test_floors_zero_actuals(self):
        assert qerror(5.0, 0) == 5.0
        assert qerror(0.0, 4) == 4.0


def _outcome(status, speedup=1.0, speedup_type_=MEASURED, qerror_=None,
             validation=None):
    outcome = QueryOutcome("q", "SELECT 1", "fam")
    outcome.status = status
    outcome.speedup = speedup
    outcome.speedup_type = speedup_type_
    outcome.qerror = qerror_
    outcome.validation = validation
    return outcome


class TestSummarize:
    def test_win_rate_over_measured_only(self):
        outcomes = [
            _outcome(WIN, 2.0),
            _outcome(NEUTRAL, 1.0),
            # A ceiling-bounded "win" must not enter the measured rate.
            _outcome(WIN, 50.0, speedup_type_=VS_TIMEOUT_CEILING),
        ]
        summary = summarize(outcomes)
        assert summary["measured_queries"] == 2
        assert summary["win_rate"] == 0.5
        assert summary["ceiling_bounded"] == 1
        assert summary["ceiling_statuses"] == [WIN]
        # Mean speedup also excludes the inflated ceiling ratio.
        assert summary["mean_measured_speedup"] == 1.5

    def test_error_and_fail_counted_but_not_measured(self):
        outcomes = [_outcome(ERROR), _outcome(FAIL), _outcome(WIN, 1.2)]
        summary = summarize(outcomes)
        assert summary["errors"] == 2
        assert summary["measured_queries"] == 1
        assert summary["win_rate"] == 1.0

    def test_regression_count(self):
        summary = summarize([_outcome(REGRESSION, 0.5), _outcome(WIN, 1.5)])
        assert summary["regressions"] == 1

    def test_worst_qerror_per_status_class(self):
        outcomes = [
            _outcome(WIN, 1.5, qerror_=3.0),
            _outcome(WIN, 1.2, qerror_=9.0),
            _outcome(NEUTRAL, 1.0, qerror_=2.0),
            # Ceiling-bounded q-errors stay out of the aggregate.
            _outcome(NEUTRAL, 1.0, speedup_type_=VS_TIMEOUT_CEILING,
                     qerror_=99.0),
        ]
        worst = summarize(outcomes)["worst_qerror_by_status"]
        assert worst == {WIN: 9.0, NEUTRAL: 2.0}

    def test_validation_mismatches_counted(self):
        bad = validate_rows([(1,)], [(2,)])
        good = validate_rows([(1,)], [(1,)])
        summary = summarize(
            [_outcome(ERROR, validation=bad), _outcome(WIN, validation=good)]
        )
        assert summary["validation_mismatches"] == 1
        assert summary["validation_confidence_counts"] == {
            CONFIDENCE_HIGH: 2
        }

    def test_empty_corpus(self):
        summary = summarize([])
        assert summary["queries"] == 0
        assert summary["win_rate"] == 0.0
        assert summary["mean_measured_speedup"] is None
