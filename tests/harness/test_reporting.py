"""Reporting tables: alignment, ceiling/mismatch flags, summary flattening."""

from repro.harness.classify import (
    ERROR,
    NEUTRAL,
    QueryOutcome,
    VS_TIMEOUT_CEILING,
    WIN,
    summarize,
    validate_rows,
)
from repro.harness.reporting import (
    format_corpus_summary,
    format_outcomes,
    format_table,
)


def _outcome(query_id, status, **overrides):
    outcome = QueryOutcome(query_id, "SELECT 1", overrides.pop("family", "fam"))
    outcome.status = status
    for name, value in overrides.items():
        setattr(outcome, name, value)
    return outcome


class TestFormatTable:
    def test_title_header_rule_rows(self):
        text = format_table(["a", "bb"], [[1, 2.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].split() == ["a", "bb"]
        assert set(lines[2]) <= {"-", " "}
        assert "2.50" in lines[3]

    def test_columns_align_to_widest_cell(self):
        text = format_table(["h"], [["short"], ["much longer cell"]])
        header, rule, *rows = text.splitlines()
        assert len(rule) == len("much longer cell")

    def test_whole_floats_render_with_one_decimal(self):
        assert "3.0" in format_table(["x"], [[3.0]])


class TestFormatOutcomes:
    def test_row_contents(self):
        outcome = _outcome(
            "q001", WIN, speedup=2.5, page_ratio=2.5, wall_ratio=1.7,
            validation=validate_rows([(1,)], [(1,)]),
        )
        text = format_outcomes([outcome], title="corpus")
        assert "q001" in text
        assert "WIN" in text
        assert "high" in text
        assert "MISMATCH" not in text
        assert "(ceiling)" not in text

    def test_ceiling_and_mismatch_flags(self):
        ceiling = _outcome(
            "q002", WIN, speedup_type=VS_TIMEOUT_CEILING, speedup=40.0
        )
        mismatch = _outcome(
            "q003", ERROR, validation=validate_rows([(1,)], [(2,)])
        )
        text = format_outcomes([ceiling, mismatch])
        assert "WIN (ceiling)" in text
        assert "MISMATCH" in text

    def test_status_filter(self):
        outcomes = [
            _outcome("q001", WIN),
            _outcome("q002", NEUTRAL),
        ]
        text = format_outcomes(outcomes, statuses=(WIN,))
        assert "q001" in text
        assert "q002" not in text

    def test_missing_measurements_render_as_dash(self):
        text = format_outcomes([_outcome("q001", ERROR)])
        assert "-" in text.splitlines()[-1]


class TestFormatCorpusSummary:
    def test_flattens_nested_dicts_to_dotted_names(self):
        summary = summarize(
            [_outcome("q001", WIN, speedup=1.5, qerror=2.0)]
        )
        text = format_corpus_summary(summary, title="summary")
        assert text.splitlines()[0] == "summary"
        assert "status_counts.WIN" in text
        assert "worst_qerror_by_status.WIN" in text
        assert "win_rate" in text

    def test_lists_join_and_none_dashes(self):
        text = format_corpus_summary(
            {"ceiling_statuses": ["WIN", "NEUTRAL"], "empty": [],
             "mean_measured_speedup": None}
        )
        assert "WIN, NEUTRAL" in text
        assert "-" in text
