"""E14 — Durability: WAL overhead and checkpoint-accelerated recovery.

The durability subsystem (``repro.durability``) must be close to free
while the engine runs, and must make restarts cheap when it matters.
E14 gates both halves:

**Steady state.**  A churn workload (batched inserts, then a
``DELETE WHERE`` sweep that keeps ~10% of each batch) runs once against
an in-memory session and once against a WAL-on durable session —
identical engine code, the only delta being the logging hooks and the
CRC-framed appends.  The WAL-on run may cost at most ``MAX_SLOWDOWN``
(1.15x) of the in-memory baseline.

**Recovery.**  The same workload leaves a ~100k-record log behind.
Recovering by replaying that entire log from offset zero is the
baseline; recovering from a final checkpoint (restore the image, replay
nothing) is the candidate, and must win by at least ``TARGET_SPEEDUP``
(5x) — the reason :meth:`SoftDB.close` checkpoints by default.

Emits ``BENCH_e14.json`` (generic ``baseline_s``/``candidate_s`` keys)
for ``check_bench_regression.py``; the steady-state entry carries
``max_slowdown`` so the gate treats it as an overhead bound rather than
a speedup floor.

Set ``E14_FAST=1`` for a smoke-sized run (CI): smaller churn, results
written to a temp directory (the committed BENCH_e14.json is never
clobbered), and loosened bounds — small absolute timings make ratios
noisy.
"""

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

import pytest

from repro import SoftDB

FAST = bool(os.environ.get("E14_FAST"))

#: Rows inserted per churn cycle; 80% are deleted again by the sweep.
BATCH = 1_000
#: Churn cycles: each logs BATCH inserts + 0.8 * BATCH deletes, so the
#: full-size run leaves a ~100k-record log behind ~11k surviving rows.
CYCLES = 4 if FAST else 56
#: Steady-state overhead bound for the WAL-on run.
MAX_SLOWDOWN = 1.5 if FAST else 1.15
#: Checkpoint-restore must beat full-log replay by this factor.
TARGET_SPEEDUP = 2.0 if FAST else 5.0
#: Timing repetitions (min is reported).
REPS = 2 if FAST else 3

RESULTS_PATH = (
    Path(tempfile.mkdtemp(prefix="bench_e14_")) / "BENCH_e14.json"
    if FAST
    else Path(__file__).resolve().parent / "BENCH_e14.json"
)

SCHEMA_SQL = "CREATE TABLE churn (id INT PRIMARY KEY, payload INT)"


def _run_churn(db: SoftDB) -> int:
    """The workload: batched inserts, then a 90% DELETE WHERE sweep.

    Returns the number of logical row operations performed (each one is
    one WAL record in a durable session).
    """
    operations = 0
    for cycle in range(CYCLES):
        base = cycle * BATCH
        db.database.insert_many(
            "churn",
            [(base + n, (base + n) * 31 % 9973) for n in range(BATCH)],
        )
        deleted = db.database.delete_where(
            "churn", lambda row: row["id"] % 5 != 0
        )
        operations += BATCH + deleted
    return operations


def _timed(callable_, repetitions: int = REPS) -> float:
    times = []
    for _ in range(repetitions):
        times.append(callable_())
    return min(times)


def _steady_state_in_memory() -> float:
    db = SoftDB()
    db.execute(SCHEMA_SQL)
    start = time.perf_counter()
    _run_churn(db)
    return time.perf_counter() - start


def _steady_state_wal(base_dir: Path) -> float:
    path = base_dir / f"wal-run-{time.monotonic_ns()}"
    db = SoftDB.open(path)
    db.execute(SCHEMA_SQL)
    start = time.perf_counter()
    _run_churn(db)
    elapsed = time.perf_counter() - start
    db.durability.close()
    shutil.rmtree(path, ignore_errors=True)
    return elapsed


def _timed_recovery(path: Path, repetitions: int = REPS):
    """Min-timed recovery of one durable directory.

    Recovery never mutates a clean directory (the WAL is only truncated
    when a torn tail is found), so repeated opens are fair repetitions.
    """
    runs = []
    for _ in range(repetitions):
        start = time.perf_counter()
        db = SoftDB.open(path)
        elapsed = time.perf_counter() - start
        summary = db.durability.last_recovery
        assert summary is not None, "recovery did not run"
        rows = db.database.table("churn").row_count
        db.durability.close()
        runs.append((elapsed, summary, rows))
    return min(runs, key=lambda run: run[0])


@pytest.fixture(scope="module")
def churn_logs(tmp_path_factory):
    """Two durable directories with the identical churn history: one
    closed without a checkpoint (full replay) and one with (restore)."""
    base = tmp_path_factory.mktemp("e14")
    stats = {}
    for label, take_checkpoint in (("replay", False), ("checkpoint", True)):
        path = base / label
        db = SoftDB.open(path)
        db.execute(SCHEMA_SQL)
        stats[label] = {
            "operations": _run_churn(db),
            "rows": db.database.table("churn").row_count,
            "records": db.durability.records_logged,
        }
        db.close(checkpoint=take_checkpoint)
        stats[label]["path"] = path
    return stats


def test_e14_steady_state_wal_overhead(report, tmp_path):
    in_memory_s = _timed(_steady_state_in_memory)
    wal_s = _timed(lambda: _steady_state_wal(tmp_path))
    slowdown = wal_s / in_memory_s
    operations = CYCLES * (BATCH + int(BATCH * 0.8))
    entry = {
        "name": f"wal-steady-state-{operations}-ops",
        "operations": operations,
        "baseline_s": round(in_memory_s, 4),
        "candidate_s": round(wal_s, 4),
        "slowdown": round(slowdown, 3),
        "max_slowdown": MAX_SLOWDOWN,
    }
    report(
        "E14: steady-state churn, in-memory vs WAL-on",
        ["pipeline", "in-memory s", "wal s", "slowdown x", "allowed x"],
        [[entry["name"], entry["baseline_s"], entry["candidate_s"],
          entry["slowdown"], MAX_SLOWDOWN]],
    )
    test_e14_steady_state_wal_overhead.entry = entry
    assert slowdown <= MAX_SLOWDOWN, (
        f"WAL-on churn is {slowdown:.3f}x the in-memory baseline "
        f"(allowed {MAX_SLOWDOWN}x)"
    )


def test_e14_recovery_checkpoint_beats_replay(report, churn_logs):
    replay_s, replay_summary, replay_rows = _timed_recovery(
        churn_logs["replay"]["path"]
    )
    checkpoint_s, checkpoint_summary, checkpoint_rows = _timed_recovery(
        churn_logs["checkpoint"]["path"]
    )
    # Both recoveries land on the same logical state.
    assert replay_rows == churn_logs["replay"]["rows"]
    assert checkpoint_rows == churn_logs["checkpoint"]["rows"]
    assert replay_rows == checkpoint_rows
    # The shapes differ exactly as advertised: full replay vs restore.
    # (records_logged counts the per-statement commit records too — one
    # for CREATE TABLE plus two per churn cycle — which replay skips.)
    assert not replay_summary["checkpoint"]
    commits = 1 + 2 * CYCLES
    assert replay_summary["replayed"] == (
        churn_logs["replay"]["records"] - commits
    )
    assert checkpoint_summary["checkpoint"]
    assert checkpoint_summary["replayed"] == 0
    speedup = replay_s / checkpoint_s
    entry = {
        "name": f"recovery-{churn_logs['replay']['records']}-record-log",
        "log_records": churn_logs["replay"]["records"],
        "recovered_rows": replay_rows,
        "baseline_s": round(replay_s, 4),
        "candidate_s": round(checkpoint_s, 4),
        "speedup": round(speedup, 2),
        "target_speedup": TARGET_SPEEDUP,
        "headline": True,
    }
    report(
        "E14: recovery time, full WAL replay vs checkpoint restore",
        ["pipeline", "rows", "replay s", "checkpoint s", "speedup x"],
        [[entry["name"], replay_rows, entry["baseline_s"],
          entry["candidate_s"], entry["speedup"]]],
    )
    steady = getattr(test_e14_steady_state_wal_overhead, "entry", None)
    pipelines = ([steady] if steady else []) + [entry]
    RESULTS_PATH.write_text(
        json.dumps(
            {"experiment": "E14", "pipelines": pipelines}, indent=2
        )
        + "\n"
    )
    assert speedup >= TARGET_SPEEDUP, (
        f"checkpoint recovery only {speedup:.2f}x faster than full "
        f"replay (target {TARGET_SPEEDUP}x)"
    )
    # The gate must accept the file it will re-check at session end.
    from check_bench_regression import check_regressions

    assert check_regressions(RESULTS_PATH) == []
