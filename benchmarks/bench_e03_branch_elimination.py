"""E3 — UNION ALL branch knockout via range constraints.

Paper source: Section 5's worked example — a 12-month union-all view; "a
query with a predicate asking for data from January to March ... requires
us to only look at the first three branches".

Shape to reproduce: pages scanned grow with the number of *overlapping*
branches, not with the total number of branches; knockout works equally
from declared CHECK constraints and from mined range soft constraints.
"""

import pytest

from repro.discovery.range_miner import mine_range_checks
from repro.harness.runner import compare_optimizers
from repro.workload.queries import monthly_union_sql
from repro.workload.schemas import YEAR_START, build_monthly_union_scenario

MONTHS = 12
ROWS_PER_MONTH = 2000


@pytest.fixture(scope="module")
def scenario():
    return build_monthly_union_scenario(
        months=MONTHS, rows_per_month=ROWS_PER_MONTH, seed=61,
        declare_checks=True,
    )


def test_e03_benchmark_knockout(benchmark, scenario):
    db, tables = scenario
    sql = monthly_union_sql(tables, YEAR_START, YEAR_START + 89)
    plan = db.plan(sql)
    benchmark(lambda: db.executor.execute(plan))


def test_e03_benchmark_baseline(benchmark, scenario):
    from repro.harness.runner import _all_off
    from repro.optimizer.planner import Optimizer

    db, tables = scenario
    sql = monthly_union_sql(tables, YEAR_START, YEAR_START + 89)
    plan = Optimizer(db.database, db.registry, _all_off()).optimize(sql)
    benchmark(lambda: db.executor.execute(plan))


def test_e03_report_pages_vs_months_matched(report, scenario, benchmark):
    db, tables = scenario
    rows = []
    for months_matched in (1, 3, 6, 9, 12):
        sql = monthly_union_sql(
            tables, YEAR_START, YEAR_START + months_matched * 30 - 1
        )
        enabled, disabled = compare_optimizers(db, sql)
        rows.append(
            [
                months_matched,
                MONTHS - months_matched,
                enabled.page_reads,
                disabled.page_reads,
                round(enabled.page_reads / disabled.page_reads, 3),
            ]
        )
    benchmark(
        lambda: db.plan(monthly_union_sql(tables, YEAR_START, YEAR_START + 89))
    )
    report(
        f"E3: union-all branch knockout ({MONTHS} monthly branches x "
        f"{ROWS_PER_MONTH} rows)",
        ["months matched", "branches knocked out", "pages w/", "pages w/o", "ratio"],
        rows,
    )
    # Shape: pages ratio tracks months_matched / 12.
    for row in rows:
        assert row[4] == pytest.approx(row[0] / MONTHS, abs=0.08)


def test_e03_report_mined_constraints(report, benchmark):
    """Ablation: same knockout from *mined* range SCs (nothing declared)."""
    db, tables = build_monthly_union_scenario(
        months=6, rows_per_month=1000, seed=62, declare_checks=False
    )
    before = db.plan(monthly_union_sql(tables, YEAR_START, YEAR_START + 29))
    for constraint in mine_range_checks(db.database, tables, "day"):
        db.add_soft_constraint(constraint)
    after = db.plan(monthly_union_sql(tables, YEAR_START, YEAR_START + 29))
    benchmark(
        lambda: db.plan(monthly_union_sql(tables, YEAR_START, YEAR_START + 29))
    )
    knocked_before = sum("knocked" in r for r in before.rewrites_applied)
    knocked_after = sum("knocked" in r for r in after.rewrites_applied)
    report(
        "E3 ablation: knockout source (6 branches, 1-month query)",
        ["constraint source", "branches knocked out"],
        [["none declared, none mined", knocked_before],
         ["mined range SCs", knocked_after]],
    )
    assert knocked_before == 0 and knocked_after == 5
