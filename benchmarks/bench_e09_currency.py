"""E9 — The currency (staleness) model: the paper's margin-of-error claim.

Paper source: Section 3.3: *"Given a fact table of a million records and
the knowledge that only a thousand tuples are affected by updates daily,
the margin of error for an SSC as a row check constraint on that table
will be quite small over the course of several days.  But within a month's
time, the margin of error would be 3%."*

Shape to reproduce: the projected margin matches the paper's arithmetic
exactly, and a *simulated* update stream tracked by the registry's live
currency counters reproduces the same curve (and stays an upper bound on
the SSC's true confidence drift).
"""

import pytest

from repro import SoftDB
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.currency import project_margin_of_error
from repro.workload.datagen import DataGenerator

# The paper's numbers, scaled 1:100 so the simulation is laptop-fast:
# 10k rows, 10 updates/day still gives 0.1%/day and 3%/month.
SCALE = 100
ROWS = 1_000_000 // SCALE
UPDATES_PER_DAY = 1000 // SCALE


@pytest.fixture(scope="module")
def scenario():
    db = SoftDB()
    db.execute("CREATE TABLE fact (id INT, status INT, v DOUBLE)")
    generator = DataGenerator(121)
    db.database.insert_many(
        "fact",
        [
            (n, 0 if generator.bernoulli(0.95) else 1, generator.uniform(0, 1))
            for n in range(ROWS)
        ],
    )
    ssc = CheckSoftConstraint("mostly_ok", "fact", "status = 0")
    db.add_soft_constraint(ssc, verify_first=True)
    return db


def test_e09_benchmark_margin_tracking(benchmark, scenario):
    """Cost of the currency bookkeeping on the DML path (near zero)."""
    db = scenario
    generator = DataGenerator(122)

    def one_day():
        for _ in range(UPDATES_PER_DAY):
            db.database.insert(
                "fact", [0, 0 if generator.bernoulli(0.95) else 1, 0.0]
            )

    benchmark(one_day)


def test_e09_report_projection_matches_paper(report, benchmark):
    rows = []
    for days in (1, 3, 7, 14, 30, 90):
        margin = project_margin_of_error(1_000_000, 1000, days)
        rows.append([days, f"{margin * 100:.2f}%"])
    benchmark(lambda: project_margin_of_error(1_000_000, 1000, 30))
    report(
        "E9a: projected SSC margin of error — 1M-row fact table, "
        "1000 updates/day (the paper's example)",
        ["days since verification", "margin of error"],
        rows,
    )
    assert project_margin_of_error(1_000_000, 1000, 30) == pytest.approx(0.03)


def _fresh_scenario() -> SoftDB:
    db = SoftDB()
    db.execute("CREATE TABLE fact (id INT, status INT, v DOUBLE)")
    generator = DataGenerator(121)
    db.database.insert_many(
        "fact",
        [
            (n, 0 if generator.bernoulli(0.95) else 1, generator.uniform(0, 1))
            for n in range(ROWS)
        ],
    )
    ssc = CheckSoftConstraint("mostly_ok", "fact", "status = 0")
    db.add_soft_constraint(ssc, verify_first=True)
    return db


def test_e09_report_simulated_stream(report, benchmark):
    """Drive a simulated month of updates; live counters match the model.

    Uses a private database: the wall-clock benchmark above mutates the
    shared one across its timing rounds.
    """
    db = _fresh_scenario()
    registry = db.registry
    ssc = registry.get("mostly_ok")
    registry.refresh_currency(ssc, db.database)
    generator = DataGenerator(123)
    rows = []
    checkpoints = {1, 3, 7, 14, 30}
    for day in range(1, 31):
        for _ in range(UPDATES_PER_DAY):
            db.database.insert(
                "fact",
                [day, 0 if generator.bernoulli(0.95) else 1,
                 generator.uniform(0, 1)],
            )
        if day in checkpoints:
            model = registry.currency("mostly_ok")
            projected = project_margin_of_error(ROWS, UPDATES_PER_DAY, day)
            rows.append(
                [
                    day,
                    model.updates_seen,
                    f"{model.margin_of_error * 100:.2f}%",
                    f"{projected * 100:.2f}%",
                    f"{registry.effective_confidence(ssc) * 100:.2f}%",
                ]
            )
    benchmark(lambda: registry.currency("mostly_ok").margin_of_error)
    report(
        f"E9b: simulated update stream ({ROWS} rows, {UPDATES_PER_DAY} "
        "updates/day; SSC stated confidence from verification)",
        ["day", "updates seen", "live margin", "paper model",
         "effective confidence"],
        rows,
    )
    final_margin = registry.currency("mostly_ok").margin_of_error
    assert final_margin == pytest.approx(0.03, abs=0.002)
    # The margin is an upper bound on the true drift: re-verify and check.
    stated = ssc.confidence
    violations, total = ssc.verify(db.database)
    true_confidence = 1 - violations / total
    assert abs(true_confidence - stated) <= final_margin + 1e-9
