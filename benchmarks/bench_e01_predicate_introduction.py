"""E1 — Predicate introduction from linear-correlation ASCs.

Paper source: Section 2 ([10]) and Section 3.3: a discovered linear
correlation ``a = k*b + c ± eps`` with an index on ``a`` lets the rewriter
introduce ``a BETWEEN ...`` for queries that only constrain ``b``.

Shape to reproduce: the rewritten plan reads far fewer pages than the full
scan; the benefit shrinks as the band (eps) grows; answers are identical.
Ablation: the miner's band-selectivity threshold is what separates usable
correlations from useless ones.
"""

import pytest

from repro.discovery.linear_miner import LinearMiner, mine_linear_correlations
from repro.harness.runner import compare_optimizers, measure_query
from repro.workload.schemas import build_correlated_table

ROWS = 20000
QUERY = "SELECT id, a FROM meas WHERE b = 500.0"


@pytest.fixture(scope="module")
def scenario():
    db = build_correlated_table(rows=ROWS, slope=3.0, intercept=10.0, noise=5.0, seed=41)
    (asc,) = mine_linear_correlations(
        db.database, "meas", [("a", "b")], confidence_levels=(1.0,)
    )
    db.add_soft_constraint(asc, verify_first=True)
    return db


def test_e01_benchmark_rewritten_query(benchmark, scenario):
    plan = scenario.plan(QUERY)
    result = benchmark(lambda: scenario.executor.execute(plan))
    assert result.row_count >= 0


def test_e01_benchmark_baseline_query(benchmark, scenario):
    from repro.harness.runner import _all_off
    from repro.optimizer.planner import Optimizer

    plan = Optimizer(scenario.database, None, _all_off()).optimize(QUERY)
    benchmark(lambda: scenario.executor.execute(plan))


def test_e01_report_speedup_vs_band_width(report, benchmark):
    """Sweep the correlation tightness (eps): benefit shrinks as eps grows."""
    rows = []
    for noise in (1.0, 5.0, 20.0, 80.0, 200.0):
        db = build_correlated_table(
            rows=8000, slope=3.0, intercept=10.0, noise=noise, seed=42
        )
        candidates = mine_linear_correlations(
            db.database, "meas", [("a", "b")],
            confidence_levels=(1.0,), max_band_selectivity=1.0,
        )
        db.add_soft_constraint(candidates[0], verify_first=True)
        enabled, disabled = compare_optimizers(db, QUERY)
        fired = any(
            "predicate_introduction" in r for r in enabled.plan.rewrites_applied
        )
        rows.append(
            [
                noise,
                "yes" if fired else "no",
                enabled.page_reads,
                disabled.page_reads,
                round(disabled.page_reads / max(1, enabled.page_reads), 2),
            ]
        )
    benchmark(lambda: db.plan(QUERY))  # representative optimize() timing
    report(
        "E1: predicate introduction — pages read vs correlation tightness "
        f"(table={ROWS} rows; query: {QUERY})",
        ["eps (noise)", "rewrite fired", "pages w/ ASC", "pages baseline", "speedup x"],
        rows,
    )
    # Shape: tight correlations win big; the win monotonically shrinks.
    speedups = [row[4] for row in rows]
    assert speedups[0] > 3.0
    assert speedups[0] >= speedups[-1]


def test_e01_report_miner_threshold_ablation(report, benchmark):
    """The paper's eps threshold: without it, useless SCs get mined."""
    db = build_correlated_table(rows=6000, noise=5.0, seed=43)
    rows = []
    for threshold in (0.02, 0.1, 0.25, 1.0):
        miner = LinearMiner(
            confidence_levels=(1.0,), max_band_selectivity=threshold
        )
        found = miner.mine_table(db.database, "meas", [("a", "b")])
        rows.append([threshold, len(found)])
    benchmark(
        lambda: LinearMiner(confidence_levels=(1.0,)).mine_table(
            db.database, "meas", [("a", "b")]
        )
    )
    report(
        "E1 ablation: miner band-selectivity threshold vs candidates kept",
        ["max band selectivity", "ASC candidates"],
        rows,
    )


def test_e01_report_join_path_correlation(report, benchmark):
    """Extension (paper §2): the same mechanism across a join path.

    "It would be possible in principle to mine for these linear
    correlations between attributes across common join paths...  But we
    would need a way to represent the correlation information and to make
    it available to the optimizer."  JoinLinearSC is that representation.
    """
    from repro.discovery.linear_miner import mine_join_linear_correlation
    from repro.workload.schemas import build_join_linear_scenario

    db = build_join_linear_scenario(rows_per_table=6000, seed=44)
    candidates = mine_join_linear_correlation(
        db.database,
        "freight", "cost", "shipments", "weight",
        "region_id", "region_id",
        confidence_levels=(1.0,),
    )
    db.add_soft_constraint(candidates[0], verify_first=True)
    sql = (
        "SELECT s.id FROM shipments s, freight f "
        "WHERE s.region_id = f.region_id "
        "AND s.weight BETWEEN 100.0 AND 110.0"
    )
    enabled, disabled = compare_optimizers(db, sql)
    benchmark(lambda: db.plan(sql))
    fired = any("join-path band" in r for r in enabled.plan.rewrites_applied)
    report(
        "E1 extension: inter-table correlation over shipments ⋈ freight "
        "(band on freight.cost introduced from shipments.weight)",
        ["metric", "with join-linear ASC", "without"],
        [
            ["rewrite fired", "yes" if fired else "no", "no"],
            ["rows returned", enabled.row_count, disabled.row_count],
            ["pages read", enabled.page_reads, disabled.page_reads],
        ],
    )
    assert fired
    assert enabled.row_count == disabled.row_count
    assert enabled.page_reads < disabled.page_reads
