"""E12 — Plan-time expression compilation vs AST interpretation.

Methodology gate in the vectorization→compilation lineage: the paper's
soft-constraint machinery only pays off when the optimizer's work is
amortized across executions (Section 4.1's plan caching), so repeated
executions must not re-pay per-evaluation expression overhead.  The
compiler in ``repro.expr.compile`` lowers each plan's expressions once
into specialized closures (constant folding, IN-list sets, precompiled
LIKE regexes, operator binding); executors call the closure instead of
walking the AST through ``_DISPATCH``.

Shape to reproduce: >=2x wall-time speedup of the compiled-batched
pipeline over the interpreted-batched pipeline on a predicate-heavy
100k-row scan-filter-aggregate query, identical results, and a
repeated-execution scenario where the one-time compile cost is amortized
within a handful of plan-cache hits.  Emits ``BENCH_e12.json`` which
``check_bench_regression.py`` (wired into the benchmark conftest) uses
to fail any run where compilation regressed below interpretation.
"""

import dataclasses
import json
import time
from pathlib import Path

import pytest

from repro import SoftDB
from repro.executor.runtime import Executor
from repro.expr.compile import clear_cache
from repro.optimizer.planner import Optimizer, OptimizerConfig, PlanCache

ROWS = 100_000
BATCH_SIZE = 1024
TARGET_SPEEDUP = 2.0
RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_e12.json"

#: Predicate-heavy pipeline: five conjuncts mixing arithmetic,
#: comparisons against constants, an IN list, a negated BETWEEN, and an
#: OR arm — the shapes the compiler specializes.
HEAVY_SQL = (
    "SELECT grp, count(*) AS n, sum(val) AS s FROM meas "
    "WHERE val * 3.0 + 7.0 > 500.0 AND val < 940.0 "
    "AND grp IN (1, 2, 3, 5, 8, 13, 21, 34) "
    "AND NOT (val BETWEEN 600.0 AND 601.5) "
    "AND (val % 97.0 > 5.0 OR grp = 7) "
    "GROUP BY grp"
)
#: Secondary pipeline: expression-bearing projection over a join.
JOIN_SQL = (
    "SELECT m.grp, m.val * d.factor AS scaled FROM meas m, dim d "
    "WHERE m.grp = d.grp AND m.val > 800.0"
)

INTERPRETED = OptimizerConfig(compile_expressions=False)
COMPILED = OptimizerConfig(compile_expressions=True)


@pytest.fixture(scope="module")
def scenario() -> SoftDB:
    db = SoftDB()
    db.execute("CREATE TABLE meas (id INT, grp INT, val DOUBLE)")
    db.execute("CREATE TABLE dim (grp INT, factor DOUBLE)")
    db.database.insert_many(
        "meas",
        [(i, i % 40, float(i % 997) + 0.5) for i in range(ROWS)],
    )
    db.database.insert_many(
        "dim", [(g, 1.0 + g / 10.0) for g in range(40)]
    )
    db.runstats_all()
    return db


def _plan(db: SoftDB, sql: str, config: OptimizerConfig):
    return Optimizer(db.database, db.registry, config).optimize(sql)


def _best_of(fn, repetitions: int = 3) -> float:
    times = []
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _row_key(row):
    return tuple(
        (value is None, value if value is not None else 0) for value in row
    )


def test_e12_benchmark_compiled_batched(benchmark, scenario):
    plan = _plan(scenario, HEAVY_SQL, COMPILED)
    executor = Executor(scenario.database, batch_size=BATCH_SIZE)
    result = benchmark(lambda: executor.execute(plan))
    assert result.row_count > 0


def test_e12_benchmark_interpreted_batched(benchmark, scenario):
    plan = _plan(scenario, HEAVY_SQL, INTERPRETED)
    executor = Executor(scenario.database, batch_size=BATCH_SIZE)
    result = benchmark(lambda: executor.execute(plan))
    assert result.row_count > 0


def test_e12_report_speedup_and_emit_json(report, benchmark, scenario):
    """The headline comparison: writes BENCH_e12.json and gates on 2x."""
    pipelines = []
    for name, sql, target in (
        ("predicate-heavy-scan-100k", HEAVY_SQL, TARGET_SPEEDUP),
        ("join-project-100k", JOIN_SQL, None),
    ):
        interpreted_plan = _plan(scenario, sql, INTERPRETED)
        compiled_plan = _plan(scenario, sql, COMPILED)
        executor = Executor(scenario.database, batch_size=BATCH_SIZE)
        interpreted_result = executor.execute(interpreted_plan)
        compiled_result = executor.execute(compiled_plan)
        assert sorted(
            map(_row_key, compiled_result.tuples())
        ) == sorted(map(_row_key, interpreted_result.tuples()))
        assert compiled_result.page_reads == interpreted_result.page_reads
        interpreted_s = _best_of(lambda: executor.execute(interpreted_plan))
        compiled_s = _best_of(lambda: executor.execute(compiled_plan))
        pipelines.append(
            {
                "name": name,
                "sql": sql,
                "rows": ROWS,
                "batch_size": BATCH_SIZE,
                "interpreted_batched_s": round(interpreted_s, 4),
                "compiled_batched_s": round(compiled_s, 4),
                "speedup": round(interpreted_s / compiled_s, 2),
                "target_speedup": target,
            }
        )
    amortization = _measure_amortization(scenario)
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "experiment": "E12",
                "pipelines": pipelines,
                "amortization": amortization,
            },
            indent=2,
        )
        + "\n"
    )
    compiled_plan = _plan(scenario, HEAVY_SQL, COMPILED)
    benchmark(
        lambda: Executor(scenario.database, batch_size=BATCH_SIZE).execute(
            compiled_plan
        )
    )
    report(
        f"E12: compiled vs interpreted expressions ({ROWS} rows, "
        f"batch_size={BATCH_SIZE})",
        ["pipeline", "interpreted s", "compiled s", "speedup x"],
        [
            [
                p["name"],
                p["interpreted_batched_s"],
                p["compiled_batched_s"],
                p["speedup"],
            ]
            for p in pipelines
        ],
    )
    report(
        "E12: plan-cache amortization of compile cost (predicate-heavy "
        "pipeline)",
        ["metric", "value"],
        [[key, value] for key, value in amortization.items()],
    )
    headline = pipelines[0]
    assert headline["speedup"] >= TARGET_SPEEDUP
    # Every pipeline must at least not regress; the gate sees this file.
    from check_bench_regression import check_regressions

    assert check_regressions(RESULTS_PATH) == []


def _measure_amortization(scenario: SoftDB) -> dict:
    """Repeated executions through a PlanCache: the one-time optimize +
    compile cost is amortized once per-execution savings exceed it."""
    clear_cache()
    compile_start = time.perf_counter()
    compiled_cache = PlanCache(
        Optimizer(scenario.database, scenario.registry, COMPILED)
    )
    compiled_cache.get_plan(HEAVY_SQL)
    compiled_first_s = time.perf_counter() - compile_start

    interpret_start = time.perf_counter()
    interpreted_cache = PlanCache(
        Optimizer(
            scenario.database,
            scenario.registry,
            dataclasses.replace(INTERPRETED),
        )
    )
    interpreted_cache.get_plan(HEAVY_SQL)
    interpreted_first_s = time.perf_counter() - interpret_start

    executor = Executor(scenario.database, batch_size=BATCH_SIZE)
    compiled_exec_s = _best_of(
        lambda: executor.execute(compiled_cache.get_plan(HEAVY_SQL)), 2
    )
    interpreted_exec_s = _best_of(
        lambda: executor.execute(interpreted_cache.get_plan(HEAVY_SQL)), 2
    )
    extra_compile_s = max(0.0, compiled_first_s - interpreted_first_s)
    saved_per_execution_s = max(
        1e-9, interpreted_exec_s - compiled_exec_s
    )
    break_even = extra_compile_s / saved_per_execution_s
    # The cache served every repeat execution without re-optimizing.
    assert compiled_cache.misses == 1 and compiled_cache.hits >= 1
    return {
        "compiled_first_plan_s": round(compiled_first_s, 4),
        "interpreted_first_plan_s": round(interpreted_first_s, 4),
        "compiled_execution_s": round(compiled_exec_s, 4),
        "interpreted_execution_s": round(interpreted_exec_s, 4),
        "break_even_executions": round(break_even, 2),
        "plan_cache_hits": compiled_cache.hits,
    }


def test_e12_amortization_break_even_is_small(benchmark, scenario):
    """The compile cost must be recovered within a few executions."""
    amortization = _measure_amortization(scenario)
    compiled_plan = _plan(scenario, HEAVY_SQL, COMPILED)
    benchmark(
        lambda: Executor(scenario.database, batch_size=BATCH_SIZE).execute(
            compiled_plan
        )
    )
    # Loose gate: compiling at plan time pays for itself within ten
    # executions of a cached plan (in practice well under one).
    assert amortization["break_even_executions"] <= 10.0
