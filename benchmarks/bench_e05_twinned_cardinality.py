"""E5 — SSC twinned predicates for cardinality estimation.

Paper source: Section 5.1's project-table example: ``start_date <= d AND
end_date >= d`` is badly estimated under the independence assumption; the
SSC "90% of projects last no longer than 30 days" twins the ``end_date``
predicate into an estimation-only predicate on ``start_date``, collapsing
the two ranges into one BETWEEN.

Shape to reproduce: q-error with the SSC well below the independence
q-error across probe dates; the estimate degrades gracefully as the SSC's
confidence drops; twinned predicates never change answers.
"""

import pytest

from repro.harness.runner import _all_off
from repro.optimizer.planner import Optimizer, OptimizerConfig
from repro.softcon.checksc import CheckSoftConstraint
from repro.stats.errors import q_error
from repro.workload.schemas import YEAR_START, build_project_table

ROWS = 20000


@pytest.fixture(scope="module")
def scenario():
    db = build_project_table(rows=ROWS, long_fraction=0.1, seed=81)
    ssc = CheckSoftConstraint(
        "short_projects", "project", "end_date <= start_date + 30",
        confidence=0.9,
    )
    db.add_soft_constraint(ssc, verify_first=True)
    return db


def probe_sql(day):
    return (
        f"SELECT id FROM project WHERE start_date <= {day} "
        f"AND end_date >= {day}"
    )


def count_sql(day):
    return (
        f"SELECT count(*) AS n FROM project WHERE start_date <= {day} "
        f"AND end_date >= {day}"
    )


def test_e05_benchmark_optimize_with_twinning(benchmark, scenario):
    benchmark(lambda: scenario.plan(probe_sql(YEAR_START + 500)))


def test_e05_report_qerror_across_dates(report, scenario, benchmark):
    no_twin = Optimizer(
        scenario.database, scenario.registry,
        OptimizerConfig(enable_twinning=False),
    )
    rows = []
    twin_errors = []
    plain_errors = []
    for offset in (100, 300, 500, 700, 900):
        day = YEAR_START + offset
        actual = scenario.query(count_sql(day))[0]["n"]
        with_ssc = scenario.plan(probe_sql(day)).estimated_rows
        plain = no_twin.optimize(probe_sql(day)).estimated_rows
        twin_errors.append(q_error(with_ssc, actual))
        plain_errors.append(q_error(plain, actual))
        rows.append(
            [
                f"+{offset}d",
                actual,
                round(with_ssc),
                round(twin_errors[-1], 2),
                round(plain),
                round(plain_errors[-1], 2),
            ]
        )
    benchmark(lambda: scenario.plan(probe_sql(YEAR_START + 500)).estimated_rows)
    report(
        f"E5: cardinality q-error, active-projects query ({ROWS} rows, "
        "SSC: 90% of projects last <= 30 days)",
        ["probe date", "actual", "est w/ SSC", "q-err SSC",
         "est indep.", "q-err indep."],
        rows,
    )
    # Shape: the SSC estimate dominates independence on (geometric) average.
    twin_mean = _geometric_mean(twin_errors)
    plain_mean = _geometric_mean(plain_errors)
    assert twin_mean < plain_mean / 2
    assert twin_mean < 2.0


def test_e05_report_confidence_sweep(report, benchmark):
    """How good must the SSC be?  Sweep the planted long-tail fraction."""
    rows = []
    day = YEAR_START + 500
    for long_fraction in (0.01, 0.1, 0.3, 0.5):
        db = build_project_table(
            rows=8000, long_fraction=long_fraction, seed=82
        )
        ssc = CheckSoftConstraint(
            "short_projects", "project", "end_date <= start_date + 30",
            confidence=0.9,
        )
        db.add_soft_constraint(ssc, verify_first=True)
        actual = db.query(count_sql(day))[0]["n"]
        with_ssc = db.plan(probe_sql(day)).estimated_rows
        plain = Optimizer(
            db.database, db.registry, OptimizerConfig(enable_twinning=False)
        ).optimize(probe_sql(day)).estimated_rows
        rows.append(
            [
                f"{(1 - long_fraction) * 100:.0f}%",
                round(ssc.confidence * 100, 1),
                actual,
                round(q_error(with_ssc, actual), 2),
                round(q_error(plain, actual), 2),
            ]
        )
    benchmark(lambda: db.plan(probe_sql(day)).estimated_rows)
    report(
        "E5 sweep: SSC quality vs estimation benefit (verified confidence "
        "replaces the stated 90%)",
        ["planted adherence", "measured conf %", "actual rows",
         "q-err w/ SSC", "q-err indep."],
        rows,
    )
    # Shape: with high adherence the SSC wins big; as adherence collapses
    # the blended estimate degrades toward (but not beyond 2x worse than)
    # plain independence.
    assert rows[0][3] < rows[0][4]
    assert rows[-1][3] <= rows[-1][4] * 2.0


def test_e05_twins_never_change_answers(scenario, benchmark):
    from repro.harness.runner import compare_optimizers

    for offset in (200, 600):
        compare_optimizers(scenario, probe_sql(YEAR_START + offset))
    benchmark(lambda: scenario.executor.execute(
        scenario.plan(probe_sql(YEAR_START + 200))
    ))


def _geometric_mean(values):
    import math

    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_e05_report_difference_predicate_hints(report, benchmark):
    """The paper's closing §5.1 example: "finding the number of projects
    completed in 5 days.  The predicate used in the query could be
    end_date - start_date <= 5" — estimated from a *family* of check SCs
    at several confidence levels (the "should the database also keep
    eps_70 and eps_80?" question answered with interpolation).
    """
    db = build_project_table(rows=20000, long_fraction=0.1, seed=83)
    for days, name in ((10, "d10"), (30, "d30"), (60, "d60")):
        db.add_soft_constraint(
            CheckSoftConstraint(
                name, "project", f"end_date <= start_date + {days}",
                confidence=0.5,
            ),
            verify_first=True,
        )
    rows = []
    for days in (3, 5, 15, 45, 120):
        predicate = f"end_date - start_date <= {days}"
        actual = db.query(
            f"SELECT count(*) AS n FROM project WHERE {predicate}"
        )[0]["n"]
        hinted = db.plan(
            f"SELECT id FROM project WHERE {predicate}"
        ).estimated_rows
        plain = Optimizer(db.database, None, OptimizerConfig()).optimize(
            f"SELECT id FROM project WHERE {predicate}"
        ).estimated_rows
        rows.append(
            [
                days,
                actual,
                round(hinted),
                round(q_error(hinted, actual), 2),
                round(plain),
                round(q_error(plain, actual), 2),
            ]
        )
    benchmark(lambda: db.plan("SELECT id FROM project WHERE end_date - start_date <= 5"))
    report(
        "E5 extension: difference-predicate hints from an SC family "
        "(P(duration <= 10d) ~ 0.30, <= 30d ~ 0.90, <= 60d ~ 0.91)",
        ["duration <= days", "actual", "est hinted", "q-err hinted",
         "est default", "q-err default"],
        rows,
    )
    import math

    hinted_mean = math.exp(
        sum(math.log(row[3]) for row in rows) / len(rows)
    )
    default_mean = math.exp(
        sum(math.log(row[5]) for row in rows) / len(rows)
    )
    assert hinted_mean < default_mean
    assert hinted_mean < 1.6


def test_e05_report_combiner_ablation(report, scenario, benchmark):
    """DESIGN.md's promised ablation: independence vs exponential backoff
    vs SSC twinning on the correlated-dates query.

    Exponential backoff is the generic "assume some correlation" hedge
    used by commercial optimizers; the SSC knows *which* columns correlate
    and by how much, so it should land closer to the truth than either.
    """
    from repro.optimizer.cardinality import CardinalityEstimator
    from repro.sql.parser import parse_expression

    rows = []
    errors = {"independence": [], "exp_backoff": [], "ssc twinning": []}
    for offset in (200, 500, 800):
        day = YEAR_START + offset
        actual = scenario.query(count_sql(day))[0]["n"]
        conjuncts = [
            parse_expression(f"start_date <= {day}"),
            parse_expression(f"end_date >= {day}"),
        ]
        independence = CardinalityEstimator(
            scenario.database, combiner="independence"
        ).scan_rows("project", conjuncts)
        backoff = CardinalityEstimator(
            scenario.database, combiner="exp_backoff"
        ).scan_rows("project", conjuncts)
        twinned = scenario.plan(probe_sql(day)).estimated_rows
        errors["independence"].append(q_error(independence, actual))
        errors["exp_backoff"].append(q_error(backoff, actual))
        errors["ssc twinning"].append(q_error(twinned, actual))
        rows.append(
            [
                f"+{offset}d",
                actual,
                round(independence),
                round(backoff),
                round(twinned),
            ]
        )
    benchmark(lambda: scenario.plan(probe_sql(YEAR_START + 500)))
    summary = [
        [name, round(_geometric_mean(values), 2)]
        for name, values in errors.items()
    ]
    report(
        "E5 ablation: selectivity combiners on the correlated-dates query",
        ["probe date", "actual", "independence", "exp backoff", "SSC twinning"],
        rows,
    )
    report(
        "E5 ablation summary (geometric-mean q-error)",
        ["combiner", "gmean q-error"],
        summary,
    )
    by_name = dict(summary)
    assert by_name["ssc twinning"] < by_name["exp_backoff"]
    assert by_name["ssc twinning"] < by_name["independence"]


def test_e05_report_virtual_columns(report, benchmark):
    """§5.1's *second* suggested mechanism: virtual columns.

    "The second is to combine multiple SSCs in virtual columns where the
    distribution statistics on the virtual column can be broken down into
    the individual SSCs."  A ``duration = end_date - start_date`` virtual
    column carries a full histogram, subsuming the whole SC family.
    """
    db = build_project_table(rows=20000, long_fraction=0.1, seed=84)
    db.runstats_virtual("project", "duration", "end_date - start_date")
    rows = []
    for days in (3, 5, 15, 45, 120):
        predicate = f"end_date - start_date <= {days}"
        actual = db.query(
            f"SELECT count(*) AS n FROM project WHERE {predicate}"
        )[0]["n"]
        estimate = db.plan(
            f"SELECT id FROM project WHERE {predicate}"
        ).estimated_rows
        rows.append(
            [days, actual, round(estimate), round(q_error(estimate, actual), 2)]
        )
    benchmark(
        lambda: db.plan(
            "SELECT id FROM project WHERE end_date - start_date <= 5"
        )
    )
    report(
        "E5 extension: virtual-column statistics "
        "(duration = end_date - start_date, 20-bucket histogram)",
        ["duration <= days", "actual", "estimate", "q-error"],
        rows,
    )
    import math

    gmean = math.exp(sum(math.log(row[3]) for row in rows) / len(rows))
    assert gmean < 1.1  # a real histogram beats the interpolated SC family
