"""E13 — Execution feedback closes the loop into plan caching.

The paper's machinery trusts whatever the statistics (and constraint-like
characterizations) say at plan time; Section 4.1's cached plans then
replay that belief forever.  E13 measures the cost of that trust when the
data drifts — and the payoff of the ``repro.feedback`` loop that revokes
it: actual per-node cardinalities are harvested into a
:class:`~repro.feedback.store.FeedbackStore`, a cached plan whose
execution misestimates past the q-error threshold is evicted, and the
reoptimization consults the observed cardinalities (including per-index
fetched-row counts, the lever that flips a wrong index choice).

Scenario: ``events`` carries indexes on ``a`` and ``b``.  RUNSTATS runs,
then a drift batch inserts rows whose ``a`` values occupy a range the
histogram believes is empty.  A query filtering on both columns makes the
stale histogram pick the ``a`` index ("nothing lives there"), which in
reality fetches *every* drifted row per execution; the ``b`` index would
fetch ~1% of that.  A static session (no feedback) pays the wrong index
on all N executions; the feedback session pays it once, evicts, replans
onto the ``b`` index, and runs fast thereafter.

Shape to reproduce: >=1.5x end-to-end speedup of the feedback session
over the static session across ``EXECUTIONS`` cached executions,
identical results, exactly one feedback invalidation.  Emits
``BENCH_e13.json`` for ``check_bench_regression.py``.

Set ``E13_FAST=1`` for a smoke-sized run (CI): smaller data, results
written to a temp directory (the committed BENCH_e13.json is never
clobbered), and a loosened 1.1x assertion.
"""

import json
import os
import tempfile
import time
from pathlib import Path

import pytest

from repro import SoftDB
from repro.optimizer.physical import IndexScan
from repro.optimizer.planner import OptimizerConfig, PlanCache

FAST = bool(os.environ.get("E13_FAST"))

#: Rows per phase (pre-drift and drift); the table ends with twice this.
ROWS = 6_000 if FAST else 60_000
#: Cached executions per session: the static session pays the wrong
#: index every time, the feedback session only on the first.
EXECUTIONS = 6
TARGET_SPEEDUP = 1.1 if FAST else 1.5
RESULTS_PATH = (
    Path(tempfile.mkdtemp(prefix="bench_e13_")) / "BENCH_e13.json"
    if FAST
    else Path(__file__).resolve().parent / "BENCH_e13.json"
)

#: ``a`` drifts into [900000, 1000000) after RUNSTATS; ``b`` keeps its
#: distribution, so its histogram stays honest: ~0.5% match b >= 995000.
A_CUTOFF = 900_000.0
DRIFT_SQL = (
    "SELECT e.grp, count(*) AS n, sum(e.a * d.factor) AS s "
    "FROM events e, dim d "
    "WHERE e.grp = d.grp AND e.a >= 900000.0 AND e.b >= 995000.0 "
    "GROUP BY e.grp"
)


def _build_db(collect_feedback: bool) -> SoftDB:
    db = SoftDB(OptimizerConfig(collect_feedback=collect_feedback))
    db.execute(
        "CREATE TABLE events (id INT, a DOUBLE, b DOUBLE, grp INT)"
    )
    db.execute("CREATE TABLE dim (grp INT, factor DOUBLE)")
    db.execute("CREATE INDEX idx_a ON events (a)")
    db.execute("CREATE INDEX idx_b ON events (b)")
    db.database.insert_many(
        "dim", [(g, 1.0 + g / 10.0) for g in range(16)]
    )
    # Value order is scrambled so neither index is clustered.
    db.database.insert_many(
        "events",
        [
            (
                i,
                float((i * 7919) % 900_000),
                float((i * 104729) % 1_000_000),
                i % 16,
            )
            for i in range(ROWS)
        ],
    )
    db.runstats_all()  # histograms frozen before the drift
    db.database.insert_many(
        "events",
        [
            (
                ROWS + i,
                A_CUTOFF + (i * 6007) % 100_000,
                float(((ROWS + i) * 104729) % 1_000_000),
                i % 16,
            )
            for i in range(ROWS)
        ],
    )
    return db


@pytest.fixture(scope="module")
def static_db() -> SoftDB:
    return _build_db(collect_feedback=False)


@pytest.fixture(scope="module")
def feedback_db() -> SoftDB:
    return _build_db(collect_feedback=True)


def _reset_session(db: SoftDB) -> None:
    """Fresh plan cache and feedback state over the same data."""
    db.plan_cache = PlanCache(
        db.optimizer,
        qerror_threshold=(
            db.config.feedback_qerror_threshold
            if db.feedback is not None
            else None
        ),
    )
    if db.feedback is not None:
        db.feedback.clear()


def _index_used(plan):
    stack = [plan.root]
    while stack:
        node = stack.pop()
        if isinstance(node, IndexScan):
            return node.index_name
        stack.extend(node.children())
    return None


def _run_workload(db: SoftDB):
    last = None
    for _ in range(EXECUTIONS):
        last = db.execute(DRIFT_SQL, use_cache=True)
    return last


def _timed_workload(db: SoftDB, repetitions: int = 3) -> float:
    times = []
    for _ in range(repetitions):
        _reset_session(db)
        start = time.perf_counter()
        _run_workload(db)
        times.append(time.perf_counter() - start)
    return min(times)


def _row_key(row):
    # SUM() order differs between the two plans' scan orders, so float
    # aggregates are compared at a fixed precision.
    return tuple(
        (
            value is None,
            round(value, 3) if isinstance(value, float) else (value or 0),
        )
        for value in row
    )


def test_e13_feedback_flips_the_index_choice(feedback_db, static_db):
    """Correctness of the loop itself, independent of wall time."""
    _reset_session(feedback_db)
    _reset_session(static_db)
    first = feedback_db.execute(DRIFT_SQL, use_cache=True)
    # The stale histogram picked the drifted-column index ...
    assert first.max_qerror >= feedback_db.config.feedback_qerror_threshold
    assert feedback_db.plan_cache.feedback_invalidations == 1
    # ... and the reoptimized plan abandons it for the honest index.
    replanned = feedback_db.plan_cache.get_plan(DRIFT_SQL)
    assert _index_used(replanned) == "idx_b"
    second = feedback_db.execute(DRIFT_SQL, use_cache=True)
    assert sorted(map(_row_key, second.tuples())) == sorted(
        map(_row_key, first.tuples())
    )
    # Steady state: the corrected plan estimates well, no further churn.
    assert second.max_qerror < feedback_db.config.feedback_qerror_threshold
    assert feedback_db.plan_cache.feedback_invalidations == 1
    # The static session keeps replaying the stale choice every time.
    static_db.execute(DRIFT_SQL, use_cache=True)
    assert _index_used(static_db.plan_cache.get_plan(DRIFT_SQL)) == "idx_a"
    assert static_db.plan_cache.invalidations == 0


def test_e13_report_speedup_and_emit_json(report, feedback_db, static_db):
    """The headline comparison: writes BENCH_e13.json and gates on it."""
    _reset_session(static_db)
    _reset_session(feedback_db)
    static_result = _run_workload(static_db)
    feedback_result = _run_workload(feedback_db)
    assert sorted(map(_row_key, feedback_result.tuples())) == sorted(
        map(_row_key, static_result.tuples())
    )
    static_pages = static_result.page_reads
    feedback_pages = feedback_result.page_reads

    static_s = _timed_workload(static_db)
    feedback_s = _timed_workload(feedback_db)
    speedup = static_s / feedback_s
    pipelines = [
        {
            "name": f"drifted-index-choice-{2 * ROWS}",
            "sql": DRIFT_SQL,
            "rows": 2 * ROWS,
            "executions": EXECUTIONS,
            "static_s": round(static_s, 4),
            "feedback_s": round(feedback_s, 4),
            "speedup": round(speedup, 2),
            "target_speedup": TARGET_SPEEDUP,
            "headline": True,
        }
    ]
    loop = {
        "feedback_invalidations": feedback_db.plan_cache.feedback_invalidations,
        "observations": feedback_db.feedback.observations,
        "harvests": feedback_db.feedback.harvests,
        "static_steady_state_pages": static_pages,
        "feedback_steady_state_pages": feedback_pages,
    }
    RESULTS_PATH.write_text(
        json.dumps(
            {"experiment": "E13", "pipelines": pipelines, "loop": loop},
            indent=2,
        )
        + "\n"
    )
    report(
        f"E13: static vs feedback-corrected cached plan "
        f"({2 * ROWS} rows, {EXECUTIONS} executions)",
        ["pipeline", "static s", "feedback s", "speedup x"],
        [
            [p["name"], p["static_s"], p["feedback_s"], p["speedup"]]
            for p in pipelines
        ],
    )
    report(
        "E13: loop shape (steady-state per-execution pages)",
        ["metric", "value"],
        [[key, value] for key, value in loop.items()],
    )
    assert loop["feedback_invalidations"] == 1
    assert feedback_pages < static_pages
    assert speedup >= TARGET_SPEEDUP
    # The gate must accept the file it will re-check at session end.
    from check_bench_regression import check_regressions

    assert check_regressions(RESULTS_PATH) == []
