"""E16 — Columnar numpy execution vs the list-based batched pipeline.

Methodology gate for the columnar rewrite: batched operators promote
scan columns to numpy vectors with explicit null masks, evaluate
predicates through the vector kernels (``repro.expr.vector``), and
materialize only surviving rows back to Python (late materialization).
Morsel-driven parallel scans ride on top (``workers>1``), with a
deterministic submission-order merge.

Like E11 (which isolated the batching axis by disabling expression
compilation), the headline here isolates the *vectorization* axis: both
sides run the batched pipeline, the baseline with the interpreted
list-batch evaluator, the candidate with the columnar kernels.  A
compiled-closure entry records the same comparison against the
list pipeline's strongest configuration (gated on the 1x hard floor
only — closures already remove most per-row interpreter overhead).

Shape to reproduce: >=5x wall-time on a predicate-rich 300k-row scan
with identical results and page accounting.  The morsel entry is
core-count aware: on >=4 CPUs it gates 1.8x scaling at ``workers=4``;
on smaller machines (where scaling is physically impossible) it gates
the worker pool's *overhead* instead.  Emits ``BENCH_e16.json`` for
``check_bench_regression.py``.

``E16_FAST=1`` shrinks the table for CI smoke runs; the recorded
repository copy of ``BENCH_e16.json`` comes from a full run.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro import SoftDB
from repro.executor.runtime import Executor
from repro.optimizer.planner import Optimizer, OptimizerConfig

FAST = bool(os.environ.get("E16_FAST"))
ROWS = 60_000 if FAST else 300_000
BATCH_SIZE = 4096
TARGET_SPEEDUP = 5.0
WORKERS_TARGET = 1.8
#: Allowed worker-pool overhead when the host lacks the cores to scale.
WORKERS_MAX_SLOWDOWN = 1.35
RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_e16.json"

HEADLINE_SQL = (
    "SELECT id, val FROM meas "
    "WHERE grp IN (3, 7, 11) AND val BETWEEN 100.0 AND 104.0"
)
AGGREGATE_SQL = (
    "SELECT grp, count(*) AS n, sum(id) AS s FROM meas "
    "WHERE val > 250.0 GROUP BY grp"
)


@pytest.fixture(scope="module")
def scenario() -> SoftDB:
    db = SoftDB()
    db.execute("CREATE TABLE meas (id INT, grp INT, val DOUBLE, flag INT)")
    db.database.insert_many(
        "meas",
        [(i, i % 16, float(i % 997) + 0.5, i % 2) for i in range(ROWS)],
    )
    db.runstats_all()
    return db


def _plan(db: SoftDB, sql: str, compile_expressions: bool):
    config = OptimizerConfig(compile_expressions=compile_expressions)
    return Optimizer(db.database, db.registry, config).optimize(sql)


def _best_of(fn, repetitions: int = 3) -> float:
    times = []
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _assert_identical(left, right):
    assert left.tuples() == right.tuples()
    assert left.page_reads == right.page_reads
    assert left.rows_read == right.rows_read


def test_e16_benchmark_columnar(benchmark, scenario):
    plan = _plan(scenario, HEADLINE_SQL, compile_expressions=False)
    executor = Executor(
        scenario.database, batch_size=BATCH_SIZE, columnar=True
    )
    result = benchmark(lambda: executor.execute(plan))
    assert result.row_count > 0


def test_e16_benchmark_list_batched(benchmark, scenario):
    plan = _plan(scenario, HEADLINE_SQL, compile_expressions=False)
    executor = Executor(
        scenario.database, batch_size=BATCH_SIZE, columnar=False
    )
    result = benchmark(lambda: executor.execute(plan))
    assert result.row_count > 0


def test_e16_report_speedup_and_emit_json(report, benchmark, scenario):
    """The headline comparison: writes BENCH_e16.json and gates on 5x."""
    pipelines = []
    for name, sql, compiled, target in (
        ("predicate-rich-scan", HEADLINE_SQL, False, TARGET_SPEEDUP),
        ("scan-filter-aggregate", AGGREGATE_SQL, False, None),
        ("compiled-closures-scan", HEADLINE_SQL, True, None),
    ):
        plan = _plan(scenario, sql, compile_expressions=compiled)
        list_exec = Executor(
            scenario.database, batch_size=BATCH_SIZE, columnar=False
        )
        col_exec = Executor(
            scenario.database, batch_size=BATCH_SIZE, columnar=True
        )
        _assert_identical(col_exec.execute(plan), list_exec.execute(plan))
        list_s = _best_of(lambda: list_exec.execute(plan))
        col_s = _best_of(lambda: col_exec.execute(plan))
        pipelines.append(
            {
                "name": f"{name}-{ROWS // 1000}k",
                "sql": sql,
                "rows": ROWS,
                "batch_size": BATCH_SIZE,
                "compiled_expressions": compiled,
                "list_batched_s": round(list_s, 4),
                "columnar_s": round(col_s, 4),
                "speedup": round(list_s / col_s, 2),
                "target_speedup": target,
            }
        )
    pipelines.append(_morsel_entry(scenario))
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "experiment": "E16",
                "cpu_count": os.cpu_count(),
                "fast_mode": FAST,
                "pipelines": pipelines,
            },
            indent=2,
        )
        + "\n"
    )
    benchmark(
        lambda: Executor(
            scenario.database, batch_size=BATCH_SIZE, columnar=True
        ).execute(_plan(scenario, HEADLINE_SQL, compile_expressions=False))
    )
    report(
        f"E16: columnar kernels vs list-based batches ({ROWS} rows, "
        f"batch_size={BATCH_SIZE})",
        ["pipeline", "list-batched s", "columnar s", "speedup x"],
        [
            [p["name"], p["list_batched_s"], p["columnar_s"], p["speedup"]]
            for p in pipelines
            if "list_batched_s" in p
        ],
    )
    report(
        f"E16: morsel-parallel scan, workers=4 on {os.cpu_count()} CPU(s)",
        ["entry", "workers=1 s", "workers=4 s", "gate"],
        [
            [
                p["name"],
                p["baseline_s"],
                p["candidate_s"],
                (
                    f">={p['target_speedup']}x speedup"
                    if p.get("target_speedup")
                    else f"<={p['max_slowdown']}x overhead"
                ),
            ]
            for p in pipelines
            if "baseline_s" in p
        ],
    )
    headline = pipelines[0]
    assert headline["speedup"] >= TARGET_SPEEDUP
    from check_bench_regression import check_regressions

    assert check_regressions(RESULTS_PATH) == []


def _morsel_entry(scenario):
    """Core-count-aware workers=4 entry.

    With >=4 CPUs the morsel pool must deliver 1.8x on the headline
    scan; with fewer cores that scaling is physically impossible, so the
    gate flips to an overhead bound — dispatching morsels to a pool the
    host cannot service may cost at most ``WORKERS_MAX_SLOWDOWN``x.
    """
    cpus = os.cpu_count() or 1
    plan = _plan(scenario, HEADLINE_SQL, compile_expressions=False)
    serial = Executor(
        scenario.database, batch_size=BATCH_SIZE, columnar=True, workers=1
    )
    parallel = Executor(
        scenario.database, batch_size=BATCH_SIZE, columnar=True, workers=4
    )
    _assert_identical(parallel.execute(plan), serial.execute(plan))
    serial_s = _best_of(lambda: serial.execute(plan), 5)
    parallel_s = _best_of(lambda: parallel.execute(plan), 5)
    entry = {
        "name": "morsel-scan-workers-4",
        "sql": HEADLINE_SQL,
        "rows": ROWS,
        "batch_size": BATCH_SIZE,
        "cpu_count": cpus,
        "baseline_s": round(serial_s, 4),
        "candidate_s": round(parallel_s, 4),
    }
    if cpus >= 4:
        entry["target_speedup"] = WORKERS_TARGET
    else:
        entry["max_slowdown"] = WORKERS_MAX_SLOWDOWN
    return entry


def test_e16_workers_bit_identical(scenario, benchmark):
    """workers=4 must match workers=1 bit for bit, counters included."""
    for sql in (HEADLINE_SQL, AGGREGATE_SQL):
        plan = _plan(scenario, sql, compile_expressions=True)
        serial = Executor(scenario.database, columnar=True, workers=1)
        parallel = Executor(scenario.database, columnar=True, workers=4)
        _assert_identical(parallel.execute(plan), serial.execute(plan))
    benchmark(
        lambda: Executor(
            scenario.database, columnar=True, workers=4
        ).execute(_plan(scenario, HEADLINE_SQL, compile_expressions=True))
    )
