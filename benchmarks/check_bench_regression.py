#!/usr/bin/env python
"""Fail when BENCH_e11.json shows the batched executor regressed.

Usable two ways:

* standalone — ``python benchmarks/check_bench_regression.py [path]``
  exits 1 (with a message per failure) if the recorded batched executor
  timing is slower than row-at-a-time, or slower than the experiment's
  speedup floor;
* from the benchmark conftest — ``pytest_sessionfinish`` calls
  :func:`check_regressions` after a benchmark run so a freshly written
  regressed BENCH_e11.json fails the run.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List

DEFAULT_RESULTS = Path(__file__).resolve().parent / "BENCH_e11.json"

#: The batched executor must never be slower than row-at-a-time.
HARD_FLOOR = 1.0


def check_regressions(path: Path = DEFAULT_RESULTS) -> List[str]:
    """Return a list of human-readable regression descriptions (empty = ok)."""
    payload = json.loads(Path(path).read_text())
    failures: List[str] = []
    for entry in payload.get("pipelines", []):
        name = entry.get("name", "?")
        row_s = entry.get("row_at_a_time_s")
        batched_s = entry.get("batched_s")
        if not row_s or not batched_s:
            failures.append(f"{name}: incomplete timings in {path}")
            continue
        speedup = row_s / batched_s
        if speedup < HARD_FLOOR:
            failures.append(
                f"{name}: batched executor is SLOWER than row-at-a-time "
                f"({batched_s:.4f}s vs {row_s:.4f}s, {speedup:.2f}x)"
            )
        floor = entry.get("target_speedup")
        if floor is not None and speedup < floor:
            failures.append(
                f"{name}: speedup {speedup:.2f}x below the experiment's "
                f"{floor}x target"
            )
    return failures


def main(argv: List[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_RESULTS
    if not path.exists():
        print(f"no benchmark results at {path}; run bench_e11 first")
        return 1
    failures = check_regressions(path)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}")
        return 1
    payload = json.loads(path.read_text())
    for entry in payload.get("pipelines", []):
        speedup = entry["row_at_a_time_s"] / entry["batched_s"]
        print(f"ok: {entry['name']} batched {speedup:.2f}x faster")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
