#!/usr/bin/env python
"""Fail when any recorded ``BENCH_*.json`` shows a perf regression.

Every benchmark module that emits a ``BENCH_<experiment>.json`` with a
``pipelines`` list is gated here.  Each pipeline entry records a baseline
and a candidate timing under schema-specific key names; the candidate
must never be slower than the baseline (the universal 1.0x hard floor),
and must meet the experiment's headline ``target_speedup`` when the
entry carries one.

Usable two ways:

* standalone — ``python benchmarks/check_bench_regression.py [paths...]``
  discovers every ``BENCH_*.json`` next to this script (or checks just
  the given paths) and exits 1 with a message per failure;
* from the benchmark conftest — ``pytest_sessionfinish`` calls
  :func:`check_all_regressions` after a benchmark run so freshly written
  regressed results fail the run.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

BENCH_DIR = Path(__file__).resolve().parent

# Kept for callers/tests that refer to the e11 results directly.
DEFAULT_RESULTS = BENCH_DIR / "BENCH_e11.json"

#: The candidate path must never be slower than its baseline.
HARD_FLOOR = 1.0

#: Per-file timing schema: (baseline key, candidate key, headline floor).
#: The headline floor applies to entries whose ``target_speedup`` is
#: null/absent only through each entry's own ``target_speedup`` — the
#: third element documents the experiment's expected headline target so
#: a results file that *lost* its target_speedup field still gets gated.
SCHEMAS: Dict[str, Tuple[str, str, float]] = {
    "BENCH_e11.json": ("row_at_a_time_s", "batched_s", 3.0),
    "BENCH_e12.json": ("interpreted_batched_s", "compiled_batched_s", 2.0),
    "BENCH_e13.json": ("static_s", "feedback_s", 1.5),
    "BENCH_e14.json": ("baseline_s", "candidate_s", 5.0),
    "BENCH_e16.json": ("list_batched_s", "columnar_s", 5.0),
    # BENCH_e17.json has no timing pipelines: its ``sessions`` section is
    # gated by :func:`_check_sessions` (flush amortization, abort rate).
    "BENCH_e18.json": ("primary_only_s", "fleet_s", 1.8),
    # BENCH_e19.json has no timing pipelines either: its top-level
    # ``failover`` section is gated by :func:`_check_failover` (recovery
    # p99 ceiling, zero lost updates / untyped errors / stale reads).
}

#: Fallback timing key pairs tried, in order, for BENCH files that are
#: not in SCHEMAS yet.
GENERIC_KEYS = [
    ("row_at_a_time_s", "batched_s"),
    ("interpreted_batched_s", "compiled_batched_s"),
    ("baseline_s", "candidate_s"),
]


def discover_results(directory: Path = BENCH_DIR) -> List[Path]:
    """Every recorded ``BENCH_*.json`` in ``directory``, sorted by name."""
    return sorted(directory.glob("BENCH_*.json"))


def _entry_keys(name: str, entry: dict) -> Tuple[str, str, float]:
    schema = SCHEMAS.get(name)
    if schema is not None and schema[0] in entry and schema[1] in entry:
        return schema
    for baseline_key, candidate_key in GENERIC_KEYS:
        if baseline_key in entry and candidate_key in entry:
            return baseline_key, candidate_key, HARD_FLOOR
    if schema is not None:
        return schema
    return "", "", HARD_FLOOR


def _check_corpus(corpus: dict) -> List[str]:
    """Gate a corpus-classification section (``BENCH_e15.json``).

    The corpus contract is absolute: zero REGRESSION statuses, zero
    ERROR/FAIL statuses, zero validation mismatches against the oracle,
    and the win rate / query count floors the file records for itself.
    A PR that turns any NEUTRAL into a REGRESSION therefore fails here.
    """
    failures: List[str] = []
    if corpus.get("regressions", 0):
        failures.append(
            f"corpus: {corpus['regressions']} REGRESSION statuses "
            f"(the corpus contract allows none)"
        )
    if corpus.get("errors", 0):
        failures.append(f"corpus: {corpus['errors']} ERROR/FAIL statuses")
    if corpus.get("validation_mismatches", 0):
        failures.append(
            f"corpus: {corpus['validation_mismatches']} validation "
            f"mismatches vs the oracle executor"
        )
    min_queries = corpus.get("min_queries")
    if min_queries is not None and corpus.get("queries", 0) < min_queries:
        failures.append(
            f"corpus: only {corpus.get('queries', 0)} queries classified "
            f"(floor {min_queries})"
        )
    floor = corpus.get("min_win_rate")
    if floor is not None and corpus.get("win_rate", 0.0) < floor:
        failures.append(
            f"corpus: win rate {corpus.get('win_rate', 0.0)} below the "
            f"recorded {floor} floor"
        )
    return failures


def _check_sessions(sessions: dict) -> List[str]:
    """Gate a multi-session section (``BENCH_e17.json``).

    Group commit must amortize WAL flushes by the recorded factor at the
    recorded writer count, and the traffic simulation's abort rate
    (deadlock victims + first-updater losers over transactions started)
    must stay under its recorded ceiling — aborts are snapshot isolation
    working, but a runaway rate means the lock manager is thrashing.
    """
    failures: List[str] = []
    floor = sessions.get("min_flush_amortization")
    amortization = sessions.get("flush_amortization")
    if floor is not None:
        if amortization is None:
            failures.append(
                "sessions: flush_amortization missing despite a recorded "
                "min_flush_amortization floor"
            )
        elif amortization < floor:
            failures.append(
                f"sessions: group commit amortizes flushes only "
                f"{amortization}x (floor {floor}x at "
                f"{sessions.get('writers', '?')} writers)"
            )
    ceiling = sessions.get("max_abort_rate")
    if ceiling is not None and sessions.get("abort_rate", 0.0) > ceiling:
        failures.append(
            f"sessions: abort rate {sessions.get('abort_rate')} over the "
            f"recorded {ceiling} ceiling"
        )
    if not sessions.get("statements", 0):
        failures.append("sessions: traffic simulation served no statements")
    return failures


def _check_replication(replication: dict) -> List[str]:
    """Gate a replication section (``BENCH_e18.json``).

    The correctness counters are absolute: replicas may never serve rows
    that diverge from the primary's ground truth (mismatches), a routed
    read under ``max_staleness=0`` may never be stale (stale-read
    violations), and converged replicas may never miss a committed write
    (lost updates).  The failover phase must have actually failed over
    at least once, raised nothing outside the typed taxonomy, and kept
    the per-statement p99 — kill included — under the recorded ceiling.
    """
    failures: List[str] = []
    mismatches = replication.get("replica_read_mismatches", 0)
    if mismatches:
        failures.append(
            f"replication: {mismatches} replica reads diverged from the "
            f"primary's ground truth"
        )
    failover = replication.get("failover") or {}
    if not failover.get("statements", 0):
        failures.append("replication: failover phase served no statements")
    elif failover.get("failovers", 0) < 1:
        failures.append(
            "replication: the server kill never forced a client failover"
        )
    if failover.get("untyped_errors", 0):
        failures.append(
            f"replication: {failover['untyped_errors']} errors escaped "
            f"the typed taxonomy during failover"
        )
    ceiling = failover.get("max_p99_ms")
    if ceiling is not None and failover.get("p99_ms", 0.0) > ceiling:
        failures.append(
            f"replication: failover p99 {failover.get('p99_ms')}ms over "
            f"the recorded {ceiling}ms ceiling"
        )
    routed = replication.get("routed") or {}
    if not routed.get("steps", 0):
        failures.append("replication: routed loop ran no steps")
    if routed.get("stale_read_violations", 0):
        failures.append(
            f"replication: {routed['stale_read_violations']} stale reads "
            f"served under max_staleness=0"
        )
    if routed.get("lost_updates", 0):
        failures.append(
            f"replication: {routed['lost_updates']} converged replicas "
            f"missing committed writes (lost updates)"
        )
    if not (
        routed.get("reads_on_replica", 0) + routed.get("reads_on_primary", 0)
    ):
        failures.append("replication: the router placed no reads at all")
    return failures


def _check_failover(failover: dict) -> List[str]:
    """Gate an automatic-failover section (``BENCH_e19.json``).

    The correctness counters are absolute: a promotion may never lose a
    cluster-acked commit, a deposed primary may only fail with the typed
    :class:`FencedError` (anything else is an untyped error), and a
    rebound ``max_staleness=0`` routed read may never be stale.  The run
    must have exercised the fence at least once (a partition trial), and
    the detection-to-first-successful-write p99 must stay under the
    recorded ceiling.
    """
    failures: List[str] = []
    if not failover.get("trials", 0):
        failures.append("failover: no failover trials ran")
    if not failover.get("cluster_acked", 0):
        failures.append("failover: no commit ever reached cluster-ack")
    if failover.get("lost_updates", 0):
        failures.append(
            f"failover: {failover['lost_updates']} cluster-acked commits "
            f"lost across a promotion"
        )
    if failover.get("untyped_errors", 0):
        failures.append(
            f"failover: {failover['untyped_errors']} deposed-primary "
            f"writes failed outside the typed FencedError path"
        )
    if failover.get("stale_read_violations", 0):
        failures.append(
            f"failover: {failover['stale_read_violations']} stale reads "
            f"served after rebind under max_staleness=0"
        )
    if not failover.get("fenced_rejections", 0):
        failures.append(
            "failover: no partition trial ever exercised the fence"
        )
    ceiling = failover.get("max_recovery_p99_ms")
    if ceiling is not None and failover.get("recovery_p99_ms", 0.0) > ceiling:
        failures.append(
            f"failover: recovery p99 {failover.get('recovery_p99_ms')}ms "
            f"over the recorded {ceiling}ms ceiling"
        )
    return failures


def check_regressions(path: Path = DEFAULT_RESULTS) -> List[str]:
    """Return a list of human-readable regression descriptions (empty = ok)."""
    path = Path(path)
    payload = json.loads(path.read_text())
    failures: List[str] = []
    if isinstance(payload.get("corpus"), dict):
        failures.extend(_check_corpus(payload["corpus"]))
    if isinstance(payload.get("sessions"), dict):
        failures.extend(_check_sessions(payload["sessions"]))
    if isinstance(payload.get("replication"), dict):
        failures.extend(_check_replication(payload["replication"]))
    if isinstance(payload.get("failover"), dict):
        failures.extend(_check_failover(payload["failover"]))
    for entry in payload.get("pipelines", []):
        name = entry.get("name", "?")
        baseline_key, candidate_key, headline_floor = _entry_keys(
            path.name, entry
        )
        baseline_s = entry.get(baseline_key)
        candidate_s = entry.get(candidate_key)
        if not baseline_s or not candidate_s:
            failures.append(f"{name}: incomplete timings in {path}")
            continue
        # Overhead entries: the candidate adds a feature that must cost
        # (nearly) nothing, so it is allowed up to ``max_slowdown`` x the
        # baseline instead of the speedup floors below.
        max_slowdown = entry.get("max_slowdown")
        if max_slowdown is not None:
            if candidate_s > baseline_s * max_slowdown:
                failures.append(
                    f"{name}: {candidate_key} overhead too high "
                    f"({candidate_s:.4f}s vs {baseline_s:.4f}s baseline, "
                    f"{candidate_s / baseline_s:.3f}x > allowed "
                    f"{max_slowdown}x)"
                )
            continue
        speedup = baseline_s / candidate_s
        if speedup < HARD_FLOOR:
            failures.append(
                f"{name}: {candidate_key} is SLOWER than {baseline_key} "
                f"({candidate_s:.4f}s vs {baseline_s:.4f}s, {speedup:.2f}x)"
            )
        floor = entry.get("target_speedup")
        if floor is None and entry.get("headline"):
            floor = headline_floor
        if floor is not None and speedup < floor:
            failures.append(
                f"{name}: speedup {speedup:.2f}x below the experiment's "
                f"{floor}x target"
            )
    return failures


def check_all_regressions(directory: Path = BENCH_DIR) -> List[str]:
    """Gate every discovered BENCH_*.json; failures are path-prefixed."""
    failures: List[str] = []
    for path in discover_results(directory):
        failures.extend(
            f"{path.name}: {failure}" for failure in check_regressions(path)
        )
    return failures


def _speedups(path: Path) -> List[str]:
    payload = json.loads(path.read_text())
    lines = []
    corpus = payload.get("corpus")
    if isinstance(corpus, dict):
        lines.append(
            f"ok: {path.name} corpus {corpus.get('queries', 0)} queries, "
            f"win rate {corpus.get('win_rate', 0.0)}, "
            f"{corpus.get('regressions', 0)} regressions, "
            f"{corpus.get('validation_mismatches', 0)} mismatches"
        )
    sessions = payload.get("sessions")
    if isinstance(sessions, dict):
        lines.append(
            f"ok: {path.name} sessions "
            f"{sessions.get('sessions', 0)} simulated, flush amortization "
            f"{sessions.get('flush_amortization', '?')}x, abort rate "
            f"{sessions.get('abort_rate', 0.0)}, p99 "
            f"{sessions.get('p99_ms', '?')}ms"
        )
    replication = payload.get("replication")
    if isinstance(replication, dict):
        failover = replication.get("failover") or {}
        routed = replication.get("routed") or {}
        lines.append(
            f"ok: {path.name} replication failovers "
            f"{failover.get('failovers', 0)}, failover p99 "
            f"{failover.get('p99_ms', '?')}ms, "
            f"{routed.get('stale_read_violations', 0)} stale reads, "
            f"{routed.get('lost_updates', 0)} lost updates"
        )
    failover = payload.get("failover")
    if isinstance(failover, dict):
        lines.append(
            f"ok: {path.name} failover {failover.get('trials', 0)} trials, "
            f"recovery p99 {failover.get('recovery_p99_ms', '?')}ms, "
            f"{failover.get('lost_updates', 0)} lost updates, "
            f"{failover.get('fenced_rejections', 0)} fenced rejections, "
            f"{failover.get('stale_read_violations', 0)} stale reads"
        )
    for entry in payload.get("pipelines", []):
        baseline_key, candidate_key, _ = _entry_keys(path.name, entry)
        baseline_s = entry.get(baseline_key)
        candidate_s = entry.get(candidate_key)
        if baseline_s and candidate_s:
            if entry.get("max_slowdown") is not None:
                lines.append(
                    f"ok: {path.name} {entry.get('name', '?')} overhead "
                    f"{candidate_s / baseline_s:.3f}x "
                    f"(allowed {entry['max_slowdown']}x)"
                )
            else:
                lines.append(
                    f"ok: {path.name} {entry.get('name', '?')} "
                    f"{baseline_s / candidate_s:.2f}x"
                )
    return lines


def main(argv: List[str]) -> int:
    paths = [Path(arg) for arg in argv[1:]] or discover_results()
    if not paths:
        print(f"no BENCH_*.json results in {BENCH_DIR}; run the benchmarks")
        return 1
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"no benchmark results at {path}")
        return 1
    failures: List[str] = []
    for path in paths:
        failures.extend(
            f"{path.name}: {failure}" for failure in check_regressions(path)
        )
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}")
        return 1
    for path in paths:
        for line in _speedups(path):
            print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
