"""E19 — Automatic failover: recovery time, zero lost commits, fencing.

Three measurements, mirroring ISSUE 10's acceptance bar:

**Recovery time.**  A fleet (durable primary + two WAL-shipped
replicas) runs a tagged commit storm; the primary is then killed (even
trials) or asymmetrically partitioned away from the failure detector
(odd trials — the split-brain inducer).  The moment the lease-based
detector suspects the primary, a wall-clock timer starts; it stops at
the first *successful* write on the promoted replica.  That
detection→first-successful-write span — election, drain through
recovery replay, epoch bump, fence attach, shipper rebuild — is the
recovery time; its p99 across trials must stay under the recorded
(generous) ceiling.

**Zero lost updates.**  Every storm write is tagged, and the cluster
ledgers which tags reached cluster-ack (durable on the primary and
mirrored by >= 1 replica).  After every promotion each cluster-acked
tag must exist on the new primary — the count of missing tags is
recorded and gated at zero.

**Fencing + currency bound.**  On partition trials the deposed primary
is still alive: every write it attempts must raise a typed
:class:`~repro.errors.FencedError` (anything else counts as untyped,
gated at zero).  After each promotion a :class:`RoutedSession` is
rebound to the new primary and a ``max_staleness=0`` read must match
the new primary's answer exactly — stale-read violations are gated at
zero.

Set ``E19_FAST=1`` for a smoke run: fewer trials, shorter storms,
results to a temp directory so the committed BENCH_e19.json is never
clobbered.
"""

import json
import os
import random
import tempfile
import time
from pathlib import Path
from statistics import quantiles

from repro import SoftDB
from repro.concurrency.routing import RoutedSession
from repro.errors import FencedError, ReproError
from repro.replication import FailoverCluster, Replica

FAST = bool(os.environ.get("E19_FAST"))

TRIALS = 4 if FAST else 12
STORM_WRITES = 12 if FAST else 40
#: Generous ceiling: a promotion closes and crash-recovers the winner's
#: database, stamps the epoch, and full-resyncs every survivor.
MAX_RECOVERY_P99_MS = 1500.0

SEEDS = (7, 23, 1009)

RESULTS_PATH = (
    Path(tempfile.mkdtemp(prefix="bench_e19_")) / "BENCH_e19.json"
    if FAST
    else Path(__file__).resolve().parent / "BENCH_e19.json"
)

_SECTIONS = {}


def _build_cluster(base_dir, seed, replicas=2):
    primary = SoftDB.open(base_dir / "primary")
    primary.execute("CREATE TABLE ledger (id INT PRIMARY KEY, v INT)")
    fleet = FailoverCluster(primary, lease_timeout=1.0)
    twins = [
        Replica(base_dir / f"replica{n}", name=f"replica{n}")
        for n in range(replicas)
    ]
    for twin in twins:
        fleet.attach(twin)
    return fleet, twins


def _storm(fleet, rng, start, count):
    for n in range(start, start + count):
        fleet.execute(
            f"INSERT INTO ledger VALUES ({n}, {rng.randrange(10_000)})",
            tag=n,
        )
        fleet.tick(advance=0.1)
    return start + count


def _one_trial(base_dir, seed, partition):
    """One failover trial; returns its measurement record."""
    rng = random.Random(seed)
    fleet, twins = _build_cluster(base_dir, seed)
    next_id = _storm(fleet, rng, 0, STORM_WRITES)
    deposed_db = fleet.primary_db if partition else None
    if partition:
        fleet.channel.partition()
    else:
        fleet.kill_primary()
    while not fleet.primary_suspected():
        fleet.tick(advance=0.3)
    # Detection has fired: recovery is everything from here to the
    # first successful write on the new primary.
    started = time.perf_counter()
    fleet.promote()
    fleet.execute(
        f"INSERT INTO ledger VALUES ({next_id}, 0)", tag=next_id
    )
    recovery_ms = (time.perf_counter() - started) * 1000
    next_id += 1
    # Invariant: every cluster-acked tag survived the promotion.
    present = {
        row["id"]
        for row in fleet.primary_db.query("SELECT id FROM ledger")
    }
    lost = sum(1 for tag in fleet.cluster_acked if tag not in present)
    # Fencing: the deposed-but-alive primary may only fail typed.
    fenced = untyped = 0
    if deposed_db is not None:
        for n in range(next_id, next_id + 3):
            try:
                deposed_db.execute(f"INSERT INTO ledger VALUES ({n}, 0)")
                untyped += 1  # a deposed primary accepted a write
            except FencedError:
                fenced += 1
            except ReproError:
                untyped += 1
            except Exception:  # noqa: BLE001 - the thing being gated
                untyped += 1
    # Currency bound after rebind: a max_staleness=0 routed read must
    # match the new primary exactly.
    routed = RoutedSession(
        fleet.primary_db, fleet.shipper, max_staleness=0.0
    )
    probe = "SELECT id, v FROM ledger ORDER BY id"
    stale = int(routed.query(probe) != fleet.primary_db.query(probe))
    acked = len(fleet.cluster_acked)
    for twin in twins:
        twin.close()
    for _name, old_db in fleet.deposed:
        old_db.durability.close()
    fleet.primary_db.durability.close()
    return {
        "seed": seed,
        "mode": "partition" if partition else "kill",
        "recovery_ms": round(recovery_ms, 3),
        "cluster_acked": acked,
        "lost_updates": lost,
        "fenced_rejections": fenced,
        "untyped_errors": untyped,
        "stale_read_violations": stale,
    }


def test_e19_failover_recovery_time(report, tmp_path):
    trials = []
    for n in range(TRIALS):
        seed = SEEDS[n % len(SEEDS)] + n
        trials.append(
            _one_trial(tmp_path / f"trial{n}", seed, partition=n % 2 == 1)
        )
    recoveries = sorted(t["recovery_ms"] for t in trials)
    grid = quantiles(recoveries, n=100)
    failover = {
        "trials": len(trials),
        "storm_writes": STORM_WRITES,
        "recovery_p50_ms": round(grid[49], 3),
        "recovery_p99_ms": round(grid[98], 3),
        "max_recovery_p99_ms": MAX_RECOVERY_P99_MS,
        "cluster_acked": sum(t["cluster_acked"] for t in trials),
        "lost_updates": sum(t["lost_updates"] for t in trials),
        "fenced_rejections": sum(t["fenced_rejections"] for t in trials),
        "untyped_errors": sum(t["untyped_errors"] for t in trials),
        "stale_read_violations": sum(
            t["stale_read_violations"] for t in trials
        ),
    }
    _SECTIONS["failover"] = failover
    _SECTIONS["trials"] = trials
    report(
        "E19: detection -> first-successful-write recovery across "
        f"{len(trials)} failovers",
        ["mode", "seed", "recovery ms", "acked", "lost", "fenced",
         "stale"],
        [
            [t["mode"], t["seed"], t["recovery_ms"], t["cluster_acked"],
             t["lost_updates"], t["fenced_rejections"],
             t["stale_read_violations"]]
            for t in trials
        ],
    )
    assert failover["lost_updates"] == 0, (
        "cluster-acked commits were lost across a promotion"
    )
    assert failover["untyped_errors"] == 0
    assert failover["stale_read_violations"] == 0
    assert failover["fenced_rejections"] > 0, (
        "no partition trial exercised the fence"
    )
    assert failover["recovery_p99_ms"] <= MAX_RECOVERY_P99_MS

    # Last test: assemble and gate the results file.
    payload = {
        "experiment": "E19",
        "cpu_count": os.cpu_count(),
        "fast_mode": FAST,
        "failover": _SECTIONS["failover"],
        "trials": _SECTIONS["trials"],
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    from check_bench_regression import check_regressions

    assert check_regressions(RESULTS_PATH) == []
