"""Shared helpers for the experiment benchmarks.

Every ``bench_eXX`` module reproduces one experiment from DESIGN.md's
index.  Wall-clock timings come from pytest-benchmark; the *shape* results
(pages read, q-errors, candidate counts) are printed as tables — run with
``pytest benchmarks/ --benchmark-only`` and the tables appear between the
benchmark summaries.
"""

from __future__ import annotations

from typing import Any, List, Sequence

import pytest


@pytest.fixture
def report(capsys):
    """Print an experiment table so it survives pytest's capture."""

    def emit(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]):
        from repro.harness.reporting import format_table

        with capsys.disabled():
            print()
            print(format_table(headers, rows, title=title))
            print()

    return emit
