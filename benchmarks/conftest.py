"""Shared helpers for the experiment benchmarks.

Every ``bench_eXX`` module reproduces one experiment from DESIGN.md's
index.  Wall-clock timings come from pytest-benchmark; the *shape* results
(pages read, q-errors, candidate counts) are printed as tables — run with
``pytest benchmarks/ --benchmark-only`` and the tables appear between the
benchmark summaries.

The session also ends with the executor regression gate: if
``BENCH_e11.json`` (written by ``bench_e11_batched_executor.py``) records
the batched executor as slower than row-at-a-time, the whole benchmark
run fails even when every individual test passed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, List, Sequence

import pytest

from check_bench_regression import DEFAULT_RESULTS, check_regressions


def pytest_sessionfinish(session, exitstatus):
    if exitstatus != 0 or not DEFAULT_RESULTS.exists():
        return
    failures = check_regressions(DEFAULT_RESULTS)
    if failures:
        reporter = session.config.pluginmanager.get_plugin("terminalreporter")
        for failure in failures:
            message = f"BENCH_e11 regression: {failure}"
            if reporter is not None:
                reporter.write_line(message, red=True)
            else:
                print(message)
        session.exitstatus = 1


@pytest.fixture
def report(capsys):
    """Print an experiment table so it survives pytest's capture."""

    def emit(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]):
        from repro.harness.reporting import format_table

        with capsys.disabled():
            print()
            print(format_table(headers, rows, title=title))
            print()

    return emit
