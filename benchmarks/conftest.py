"""Shared helpers for the experiment benchmarks.

Every ``bench_eXX`` module reproduces one experiment from DESIGN.md's
index.  Wall-clock timings come from pytest-benchmark; the *shape* results
(pages read, q-errors, candidate counts) are printed as tables — run with
``pytest benchmarks/ --benchmark-only`` and the tables appear between the
benchmark summaries.

The session also ends with the perf regression gate: every recorded
``BENCH_*.json`` (e.g. the batched-executor results from
``bench_e11_batched_executor.py`` and the compiled-expression results
from ``bench_e12_compiled_expressions.py``) is checked; if any records
its candidate path as slower than its baseline — or below the
experiment's recorded speedup target — the whole benchmark run fails
even when every individual test passed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, List, Sequence

import pytest

from check_bench_regression import check_all_regressions, discover_results


def pytest_sessionfinish(session, exitstatus):
    if exitstatus != 0 or not discover_results():
        return
    failures = check_all_regressions()
    if failures:
        reporter = session.config.pluginmanager.get_plugin("terminalreporter")
        for failure in failures:
            message = f"benchmark regression: {failure}"
            if reporter is not None:
                reporter.write_line(message, red=True)
            else:
                print(message)
        session.exitstatus = 1


@pytest.fixture
def report(capsys):
    """Print an experiment table so it survives pytest's capture."""

    def emit(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]):
        from repro.harness.reporting import format_table

        with capsys.disabled():
            print()
            print(format_table(headers, rows, title=title))
            print()

    return emit
