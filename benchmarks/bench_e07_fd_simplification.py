"""E7 — FD-based GROUP BY / ORDER BY simplification.

Paper source: Section 2 ([29]): explicitly-represented functional
dependencies let the optimizer infer that some GROUP BY / ORDER BY
attributes are superfluous, saving sort cost — and denormalized tables
(where such FDs abound, undeclared) are exactly where discovery shines.

Shape to reproduce: the simplified plan hashes/sorts on fewer keys (lower
estimated and wall-clock cost) and produces identical groups/order.
"""

import pytest

from repro.discovery.fd_miner import mine_functional_dependencies
from repro.harness.runner import _all_off, compare_optimizers
from repro.optimizer.planner import Optimizer, OptimizerConfig
from repro.workload.schemas import build_denormalized_orders

ROWS = 20000

GROUP_SQL = (
    "SELECT city_id, state_id, sum(amount) AS total, count(*) AS n "
    "FROM orders GROUP BY city_id, state_id"
)
ORDER_SQL = (
    "SELECT id, city_id, state_id FROM orders "
    "ORDER BY city_id, state_id, id"
)


@pytest.fixture(scope="module")
def scenario():
    db = build_denormalized_orders(rows=ROWS, cities=200, states=10, seed=101)
    for constraint in mine_functional_dependencies(
        db.database, "orders", columns=["city_id", "state_id"],
        max_g3_error=0.0,
    ):
        db.add_soft_constraint(constraint, verify_first=True)
    return db


def test_e07_benchmark_simplified_group(benchmark, scenario):
    plan = scenario.plan(GROUP_SQL)
    benchmark(lambda: scenario.executor.execute(plan))


def test_e07_benchmark_baseline_group(benchmark, scenario):
    plan = Optimizer(scenario.database, None, _all_off()).optimize(GROUP_SQL)
    benchmark(lambda: scenario.executor.execute(plan))


def test_e07_report(report, scenario, benchmark):
    rows = []
    for label, sql in (("GROUP BY", GROUP_SQL), ("ORDER BY", ORDER_SQL)):
        enabled, disabled = compare_optimizers(
            scenario, sql, check_same_answers=(label == "GROUP BY")
        )
        fired = sum(
            1
            for r in enabled.plan.rewrites_applied
            if "groupby_simplification" in r
        )
        rows.append(
            [
                label,
                fired,
                round(enabled.plan.estimated_cost, 1),
                round(disabled.plan.estimated_cost, 1),
                enabled.row_count,
                disabled.row_count,
            ]
        )
    benchmark(lambda: scenario.plan(GROUP_SQL))
    report(
        f"E7: FD simplification on a denormalized {ROWS}-row order table "
        "(mined FD: city_id -> state_id)",
        ["clause", "keys dropped", "est cost w/", "est cost w/o",
         "rows w/", "rows w/o"],
        rows,
    )
    # Shape: the rewrite fires, answers agree, cost never increases.
    for row in rows:
        assert row[1] >= 1
        assert row[2] <= row[3]
        assert row[4] == row[5]


def test_e07_report_sorted_order_identical(report, scenario, benchmark):
    enabled, disabled = compare_optimizers(
        scenario, ORDER_SQL, check_same_answers=False
    )
    identical = enabled.result.tuples() == disabled.result.tuples()
    sort_keys_with = _sort_key_count(enabled.plan.root)
    sort_keys_without = _sort_key_count(disabled.plan.root)
    benchmark(lambda: scenario.executor.execute(scenario.plan(ORDER_SQL)))
    report(
        "E7 detail: ORDER BY key narrowing",
        ["metric", "with FD", "without"],
        [
            ["sort keys", sort_keys_with, sort_keys_without],
            ["output order identical", identical, True],
        ],
    )
    assert identical
    assert sort_keys_with < sort_keys_without


def _sort_key_count(root):
    from repro.optimizer.physical import Sort

    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, Sort):
            return len(node.order)
        stack.extend(node.children())
    return 0
