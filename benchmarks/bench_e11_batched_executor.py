"""E11 — Batched (vectorized) executor vs the row-at-a-time interpreter.

Not a paper experiment but a methodology gate: E1–E10 report page-I/O and
latency, so the runtime must realize plan-quality wins rather than drown
them in per-row interpreter overhead.  The batched pipeline exchanges
column-major RowBatch objects (default 1024 rows) and evaluates
predicates, projections and join keys once per batch.

Shape to reproduce: >=3x wall-time speedup on a 100k-row
scan-filter-aggregate pipeline with identical results; the speedup grows
with batch size until it saturates around a few hundred rows per batch.
Emits ``BENCH_e11.json`` which ``check_bench_regression.py`` (wired into
the benchmark conftest) uses to fail any run where the batched executor
regressed below row-at-a-time.

Expression compilation (the E12 axis) is disabled for both executors
here: it removes most of the per-row interpreter overhead that batching
also attacks, so leaving it on would understate the batching effect this
experiment isolates.  E12 measures the compilation axis on the batched
pipeline.
"""

import json
import time
from pathlib import Path

import pytest

from repro import SoftDB
from repro.executor.runtime import Executor
from repro.optimizer.planner import Optimizer, OptimizerConfig

ROWS = 100_000
BATCH_SIZE = 1024
TARGET_SPEEDUP = 3.0
RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_e11.json"

PIPELINE_SQL = (
    "SELECT grp, count(*) AS n, sum(val) AS s FROM meas "
    "WHERE val > 250.0 GROUP BY grp"
)
JOIN_SQL = (
    "SELECT m.grp, d.factor FROM meas m, dim d "
    "WHERE m.grp = d.grp AND m.val > 900.0"
)


@pytest.fixture(scope="module")
def scenario() -> SoftDB:
    db = SoftDB()
    db.execute("CREATE TABLE meas (id INT, grp INT, val DOUBLE)")
    db.execute("CREATE TABLE dim (grp INT, factor DOUBLE)")
    db.database.insert_many(
        "meas",
        [(i, i % 16, float(i % 997) + 0.5) for i in range(ROWS)],
    )
    db.database.insert_many(
        "dim", [(g, 1.0 + g / 10.0) for g in range(16)]
    )
    db.runstats_all()
    return db


def _plan(db: SoftDB, sql: str):
    """Plan with expression compilation off to isolate the batching axis."""
    config = OptimizerConfig(compile_expressions=False)
    return Optimizer(db.database, db.registry, config).optimize(sql)


def _best_of(fn, repetitions: int = 3) -> float:
    times = []
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_e11_benchmark_batched(benchmark, scenario):
    plan = _plan(scenario, PIPELINE_SQL)
    executor = Executor(scenario.database, batch_size=BATCH_SIZE)
    result = benchmark(lambda: executor.execute(plan))
    assert result.row_count == 16


def test_e11_benchmark_row_at_a_time(benchmark, scenario):
    plan = _plan(scenario, PIPELINE_SQL)
    executor = Executor(scenario.database, batch_size=0)
    result = benchmark(lambda: executor.execute(plan))
    assert result.row_count == 16


def test_e11_report_speedup_and_emit_json(report, benchmark, scenario):
    """The headline comparison: writes BENCH_e11.json and gates on 3x."""
    pipelines = []
    for name, sql, target in (
        ("scan-filter-aggregate-100k", PIPELINE_SQL, TARGET_SPEEDUP),
        ("hash-join-probe-100k", JOIN_SQL, None),
    ):
        plan = _plan(scenario, sql)
        row_exec = Executor(scenario.database, batch_size=0)
        batched_exec = Executor(scenario.database, batch_size=BATCH_SIZE)
        row_result = row_exec.execute(plan)
        batched_result = batched_exec.execute(plan)
        assert sorted(map(_row_key, batched_result.tuples())) == sorted(
            map(_row_key, row_result.tuples())
        )
        assert batched_result.page_reads == row_result.page_reads
        row_s = _best_of(lambda: row_exec.execute(plan))
        batched_s = _best_of(lambda: batched_exec.execute(plan))
        pipelines.append(
            {
                "name": name,
                "sql": sql,
                "rows": ROWS,
                "batch_size": BATCH_SIZE,
                "row_at_a_time_s": round(row_s, 4),
                "batched_s": round(batched_s, 4),
                "speedup": round(row_s / batched_s, 2),
                "target_speedup": target,
            }
        )
    pipelines.extend(_guard_overhead_entries(scenario))
    RESULTS_PATH.write_text(
        json.dumps({"experiment": "E11", "pipelines": pipelines}, indent=2)
        + "\n"
    )
    benchmark(
        lambda: Executor(scenario.database, batch_size=BATCH_SIZE).execute(
            _plan(scenario, PIPELINE_SQL)
        )
    )
    report(
        f"E11: batched executor vs row-at-a-time ({ROWS} rows, "
        f"batch_size={BATCH_SIZE})",
        ["pipeline", "row-at-a-time s", "batched s", "speedup x"],
        [
            [p["name"], p["row_at_a_time_s"], p["batched_s"], p["speedup"]]
            for p in pipelines
            if "row_at_a_time_s" in p
        ],
    )
    report(
        "E11: query-guard overhead on the headline pipeline",
        ["entry", "baseline s", "with guards s", "ratio", "allowed"],
        [
            [
                p["name"],
                p["baseline_s"],
                p["candidate_s"],
                round(p["candidate_s"] / p["baseline_s"], 3),
                f"{p['max_slowdown']}x",
            ]
            for p in pipelines
            if "max_slowdown" in p
        ],
    )
    headline = pipelines[0]
    assert headline["speedup"] >= TARGET_SPEEDUP
    # Every pipeline must at least not regress.
    from check_bench_regression import check_regressions

    assert check_regressions(RESULTS_PATH) == []


def test_e11_report_batch_size_sweep(report, benchmark, scenario):
    """Speedup vs batch size: grows, then saturates (per-batch overhead
    amortized); batch_size=1 pays the batching machinery with none of the
    amortization and should sit near (below) 1x."""
    plan = _plan(scenario, PIPELINE_SQL)
    row_s = _best_of(
        lambda: Executor(scenario.database, batch_size=0).execute(plan), 2
    )
    rows = []
    speedups = []
    for size in (1, 16, 128, 1024, 8192):
        batched_s = _best_of(
            lambda: Executor(scenario.database, batch_size=size).execute(plan),
            2,
        )
        speedup = round(row_s / batched_s, 2)
        rows.append([size, round(batched_s, 4), speedup])
        speedups.append(speedup)
    benchmark(
        lambda: Executor(scenario.database, batch_size=BATCH_SIZE).execute(plan)
    )
    report(
        f"E11: speedup vs batch size ({ROWS}-row scan-filter-aggregate; "
        f"row-at-a-time = {row_s:.4f}s)",
        ["batch size", "batched s", "speedup x"],
        rows,
    )
    assert speedups[-2] > speedups[0]  # 1024 beats 1
    assert max(speedups) >= TARGET_SPEEDUP


def _guard_overhead_entries(scenario):
    """Resource-governance overhead on the headline pipeline.

    Two gated claims: executing with no guard costs the same as before
    guards existed (``guard=None`` is a handful of ``is None`` branches,
    allowed 5% noise), and an armed-but-untripped guard stays within 10%
    (its budget checks are integer compares at batch boundaries).
    """
    from repro.resilience.guards import QueryGuard

    plan = _plan(scenario, PIPELINE_SQL)
    executor = Executor(scenario.database, batch_size=BATCH_SIZE)
    generous = QueryGuard(
        max_rows=10**9, max_page_reads=10**9, max_join_pairs=10**9
    )
    baseline_s = _best_of(lambda: executor.execute(plan), 5)
    none_s = _best_of(lambda: executor.execute(plan, guard=None), 5)
    armed_s = _best_of(lambda: executor.execute(plan, guard=generous), 5)
    return [
        {
            "name": "guard-disabled-overhead",
            "sql": PIPELINE_SQL,
            "rows": ROWS,
            "batch_size": BATCH_SIZE,
            "baseline_s": round(baseline_s, 4),
            "candidate_s": round(none_s, 4),
            "max_slowdown": 1.05,
        },
        {
            "name": "guard-armed-untripped-overhead",
            "sql": PIPELINE_SQL,
            "rows": ROWS,
            "batch_size": BATCH_SIZE,
            "baseline_s": round(baseline_s, 4),
            "candidate_s": round(armed_s, 4),
            "max_slowdown": 1.10,
        },
    ]


def _row_key(row):
    return tuple(
        (value is None, value if value is not None else 0) for value in row
    )
