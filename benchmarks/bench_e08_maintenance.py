"""E8 — Maintenance cost and violation handling.

Paper sources: Section 1 (informational constraints avoid checking),
Section 3.3 ("SSCs do not have to be checked at update"; "ASCs are as
expensive to maintain as ICs"), Section 4.1 (an overturned ASC drops every
dependent pre-compiled plan), Section 4.3 (drop vs synchronous repair vs
asynchronous repair).

Shape to reproduce: per-update overhead ordering

    hard IC  ~  active ASC   >>   informational  ~  SSC  ~  none

and, on violation, the configured policy's behaviour: drop overturns +
invalidates cached plans; repair absorbs; async queues.
"""

import pytest

from repro import SoftDB
from repro.optimizer.planner import PlanCache
from repro.softcon.base import SCState
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.linear import LinearCorrelationSC
from repro.softcon.maintenance import AsyncRepairPolicy, DropPolicy, RepairPolicy
from repro.softcon.minmax import MinMaxSC
from repro.workload.datagen import DataGenerator

UPDATES = 2000


def make_db(constraint_flavor: str) -> SoftDB:
    db = SoftDB()
    check = {
        "none": "",
        "hard_ic": ", CHECK (v BETWEEN 0.0 AND 1000000.0)",
        "informational": ", CHECK (v BETWEEN 0.0 AND 1000000.0) NOT ENFORCED",
    }.get(constraint_flavor, "")
    db.execute(f"CREATE TABLE stream (id INT, v DOUBLE{check})")
    if constraint_flavor == "asc":
        db.database.insert_many("stream", [(-1, 500.0)])
        sc = CheckSoftConstraint("band", "stream", "v BETWEEN 0.0 AND 1000000.0")
        db.add_soft_constraint(sc, policy=DropPolicy(), verify_first=True)
    elif constraint_flavor == "ssc":
        db.database.insert_many("stream", [(-1, 500.0)])
        sc = CheckSoftConstraint(
            "band", "stream", "v BETWEEN 0.0 AND 1000000.0", confidence=0.95
        )
        db.add_soft_constraint(sc)
    return db


def run_updates(db: SoftDB, updates: int = UPDATES) -> None:
    generator = DataGenerator(111)
    for n in range(updates):
        db.database.insert("stream", [n, generator.uniform(0.0, 1000.0)])


@pytest.mark.parametrize(
    "flavor", ["none", "hard_ic", "informational", "asc", "ssc"]
)
def test_e08_benchmark_update_stream(benchmark, flavor):
    def workload():
        db = make_db(flavor)
        run_updates(db)
        return db

    db = benchmark(workload)
    if flavor == "asc":
        assert db.registry.checks_performed == UPDATES
    if flavor in ("ssc", "none", "informational"):
        if flavor == "ssc":
            assert db.registry.checks_performed == 0


def test_e08_report_check_counts(report, benchmark):
    rows = []
    for flavor in ("none", "hard_ic", "informational", "asc", "ssc"):
        db = make_db(flavor)
        run_updates(db, 500)
        sc_checks = db.registry.checks_performed
        rows.append([flavor, sc_checks])
    benchmark(lambda: run_updates(make_db("asc"), 100))
    report(
        "E8a: synchronous checks per 500 updates by constraint flavour "
        "(hard ICs are checked inside the engine; SC checks counted here)",
        ["flavour", "SC checks performed"],
        rows,
    )
    by_flavor = dict(rows)
    assert by_flavor["asc"] == 500
    assert by_flavor["ssc"] == 0
    assert by_flavor["informational"] == 0


def test_e08_report_violation_policies(report, benchmark):
    """One violating insert under each policy."""
    rows = []
    for policy_name, policy in (
        ("drop", DropPolicy()),
        ("sync repair", RepairPolicy()),
        ("async repair", AsyncRepairPolicy()),
    ):
        db = SoftDB()
        db.execute("CREATE TABLE t (a DOUBLE, b DOUBLE)")
        generator = DataGenerator(7)
        db.database.insert_many(
            "t", [(x, 2.0 * x) for x in (generator.uniform(0, 100) for _ in range(500))]
        )
        db.execute("CREATE INDEX ix_b ON t (b)")
        db.runstats_all()
        sc = LinearCorrelationSC("lin", "t", "b", "a", 2.0, 0.0, 0.001)
        db.add_soft_constraint(sc, policy=policy, verify_first=True)
        cache = PlanCache(db.optimizer)
        plan = cache.get_plan("SELECT b FROM t WHERE a = 50.0")
        used = "lin" in plan.sc_dependencies
        db.execute("INSERT INTO t VALUES (50.0, 9999.0)")  # violation
        rows.append(
            [
                policy_name,
                "yes" if used else "no",
                sc.state.value,
                round(sc.confidence, 4),
                cache.invalidations,
            ]
        )
        if policy_name == "async repair":
            outcomes = policy.run_pending(db.registry, db.database)
            rows.append(
                [
                    "  + async pass",
                    "",
                    sc.state.value,
                    round(sc.confidence, 4),
                    cache.invalidations,
                ]
            )
    benchmark(lambda: None)
    report(
        "E8b: one ASC violation under each maintenance policy "
        "(plan cache held a dependent plan)",
        ["policy", "plan used ASC", "state after", "confidence",
         "plans invalidated"],
        rows,
    )
    by_policy = {row[0]: row for row in rows}
    assert by_policy["drop"][2] == "violated"
    assert by_policy["drop"][4] == 1  # Section 4.1: dependent plan dropped
    assert by_policy["sync repair"][2] == "active"
    assert by_policy["  + async pass"][2] == "active"


def test_e08_report_backup_plans(report, benchmark):
    """Section 4.1's backup-plan tactic vs plain eviction.

    "One possible tactic is for a package to incorporate a 'backup' plan
    which is ASC-free.  If an ASC is overturned, a flag is raised and
    packages revert to the alternative plans."
    """
    from repro.discovery.linear_miner import mine_linear_correlations
    from repro.workload.schemas import build_correlated_table

    rows = []
    for label, with_backup in (("evict + recompile", False),
                               ("backup fallback", True)):
        db = build_correlated_table(rows=4000, noise=4.0, seed=118)
        (asc,) = mine_linear_correlations(
            db.database, "meas", [("a", "b")], confidence_levels=(1.0,)
        )
        db.add_soft_constraint(asc, policy=DropPolicy(), verify_first=True)
        cache = PlanCache(db.optimizer, backup_plans=with_backup)
        sql = "SELECT id, a FROM meas WHERE b = 500.0"
        cache.get_plan(sql)
        db.execute("INSERT INTO meas VALUES (99999, 0.0, 500.0)")  # overturn
        plan = cache.get_plan(sql)  # post-violation plan
        result = db.executor.execute(plan)
        rows.append(
            [
                label,
                cache.invalidations,
                cache.fallbacks,
                cache.misses,
                result.row_count,
            ]
        )
    benchmark(lambda: None)
    report(
        "E8c: ASC overturn with vs without backup plans (one cached query)",
        ["strategy", "invalidations", "fallbacks", "compiles", "rows"],
        rows,
    )
    evict, backup = rows
    assert evict[3] == 2  # eviction forces a recompile
    assert backup[3] == 1 and backup[2] == 1  # fallback avoids it
    assert evict[4] == backup[4]  # identical answers either way
