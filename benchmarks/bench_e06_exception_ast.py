"""E6 — ASCs as ASTs: the late_shipments exception-table plan.

Paper source: Section 4.4's worked example: the business rule "products
ship within three weeks" held as an SC with its violations materialized in
the ``late_shipments`` AST; queries on ``ship_date`` run as

    (purchase WHERE pred AND introduced-order_date-range)
    UNION ALL (late_shipments WHERE pred)

"In cases that the ASC's AST is empty, the exception addendum to the
query plan should be of trivial cost."

Shape to reproduce: while exceptions are rare the union plan costs about
as much as the pure index plan; as the exception rate grows the addendum
grows and the advantage over a full scan erodes (crossover); answers are
always exact.
"""

import pytest

from repro.harness.runner import compare_optimizers
from repro.workload.schemas import YEAR_START, build_purchase_scenario

ROWS = 20000
RULE_SQL = (
    "CREATE SUMMARY TABLE late_shipments AS (SELECT * FROM purchase "
    "WHERE ship_date > order_date + 21 OR ship_date < order_date)"
)
QUERY = f"SELECT id, amount FROM purchase WHERE ship_date = {YEAR_START + 400}"


def build(exception_rate, seed=91):
    db = build_purchase_scenario(
        rows=ROWS, exception_rate=exception_rate, seed=seed
    )
    db.execute(RULE_SQL)
    return db


@pytest.fixture(scope="module")
def scenario():
    return build(0.01)


def test_e06_benchmark_routed_plan(benchmark, scenario):
    plan = scenario.plan(QUERY)
    benchmark(lambda: scenario.executor.execute(plan))


def test_e06_benchmark_full_scan_baseline(benchmark, scenario):
    from repro.harness.runner import _all_off
    from repro.optimizer.planner import Optimizer

    plan = Optimizer(scenario.database, None, _all_off()).optimize(QUERY)
    benchmark(lambda: scenario.executor.execute(plan))


def test_e06_report_exception_rate_sweep(report, benchmark):
    rows = []
    ratios = []
    for rate in (0.0, 0.01, 0.05, 0.1, 0.2):
        db = build(rate)
        exceptions = db.database.table("late_shipments").row_count
        enabled, disabled = compare_optimizers(db, QUERY)
        routed = any("ast_routing" in r for r in enabled.plan.rewrites_applied)
        ratio = enabled.page_reads / disabled.page_reads
        ratios.append(ratio)
        rows.append(
            [
                f"{rate * 100:.0f}%",
                exceptions,
                "yes" if routed else "no",
                enabled.page_reads,
                disabled.page_reads,
                round(ratio, 3),
            ]
        )
    benchmark(lambda: db.plan(QUERY))
    report(
        f"E6: exception-AST union plan vs full scan ({ROWS}-row purchase "
        "table; probe on unindexed ship_date)",
        ["exception rate", "AST rows", "routed", "pages routed",
         "pages scan", "ratio"],
        rows,
    )
    # Shape: near-empty AST => the routed plan is far cheaper than the
    # scan; the advantage decays monotonically-ish as exceptions grow.
    assert ratios[0] < 0.35
    assert ratios[0] < ratios[-1]


def test_e06_report_information_ast_ablation(report, benchmark):
    """Ablation: routing off — the AST still helps *estimation* only.

    This is the paper's "information AST": not routable, but its existence
    (via the SSC's confidence) still feeds filter-factor estimation
    through twinning.
    """
    from repro.optimizer.planner import Optimizer, OptimizerConfig
    from repro.stats.errors import q_error

    db = build(0.05, seed=92)
    day = YEAR_START + 400
    # ship_date tightly windowed; order_date loosely bounded by the query.
    # The SC's difference bound tightens the order_date range for
    # estimation (the loose [day-60, ...] becomes [day-21, day+10]).
    predicate = (
        f"ship_date BETWEEN {day} AND {day + 10} "
        f"AND order_date >= {day - 60}"
    )
    sql = f"SELECT id FROM purchase WHERE {predicate}"
    actual = db.query(
        f"SELECT count(*) AS n FROM purchase WHERE {predicate}"
    )[0]["n"]
    routable = db.plan(sql)
    info_only = Optimizer(
        db.database, db.registry, OptimizerConfig(enable_ast_routing=False)
    ).optimize(sql)
    neither = Optimizer(
        db.database,
        db.registry,
        OptimizerConfig(enable_ast_routing=False, enable_twinning=False),
    ).optimize(sql)
    benchmark(lambda: db.plan(sql))
    report(
        "E6 ablation: routable AST vs information-only AST vs none "
        "(cardinality of a correlated two-column range)",
        ["configuration", "estimated rows", "q-error"],
        [
            ["routable AST (full)", round(routable.estimated_rows),
             round(q_error(routable.estimated_rows, actual), 2)],
            ["information AST (twinning only)", round(info_only.estimated_rows),
             round(q_error(info_only.estimated_rows, actual), 2)],
            ["no AST information", round(neither.estimated_rows),
             round(q_error(neither.estimated_rows, actual), 2)],
        ],
    )
    assert q_error(info_only.estimated_rows, actual) <= q_error(
        neither.estimated_rows, actual
    )
