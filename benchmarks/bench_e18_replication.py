"""E18 — Replication: read-throughput scaling, failover p99, zero
silent violations.

Three measurements, mirroring ISSUE 9's acceptance bar:

**Read scaling.**  A fixed budget of point reads runs (a) against the
primary alone in one process and (b) split across a fleet of WAL-shipped
replicas, one OS process per replica opening its own checkpointed
directory — process-level parallelism, since replica scale-out exists
precisely to escape a single node.  With >=4 CPUs the 4-replica fleet
must deliver >=1.8x aggregate throughput; on fewer cores that scaling is
physically impossible, so the gate flips to a bounded-overhead check
(the fleet may cost at most ``SCALING_MAX_SLOWDOWN``x the primary-only
time while the cores timeshare).  Every read is verified against the
seeded ground truth — a replica serving wrong rows fails the run, not
just the gate.

**Failover p99.**  A :class:`FailoverClient` streams statements at two
servers over one database; the preferred server is stopped mid-run.  The
per-statement p99 (failover included) must stay under the recorded
ceiling, at least one failover must actually happen, and nothing may
escape the typed taxonomy.

**Zero violations.**  A routed write/read loop under ``max_staleness=0``
compares every routed read against the primary's answer (stale-read
violations) and the converged replicas against the primary's final table
state (lost updates).  Both counters must be zero — recorded in
``BENCH_e18.json`` and gated by ``check_bench_regression.py``'s
``_check_replication``.

Set ``E18_FAST=1`` for a smoke run: smaller table, fewer reads, results
to a temp directory so the committed BENCH_e18.json is never clobbered.
"""

import asyncio
import json
import multiprocessing
import os
import random
import tempfile
import time
from pathlib import Path
from statistics import quantiles

from repro import SoftDB
from repro.concurrency.client import BackoffPolicy, FailoverClient
from repro.concurrency.routing import RoutedSession
from repro.concurrency.server import SessionServer
from repro.errors import ReproError
from repro.replication import Replica, WalShipper

FAST = bool(os.environ.get("E18_FAST"))

ROWS = 400 if FAST else 2000
TOTAL_READS = 240 if FAST else 2400
FLEETS = (1, 2, 4)
#: >=4 CPUs: the 4-replica fleet must scale aggregate reads by this.
SCALING_TARGET = 1.8
#: <4 CPUs: fleet processes merely timeshare; bound the overhead.
SCALING_MAX_SLOWDOWN = 3.0

FAILOVER_STATEMENTS = 60 if FAST else 200
FAILOVER_KILL_AT = 20 if FAST else 60
MAX_FAILOVER_P99_MS = 750.0

ROUTED_STEPS = 40 if FAST else 150

RESULTS_PATH = (
    Path(tempfile.mkdtemp(prefix="bench_e18_")) / "BENCH_e18.json"
    if FAST
    else Path(__file__).resolve().parent / "BENCH_e18.json"
)

_SECTIONS = {}


def _expected(key: int) -> int:
    return key * 3 + 1


def _build_fleet(base_dir: Path, replicas: int):
    """A durable primary seeded with ground truth, plus ``replicas``
    synced, checkpointed, closed replica directories ready for
    independent reader processes."""
    primary = SoftDB.open(base_dir / "primary")
    primary.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    chunk = 200
    for start in range(0, ROWS, chunk):
        primary.execute(
            "INSERT INTO t VALUES "
            + ", ".join(
                f"({k}, {_expected(k)})"
                for k in range(start, min(start + chunk, ROWS))
            )
        )
    shipper = WalShipper(primary)
    paths = []
    for n in range(replicas):
        replica = Replica(base_dir / f"replica{n}")
        shipper.attach(replica)
        paths.append(replica.path)
    assert shipper.pump_until_synced()
    for link in shipper.links.values():
        link.replica.checkpoint()
        link.replica.close()
    primary.close()
    return base_dir / "primary", paths


def _reader_process(path, n_reads, seed, out_queue):
    """One fleet member: open the directory, run the read budget,
    report (reads, loop seconds, ground-truth mismatches)."""
    db = SoftDB.open(path)
    rng = random.Random(seed)
    mismatches = 0
    start = time.perf_counter()
    for _ in range(n_reads):
        key = rng.randrange(ROWS)
        rows = db.query(f"SELECT v FROM t WHERE id = {key}")
        if rows != [{"v": _expected(key)}]:
            mismatches += 1
    elapsed = time.perf_counter() - start
    out_queue.put((n_reads, elapsed, mismatches))


def _run_fleet(paths, total_reads):
    """Split ``total_reads`` across one process per path; the config's
    time is the slowest member's read loop (setup/recovery excluded)."""
    ctx = multiprocessing.get_context("fork")
    out_queue = ctx.Queue()
    share = total_reads // len(paths)
    procs = [
        ctx.Process(
            target=_reader_process,
            args=(str(path), share, 7919 * (n + 1), out_queue),
        )
        for n, path in enumerate(paths)
    ]
    for proc in procs:
        proc.start()
    results = [out_queue.get(timeout=600) for _ in procs]
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0, "fleet reader process failed"
    reads = sum(r[0] for r in results)
    elapsed = max(r[1] for r in results)
    mismatches = sum(r[2] for r in results)
    return reads, elapsed, mismatches


def test_e18_read_scaling(report, tmp_path):
    primary_path, replica_paths = _build_fleet(tmp_path, max(FLEETS))
    scaling = []
    mismatches_total = 0
    for fleet in FLEETS:
        paths = (
            [primary_path] if fleet == 1 else replica_paths[:fleet]
        )
        reads, elapsed, mismatches = _run_fleet(paths, TOTAL_READS)
        mismatches_total += mismatches
        scaling.append(
            {
                "fleet": fleet,
                "source": "primary" if fleet == 1 else "replicas",
                "reads": reads,
                "elapsed_s": round(elapsed, 4),
                "reads_per_s": round(reads / elapsed, 1),
            }
        )
    baseline = scaling[0]
    at4 = scaling[-1]
    cpus = os.cpu_count() or 1
    entry = {
        "name": "read-scaling-4-replicas",
        "rows": ROWS,
        "total_reads": TOTAL_READS,
        "cpu_count": cpus,
        "primary_only_s": baseline["elapsed_s"],
        "fleet_s": at4["elapsed_s"],
        "speedup": round(baseline["elapsed_s"] / at4["elapsed_s"], 2),
    }
    if cpus >= 4:
        entry["target_speedup"] = SCALING_TARGET
    else:
        entry["max_slowdown"] = SCALING_MAX_SLOWDOWN
    _SECTIONS["pipelines"] = [entry]
    _SECTIONS["read_scaling"] = scaling
    _SECTIONS["replica_read_mismatches"] = mismatches_total
    report(
        f"E18: aggregate point-read throughput on {cpus} CPU(s), "
        f"{TOTAL_READS} reads",
        ["fleet", "source", "reads", "loop s", "reads/s"],
        [
            [s["fleet"], s["source"], s["reads"], s["elapsed_s"],
             s["reads_per_s"]]
            for s in scaling
        ],
    )
    assert mismatches_total == 0, (
        f"{mismatches_total} replica reads diverged from ground truth"
    )


async def _failover_run(db):
    first = SessionServer(db)
    second = SessionServer(db)
    await first.start()
    await second.start()
    client = FailoverClient(
        [(first.host, first.port), (second.host, second.port)],
        connect_timeout=2.0,
        statement_timeout=10.0,
        backoff=BackoffPolicy(base_delay=0.002, cap=0.02, seed=18),
    )
    latencies = []
    untyped = 0
    try:
        for n in range(FAILOVER_STATEMENTS):
            if n == FAILOVER_KILL_AT:
                await first.stop(drain_timeout=1.0)
            key = (n % ROWS) or 1
            start = time.perf_counter()
            try:
                got = await client.execute(
                    f"SELECT v FROM t WHERE id = {key}"
                )
                assert got["rows"] == [{"v": _expected(key)}]
            except ReproError:
                pass  # typed degradation is within contract
            except Exception:  # noqa: BLE001 - the thing being gated
                untyped += 1
            latencies.append(time.perf_counter() - start)
    finally:
        await client.close()
        await second.stop()
    return latencies, client.failovers, untyped


def test_e18_failover_p99(report, tmp_path):
    db = SoftDB.open(tmp_path / "failover")
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    db.execute(
        "INSERT INTO t VALUES "
        + ", ".join(f"({k}, {_expected(k)})" for k in range(1, 200))
    )
    latencies, failovers, untyped = asyncio.run(_failover_run(db))
    db.close()
    latencies.sort()
    grid = quantiles(latencies, n=100)
    failover = {
        "statements": len(latencies),
        "killed_after": FAILOVER_KILL_AT,
        "failovers": failovers,
        "p50_ms": round(grid[49] * 1000, 3),
        "p99_ms": round(grid[98] * 1000, 3),
        "max_p99_ms": MAX_FAILOVER_P99_MS,
        "untyped_errors": untyped,
    }
    _SECTIONS["failover"] = failover
    report(
        "E18: failover under fire (preferred server stopped mid-run)",
        ["stmts", "failovers", "p50 ms", "p99 ms", "untyped errors"],
        [[failover["statements"], failovers, failover["p50_ms"],
          failover["p99_ms"], untyped]],
    )
    assert failovers >= 1, "the kill never forced a failover"
    assert untyped == 0
    assert failover["p99_ms"] <= MAX_FAILOVER_P99_MS


def test_e18_routed_zero_violations(report, tmp_path):
    primary = SoftDB.open(tmp_path / "routed")
    primary.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    primary.execute(
        "INSERT INTO t VALUES "
        + ", ".join(f"({k}, {_expected(k)})" for k in range(64))
    )
    shipper = WalShipper(primary)
    replicas = [Replica(tmp_path / f"routed-r{n}") for n in range(2)]
    for replica in replicas:
        shipper.attach(replica)
    routed = RoutedSession(primary, shipper, max_staleness=0.0)
    rng = random.Random(1009)
    probe = "SELECT id, v FROM t ORDER BY id"
    stale_violations = 0
    for step in range(ROUTED_STEPS):
        key = rng.randrange(64)
        routed.execute(f"UPDATE t SET v = {step} WHERE id = {key}")
        if rng.random() < 0.7:  # sometimes read while replicas lag
            shipper.pump()
        if routed.query(probe) != primary.query(probe):
            stale_violations += 1
    assert shipper.pump_until_synced()
    lost_updates = sum(
        1
        for replica in replicas
        if replica.query(probe) != primary.query(probe)
    )
    routing = routed.snapshot()
    _SECTIONS["routed"] = {
        "steps": ROUTED_STEPS,
        "stale_read_violations": stale_violations,
        "lost_updates": lost_updates,
        **routing,
    }
    report(
        "E18: routed read/write loop, max_staleness=0",
        ["steps", "replica reads", "primary reads", "degraded",
         "stale violations", "lost updates"],
        [[ROUTED_STEPS, routing["reads_on_replica"],
          routing["reads_on_primary"], routing["degraded"],
          stale_violations, lost_updates]],
    )
    for replica in replicas:
        replica.close()
    primary.close(checkpoint=False)
    assert stale_violations == 0
    assert lost_updates == 0

    # Last test: assemble and gate the results file.
    payload = {
        "experiment": "E18",
        "cpu_count": os.cpu_count(),
        "fast_mode": FAST,
        "pipelines": _SECTIONS.get("pipelines", []),
        "replication": {
            "read_scaling": _SECTIONS.get("read_scaling", []),
            "replica_read_mismatches": _SECTIONS.get(
                "replica_read_mismatches", 0
            ),
            "failover": _SECTIONS.get("failover", {}),
            "routed": _SECTIONS.get("routed", {}),
        },
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    from check_bench_regression import check_regressions

    assert check_regressions(RESULTS_PATH) == []
