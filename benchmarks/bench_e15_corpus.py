"""E15 — The TPC-style corpus under WIN/REGRESSION classification.

ROADMAP item 5's scale-out instrument: ~106 generated queries over the
TPC-flavored warehouse (:mod:`repro.workload.tpc`) run under SC-on vs
SC-off (and cached vs uncached), each validated against the row-at-a-time
interpreted oracle and classified per the querytorque-style contract
(WIN >= 1.10x / IMPROVED >= 1.05x / NEUTRAL >= 0.95x / REGRESSION below;
``high`` / ``row_count_only`` / ``zero_row_unverified`` validation
confidence; ceiling-bounded runs segregated from measured aggregates).

Shape to reproduce: the soft-constraint machinery wins broadly (ship-lag
and charge-band predicate introduction, min/max abbreviation, habit-join
elimination) and *never* regresses — the status ratio is the
deterministic logical page-read count, so zero REGRESSION and zero
validation mismatches are hard assertions, not statistical ones.  Emits
``BENCH_e15.json``; ``check_bench_regression.py`` gates its corpus
section so any future PR that turns a NEUTRAL into a REGRESSION (or
breaks validation) fails CI.  A strided sample additionally records the
columnar-kernels-on vs -off wall-clock axis (advisory, not gated).

Set ``E15_FAST=1`` for the CI smoke run: reduced scale factor, a strided
query sample, results written to a temp directory (the committed
BENCH_e15.json is never clobbered).
"""

import json
import os
import tempfile
from pathlib import Path

import pytest

from repro.corpus import CorpusRunner, generate_corpus
from repro.harness.classify import summarize
from repro.workload.tpc import build_tpc_db

FAST = bool(os.environ.get("E15_FAST"))

SCALE_FACTOR = 0.25 if FAST else 1.0
#: The smoke run strides the corpus; family order interleaves, so every
#: family stays represented.
QUERY_STRIDE = 3 if FAST else 1
DATA_SEED = 7
CORPUS_SEED = 11
#: Floors recorded into the JSON and enforced by the gate; the measured
#: win rate is ~0.61 at both scales, so 0.45 tolerates corpus drift
#: without letting the mechanism quietly stop firing.
MIN_WIN_RATE = 0.45
MIN_QUERIES = 30 if FAST else 100
RESULTS_PATH = (
    Path(tempfile.mkdtemp(prefix="bench_e15_")) / "BENCH_e15.json"
    if FAST
    else Path(__file__).resolve().parent / "BENCH_e15.json"
)


#: The columnar wall-clock axis times a strided sample of the corpus
#: (execution-only, columnar on vs off).  Advisory — reported in the
#: JSON but not gated, since wall-clock on shared CI runners is noisy.
COLUMNAR_AXIS_STRIDE = 9 if FAST else 5


@pytest.fixture(scope="module")
def corpus_run():
    db = build_tpc_db(SCALE_FACTOR, seed=DATA_SEED)
    queries = generate_corpus(seed=CORPUS_SEED)[::QUERY_STRIDE]
    runner = CorpusRunner(db, metric="pages")
    outcomes = runner.run(queries)
    columnar_axis = runner.columnar_axis(queries[::COLUMNAR_AXIS_STRIDE])
    return queries, outcomes, summarize(outcomes), columnar_axis


def test_e15_corpus_classification_shape(corpus_run):
    """The acceptance shape: enough queries, zero regressions, zero
    validation mismatches, and every planted mechanism actually firing."""
    queries, outcomes, summary, _ = corpus_run
    assert summary["queries"] >= MIN_QUERIES
    assert summary["regressions"] == 0
    assert summary["errors"] == 0
    assert summary["validation_mismatches"] == 0
    assert summary["ceiling_bounded"] == 0
    assert summary["win_rate"] >= MIN_WIN_RATE
    wins_by_family = {}
    for outcome in outcomes:
        if outcome.status == "WIN":
            wins_by_family.setdefault(outcome.family, 0)
            wins_by_family[outcome.family] += 1
    # Each characterization-backed family must produce wins: ship-lag
    # introduction, charge-band introduction, min/max abbreviation, and
    # habit-join elimination.
    for family in ("sel_shipdate", "sel_charge", "sel_bounds", "join_habit"):
        assert wins_by_family.get(family, 0) > 0, f"no WINs in {family}"
    # The zero-row confidence path is exercised by the out-of-bounds
    # family (min/max abbreviation empties those scans).
    confidences = summary["validation_confidence_counts"]
    assert confidences.get("zero_row_unverified", 0) > 0
    assert confidences.get("high", 0) > 0


def test_e15_report_and_emit_json(report, corpus_run):
    """Writes BENCH_e15.json and requires the gate to accept it."""
    queries, outcomes, summary, columnar_axis = corpus_run
    measured = [o for o in outcomes if not o.ceiling_bounded]
    wall = {
        "sc_on_s": round(sum(o.candidate_s or 0.0 for o in measured), 4),
        "sc_off_s": round(sum(o.baseline_s or 0.0 for o in measured), 4),
    }
    payload = {
        "experiment": "E15",
        "scale_factor": SCALE_FACTOR,
        "data_seed": DATA_SEED,
        "corpus_seed": CORPUS_SEED,
        "metric": "pages",
        "corpus": {
            "min_win_rate": MIN_WIN_RATE,
            "min_queries": MIN_QUERIES,
            "measured_wall": wall,
            **summary,
        },
        # Advisory wall-clock axis (not gated): columnar kernels on vs
        # off over a strided sample, SC-on plans, execution-only.
        "columnar_axis": columnar_axis,
        "queries": [o.as_dict() for o in outcomes],
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    report(
        f"E15: corpus classification (scale={SCALE_FACTOR}, "
        f"{len(queries)} queries, status from page-read ratio)",
        ["metric", "value"],
        [
            ["queries", summary["queries"]],
            ["WIN / IMPROVED / NEUTRAL", " / ".join(
                str(summary["status_counts"][s])
                for s in ("WIN", "IMPROVED", "NEUTRAL")
            )],
            ["REGRESSION / ERROR / FAIL", " / ".join(
                str(summary["status_counts"][s])
                for s in ("REGRESSION", "ERROR", "FAIL")
            )],
            ["win rate", summary["win_rate"]],
            ["mean measured speedup x", summary["mean_measured_speedup"]],
            ["validation mismatches", summary["validation_mismatches"]],
            ["confidence counts", str(summary["validation_confidence_counts"])],
            ["worst q-error by status", str(summary["worst_qerror_by_status"])],
            ["SC-on / SC-off wall s", f"{wall['sc_on_s']} / {wall['sc_off_s']}"],
            ["columnar axis (exec-only) x", (
                f"{columnar_axis['speedup']} "
                f"({columnar_axis['list_batched_s']}s list -> "
                f"{columnar_axis['columnar_s']}s columnar)"
            )],
        ],
    )
    from check_bench_regression import check_regressions

    assert check_regressions(RESULTS_PATH) == []
