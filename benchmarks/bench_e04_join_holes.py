"""E4 — Join holes: range trimming and discovery-cost linearity.

Paper source: Section 2 ([8]): discover all maximal empty 2-D ranges
("holes") over a join path; trim query ranges against them to reduce the
pages scanned.  "The discovery algorithm is quite efficient and is linear
in the size of the resulting join table."

Shape to reproduce: (a) trimmed queries scan fewer pages with identical
answers; (b) discovery runtime grows ~linearly with the join-result size.
"""

import time

import pytest

from repro.discovery.hole_miner import HoleMiner, mine_join_holes
from repro.harness.runner import compare_optimizers
from repro.workload.schemas import build_join_hole_scenario

# A query box that *partially* overlaps the planted hole: the lead_time
# range [10, 45] is trimmed down to [10, ~25) because the hole covers the
# query's full distance range.  (The query's high edge, 45, sits inside
# the mined hole; the data's own extremes do not, since grid mining
# shrinks hole edges by a sliver.)
QUERY = (
    "SELECT o.id FROM orders o, deliveries d "
    "WHERE o.region_id = d.region_id "
    "AND o.lead_time BETWEEN 10.0 AND 45.0 "
    "AND d.distance BETWEEN 28.0 AND 48.0"
)
# A query box entirely inside the hole: provably empty, no I/O at all.
EMPTY_QUERY = (
    "SELECT o.id FROM orders o, deliveries d "
    "WHERE o.region_id = d.region_id "
    "AND o.lead_time >= 28.0 AND d.distance BETWEEN 28.0 AND 48.0"
)


@pytest.fixture(scope="module")
def scenario():
    db = build_join_hole_scenario(rows_per_table=4000, regions=50, seed=71)
    constraint = mine_join_holes(
        db.database,
        "orders", "lead_time",
        "deliveries", "distance",
        "region_id", "region_id",
        grid_size=24,
    )
    db.add_soft_constraint(constraint, verify_first=True)
    return db


def test_e04_benchmark_trimmed_query(benchmark, scenario):
    plan = scenario.plan(QUERY)
    benchmark(lambda: scenario.executor.execute(plan))


def test_e04_benchmark_discovery(benchmark):
    db = build_join_hole_scenario(rows_per_table=2000, seed=72)
    benchmark(
        lambda: mine_join_holes(
            db.database,
            "orders", "lead_time",
            "deliveries", "distance",
            "region_id", "region_id",
            grid_size=24,
        )
    )


def test_e04_report_trimming_benefit(report, scenario, benchmark):
    enabled, disabled = compare_optimizers(scenario, QUERY)
    trims = [r for r in enabled.plan.rewrites_applied if "trimmed" in r]
    empty_on, empty_off = compare_optimizers(scenario, EMPTY_QUERY)
    benchmark(lambda: scenario.plan(QUERY))
    report(
        "E4a: join-hole range trimming (4k x 4k rows, planted hole; "
        "orders clustered+indexed on lead_time)",
        ["query / metric", "with holes", "without"],
        [
            ["partial overlap: rewrites fired", len(trims), 0],
            ["partial overlap: rows returned", enabled.row_count,
             disabled.row_count],
            ["partial overlap: pages read", enabled.page_reads,
             disabled.page_reads],
            ["inside hole: rows returned", empty_on.row_count,
             empty_off.row_count],
            ["inside hole: pages read", empty_on.page_reads,
             empty_off.page_reads],
        ],
    )
    assert trims
    assert enabled.row_count == disabled.row_count > 0
    # The paper's claim: trimming "can reduce the number of pages that
    # need to be scanned for the join".
    assert enabled.page_reads < disabled.page_reads
    # A query box inside the mined hole trims one side to the sliver the
    # grid could not certify empty — a handful of index pages instead of a
    # table scan.  (The remaining I/O is the other table's hash build.)
    assert empty_on.row_count == empty_off.row_count == 0
    assert empty_on.page_reads < empty_off.page_reads * 0.75


def test_e04_report_discovery_linearity(report, benchmark):
    """Mining time vs join size: ratios should track the size ratios."""
    rows = []
    timings = []
    for scale in (1000, 2000, 4000, 8000):
        db = build_join_hole_scenario(rows_per_table=scale, seed=73)
        constraint_template = mine_join_holes  # noqa: F841 - clarity
        started = time.perf_counter()
        constraint = mine_join_holes(
            db.database,
            "orders", "lead_time",
            "deliveries", "distance",
            "region_id", "region_id",
            grid_size=24,
        )
        elapsed = time.perf_counter() - started
        join_size = sum(1 for _ in constraint.join_pairs(db.database))
        timings.append((join_size, elapsed))
        rows.append([scale, join_size, round(elapsed * 1000, 1),
                     round(elapsed / join_size * 1e6, 2)])
    benchmark(lambda: None)  # the sweep above is the measurement
    report(
        "E4b: hole-discovery runtime vs join-result size (linearity)",
        ["rows/table", "join pairs", "mining ms", "us per pair"],
        rows,
    )
    # Shape: runtime grows ~linearly — clearly sub-quadratically — in the
    # join size.  Compare the largest and smallest scale with a generous
    # exponent bound to absorb wall-clock noise.
    small_size, small_time = timings[0]
    big_size, big_time = timings[-1]
    size_ratio = big_size / small_size
    time_ratio = big_time / small_time
    assert time_ratio < size_ratio ** 1.5
