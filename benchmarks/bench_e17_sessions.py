"""E17 — Sessions: WAL group commit amortization and multi-session traffic.

Two halves, mirroring ISSUE 8's acceptance bar:

**Group commit.**  32 writer threads each run a stream of single-row
explicit transactions on disjoint keys (no conflicts — this measures
the commit path, not the lock manager).  The baseline durable database
has the group committer detached, so every commit pays its own
``wal.flush()``; the candidate commits through the gather window and
shares flushes.  The gate is *flushes per commit*: grouping must need
at least ``TARGET_AMORTIZATION`` (3x) fewer flushes than the
one-flush-per-commit baseline.

**Traffic simulation.**  A fleet of short-lived sessions (1000 full
size) hammers the asyncio TCP server with a skewed mix — point reads,
autocommit updates, and two-statement explicit transactions over a
power-law key distribution, so hot rows genuinely contend.  Recorded:
p50/p99 statement latency, abort rate (deadlock victims +
first-updater losers over transactions started), and WAL flushes per
commit under load.  Aborts are correctness working as intended, but a
runaway rate means the lock manager is thrashing — the gate bounds it.

Emits ``BENCH_e17.json`` with a ``sessions`` section consumed by
``check_bench_regression.py``'s ``_check_sessions`` gate.

Set ``E17_FAST=<n>`` for a smoke run: n simulated sessions (64 is
plenty), fewer transactions per writer, results to a temp directory so
the committed BENCH_e17.json is never clobbered.
"""

import asyncio
import json
import os
import random
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from statistics import quantiles

import pytest

from repro import SoftDB
from repro.errors import DeadlockError, TransactionConflictError

FAST = bool(os.environ.get("E17_FAST"))

WRITERS = 32
TXNS_PER_WRITER = 4 if FAST else 16
#: Grouping must cut flushes-per-commit by at least this factor.
TARGET_AMORTIZATION = 3.0

try:
    SIM_SESSIONS = max(8, int(os.environ.get("E17_FAST", "")))
except ValueError:
    SIM_SESSIONS = 64
if not FAST:
    SIM_SESSIONS = 1000
STATEMENTS_PER_SESSION = 5
#: Concurrently open connections (the rest of the fleet queues behind a
#: semaphore); kept below the executor width so a lock-blocked statement
#: can never starve the statement that would unblock it.
CONCURRENT_CLIENTS = 32 if FAST else 128
EXECUTOR_WIDTH = CONCURRENT_CLIENTS + 32
#: Aborts (deadlock victims, first-updater losers) over transactions.
MAX_ABORT_RATE = 0.25
KEYS = 64
#: Power-law skew: key ~ KEYS * u^SKEW biases hard toward low keys.
SKEW = 2.0

RESULTS_PATH = (
    Path(tempfile.mkdtemp(prefix="bench_e17_")) / "BENCH_e17.json"
    if FAST
    else Path(__file__).resolve().parent / "BENCH_e17.json"
)

SCHEMA_SQL = "CREATE TABLE kv (id INT PRIMARY KEY, val INT)"


def _open_db(base_dir: Path, label: str) -> SoftDB:
    db = SoftDB.open(base_dir / label)
    db.execute(SCHEMA_SQL)
    db.execute(
        "INSERT INTO kv VALUES "
        + ", ".join(f"({k}, {k})" for k in range(1, KEYS + 1))
    )
    return db


# -- group commit amortization ------------------------------------------------


def _commit_storm(db: SoftDB, grouped: bool) -> dict:
    """32 writer threads, disjoint keys, explicit txn per update."""
    sessions = [db.session(f"w{n}") for n in range(WRITERS)]
    if not grouped:
        # Detach the committer: every commit flushes for itself.
        db.durability.group_commit = None
    barrier = threading.Barrier(WRITERS)
    flushes_before = db.durability.wal.flushes
    errors = []

    def writer(index):
        session = sessions[index]
        key = (index % KEYS) + 1
        barrier.wait()
        try:
            for n in range(TXNS_PER_WRITER):
                session.execute("BEGIN")
                session.execute(
                    f"UPDATE kv SET val = {index * 1000 + n} "
                    f"WHERE id = {key}"
                )
                session.execute("COMMIT")
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=writer, args=(n,), daemon=True)
        for n in range(WRITERS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "commit storm writer hung"
    elapsed = time.perf_counter() - start
    assert not errors, f"commit storm failed: {errors[0]!r}"
    flushes = db.durability.wal.flushes - flushes_before
    for session in sessions:
        session.close()
    commits = WRITERS * TXNS_PER_WRITER
    return {
        "commits": commits,
        "flushes": flushes,
        "flushes_per_commit": flushes / commits,
        "elapsed_s": elapsed,
    }


def test_e17_group_commit_amortizes_flushes(report, tmp_path):
    baseline_db = _open_db(tmp_path, "per-txn")
    baseline = _commit_storm(baseline_db, grouped=False)
    baseline_db.close()
    grouped_db = _open_db(tmp_path, "grouped")
    grouped = _commit_storm(grouped_db, grouped=True)
    stats = grouped_db.database.concurrency.group_commit.stats()
    grouped_db.close()

    amortization = (
        baseline["flushes_per_commit"] / grouped["flushes_per_commit"]
    )
    report(
        "E17: WAL flushes per commit, 32 writers",
        ["mode", "commits", "flushes", "flushes/commit", "largest group"],
        [
            ["per-txn flush", baseline["commits"], baseline["flushes"],
             round(baseline["flushes_per_commit"], 3), 1],
            ["group commit", grouped["commits"], grouped["flushes"],
             round(grouped["flushes_per_commit"], 3),
             stats["largest_group"]],
        ],
    )
    test_e17_group_commit_amortizes_flushes.entry = {
        "writers": WRITERS,
        "commits_per_mode": baseline["commits"],
        "per_txn_flushes": baseline["flushes"],
        "group_flushes": grouped["flushes"],
        "flush_amortization": round(amortization, 2),
        "min_flush_amortization": TARGET_AMORTIZATION,
        "largest_group": stats["largest_group"],
    }
    # The baseline really is one flush per commit — anything else means
    # the detached mode measured the wrong thing.
    assert baseline["flushes"] >= baseline["commits"]
    assert amortization >= TARGET_AMORTIZATION, (
        f"group commit only cut flushes/commit by {amortization:.2f}x "
        f"(target {TARGET_AMORTIZATION}x at {WRITERS} writers)"
    )


# -- traffic simulation -------------------------------------------------------


def _skewed_key(rng: random.Random) -> int:
    return min(KEYS, int(KEYS * (rng.random() ** SKEW)) + 1)


async def _client(server, worker: int, gate, latencies, counters):
    from repro.concurrency.server import SessionClient

    rng = random.Random(worker * 7919 + 1)
    async with gate:
        client = await SessionClient.connect(server.host, server.port)
        try:
            budget = STATEMENTS_PER_SESSION
            while budget > 0:
                roll = rng.random()
                if roll < 0.55:
                    statements = [
                        f"SELECT val FROM kv WHERE id = {_skewed_key(rng)}"
                    ]
                    txn = False
                elif roll < 0.8:
                    statements = [
                        f"UPDATE kv SET val = {worker} "
                        f"WHERE id = {_skewed_key(rng)}"
                    ]
                    txn = False
                else:
                    a, b = _skewed_key(rng), _skewed_key(rng)
                    statements = [
                        "BEGIN",
                        f"UPDATE kv SET val = {worker} WHERE id = {a}",
                        f"UPDATE kv SET val = {worker} WHERE id = {b}",
                        "COMMIT",
                    ]
                    txn = True
                budget -= len(statements)
                counters["txns"] += 1
                try:
                    for sql in statements:
                        start = time.perf_counter()
                        await client.execute(sql)
                        latencies.append(time.perf_counter() - start)
                except (DeadlockError, TransactionConflictError):
                    # The server-side session already rolled the victim
                    # back; the client just moves on.
                    counters["aborts"] += 1
                else:
                    if txn:
                        counters["commits"] += 1
        finally:
            await client.close()


async def _simulate(db: SoftDB) -> dict:
    latencies = []
    counters = {"txns": 0, "aborts": 0, "commits": 0}
    flushes_before = db.durability.wal.flushes
    server = db.serve()
    loop = asyncio.get_running_loop()
    executor = ThreadPoolExecutor(max_workers=EXECUTOR_WIDTH)
    loop.set_default_executor(executor)
    gate = asyncio.Semaphore(CONCURRENT_CLIENTS)
    start = time.perf_counter()
    async with server:
        await asyncio.gather(
            *(
                _client(server, worker, gate, latencies, counters)
                for worker in range(SIM_SESSIONS)
            )
        )
    elapsed = time.perf_counter() - start
    executor.shutdown(wait=False)
    flushes = db.durability.wal.flushes - flushes_before
    latencies.sort()
    grid = quantiles(latencies, n=100)
    explicit_commits = max(1, counters["commits"])
    return {
        "sessions": SIM_SESSIONS,
        "statements": len(latencies),
        "elapsed_s": round(elapsed, 3),
        "statements_per_s": round(len(latencies) / elapsed, 1),
        "p50_ms": round(grid[49] * 1000, 3),
        "p99_ms": round(grid[98] * 1000, 3),
        "transactions": counters["txns"],
        "aborts": counters["aborts"],
        "abort_rate": round(counters["aborts"] / counters["txns"], 4),
        "max_abort_rate": MAX_ABORT_RATE,
        "explicit_commits": counters["commits"],
        "wal_flushes": flushes,
        "flushes_per_explicit_commit": round(flushes / explicit_commits, 3),
    }


def test_e17_session_traffic(report, tmp_path):
    db = _open_db(tmp_path, "traffic")
    sim = asyncio.run(_simulate(db))
    served = db.database.concurrency.txns.committed
    db.close()
    assert served > 0

    report(
        f"E17: {SIM_SESSIONS} skewed sessions over the asyncio server",
        ["sessions", "stmts", "stmts/s", "p50 ms", "p99 ms",
         "abort rate", "flushes/commit"],
        [[sim["sessions"], sim["statements"], sim["statements_per_s"],
          sim["p50_ms"], sim["p99_ms"], sim["abort_rate"],
          sim["flushes_per_explicit_commit"]]],
    )
    storm = getattr(
        test_e17_group_commit_amortizes_flushes, "entry", None
    )
    payload = {"experiment": "E17", "sessions": dict(sim)}
    if storm:
        payload["sessions"].update(storm)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert sim["statements"] > 0
    assert sim["abort_rate"] <= MAX_ABORT_RATE, (
        f"abort rate {sim['abort_rate']} over {MAX_ABORT_RATE}: the lock "
        f"manager is thrashing under skew"
    )
    # The gate must accept the file it will re-check at session end.
    from check_bench_regression import check_regressions

    assert check_regressions(RESULTS_PATH) == []
