"""E2 — Join elimination over (informational) referential integrity.

Paper source: Section 2 ([6]): join elimination of joins over foreign keys,
shown on TPC-D-style workloads; Section 1's informational constraints make
it available in data warehouses where RI is loader-maintained.

Shape to reproduce: queries touching only fact columns drop the dimension
joins, costing roughly the fact-scan alone; queries actually using
dimension columns are untouched; answers always identical.
"""

import pytest

from repro.harness.runner import compare_optimizers, measure_query
from repro.workload.schemas import build_star_schema

QUERIES = {
    "fact-only filter": (
        "SELECT s.id, s.amount FROM sales s, customer c "
        "WHERE s.customer_id = c.id AND s.amount > 400.0"
    ),
    "fact-only aggregate": (
        "SELECT s.customer_id, sum(s.amount) AS total FROM sales s, "
        "product p WHERE s.product_id = p.id GROUP BY s.customer_id"
    ),
    "two dims, fact-only": (
        "SELECT s.id FROM sales s, customer c, product p "
        "WHERE s.customer_id = c.id AND s.product_id = p.id "
        "AND s.quantity > 8"
    ),
    "dim column used (control)": (
        "SELECT c.segment, sum(s.amount) AS total FROM sales s, customer c "
        "WHERE s.customer_id = c.id GROUP BY c.segment"
    ),
}


@pytest.fixture(scope="module")
def scenario():
    return build_star_schema(
        facts=20000, customers=500, products=200, seed=51
    )


def test_e02_benchmark_eliminated(benchmark, scenario):
    plan = scenario.plan(QUERIES["fact-only filter"])
    benchmark(lambda: scenario.executor.execute(plan))


def test_e02_benchmark_baseline(benchmark, scenario):
    from repro.harness.runner import _all_off
    from repro.optimizer.planner import Optimizer

    plan = Optimizer(scenario.database, None, _all_off()).optimize(
        QUERIES["fact-only filter"]
    )
    benchmark(lambda: scenario.executor.execute(plan))


def test_e02_report(report, benchmark):
    # Larger dimensions than the timing fixture, so the eliminated join's
    # I/O share is visible in the page counts.
    scenario = build_star_schema(
        facts=20000, customers=5000, products=2000, seed=52
    )
    rows = []
    for label, sql in QUERIES.items():
        enabled, disabled = compare_optimizers(scenario, sql)
        eliminated = sum(
            1 for r in enabled.plan.rewrites_applied if "join_elimination" in r
        )
        rows.append(
            [
                label,
                eliminated,
                enabled.page_reads,
                disabled.page_reads,
                round(disabled.page_reads / max(1, enabled.page_reads), 2),
            ]
        )
    benchmark(lambda: scenario.plan(QUERIES["fact-only filter"]))
    report(
        "E2: join elimination via informational FKs (20k-row fact table)",
        ["query", "joins removed", "pages w/", "pages w/o", "speedup x"],
        rows,
    )
    # Shape: fact-only queries improve; the control query is unchanged.
    assert rows[0][1] >= 1 and rows[0][4] > 1.0
    assert rows[2][1] == 2
    assert rows[3][1] == 0 and rows[3][4] == pytest.approx(1.0, abs=0.05)
