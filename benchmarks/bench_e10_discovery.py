"""E10 — The discovery + selection pipeline.

Paper source: Section 3.2 (the three-stage SC process) and Section 3.3:
"SSC candidates greatly outnumber ASC candidates.  Therefore, it may be
easier to discover useful SSCs."

Shape to reproduce: at matched mining thresholds the SSC candidate pool
dwarfs the ASC pool; the selection stage ranks exactly the constraints
that serve the workload above the ones that do not; miner runtimes are
practical at laptop scale.
"""

import pytest

from repro.discovery import (
    FDMiner,
    LinearMiner,
    SelectionEngine,
    Workload,
    mine_min_max,
)
from repro.workload.datagen import DataGenerator
from repro.workload.schemas import build_correlated_table


@pytest.fixture(scope="module")
def scenario():
    """A table with one strong correlation, one weak one, and FDs."""
    from repro import SoftDB

    db = SoftDB()
    db.execute(
        "CREATE TABLE mixed (id INT PRIMARY KEY, a DOUBLE, b DOUBLE, "
        "c DOUBLE, city INT, state INT)"
    )
    generator = DataGenerator(131)
    batch = []
    for n in range(8000):
        a, b = generator.linear_pair(2.0, 5.0, 1.0)     # tight: ASC material
        c = 0.5 * b + generator.uniform(-40.0, 40.0)     # loose: SSC-only
        city = generator.integer(0, 99)
        batch.append((n, a, b, c, city, city % 10))
    db.database.insert_many("mixed", batch)
    db.execute("CREATE INDEX idx_mixed_a ON mixed (a)")
    db.runstats_all()
    return db


def test_e10_benchmark_linear_mining(benchmark, scenario):
    miner = LinearMiner(confidence_levels=(1.0, 0.99, 0.95, 0.9))
    benchmark(lambda: miner.mine_table(scenario.database, "mixed"))


def test_e10_benchmark_fd_mining(benchmark, scenario):
    miner = FDMiner(max_determinants=2, max_g3_error=0.05)
    benchmark(
        lambda: miner.mine(
            scenario.database, "mixed", columns=["city", "state", "id"]
        )
    )


def test_e10_report_candidate_pools(report, scenario, benchmark):
    miner = LinearMiner(
        confidence_levels=(1.0, 0.99, 0.95, 0.9), max_band_selectivity=0.25
    )
    linear = miner.mine_table(scenario.database, "mixed")
    fd_miner = FDMiner(max_determinants=1, max_g3_error=0.05)
    fd_candidates = fd_miner.mine(
        scenario.database, "mixed", columns=["city", "state"]
    )
    fds = fd_miner.to_soft_constraints("mixed", fd_candidates)
    minmax = mine_min_max(scenario.database, "mixed", ["a", "b", "c"])
    everything = list(linear) + list(fds) + list(minmax)
    ascs = [c for c in everything if c.is_absolute]
    sscs = [c for c in everything if c.is_statistical]
    benchmark(lambda: miner.mine_table(scenario.database, "mixed", [("a", "b")]))
    report(
        "E10a: candidate pools at matched thresholds (8k-row mixed table)",
        ["pool", "count", "examples"],
        [
            ["ASC candidates", len(ascs),
             ", ".join(c.name for c in ascs[:3])],
            ["SSC candidates", len(sscs),
             ", ".join(c.name for c in sscs[:3])],
        ],
    )
    # Shape: SSC candidates outnumber ASC candidates (Section 3.3).
    assert len(sscs) > len(ascs)


def test_e10_report_selection_ranks_useful_first(report, scenario, benchmark):
    workload = Workload.from_sql(
        [
            ("SELECT id, a FROM mixed WHERE b = 500.0", 20.0),
            ("SELECT city, state, count(*) AS n FROM mixed "
             "GROUP BY city, state", 5.0),
        ]
    )
    miner = LinearMiner(
        confidence_levels=(1.0, 0.9), max_band_selectivity=1.0
    )
    # Focus mining on workload-co-occurring pairs, as the paper suggests.
    pairs = [("a", "b"), ("c", "b"), ("a", "c")]
    linear = miner.mine_table(scenario.database, "mixed", pairs)
    fds = FDMiner(max_determinants=1, max_g3_error=0.0)
    fd_constraints = fds.to_soft_constraints(
        "mixed", fds.mine(scenario.database, "mixed", ["city", "state"])
    )
    candidates = list(linear) + list(fd_constraints)
    engine = SelectionEngine(update_weight=0.05)
    ranked = engine.rank(candidates, workload, scenario.database)
    benchmark(lambda: engine.rank(candidates, workload, scenario.database))
    rows = [
        [
            at + 1,
            score.constraint.name,
            "ASC" if score.constraint.is_absolute else "SSC",
            round(score.benefit, 2),
            round(score.maintenance_cost, 2),
            round(score.net_utility, 2),
        ]
        for at, score in enumerate(ranked[:8])
    ]
    report(
        "E10b: selection ranking against the workload (top 8)",
        ["rank", "candidate", "kind", "benefit", "maint. cost", "net"],
        rows,
    )
    # Shape: the tight a~b ASC (serves the hot query, index on a) on top.
    assert ranked[0].constraint.name.startswith("lin_mixed_a_b")
    assert ranked[0].constraint.is_absolute
    # FD for the grouped query is ranked above the useless a~c model.
    names_in_order = [score.constraint.name for score in ranked]
    fd_position = next(
        at for at, name in enumerate(names_in_order) if name.startswith("fd_")
    )
    useless = [
        at
        for at, name in enumerate(names_in_order)
        if name.startswith("lin_mixed_a_c")
    ]
    assert all(fd_position < at for at in useless)
