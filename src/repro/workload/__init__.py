"""Deterministic synthetic workloads for the examples and benchmarks.

The paper evaluated inside DB2 on TPC-D / APB-1 / customer databases we do
not have; per the substitution rule these generators plant the *data
characteristics* each technique keys on — correlation tightness, exception
rates, join holes, functional dependencies, range partitions — under
explicit seeds, so every experiment is reproducible bit-for-bit.
"""

from repro.workload.datagen import DataGenerator
from repro.workload.schemas import (
    build_correlated_table,
    build_denormalized_orders,
    build_join_hole_scenario,
    build_join_linear_scenario,
    build_monthly_union_scenario,
    build_project_table,
    build_purchase_scenario,
    build_star_schema,
)
from repro.workload.queries import (
    correlated_workload,
    star_workload,
)

__all__ = [
    "DataGenerator",
    "build_correlated_table",
    "build_denormalized_orders",
    "build_join_hole_scenario",
    "build_join_linear_scenario",
    "build_monthly_union_scenario",
    "build_project_table",
    "build_purchase_scenario",
    "build_star_schema",
    "correlated_workload",
    "star_workload",
]
