"""Workload query sets for the scenarios (used by selection and benches)."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.discovery.workload_model import Workload
from repro.workload.schemas import YEAR_START


def correlated_workload(
    probe_values: Optional[List[float]] = None,
) -> Workload:
    """Point queries on ``meas.b`` — the pattern the linear SC serves."""
    if probe_values is None:
        probe_values = [100.0, 250.0, 500.0, 750.0, 900.0]
    workload = Workload()
    for value in probe_values:
        workload.add(f"SELECT id, a FROM meas WHERE b = {value}", frequency=4.0)
    workload.add("SELECT id FROM meas WHERE b BETWEEN 400.0 AND 420.0", 2.0)
    workload.add("SELECT count(*) AS n FROM meas WHERE a > 1500.0", 1.0)
    return workload


def star_workload(include_explicit_joins: bool = True) -> Workload:
    """Fact-only aggregations that join to dimensions out of habit.

    Every query is emitted in both join syntaxes — the legacy
    comma-WHERE form and the explicit ``JOIN ... ON`` form — so corpus
    consumers exercise both paths through the parser.  The explicit
    variants carry half the frequency (the workload's feature counts
    stay dominated by the historical shape); pass
    ``include_explicit_joins=False`` for the legacy comma-only workload.
    """
    workload = Workload()
    shapes = [
        (
            "SELECT s.id, s.amount FROM sales s, customer c "
            "WHERE s.customer_id = c.id AND s.amount > 400.0",
            "SELECT s.id, s.amount FROM sales s "
            "JOIN customer c ON s.customer_id = c.id "
            "WHERE s.amount > 400.0",
            5.0,
        ),
        (
            "SELECT s.customer_id, sum(s.amount) AS total FROM sales s, "
            "product p WHERE s.product_id = p.id GROUP BY s.customer_id",
            "SELECT s.customer_id, sum(s.amount) AS total FROM sales s "
            "INNER JOIN product p ON s.product_id = p.id "
            "GROUP BY s.customer_id",
            3.0,
        ),
        (
            "SELECT c.segment, sum(s.amount) AS total FROM sales s, "
            "customer c WHERE s.customer_id = c.id GROUP BY c.segment",
            "SELECT c.segment, sum(s.amount) AS total FROM sales s "
            "JOIN customer c ON s.customer_id = c.id GROUP BY c.segment",
            2.0,
        ),
    ]
    for comma_sql, explicit_sql, frequency in shapes:
        workload.add(comma_sql, frequency=frequency)
        if include_explicit_joins:
            workload.add(explicit_sql, frequency=frequency / 2.0)
    return workload


def monthly_union_sql(
    table_names: List[str],
    day_low: int,
    day_high: int,
    columns: str = "id, day, amount",
) -> str:
    """The UNION ALL view query with a day-range predicate on every branch."""
    branches = [
        f"(SELECT {columns} FROM {name} "
        f"WHERE day BETWEEN {day_low} AND {day_high})"
        for name in table_names
    ]
    return " UNION ALL ".join(branches)


def first_quarter_range() -> Tuple[int, int]:
    """Day bounds of Jan-Mar in the 30-day-month calendar of E3."""
    return YEAR_START, YEAR_START + 3 * 30 - 1
