"""Workload query sets for the scenarios (used by selection and benches)."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.discovery.workload_model import Workload
from repro.workload.schemas import YEAR_START


def correlated_workload(
    probe_values: Optional[List[float]] = None,
) -> Workload:
    """Point queries on ``meas.b`` — the pattern the linear SC serves."""
    if probe_values is None:
        probe_values = [100.0, 250.0, 500.0, 750.0, 900.0]
    workload = Workload()
    for value in probe_values:
        workload.add(f"SELECT id, a FROM meas WHERE b = {value}", frequency=4.0)
    workload.add("SELECT id FROM meas WHERE b BETWEEN 400.0 AND 420.0", 2.0)
    workload.add("SELECT count(*) AS n FROM meas WHERE a > 1500.0", 1.0)
    return workload


def star_workload() -> Workload:
    """Fact-only aggregations that join to dimensions out of habit."""
    workload = Workload()
    workload.add(
        "SELECT s.id, s.amount FROM sales s, customer c "
        "WHERE s.customer_id = c.id AND s.amount > 400.0",
        frequency=5.0,
    )
    workload.add(
        "SELECT s.customer_id, sum(s.amount) AS total FROM sales s, "
        "product p WHERE s.product_id = p.id GROUP BY s.customer_id",
        frequency=3.0,
    )
    workload.add(
        "SELECT c.segment, sum(s.amount) AS total FROM sales s, customer c "
        "WHERE s.customer_id = c.id GROUP BY c.segment",
        frequency=2.0,
    )
    return workload


def monthly_union_sql(
    table_names: List[str],
    day_low: int,
    day_high: int,
    columns: str = "id, day, amount",
) -> str:
    """The UNION ALL view query with a day-range predicate on every branch."""
    branches = [
        f"(SELECT {columns} FROM {name} "
        f"WHERE day BETWEEN {day_low} AND {day_high})"
        for name in table_names
    ]
    return " UNION ALL ".join(branches)


def first_quarter_range() -> Tuple[int, int]:
    """Day bounds of Jan-Mar in the 30-day-month calendar of E3."""
    return YEAR_START, YEAR_START + 3 * 30 - 1
