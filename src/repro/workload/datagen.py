"""Low-level seeded data generation primitives."""

from __future__ import annotations

import random
from typing import Any, Sequence, Tuple

_EPOCH_2000 = 10957  # days from 1970-01-01 to 2000-01-01


class DataGenerator:
    """A seeded source of the value patterns the experiments plant.

    All methods are pure functions of the generator's internal PRNG state,
    so a scenario built from one seed is fully deterministic.
    """

    def __init__(self, seed: int = 0) -> None:
        self.random = random.Random(seed)

    # -- scalars -------------------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        return self.random.uniform(low, high)

    def integer(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return self.random.randint(low, high)

    def day_in_year(self, year_start: int = _EPOCH_2000, days: int = 365) -> int:
        """A day number within one year starting at ``year_start``."""
        return year_start + self.random.randrange(days)

    def choice(self, values: Sequence[Any]) -> Any:
        return self.random.choice(values)

    def bernoulli(self, probability: float) -> bool:
        return self.random.random() < probability

    # -- column patterns ----------------------------------------------------------

    def linear_pair(
        self,
        slope: float,
        intercept: float,
        noise: float,
        b_low: float = 0.0,
        b_high: float = 1000.0,
    ) -> Tuple[float, float]:
        """(a, b) with ``a = slope*b + intercept + U(-noise, +noise)``."""
        b = self.random.uniform(b_low, b_high)
        a = slope * b + intercept + self.random.uniform(-noise, noise)
        return a, b

    def duration_days(
        self,
        short_max: int = 30,
        long_max: int = 300,
        long_fraction: float = 0.1,
    ) -> int:
        """Mostly-short durations with a long tail.

        ``1 - long_fraction`` of values fall in [1, short_max]; the rest in
        (short_max, long_max] — the paper's "90% of projects last a month"
        shape.
        """
        if self.random.random() < long_fraction:
            return self.random.randint(short_max + 1, long_max)
        return self.random.randint(1, short_max)

    def value_outside_hole(
        self,
        low: float,
        high: float,
        hole_low: float,
        hole_high: float,
    ) -> float:
        """A uniform value over [low, high] minus (hole_low, hole_high)."""
        left_width = max(0.0, hole_low - low)
        right_width = max(0.0, high - hole_high)
        if left_width + right_width <= 0:
            raise ValueError("hole covers the whole range")
        pick = self.random.uniform(0, left_width + right_width)
        if pick < left_width:
            return low + pick
        return hole_high + (pick - left_width)

    def skewed_category(self, categories: int, skew: float = 1.2) -> int:
        """A Zipf-like category id in [0, categories)."""
        weights = [1.0 / ((rank + 1) ** skew) for rank in range(categories)]
        total = sum(weights)
        pick = self.random.uniform(0, total)
        acc = 0.0
        for category, weight in enumerate(weights):
            acc += weight
            if pick <= acc:
                return category
        return categories - 1

    def string_code(self, prefix: str, number: int, width: int = 6) -> str:
        return f"{prefix}{number:0{width}d}"
