"""A TPC-H/DS-flavored scenario: fact/dimension schemas at a scale factor.

The corpus harness (:mod:`repro.corpus`) needs a database that looks like
the warehouses the paper targets — fact tables orders/lineitem over
customer/part/supplier dimensions — with the *data characteristics* the
soft-constraint machinery keys on planted deterministically:

* **correlated date columns** — ``orders.ship_date`` falls within a fixed
  lag window of ``orders.order_date`` (every row, so the linear SC over
  the pair verifies as absolute and predicate introduction may fire);
* **a correlated charge column** — ``lineitem.charge ~= TAX * price``
  within a tight band, with the index on ``charge`` (the E1 asymmetry);
* **skewed foreign keys** — fact rows reference dimensions Zipf-style,
  so per-key join fan-out is far from uniform;
* **informational foreign keys** — declared NOT ENFORCED (the loader
  guarantees integrity), which is what lets join elimination drop a
  dimension joined "out of habit";
* **hard attribute bounds** — registered min/max SCs on ``orders.total``
  and ``lineitem.quantity`` so out-of-range predicates abbreviate to
  constant-FALSE scans.

Everything is a pure function of ``(scale_factor, seed)`` via
:class:`~repro.workload.datagen.DataGenerator`: two builds with the same
arguments produce bit-identical tables (the determinism property tests
hold this builder to that).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.api import SoftDB
from repro.softcon.linear import LinearCorrelationSC
from repro.softcon.minmax import MinMaxSC
from repro.workload.datagen import DataGenerator
from repro.workload.schemas import YEAR_START

#: ship_date = order_date + lag, lag uniform in [0, 2 * SHIP_LAG_EPS].
SHIP_LAG_EPS = 15
#: charge = CHARGE_SLOPE * price + U(-CHARGE_EPS, +CHARGE_EPS).
CHARGE_SLOPE = 1.07
CHARGE_EPS = 2.0
#: Hard value bounds planted (and registered as min/max SCs).
TOTAL_LOW, TOTAL_HIGH = 1.0, 10_000.0
QUANTITY_LOW, QUANTITY_HIGH = 1, 50
PRICE_LOW, PRICE_HIGH = 1.0, 1000.0
#: Two order years, day-granular, in the epoch-day calendar of E5/E6.
DATE_DAYS = 2 * 365

SEGMENTS = 5
CATEGORIES = 10
NATIONS = 8
PRIORITIES = 3


@dataclass(frozen=True)
class TpcScale:
    """Row counts for one scale factor (all linear in ``scale_factor``)."""

    customers: int
    parts: int
    suppliers: int
    orders: int
    lineitems: int

    @classmethod
    def of(cls, scale_factor: float) -> "TpcScale":
        if scale_factor <= 0:
            raise ValueError(f"scale_factor must be > 0, got {scale_factor}")

        def scaled(base: int, floor: int) -> int:
            return max(floor, int(math.ceil(base * scale_factor)))

        return cls(
            customers=scaled(400, 10),
            parts=scaled(200, 8),
            suppliers=scaled(80, 4),
            orders=scaled(3000, 40),
            lineitems=scaled(9000, 120),
        )


def build_tpc_db(
    scale_factor: float = 1.0,
    seed: int = 0,
    register_soft_constraints: bool = True,
) -> SoftDB:
    """Build and populate the TPC-style database (stats collected).

    With ``register_soft_constraints`` the planted characterizations are
    registered and verified (so they are ACTIVE and absolute); without,
    the same data is available for the discovery miners to find them.
    """
    scale = TpcScale.of(scale_factor)
    db = SoftDB()
    _create_schema(db)
    generator = DataGenerator(seed)
    _populate(db, generator, scale)
    db.execute("CREATE INDEX idx_orders_odate ON orders (order_date)")
    db.execute("CREATE INDEX idx_lineitem_charge ON lineitem (charge)")
    db.runstats_all()
    if register_soft_constraints:
        _register_soft_constraints(db)
    return db


def _create_schema(db: SoftDB) -> None:
    db.execute(
        "CREATE TABLE customer (id INT PRIMARY KEY, name VARCHAR(20), "
        "segment INT, nation_id INT, balance DOUBLE)"
    )
    db.execute(
        "CREATE TABLE part (id INT PRIMARY KEY, name VARCHAR(20), "
        "category INT, size INT, retail_price DOUBLE)"
    )
    db.execute(
        "CREATE TABLE supplier (id INT PRIMARY KEY, name VARCHAR(20), "
        "nation_id INT, rating INT)"
    )
    db.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, customer_id INT NOT NULL, "
        "order_date DATE, ship_date DATE, priority INT, total DOUBLE, "
        "CONSTRAINT fk_orders_cust FOREIGN KEY (customer_id) "
        "REFERENCES customer (id) NOT ENFORCED)"
    )
    db.execute(
        "CREATE TABLE lineitem (id INT PRIMARY KEY, order_id INT NOT NULL, "
        "part_id INT NOT NULL, supplier_id INT NOT NULL, quantity INT, "
        "price DOUBLE, discount DOUBLE, charge DOUBLE, "
        "CONSTRAINT fk_line_order FOREIGN KEY (order_id) "
        "REFERENCES orders (id) NOT ENFORCED, "
        "CONSTRAINT fk_line_part FOREIGN KEY (part_id) "
        "REFERENCES part (id) NOT ENFORCED, "
        "CONSTRAINT fk_line_supp FOREIGN KEY (supplier_id) "
        "REFERENCES supplier (id) NOT ENFORCED)"
    )


def _populate(db: SoftDB, generator: DataGenerator, scale: TpcScale) -> None:
    db.database.insert_many(
        "customer",
        [
            (
                n,
                generator.string_code("cust", n),
                generator.integer(0, SEGMENTS - 1),
                generator.integer(0, NATIONS - 1),
                # A few unknown balances exercise 3VL through the corpus.
                None
                if generator.bernoulli(0.02)
                else round(generator.uniform(-500.0, 9500.0), 2),
            )
            for n in range(scale.customers)
        ],
    )
    db.database.insert_many(
        "part",
        [
            (
                n,
                generator.string_code("part", n),
                generator.integer(0, CATEGORIES - 1),
                generator.integer(1, 50),
                round(generator.uniform(PRICE_LOW, PRICE_HIGH), 2),
            )
            for n in range(scale.parts)
        ],
    )
    db.database.insert_many(
        "supplier",
        [
            (
                n,
                generator.string_code("supp", n),
                generator.integer(0, NATIONS - 1),
                generator.integer(0, 4),
            )
            for n in range(scale.suppliers)
        ],
    )
    order_rows = []
    for n in range(scale.orders):
        order_day = generator.day_in_year(YEAR_START, DATE_DAYS)
        order_rows.append(
            (
                n,
                generator.skewed_category(scale.customers),
                order_day,
                order_day + generator.integer(0, 2 * SHIP_LAG_EPS),
                generator.integer(0, PRIORITIES - 1),
                round(generator.uniform(TOTAL_LOW, TOTAL_HIGH), 2),
            )
        )
    # Orders arrive in date order (any real order-entry system), so the
    # heap is clustered on order_date — the access path the introduced
    # ship-lag range exploits.  The sort is stable, so determinism holds.
    order_rows.sort(key=lambda row: row[2])
    db.database.insert_many("orders", order_rows)
    line_rows = []
    for n in range(scale.lineitems):
        price = round(generator.uniform(PRICE_LOW, PRICE_HIGH), 2)
        line_rows.append(
            (
                n,
                generator.integer(0, scale.orders - 1),
                generator.skewed_category(scale.parts),
                generator.skewed_category(scale.suppliers),
                generator.integer(QUANTITY_LOW, QUANTITY_HIGH),
                price,
                round(generator.uniform(0.0, 0.1), 3),
                round(
                    CHARGE_SLOPE * price
                    + generator.uniform(-CHARGE_EPS, CHARGE_EPS),
                    3,
                ),
            )
        )
    # The lineitem heap is kept clustered on charge (the indexed column),
    # so the ranges predicate introduction derives from the price band
    # turn into contiguous index-range reads.  Stable sort: deterministic.
    line_rows.sort(key=lambda row: row[7])
    db.database.insert_many("lineitem", line_rows)


def _register_soft_constraints(db: SoftDB) -> None:
    """Register the planted characterizations; all verify as absolute."""
    db.add_soft_constraint(
        LinearCorrelationSC(
            "sc_orders_ship_lag",
            "orders",
            column_a="order_date",
            column_b="ship_date",
            slope=1.0,
            intercept=-float(SHIP_LAG_EPS),
            epsilon=float(SHIP_LAG_EPS),
        ),
        verify_first=True,
    )
    db.add_soft_constraint(
        LinearCorrelationSC(
            "sc_lineitem_charge",
            "lineitem",
            column_a="charge",
            column_b="price",
            slope=CHARGE_SLOPE,
            intercept=0.0,
            # round(x, 3) may push a boundary draw just past the band.
            epsilon=CHARGE_EPS + 1e-3,
        ),
        verify_first=True,
    )
    db.add_soft_constraint(
        MinMaxSC("sc_orders_total", "orders", "total", TOTAL_LOW, TOTAL_HIGH),
        verify_first=True,
    )
    db.add_soft_constraint(
        MinMaxSC(
            "sc_lineitem_qty", "lineitem", "quantity",
            QUANTITY_LOW, QUANTITY_HIGH,
        ),
        verify_first=True,
    )


def table_snapshot(db: SoftDB) -> Dict[str, List[tuple]]:
    """Every table's rows, in heap order — the determinism fingerprint."""
    snapshot: Dict[str, List[tuple]] = {}
    for name in db.database.catalog.table_names():
        table = db.database.table(name)
        snapshot[name] = [tuple(row) for row in table.scan_rows()]
    return snapshot
