"""Scenario builders: populated SoftDB instances for each experiment.

Each builder plants exactly the data characteristic its experiment keys
on and returns a ready :class:`~repro.api.SoftDB` (statistics collected,
indexes built).  Bulk loading goes through the storage API rather than
SQL INSERT parsing for speed; both paths enforce the same constraints.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.api import SoftDB
from repro.workload.datagen import DataGenerator

YEAR_START = 10957  # 2000-01-01 as days since epoch
SHIP_WINDOW_DAYS = 21


def build_correlated_table(
    rows: int = 20000,
    slope: float = 3.0,
    intercept: float = 10.0,
    noise: float = 5.0,
    seed: int = 0,
    with_index: bool = True,
) -> SoftDB:
    """E1: one table ``meas(id, a, b)`` with ``a ~= slope*b + intercept``.

    ``noise`` is the half-width of the uniform deviation, i.e. the true
    100% epsilon of the planted linear correlation.  An index exists on
    ``a`` but not on ``b`` — the asymmetry predicate introduction exploits.
    """
    db = SoftDB()
    db.execute("CREATE TABLE meas (id INT PRIMARY KEY, a DOUBLE, b DOUBLE)")
    generator = DataGenerator(seed)
    batch = []
    for row_id in range(rows):
        a, b = generator.linear_pair(slope, intercept, noise)
        batch.append((row_id, a, b))
    db.database.insert_many("meas", batch)
    if with_index:
        db.execute("CREATE INDEX idx_meas_a ON meas (a)")
    db.runstats_all()
    return db


def build_star_schema(
    facts: int = 20000,
    customers: int = 500,
    products: int = 200,
    seed: int = 0,
    informational_fks: bool = True,
) -> SoftDB:
    """E2: a small star schema with loader-guaranteed referential integrity.

    The fact table's foreign keys are declared ``NOT ENFORCED``
    (informational) by default — the data-warehouse pattern the paper
    motivates: the loader already guarantees integrity, the optimizer
    still gets the constraint.
    """
    db = SoftDB()
    enforcement = "NOT ENFORCED" if informational_fks else "ENFORCED"
    db.execute(
        "CREATE TABLE customer (id INT PRIMARY KEY, name VARCHAR(20), "
        "segment INT)"
    )
    db.execute(
        "CREATE TABLE product (id INT PRIMARY KEY, name VARCHAR(20), "
        "category INT)"
    )
    db.execute(
        f"CREATE TABLE sales (id INT PRIMARY KEY, "
        f"customer_id INT NOT NULL, product_id INT NOT NULL, "
        f"quantity INT, amount DOUBLE, "
        f"CONSTRAINT fk_cust FOREIGN KEY (customer_id) REFERENCES "
        f"customer (id) {enforcement}, "
        f"CONSTRAINT fk_prod FOREIGN KEY (product_id) REFERENCES "
        f"product (id) {enforcement})"
    )
    generator = DataGenerator(seed)
    db.database.insert_many(
        "customer",
        [
            (n, generator.string_code("cust", n), generator.integer(0, 4))
            for n in range(customers)
        ],
    )
    db.database.insert_many(
        "product",
        [
            (n, generator.string_code("prod", n), generator.integer(0, 9))
            for n in range(products)
        ],
    )
    batch = []
    for row_id in range(facts):
        batch.append(
            (
                row_id,
                generator.skewed_category(customers),
                generator.skewed_category(products),
                generator.integer(1, 10),
                round(generator.uniform(1.0, 500.0), 2),
            )
        )
    db.database.insert_many("sales", batch)
    db.runstats_all()
    return db


def build_monthly_union_scenario(
    months: int = 12,
    rows_per_month: int = 2000,
    seed: int = 0,
    declare_checks: bool = True,
) -> Tuple[SoftDB, List[str]]:
    """E3: monthly partition tables under a UNION ALL view.

    Each month ``m`` holds ``day`` values in ``[first_day(m),
    last_day(m)]`` over a 30-day-month year.  With ``declare_checks`` the
    partitioning is a hard CHECK constraint; without, the range can be
    *mined* into check soft constraints (the paper's discovery story).

    Returns (db, table_names).
    """
    db = SoftDB()
    generator = DataGenerator(seed)
    table_names = []
    for month in range(months):
        low = YEAR_START + month * 30
        high = low + 29
        name = f"sales_m{month + 1:02d}"
        table_names.append(name)
        check = f", CHECK (day BETWEEN {low} AND {high})" if declare_checks else ""
        db.execute(
            f"CREATE TABLE {name} (id INT, day INT, amount DOUBLE{check})"
        )
        batch = [
            (
                month * rows_per_month + n,
                generator.integer(low, high),
                round(generator.uniform(1.0, 100.0), 2),
            )
            for n in range(rows_per_month)
        ]
        db.database.insert_many(name, batch)
    db.runstats_all()
    return db, table_names


def build_join_hole_scenario(
    rows_per_table: int = 4000,
    regions: int = 50,
    seed: int = 0,
) -> SoftDB:
    """E4: two tables joined on ``region_id`` with a planted 2-D hole.

    Regions split into two classes correlated with the profiled
    attributes: class-0 regions have ``orders.lead_time`` in [0, 25] (any
    ``deliveries.distance``); class-1 regions have lead_time in [25, 50]
    but distance only in [0, 25].  The join result therefore has a hole at
    ``lead_time x distance = [25, 50] x [25, 50]``.
    """
    db = SoftDB()
    db.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, region_id INT, "
        "lead_time DOUBLE)"
    )
    db.execute(
        "CREATE TABLE deliveries (id INT PRIMARY KEY, region_id INT, "
        "distance DOUBLE)"
    )
    generator = DataGenerator(seed)
    order_rows = []
    delivery_rows = []
    for n in range(rows_per_table):
        region = generator.integer(0, regions - 1)
        class_one = region >= regions // 2
        if class_one:
            lead_time = generator.uniform(25.0, 50.0)
        else:
            lead_time = generator.uniform(0.0, 25.0)
        order_rows.append((n, region, lead_time))
        region = generator.integer(0, regions - 1)
        class_one = region >= regions // 2
        if class_one:
            distance = generator.uniform(0.0, 25.0)
        else:
            distance = generator.uniform(0.0, 50.0)
        delivery_rows.append((n, region, distance))
    # Orders are kept clustered on lead_time (their processing order), so
    # the lead_time index offers cheap range scans — the access path the
    # hole-trimmed ranges exploit.
    order_rows.sort(key=lambda row: row[2])
    db.database.insert_many("orders", order_rows)
    db.database.insert_many("deliveries", delivery_rows)
    db.execute("CREATE INDEX idx_orders_region ON orders (region_id)")
    db.execute("CREATE INDEX idx_orders_lead ON orders (lead_time)")
    db.runstats_all()
    return db


def build_join_linear_scenario(
    rows_per_table: int = 3000,
    regions: int = 100,
    noise: float = 1.0,
    seed: int = 0,
) -> SoftDB:
    """E1-extension: a linear correlation that only exists *across a join*.

    Each region has a base size; shipment weights cluster around it and
    freight costs around ``3 * base + 50``, so over
    ``shipments ⋈ freight`` (on region) the pair (cost, weight) is
    tightly linear — while neither table alone contains both columns.
    An index exists on ``freight.cost``.
    """
    db = SoftDB()
    db.execute(
        "CREATE TABLE shipments (id INT PRIMARY KEY, region_id INT, "
        "weight DOUBLE)"
    )
    db.execute(
        "CREATE TABLE freight (id INT PRIMARY KEY, region_id INT, "
        "cost DOUBLE)"
    )
    generator = DataGenerator(seed)
    base = {r: generator.uniform(10.0, 500.0) for r in range(regions)}
    shipment_rows = []
    freight_rows = []
    for n in range(rows_per_table):
        region = generator.integer(0, regions - 1)
        shipment_rows.append(
            (n, region, base[region] + generator.uniform(-noise, noise))
        )
        region = generator.integer(0, regions - 1)
        freight_rows.append(
            (
                n,
                region,
                3.0 * base[region] + 50.0 + generator.uniform(-noise, noise),
            )
        )
    freight_rows.sort(key=lambda row: row[2])  # clustered on cost
    db.database.insert_many("shipments", shipment_rows)
    db.database.insert_many("freight", freight_rows)
    db.execute("CREATE INDEX idx_freight_cost ON freight (cost)")
    db.runstats_all()
    return db


def build_project_table(
    rows: int = 10000,
    long_fraction: float = 0.1,
    short_max: int = 30,
    seed: int = 0,
) -> SoftDB:
    """E5: the paper's project table with correlated start/end dates.

    ``1 - long_fraction`` of projects last at most ``short_max`` days —
    the "90% of projects last no longer than a month" SSC of Section 5.1.
    """
    db = SoftDB()
    db.execute(
        "CREATE TABLE project (id INT PRIMARY KEY, start_date DATE, "
        "end_date DATE)"
    )
    generator = DataGenerator(seed)
    batch = []
    for row_id in range(rows):
        start = generator.day_in_year(YEAR_START, 3 * 365)
        duration = generator.duration_days(
            short_max=short_max, long_fraction=long_fraction
        )
        batch.append((row_id, start, start + duration))
    db.database.insert_many("project", batch)
    db.runstats_all()
    return db


def build_purchase_scenario(
    rows: int = 20000,
    exception_rate: float = 0.01,
    seed: int = 0,
) -> SoftDB:
    """E6: the ``purchase`` table of Section 4.4.

    Ships happen within ``SHIP_WINDOW_DAYS`` of the order for all but
    ``exception_rate`` of the rows (the late shipments).  An index exists
    on ``order_date`` but not ``ship_date`` — the asymmetry the
    exception-AST union plan exploits.
    """
    db = SoftDB()
    db.execute(
        "CREATE TABLE purchase (id INT PRIMARY KEY, order_date DATE, "
        "ship_date DATE, amount DOUBLE)"
    )
    generator = DataGenerator(seed)
    batch = []
    for row_id in range(rows):
        order_day = generator.day_in_year(YEAR_START, 2 * 365)
        if generator.bernoulli(exception_rate):
            ship_day = order_day + generator.integer(
                SHIP_WINDOW_DAYS + 1, SHIP_WINDOW_DAYS + 120
            )
        else:
            ship_day = order_day + generator.integer(0, SHIP_WINDOW_DAYS)
        batch.append(
            (row_id, order_day, ship_day, round(generator.uniform(5, 500), 2))
        )
    # Orders arrive in date order, as in any real order-entry system, so
    # the heap is clustered on order_date — which is what makes the
    # introduced order_date range an attractive index path.
    batch.sort(key=lambda row: row[1])
    db.database.insert_many("purchase", batch)
    db.execute("CREATE INDEX idx_purchase_od ON purchase (order_date)")
    db.runstats_all()
    return db


def build_denormalized_orders(
    rows: int = 10000,
    cities: int = 100,
    states: int = 10,
    seed: int = 0,
) -> SoftDB:
    """E7: a denormalized order table with embedded FDs.

    ``city_id -> state_id`` (each city lies in one state) and
    ``customer_id -> (city_id, state_id)`` (each customer has one
    address) hold by construction but are *not* declared — the situation
    [29] targets with discovered FD information.
    """
    db = SoftDB()
    db.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, customer_id INT, "
        "city_id INT, state_id INT, amount DOUBLE)"
    )
    generator = DataGenerator(seed)
    city_state = {
        city: city % states for city in range(cities)
    }
    customer_city = {
        customer: generator.integer(0, cities - 1)
        for customer in range(rows // 10)
    }
    batch = []
    for row_id in range(rows):
        customer = generator.integer(0, len(customer_city) - 1)
        city = customer_city[customer]
        batch.append(
            (
                row_id,
                customer,
                city,
                city_state[city],
                round(generator.uniform(1, 1000), 2),
            )
        )
    db.database.insert_many("orders", batch)
    db.runstats_all()
    return db
