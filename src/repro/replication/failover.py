"""Automatic primary failover: leases, election, fencing, rejoin.

Three pieces turn the PR-9 replication fleet into a self-healing
cluster, each deterministic and driven by the same virtual clock and
seeded fault injector as the rest of the resilience stack:

**Failure detection** is lease-based.  The primary periodically sends a
CRC-framed heartbeat (the same ``crc32 json\\n`` framing as WAL
records) through a :class:`HeartbeatChannel` that consults the fault
injector at the ``heartbeat`` site — so a chaos schedule can drop,
tear, delay, sever, or asymmetrically partition the control plane
independently of the data plane.  Each intact heartbeat renews a lease
at the :class:`FailureDetector`; when the lease runs out on the
:class:`~repro.resilience.guards.VirtualClock`, the primary is
*suspected*.  No wall time ever passes: tests advance the clock by
hand, so every detection is replayable from a seed.

**Promotion** elects the most-caught-up reachable replica — highest
:meth:`~repro.replication.replica.Replica.ack` among live, unsevered
links — and drains its buffered transaction tail through the ordinary
recovery replay path (close + reopen: committed work replays, the
uncommitted tail truncates, exactly like a crash restart).  The
cluster's :class:`ClusterFence` epoch is bumped **before** the new
primary accepts its first write, stamped into its WAL as a ``promote``
record, and carried on every commit record it logs from then on.
Surviving replicas re-attach to the new primary's
:class:`~repro.replication.shipper.WalShipper` by full resync — byte
offsets from the old primary's log are meaningless against the new
one's, and resync is the one path already proven to rebase cursors
safely (the PR-9 generation machinery).

**Fencing** is what makes the asymmetric partition — primary alive and
serving, heartbeats lost, a replica promoted behind its back — safe.
The deposed primary still holds the shared fence object but its own
``promotion_epoch`` now lags the fence's; every durability point
(transaction begin *and* commit) re-checks, so all its writes fail
with a typed :class:`~repro.errors.FencedError` before any of them can
fork history.  Because the rejection happens before the commit record
is durable, ``FencedError`` is a *known-outcome* failure: clients may
re-issue even non-idempotent statements against the new primary.  The
deposed node rejoins the cluster as a replica via
:meth:`~repro.replication.replica.Replica.install_resync`.

Cluster-level acknowledgement is semi-synchronous: a statement is
*cluster-acked* once it is durable on the primary **and** at least one
replica has mirrored it.  That is the durability bar the chaos suite
holds promotions to — a cluster-acked commit must survive any single
node loss, because a full copy exists somewhere the election can reach.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.durability.wal import _decode_line, _frame
from repro.errors import (
    FencedError,
    PromotionError,
    ReplicaUnavailableError,
)
from repro.replication.replica import Replica
from repro.replication.shipper import ReplicationLink, WalShipper
from repro.resilience.faults import FaultInjector
from repro.resilience.guards import VirtualClock

__all__ = [
    "ClusterFence",
    "FailoverCluster",
    "FailureDetector",
    "HeartbeatChannel",
]


class ClusterFence:
    """The cluster's single promotion-epoch authority.

    One instance is shared by every node of a cluster.  The promotion
    coordinator calls :meth:`advance` exactly once per promotion —
    before the new primary accepts a write — and every durability
    point on every fenced node calls :meth:`check` with the epoch that
    node last held.  A node whose epoch lags the fence is deposed; its
    writes raise :class:`~repro.errors.FencedError` rather than forking
    history.
    """

    def __init__(self, epoch: int = 0) -> None:
        self.epoch = epoch
        self.advances = 0
        self.rejections = 0

    def advance(self) -> int:
        """Bump the cluster epoch; returns the new epoch."""
        self.epoch += 1
        self.advances += 1
        return self.epoch

    def check(self, holder_epoch: int, node: str = "") -> None:
        """Raise :class:`~repro.errors.FencedError` when ``holder_epoch``
        lags the cluster's — the caller is a deposed primary."""
        if holder_epoch < self.epoch:
            self.rejections += 1
            raise FencedError(
                f"node {node or '?'} holds promotion epoch "
                f"{holder_epoch} but the cluster is at {self.epoch}: "
                f"writes are fenced; rejoin as a replica",
                epoch=holder_epoch,
                cluster_epoch=self.epoch,
            )

    def __repr__(self) -> str:
        return (
            f"ClusterFence(epoch={self.epoch}, "
            f"rejections={self.rejections})"
        )


class FailureDetector:
    """Virtual-clock lease table: one lease per node, renewed by intact
    heartbeats, expired by the clock alone.

    The detector never *acts* — it only answers :meth:`expired`.  The
    promotion coordinator owns the decision to fail over, so a flapping
    lease (renewed by a delayed heartbeat after it ran out, before any
    promotion happened) is just a counted non-event, never a rewind.
    """

    def __init__(
        self,
        clock: Optional[VirtualClock] = None,
        lease_timeout: float = 1.0,
    ) -> None:
        if lease_timeout <= 0:
            raise PromotionError(
                f"lease_timeout must be > 0, got {lease_timeout}"
            )
        self.clock = clock if clock is not None else VirtualClock()
        self.lease_timeout = lease_timeout
        # node -> lease expiry instant on the virtual clock.
        self.leases: Dict[str, float] = {}
        self.renewals = 0
        self.flaps = 0
        self.stale_rejected = 0

    def observe(self, node: str, epoch: int, min_epoch: int = 0) -> bool:
        """One intact heartbeat from ``node`` carrying ``epoch``.

        Heartbeats from an epoch the cluster has moved past are ignored
        (a deposed primary's pulse must never look like health); a
        renewal that lands after its lease already ran out is counted
        as a flap.  Returns whether the lease was renewed.
        """
        if epoch < min_epoch:
            self.stale_rejected += 1
            return False
        now = self.clock.now
        expiry = self.leases.get(node)
        if expiry is not None and expiry <= now:
            self.flaps += 1
        self.leases[node] = now + self.lease_timeout
        self.renewals += 1
        return True

    def expired(self, node: str) -> bool:
        """Whether ``node``'s lease has run out (or never existed)."""
        expiry = self.leases.get(node)
        return expiry is None or expiry <= self.clock.now

    def remaining(self, node: str) -> float:
        """Virtual seconds of lease left (0.0 when expired/unknown)."""
        expiry = self.leases.get(node)
        if expiry is None:
            return 0.0
        return max(0.0, expiry - self.clock.now)

    def forget(self, node: str) -> None:
        self.leases.pop(node, None)

    def snapshot(self) -> Dict[str, Any]:
        now = self.clock.now
        return {
            "now": now,
            "lease_timeout": self.lease_timeout,
            "leases": {
                node: max(0.0, expiry - now)
                for node, expiry in sorted(self.leases.items())
            },
            "renewals": self.renewals,
            "flaps": self.flaps,
            "stale_rejected": self.stale_rejected,
        }

    def __repr__(self) -> str:
        return (
            f"FailureDetector(leases={len(self.leases)}, "
            f"timeout={self.lease_timeout}, flaps={self.flaps})"
        )


class HeartbeatChannel:
    """The control-plane pipe: framed heartbeats, faults at the
    ``heartbeat`` site.

    Mirrors :class:`~repro.replication.shipper.ReplicationLink` for the
    data plane, with two channel-wide states a chaos schedule can latch:
    ``severed`` (both directions cut) and ``partitioned`` (the
    ``asym_partition`` kind — the *control* direction is cut while data
    still flows; the canonical split-brain inducer).  ``drop`` loses
    one heartbeat, ``truncate`` tears its frame (the CRC check discards
    it), ``delay`` parks it for late delivery with the next send.
    """

    def __init__(self, injector: Optional[FaultInjector] = None) -> None:
        self.injector = injector
        self.severed = False
        self.partitioned = False
        self._parked: List[bytes] = []
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.torn = 0
        self.delayed = 0
        self.late_deliveries = 0
        self.partition_losses = 0

    def sever(self) -> None:
        self.severed = True

    def partition(self) -> None:
        """Cut the control direction only (asymmetric partition)."""
        self.partitioned = True

    def heal(self) -> None:
        self.severed = False
        self.partitioned = False

    def send(self, record: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Frame and ship one heartbeat; returns the records that
        actually arrived (the fresh one and/or previously parked ones,
        oldest first — a delayed heartbeat rides the next delivery)."""
        self.sent += 1
        if self.severed or self.partitioned:
            if self.partitioned:
                self.partition_losses += 1
            else:
                self.dropped += 1
            return []
        frame = _frame(record)
        kind = (
            self.injector.decide("heartbeat")
            if self.injector is not None
            else None
        )
        if kind == "sever":
            self.severed = True
            self.dropped += 1
            return []
        if kind == "asym_partition":
            self.partitioned = True
            self.partition_losses += 1
            return []
        if kind == "drop":
            self.dropped += 1
            return []
        if kind == "delay":
            self.delayed += 1
            self._parked.append(frame)
            return []
        if kind == "truncate":
            frame = frame[: max(1, len(frame) // 2)]
        arrived: List[bytes] = []
        parked, self._parked = self._parked, []
        for late in parked:
            self.late_deliveries += 1
            arrived.append(late)
        arrived.append(frame)
        out: List[Dict[str, Any]] = []
        for raw in arrived:
            decoded = _decode_line(raw.rstrip(b"\n"))
            if decoded is None:
                self.torn += 1
                continue
            self.delivered += 1
            out.append(decoded)
        return out

    def snapshot(self) -> Dict[str, Any]:
        return {
            "severed": self.severed,
            "partitioned": self.partitioned,
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "torn": self.torn,
            "delayed": self.delayed,
            "late_deliveries": self.late_deliveries,
            "partition_losses": self.partition_losses,
        }

    def __repr__(self) -> str:
        state = (
            "severed"
            if self.severed
            else ("partitioned" if self.partitioned else "up")
        )
        return f"HeartbeatChannel({state}, sent={self.sent})"


class FailoverCluster:
    """The promotion coordinator: one primary, its shipper, a lease.

    Wires the pieces together into the failure-handling loop a real
    cluster runs: the primary heartbeats through the channel, the
    detector ages leases on the virtual clock, and when the lease runs
    out :meth:`promote` elects the most-caught-up reachable replica,
    drains it through recovery, bumps the fence, and re-attaches the
    survivors.  Writes go through :meth:`execute`, which tracks
    *cluster acknowledgement* (durable on the primary and mirrored by
    at least one replica) — the durability bar the chaos suite holds
    every promotion to.
    """

    def __init__(
        self,
        primary_db: Any,
        primary_name: str = "primary",
        injector: Optional[FaultInjector] = None,
        clock: Optional[VirtualClock] = None,
        lease_timeout: float = 1.0,
        heartbeat_interval: float = 0.25,
        fence: Optional[ClusterFence] = None,
    ) -> None:
        if clock is None:
            clock = injector.clock if injector is not None else VirtualClock()
        self.clock = clock
        self.injector = injector
        self.fence = fence if fence is not None else ClusterFence()
        self.detector = FailureDetector(clock, lease_timeout)
        self.channel = HeartbeatChannel(injector)
        self.heartbeat_interval = heartbeat_interval
        self.primary_db = primary_db
        self.primary_name = primary_name
        self.primary_replica: Optional[Replica] = None
        self.shipper = WalShipper(primary_db, injector=injector)
        # The founding primary adopts the fence at the current epoch so
        # a later promotion deposes it (epoch lag -> FencedError).
        primary_db.durability.fence = self.fence
        primary_db.durability.promotion_epoch = self.fence.epoch
        self.deposed: List[Tuple[str, Any]] = []
        self.promotions: List[Dict[str, Any]] = []
        self.heartbeat_seq = 0
        self.primary_crashed = False
        # Statement tags acked at cluster level (semi-sync).
        self.cluster_acked: List[Any] = []
        self.local_only: List[Any] = []
        # Fill the founding lease so time zero is not a spurious expiry.
        self.detector.observe(primary_name, self.fence.epoch)

    # -- membership ----------------------------------------------------------

    def attach(self, replica: Replica) -> ReplicationLink:
        return self.shipper.attach(replica)

    @property
    def epoch(self) -> int:
        return self.fence.epoch

    # -- control plane -------------------------------------------------------

    def heartbeat(self) -> bool:
        """The primary sends one lease renewal; returns whether its
        lease was actually renewed (faults may eat the heartbeat, and a
        crashed primary has no pulse at all)."""
        if self.primary_crashed:
            return False
        self.heartbeat_seq += 1
        record = {
            "op": "heartbeat",
            "node": self.primary_name,
            "epoch": self.primary_epoch(),
            "seq": self.heartbeat_seq,
        }
        renewed = False
        for delivered in self.channel.send(record):
            if self.detector.observe(
                delivered.get("node", ""),
                delivered.get("epoch", -1),
                min_epoch=self.fence.epoch,
            ):
                renewed = renewed or (
                    delivered.get("node") == self.primary_name
                )
        return renewed

    def tick(self, advance: float = 0.0, heartbeats: int = 1) -> None:
        """Advance virtual time and let the primary attempt heartbeats
        — the cluster's idle loop, collapsed for tests."""
        for _ in range(max(1, heartbeats)):
            if advance:
                self.clock.sleep(advance / max(1, heartbeats))
            self.heartbeat()

    def primary_suspected(self) -> bool:
        return self.detector.expired(self.primary_name)

    def primary_epoch(self) -> int:
        durability = self.primary_db.durability
        return durability.promotion_epoch if durability is not None else -1

    # -- data plane ----------------------------------------------------------

    def execute(self, sql: str, tag: Any = None):
        """One write through the cluster: execute on the primary, ship,
        and record whether the statement reached cluster-ack (durable
        on the primary *and* mirrored by >= 1 replica).

        ``tag`` labels the statement for the ack ledgers; the chaos
        suite tags every write and later checks each ledger entry
        against the promoted survivor's state.
        """
        if self.primary_crashed:
            raise ReplicaUnavailableError(
                f"primary {self.primary_name!r} is down"
            )
        result = self.primary_db.execute(sql)
        if tag is not None:
            if self.replicate():
                self.cluster_acked.append(tag)
            else:
                self.local_only.append(tag)
        else:
            self.replicate()
        return result

    def replicate(self) -> bool:
        """One shipping round; True when >= 1 replica has mirrored the
        primary's whole durable frontier (semi-sync ack)."""
        durability = self.primary_db.durability
        if durability is None:
            return False
        self.shipper.pump()
        wal = durability.wal
        durable = wal.offset()
        for link in self.shipper.links.values():
            replica = link.replica
            if (
                link.severed
                or replica.dead
                or replica.db is None
                or link.generation != wal.generation
            ):
                continue
            if replica.ack() >= durable:
                return True
        return False

    # -- failure handling ----------------------------------------------------

    def kill_primary(self) -> None:
        """Abrupt primary death: the process is gone; its directory (and
        the shared fence) survive for a later :meth:`rejoin_deposed`."""
        if self.primary_db.durability is not None:
            self.primary_db.durability.close()
        self.primary_crashed = True

    def electable(self) -> List[ReplicationLink]:
        """Links promotion may consider: live replica, unsevered link."""
        return [
            link
            for link in self.shipper.links.values()
            if not link.severed
            and not link.replica.dead
            and link.replica.db is not None
        ]

    def promote(self, force: bool = False) -> Dict[str, Any]:
        """Fail over: elect, drain, fence, re-attach.

        Refuses while the primary's lease is still live (unless
        ``force``) — promotion must never race a healthy primary.
        Returns a promotion report (epoch, winner, ack spread, virtual
        detection-to-writable duration).
        """
        started = self.clock.now
        if not force and not self.primary_suspected():
            raise PromotionError(
                f"primary {self.primary_name!r} still holds its lease "
                f"({self.detector.remaining(self.primary_name):.3f}s "
                f"left); refusing to promote behind a live primary"
            )
        candidates = self.electable()
        if not candidates:
            raise PromotionError(
                "no reachable live replica to promote: every link is "
                "severed, dead, or detached"
            )
        acks = {
            link.replica.name: link.replica.ack() for link in candidates
        }
        winner = max(candidates, key=lambda link: acks[link.replica.name])
        replica = winner.replica
        epoch = self.fence.advance()
        try:
            new_db = replica.promote(epoch, self.fence)
        except PromotionError:
            raise
        except Exception as error:  # drain failed: no writable primary
            raise PromotionError(
                f"elected replica {replica.name!r} failed to drain its "
                f"transaction tail through recovery: {error}"
            ) from error
        old_shipper = self.shipper
        old_name = self.primary_name
        old_db = self.primary_db
        self.shipper = WalShipper(new_db, injector=self.injector)
        survivors = []
        unreachable = []
        for link in old_shipper.links.values():
            if link.replica is replica:
                continue
            if link.severed or link.replica.dead or link.replica.db is None:
                # Partitioned/dead survivor: the partition (a property
                # of the old link) does not vanish because membership
                # changed.  It rejoins by a plain attach() once
                # reachable — full resync rebases it.
                unreachable.append(link.replica.name)
                continue
            try:
                self.shipper.attach(link.replica)
                survivors.append(link.replica.name)
            except ReplicaUnavailableError:
                unreachable.append(link.replica.name)
        # Crashed or merely deposed, the old primary's directory (and
        # db handle) are kept around so rejoin_deposed can bring the
        # node back as a replica.
        self.deposed.append((old_name, old_db))
        self.primary_db = new_db
        self.primary_name = replica.name
        self.primary_replica = replica
        self.primary_crashed = False
        self.detector.forget(old_name)
        self.detector.observe(replica.name, epoch)
        self.channel.heal()
        report = {
            "epoch": epoch,
            "winner": replica.name,
            "deposed": old_name,
            "acks": acks,
            "survivors": survivors,
            "unreachable": unreachable,
            "virtual_duration": self.clock.now - started,
        }
        self.promotions.append(report)
        return report

    def maybe_failover(self) -> Optional[Dict[str, Any]]:
        """The watchdog step: promote iff the lease has run out and a
        candidate exists; None when the primary still looks healthy."""
        if not self.primary_suspected():
            return None
        return self.promote()

    def rejoin_deposed(self, name: Optional[str] = None) -> Replica:
        """Bring a deposed (or crashed old) primary back as a replica.

        The node's own history past the last shipped point is
        irrelevant now — some of it may even be fenced-off divergence —
        so it rejoins through the one safe path: a full resync image
        from the current primary (:meth:`Replica.install_resync`, via
        the shipper's attach).
        """
        if not self.deposed:
            raise PromotionError("no deposed primary to rejoin")
        if name is None:
            index = len(self.deposed) - 1
        else:
            for index, (node, _db) in enumerate(self.deposed):
                if node == name:
                    break
            else:
                raise PromotionError(f"no deposed primary named {name!r}")
        node, old_db = self.deposed.pop(index)
        old_db.durability.close()
        replica = Replica(old_db.durability.path, name=f"rejoined-{node}")
        self.shipper.attach(replica)
        return replica

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {
            "epoch": self.fence.epoch,
            "primary": self.primary_name,
            "primary_crashed": self.primary_crashed,
            "replicas": sorted(self.shipper.links),
            "promotions": len(self.promotions),
            "cluster_acked": len(self.cluster_acked),
            "local_only": len(self.local_only),
            "detector": self.detector.snapshot(),
            "channel": self.channel.snapshot(),
        }

    def __repr__(self) -> str:
        return (
            f"FailoverCluster(primary={self.primary_name!r}, "
            f"epoch={self.fence.epoch}, "
            f"replicas={len(self.shipper.links)})"
        )
