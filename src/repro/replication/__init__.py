"""WAL-shipped read replicas: scale-out with staleness-as-currency.

The paper's currency model (Section 3.3) prices how far a *data
characterization* may have drifted: after ``u`` updates against ``n``
rows, trust it with margin ``u/n``.  A read replica lagging the primary
by ``u`` committed records is exactly such a stale-but-bounded
characterization of the primary's state — so replica read routing
reuses the same arithmetic that governs soft-constraint trust, instead
of inventing a second staleness story.

The pieces:

* :class:`~repro.replication.shipper.WalShipper` — primary-side,
  pull-cursor shipping of framed WAL bytes, never past the durable
  (flushed) frontier;
* :class:`~repro.replication.replica.Replica` — a byte-prefix WAL
  mirror plus streaming committed-transaction apply through the
  recovery code path, which is what makes the replica *bit-identical*
  to the primary's committed prefix (the crash differential's
  fingerprint verifies it) and makes replica restart literally crash
  recovery;
* :class:`~repro.replication.shipper.ReplicationLink` — the simulated
  unreliable network, consulting the fault injector's ``net_frame``
  site (drop / truncate / delay / sever);
* :class:`~repro.concurrency.routing.RoutedSession` — writes to the
  primary, reads to replicas under a per-query ``max_staleness``
  currency bound, primary fallback when every replica is too stale or
  down (graceful degradation, never a silently-wrong answer).

The replication chaos differential (``pytest -m replication``) kills,
partitions, and restarts replicas mid-stream under frame faults and
requires fingerprint bit-identity plus typed-errors-only behavior.

On top of the fleet sits automatic failover
(:mod:`~repro.replication.failover`): lease-based failure detection
over a fault-injectable ``heartbeat`` site, election of the
most-caught-up reachable replica, a drain through the recovery replay
path, and epoch fencing that turns a deposed primary's writes into
typed :class:`~repro.errors.FencedError` rejections.  The failover
chaos suite (``pytest -m failover``) kills and partitions primaries
mid-commit-storm and requires zero cluster-acked commits lost and
fingerprint bit-identity across every promotion.
"""

from repro.replication.failover import (
    ClusterFence,
    FailoverCluster,
    FailureDetector,
    HeartbeatChannel,
)
from repro.replication.replica import Replica, ReplicaLag
from repro.replication.shipper import ReplicationLink, WalShipper

__all__ = [
    "ClusterFence",
    "FailoverCluster",
    "FailureDetector",
    "HeartbeatChannel",
    "Replica",
    "ReplicaLag",
    "ReplicationLink",
    "WalShipper",
]
