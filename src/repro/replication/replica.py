"""The read replica: a WAL-mirroring, continuously-recovering twin.

A :class:`Replica` owns its own database directory.  Its local WAL is a
**byte prefix mirror** of the primary's log (same framed lines, same
CRCs, same offsets modulo the resync base), which is what makes every
replication guarantee reduce to one already proven by the crash
differential: restart recovery is literally
:meth:`~repro.durability.manager.DurabilityManager.recover` over the
mirrored prefix, and bit-identity with the primary's committed prefix
falls out of replaying the identical bytes through the identical
``_apply`` path.

Streaming apply buffers records per transaction and applies them only
when the transaction's commit record arrives — a replica must never
show uncommitted work, and it has no undo log to take it back with.  An
abort record drops the buffer; records logged outside any transaction
apply immediately (recovery treats them as unconditional winners too).

Staleness is the paper's currency model: every committed-but-unshipped
WAL record may flip one row of the replica's answer, so a replica
``records_behind`` records on a database of ``n`` rows serves reads
with the same ``u/n`` margin of error a statistical soft constraint
carries after ``u`` updates (Section 3.3).  The router compares that
margin against each query's ``max_staleness`` bound.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.api import SoftDB
from repro.durability.checkpoint import write_checkpoint
from repro.durability.manager import CHECKPOINT_NAME, WAL_NAME
from repro.durability.wal import _decode_line
from repro.errors import (
    PromotionError,
    ReadOnlyReplicaError,
    ReplicaUnavailableError,
    ReplicationError,
    ReproError,
    ResyncRequiredError,
)
from repro.resilience.faults import CrashSchedule, SimulatedCrash
from repro.softcon.currency import CurrencyModel
from repro.sql import ast
from repro.sql.parser import parse_statement

__all__ = ["Replica", "ReplicaLag"]

#: WAL ops that change the catalog's shape; applying one invalidates
#: every plan the replica's cache compiled against the old shape.
_DDL_OPS = ("create_table", "create_index", "drop_table", "add_constraint")


class ReplicaLag:
    """One replica's staleness snapshot, as of the last shipment."""

    __slots__ = ("bytes_behind", "records_behind", "margin")

    def __init__(
        self, bytes_behind: int, records_behind: int, margin: float
    ) -> None:
        self.bytes_behind = bytes_behind
        self.records_behind = records_behind
        self.margin = margin

    def __repr__(self) -> str:
        return (
            f"ReplicaLag(bytes={self.bytes_behind}, "
            f"records={self.records_behind}, margin={self.margin:.4f})"
        )


class Replica:
    """A read-only twin kept caught up by WAL shipping.

    Parameters
    ----------
    path:
        The replica's own directory (mirrored WAL + installed images).
    name:
        Display/routing name; defaults to the directory name.
    crash_points:
        Optional :class:`~repro.resilience.faults.CrashSchedule`.  The
        ``wal_append`` site is visited once per mirrored record, so a
        scheduled crash kills the replica mid-stream with a torn final
        record — exactly what the primary-side crash suite inflicts.
    """

    def __init__(
        self,
        path: Any,
        name: Optional[str] = None,
        crash_points: Optional[CrashSchedule] = None,
    ) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.name = name or f"replica-{self.path.name}"
        self.crash_points = crash_points
        # One mutex covers ingest, reads, and lifecycle: the shipper may
        # pump from one thread while readers query from others.
        self._mutex = threading.RLock()
        self.db: Optional[SoftDB] = None
        # Primary-stream offset corresponding to local WAL offset 0
        # (the resync base); persisted through the installed image.
        self._base = 0
        # Uncommitted transactions mid-stream: txn id -> buffered records.
        self._pending: Dict[int, List[Dict[str, Any]]] = {}
        self.dead = False
        # Lag knowledge as of the last shipment (see note_lag).
        self._known_durable = 0
        self._records_behind = 0
        # Instrumentation.
        self.lines_received = 0
        self.txns_applied = 0
        self.rows_applied = 0
        self.duplicates = 0
        self.torn_frames = 0
        self.gap_rejects = 0
        self.restarts = 0
        self.apply_warnings: List[str] = []
        # Highest promotion epoch seen in the shipped stream (0 = the
        # founding primary's epoch).  Promotion flips this node itself
        # into a primary; see :meth:`promote`.
        self.promotion_epoch = 0
        self.promoted = False

    # -- lifecycle -----------------------------------------------------------

    def install_resync(self, payload: Dict[str, Any], base: int) -> None:
        """Install a full primary image and restart streaming from ``base``.

        The payload is a primary ``_build_payload()`` snapshot; it is
        rebased to local offset 0 (the mirror restarts empty) and the
        base is persisted inside the image's session state so a replica
        restart recovers it along with everything else.
        """
        with self._mutex:
            if self.db is not None:
                self.db.durability.close()
                self.db = None
            payload = dict(payload)
            session = dict(payload["session"])
            session["replication_base"] = base
            payload["session"] = session
            payload["wal_offset"] = 0
            wal_path = self.path / WAL_NAME
            if wal_path.exists():
                wal_path.unlink()
            write_checkpoint(self.path / CHECKPOINT_NAME, payload)
            self._pending = {}
            self._open()

    def _open(self) -> None:
        """(Re)build the live stack from the directory: full recovery
        over the mirrored prefix, then pending-buffer reconstruction."""
        self.db = SoftDB.open(self.path, crash_points=self.crash_points)
        self._base = self.db.durability.session_state.get(
            "replication_base", 0
        )
        self.promotion_epoch = max(
            self.promotion_epoch, self.db.durability.promotion_epoch
        )
        self.dead = False
        self._rebuild_pending()

    def _rebuild_pending(self) -> None:
        """Re-buffer transactions whose records are mirrored but whose
        commit/abort has not arrived yet (recovery skipped them; the
        stream will resolve them)."""
        records, _end, _torn = self.db.durability.wal.scan(0)
        pending: Dict[int, List[Dict[str, Any]]] = {}
        for record in records:
            op = record.get("op")
            txn = record.get("txn")
            if op in ("commit", "abort"):
                pending.pop(txn, None)
            elif op in ("epoch", "promote") or txn is None:
                continue
            else:
                pending.setdefault(txn, []).append(record)
        self._pending = pending

    def kill(self) -> None:
        """Abrupt death: the in-memory session is gone; only the
        mirrored log and the last installed image survive for
        :meth:`restart`."""
        with self._mutex:
            self.dead = True

    def restart(self) -> None:
        """Crash-recover from local state and resume streaming.

        Runs the standard recovery pipeline over the mirrored prefix —
        committed replay, torn-tail truncation, storage verification —
        then rebuilds the pending buffer.  The acknowledged offset
        regresses to the intact mirrored prefix, so the shipper simply
        re-ships from there.
        """
        with self._mutex:
            if self.db is not None:
                self.db.durability.close()
                self.db = None
            self._pending = {}
            self._open()
            self.restarts += 1

    def close(self) -> None:
        with self._mutex:
            self.dead = True
            if self.db is not None:
                self.db.durability.close()
                self.db = None

    def checkpoint(self) -> int:
        """Persist the applied state so a restart recovers without
        replaying the whole mirrored prefix.  Requires a transaction-
        consistent point in the stream (no buffered transactions)."""
        with self._mutex:
            self._require_up()
            if self._pending:
                raise ReplicationError(
                    f"replica {self.name!r} cannot checkpoint with "
                    f"{len(self._pending)} transaction(s) still streaming"
                )
            return self.db.checkpoint()

    def promote(self, epoch: int, fence: Any) -> SoftDB:
        """Flip this replica into the cluster's writable primary.

        Promotion drains the buffered transaction tail through the
        *recovery replay path* — close and reopen, which replays every
        committed transaction in the mirrored prefix and truncates the
        uncommitted tail exactly as a crash restart would — so the new
        primary starts from a transaction-consistent, verified state.
        It then stamps ``epoch`` into its WAL (a ``promote`` record) and
        attaches the cluster ``fence`` so its own writes carry the new
        epoch, and flips read-write.

        Returns the now-writable :class:`~repro.api.SoftDB`; the caller
        (the promotion coordinator) hangs a fresh ``WalShipper`` off it
        and re-attaches the surviving replicas.
        """
        with self._mutex:
            self._require_up()
            if epoch <= self.promotion_epoch:
                raise PromotionError(
                    f"replica {self.name!r} already saw promotion epoch "
                    f"{self.promotion_epoch}; refusing stale epoch {epoch}"
                )
            # Drain: recovery replays the committed mirrored prefix and
            # truncates the uncommitted tail (those transactions never
            # committed anywhere the cluster acknowledged).
            self.db.durability.close()
            self.db = None
            self._pending = {}
            self._open()
            self.db.durability.stamp_promotion(epoch, fence)
            self.promotion_epoch = epoch
            self.promoted = True
            return self.db

    # -- the stream ----------------------------------------------------------

    def ack(self) -> int:
        """The primary-stream offset this replica has durably mirrored
        (the shipper's pull cursor — authoritative, gap-free)."""
        with self._mutex:
            self._require_up()
            return self._base + self.db.durability.wal.offset()

    def receive(self, offset: int, data: bytes) -> int:
        """Ingest one shipment of framed WAL bytes at stream ``offset``.

        Returns the count of bytes accepted (complete, CRC-intact
        frames mirrored and dispatched).  Continuity is enforced, never
        assumed: an overlap with already-mirrored bytes is skipped as a
        duplicate (late/re-shipped packets), a torn or corrupt frame
        rejects the remainder for re-shipment, and a gap — bytes from
        beyond the mirrored prefix — raises
        :class:`~repro.errors.ResyncRequiredError` rather than applying
        a stream with a hole in it.
        """
        with self._mutex:
            self._require_up()
            wal = self.db.durability.wal
            expected = self._base + wal.offset()
            if offset > expected:
                self.gap_rejects += 1
                raise ResyncRequiredError(
                    f"replica {self.name!r} mirrored up to stream offset "
                    f"{expected} but was offered {offset}: gap in the "
                    f"shipped log"
                )
            if offset < expected:
                overlap = expected - offset
                if overlap >= len(data):
                    self.duplicates += 1
                    return 0
                data = data[overlap:]
            position = 0
            while True:
                newline = data.find(b"\n", position)
                if newline == -1:
                    if position < len(data):
                        self.torn_frames += 1
                    break
                line = data[position : newline + 1]
                record = _decode_line(line[:-1])
                if record is None:
                    self.torn_frames += 1
                    break
                self._ingest(line, record)
                position = newline + 1
            wal.flush()
            return position

    def _ingest(self, line: bytes, record: Dict[str, Any]) -> None:
        """Mirror one framed line and dispatch its record."""
        wal = self.db.durability.wal
        schedule = self.crash_points
        if schedule is not None and schedule.should_crash("wal_append"):
            wal.tear(line)
            self.dead = True
            raise SimulatedCrash(
                "simulated replica crash during WAL mirror",
                site="wal_append",
            )
        wal.mirror_line(line)
        self.lines_received += 1
        op = record.get("op")
        txn = record.get("txn")
        if op == "commit":
            for buffered in self._pending.pop(txn, ()):
                self._apply(buffered)
            self.txns_applied += 1
        elif op == "abort":
            self._pending.pop(txn, None)
        elif op == "promote":
            # The stream's primary changed under us at this exact point
            # in history; remember the epoch so a later promotion of
            # THIS replica continues the epoch sequence, never reuses
            # one.
            self.promotion_epoch = max(
                self.promotion_epoch, record.get("epoch", 0)
            )
        elif op == "epoch":
            pass
        elif txn is None:
            self._apply(record)
        else:
            self._pending.setdefault(txn, []).append(record)

    def _apply(self, record: Dict[str, Any]) -> None:
        """Redo one committed record through the recovery apply path."""
        manager = self.db.durability
        manager._replaying = True
        try:
            self.rows_applied += manager._apply(
                record, {"warnings": self.apply_warnings}
            )
        except ReproError as error:
            # A record that cannot be applied means the twin has forked;
            # serving reads from it would violate the bit-identity
            # contract, so the replica takes itself out of rotation.
            self.dead = True
            raise ReplicationError(
                f"replica {self.name!r} failed to apply a shipped "
                f"{record.get('op')!r} record: {error}"
            ) from error
        finally:
            manager._replaying = False
        if record.get("op") in _DDL_OPS:
            self.db.plan_cache.clear()

    # -- staleness -----------------------------------------------------------

    def note_lag(self, durable_offset: int, records_behind: int) -> None:
        """Shipper callback: the primary's durable frontier and how many
        committed records sit between it and our ack."""
        with self._mutex:
            self._known_durable = durable_offset
            self._records_behind = records_behind

    def lag(self) -> ReplicaLag:
        with self._mutex:
            if self.db is None or self.dead:
                return ReplicaLag(0, 0, 1.0)
            local = self._base + self.db.durability.wal.offset()
            return ReplicaLag(
                max(0, self._known_durable - local),
                self._records_behind,
                self.currency_bound(),
            )

    def currency_bound(self) -> float:
        """This replica's staleness as a currency margin of error.

        Each unshipped committed record may flip one row's contribution
        to an answer, so the bound is the paper's ``u/n`` arithmetic
        with ``u`` = records behind and ``n`` = the replica's row count
        — computed by the same :class:`CurrencyModel` that prices
        soft-constraint staleness.
        """
        with self._mutex:
            if self.db is None or self.dead:
                return 1.0
            catalog = self.db.database.catalog
            rows = sum(
                catalog.table(name).row_count
                for name in catalog.table_names()
            )
            model = CurrencyModel(rows)
            model.record_update(self._records_behind)
            return model.margin_of_error

    # -- reads ---------------------------------------------------------------

    def execute(self, sql: str):
        """Run one read-only statement against the replica's state.

        Anything but a query raises
        :class:`~repro.errors.ReadOnlyReplicaError`: replicas apply the
        primary's log verbatim, and a local write would fork the twin.
        """
        statement = parse_statement(sql)
        if not self.promoted and not isinstance(
            statement, (ast.SelectStatement, ast.UnionAll)
        ):
            raise ReadOnlyReplicaError(
                f"replica {self.name!r} is read-only; route "
                f"{type(statement).__name__} to the primary"
            )
        with self._mutex:
            self._require_up()
            return self.db.execute(sql)

    def query(self, sql: str) -> List[Dict[str, Any]]:
        return self.execute(sql).rows

    # -- internals -----------------------------------------------------------

    def _require_up(self) -> None:
        if self.dead or self.db is None:
            raise ReplicaUnavailableError(
                f"replica {self.name!r} is down"
            )

    def __repr__(self) -> str:
        state = "dead" if self.dead else ("up" if self.db else "detached")
        return (
            f"Replica({self.name}, {state}, base={self._base}, "
            f"pending={len(self._pending)})"
        )
