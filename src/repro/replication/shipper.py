"""The primary-side WAL shipper and its unreliable-network link.

Shipping is **pull-cursor** style: each pump asks the replica how far
it has durably mirrored (:meth:`Replica.ack`) and ships the byte range
``[ack, durable_offset)`` of the primary's log — never past
``durable_offset``, the WAL's flushed frontier, so a record a crash
could still revoke cannot reach a replica (the byte-granular analogue
of the group committer publishing ``_flushed_seq``).  Chunks are cut at
frame boundaries; the replica re-validates every CRC and its own offset
continuity, so the link is free to misbehave.

And misbehave it does: a :class:`ReplicationLink` consults a
:class:`~repro.resilience.faults.FaultInjector` at the ``net_frame``
site on every shipment.  ``drop`` loses the shipment (the cursor never
advanced — it is simply re-shipped), ``truncate`` delivers a torn
prefix (the replica accepts the intact frames and rejects the tail),
``delay`` parks the shipment and delivers it late (by then a duplicate,
which the replica's continuity check ignores), and ``sever`` cuts the
link until :meth:`ReplicationLink.restore` — a partition of one
replica.

Two conditions force a **full resync** instead of incremental shipping:
a log-generation mismatch (the primary compacted its WAL, so the
replica's cursor points into a log that no longer exists) and an ack
beyond the durable frontier.  Either way the shipper rebuilds the
replica from a fresh primary image rather than shipping across a gap.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import (
    ReplicaUnavailableError,
    ReplicationError,
    ResyncRequiredError,
)
from repro.replication.replica import Replica
from repro.resilience.faults import FaultInjector

__all__ = ["ReplicationLink", "WalShipper"]


class ReplicationLink:
    """The simulated network pipe between the shipper and one replica."""

    def __init__(
        self, replica: Replica, injector: Optional[FaultInjector] = None
    ) -> None:
        self.replica = replica
        self.injector = injector
        self.severed = False
        # Primary log generation this link's cursor is valid for; -1
        # forces the initial full resync at attach.
        self.generation = -1
        self._parked: List[Tuple[int, bytes]] = []
        self.shipments = 0
        self.dropped = 0
        self.truncated = 0
        self.delayed = 0
        self.late_deliveries = 0

    def sever(self) -> None:
        """Cut the link (partition): every shipment raises until
        :meth:`restore`."""
        self.severed = True

    def restore(self) -> None:
        self.severed = False

    def deliver(self, offset: int, data: bytes) -> int:
        """Ship one chunk through the (possibly faulty) link.

        Returns the bytes the replica accepted; raises
        :class:`~repro.errors.ReplicaUnavailableError` when the link is
        (or just became) severed.
        """
        if self.severed:
            raise ReplicaUnavailableError(
                f"link to {self.replica.name!r} is severed"
            )
        self.shipments += 1
        kind = (
            self.injector.decide("net_frame")
            if self.injector is not None
            else None
        )
        if kind == "sever":
            self.severed = True
            raise ReplicaUnavailableError(
                f"link to {self.replica.name!r} severed mid-shipment"
            )
        if kind == "drop":
            self.dropped += 1
            return 0
        if kind == "delay":
            self.delayed += 1
            self._parked.append((offset, data))
            return 0
        if kind == "truncate":
            self.truncated += 1
            data = data[: max(1, len(data) // 2)]
        accepted = self.replica.receive(offset, data)
        self._flush_parked()
        return accepted

    def _flush_parked(self) -> None:
        """Deliver delayed shipments late.

        By now their byte ranges overlap what the replica already
        mirrored, so its continuity check skips them as duplicates —
        the test that late packets cannot double-apply.  A late packet
        arriving at a dead replica, or one whose offset no longer fits
        the stream at all, just vanishes (as lost packets do).
        """
        parked, self._parked = self._parked, []
        for offset, data in parked:
            self.late_deliveries += 1
            try:
                self.replica.receive(offset, data)
            except (ReplicaUnavailableError, ResyncRequiredError):
                pass

    def __repr__(self) -> str:
        state = "severed" if self.severed else "up"
        return (
            f"ReplicationLink({self.replica.name}, {state}, "
            f"shipments={self.shipments})"
        )


class WalShipper:
    """Streams the primary's durable WAL prefix to attached replicas."""

    def __init__(
        self,
        db,
        injector: Optional[FaultInjector] = None,
        max_chunk: int = 64 * 1024,
    ) -> None:
        if db.durability is None:
            raise ReplicationError(
                "replication needs a durable primary; construct it with "
                "SoftDB.open(path)"
            )
        self.db = db
        self.injector = injector
        self.max_chunk = max_chunk
        self.links: Dict[str, ReplicationLink] = {}
        self.pumps = 0
        self.resyncs = 0
        self.bytes_shipped = 0

    # -- membership ----------------------------------------------------------

    def attach(self, replica: Replica) -> ReplicationLink:
        """Bootstrap ``replica`` from a full primary image and start
        shipping to it.  Requires a statement boundary on the primary
        (the bootstrap image must be transaction-consistent)."""
        link = ReplicationLink(replica, self.injector)
        self.links[replica.name] = link
        self.full_resync(link)
        return link

    def detach(self, replica: Replica) -> None:
        self.links.pop(replica.name, None)

    # -- shipping ------------------------------------------------------------

    def pump(self) -> Dict[str, Union[int, str]]:
        """One shipment round to every attached replica.

        Returns per-replica status: bytes accepted (0 = caught up),
        ``"resync"`` when a full resync was performed, or
        ``"unavailable"`` when the replica is dead / the link severed
        (a partitioned replica just falls behind; nothing is lost).
        """
        self.pumps += 1
        out: Dict[str, Union[int, str]] = {}
        for name, link in self.links.items():
            try:
                out[name] = self.pump_one(link)
            except ReplicaUnavailableError:
                out[name] = "unavailable"
        return out

    def pump_one(self, link: ReplicationLink) -> Union[int, str]:
        """One shipment attempt to one replica."""
        replica = link.replica
        if replica.dead or replica.db is None:
            raise ReplicaUnavailableError(
                f"replica {replica.name!r} is down"
            )
        wal = self.db.durability.wal
        durable = wal.offset()  # flush + publish the durable frontier
        if link.generation != wal.generation:
            # The primary compacted (or otherwise reset) its log since
            # this replica last shipped; byte offsets are meaningless
            # across generations, so incremental shipping must stop.
            self.full_resync(link)
            return "resync"
        ack = replica.ack()
        if ack > durable:
            # Checkpoint truncation raced a lagging replica: the bytes
            # its cursor points at no longer exist.  Never ship across
            # the gap — rebuild from a fresh image.
            self.full_resync(link)
            return "resync"
        if ack == durable:
            replica.note_lag(durable, 0)
            return 0
        chunk = self._read_chunk(wal, ack, durable)
        try:
            accepted = link.deliver(ack, chunk)
        except ResyncRequiredError:
            self.full_resync(link)
            return "resync"
        self.bytes_shipped += accepted
        shipped_to = replica.ack()
        replica.note_lag(
            durable, self._count_records(wal, shipped_to, durable)
        )
        return accepted

    def pump_until_synced(self, max_rounds: int = 1000) -> bool:
        """Pump until every replica acknowledges the durable frontier;
        False when ``max_rounds`` was not enough (a dead or partitioned
        replica, or a fault schedule that kills every shipment).

        Sync is judged by comparing acks against the frontier, never by
        a round of zero-byte statuses — a shipment the link tore or
        dropped entirely also accepts zero bytes without being caught
        up."""
        wal = self.db.durability.wal
        for _ in range(max_rounds):
            self.pump()
            durable = wal.offset()
            if all(
                not link.severed
                and not link.replica.dead
                and link.replica.db is not None
                and link.generation == wal.generation
                and link.replica.ack() == durable
                for link in self.links.values()
            ):
                return True
        return False

    def full_resync(self, link: ReplicationLink) -> None:
        """Rebuild one replica from a transaction-consistent primary
        image and rebase its cursor to the current end of log."""
        if link.severed:
            raise ReplicaUnavailableError(
                f"cannot resync {link.replica.name!r} over a severed link"
            )
        manager = self.db.durability
        with manager._mutex:
            if manager._open_txns or manager._txn_stack:
                raise ReplicationError(
                    "full resync requires a statement boundary on the "
                    "primary (no open transactions)"
                )
            manager._flush_run()
            payload = manager._build_payload()
            generation = manager.wal.generation
        base = payload["wal_offset"]
        link.replica.install_resync(payload, base)
        link.generation = generation
        link.replica.note_lag(base, 0)
        self.resyncs += 1

    # -- lag reporting -------------------------------------------------------

    def refresh_lag(self, link: ReplicationLink):
        """Recompute one replica's lag against the *current* durable
        frontier without shipping anything.

        The router calls this before placing a read: lag recorded at
        the last pump is stale the moment the primary commits again, and
        a staleness bound enforced against stale lag data is no bound at
        all.  Returns the fresh :class:`~repro.replication.replica.
        ReplicaLag`, or None when the replica cannot currently be
        routed to (dead, severed, or its cursor needs a resync)."""
        replica = link.replica
        if link.severed or replica.dead or replica.db is None:
            return None
        wal = self.db.durability.wal
        durable = wal.offset()
        if link.generation != wal.generation:
            return None
        ack = replica.ack()
        if ack > durable:
            return None
        behind = (
            self._count_records(wal, ack, durable) if ack < durable else 0
        )
        replica.note_lag(durable, behind)
        return replica.lag()

    def lag_report(self) -> Dict[str, Any]:
        return {
            name: link.replica.lag() for name, link in self.links.items()
        }

    # -- internals -----------------------------------------------------------

    def _read_chunk(self, wal, start: int, end: int) -> bytes:
        """Bytes ``[start, end)`` of the log, cut at a frame boundary
        and capped near ``max_chunk``."""
        with open(wal.path, "rb") as handle:
            handle.seek(start)
            data = handle.read(end - start)
        if len(data) > self.max_chunk:
            cut = data.rfind(b"\n", 0, self.max_chunk)
            if cut == -1:
                # A single frame larger than the chunk: extend to its
                # terminator rather than shipping a guaranteed-torn one.
                cut = data.find(b"\n")
            if cut != -1:
                data = data[: cut + 1]
        return data

    def _count_records(self, wal, start: int, end: int) -> int:
        """Committed-stream records between two offsets (frame count)."""
        if end <= start:
            return 0
        with open(wal.path, "rb") as handle:
            handle.seek(start)
            return handle.read(end - start).count(b"\n")

    def __repr__(self) -> str:
        return (
            f"WalShipper(replicas={sorted(self.links)}, "
            f"pumps={self.pumps}, resyncs={self.resyncs})"
        )
