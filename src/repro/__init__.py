"""repro — soft constraints for query optimization.

A from-scratch reproduction of Godfrey, Gryz & Zuzarte, *"Exploiting
Constraint-Like Data Characterizations in Query Optimization"* (SIGMOD
2001): a relational engine and optimizer in which discovered,
constraint-like characterizations of the data — **soft constraints** —
drive query rewriting (when absolute) and cardinality estimation (when
statistical).

Public entry points:

* :class:`repro.SoftDB` — a complete database session (SQL in, rows out);
* :mod:`repro.softcon` — the soft-constraint classes, registry,
  maintenance policies and exception tables;
* :mod:`repro.discovery` — miners for linear correlations, join holes,
  functional dependencies and ranges, plus workload-driven selection;
* :mod:`repro.optimizer` — the rewrite engine and cost-based optimizer;
* :mod:`repro.workload` — deterministic synthetic scenario generators used
  by the examples and benchmarks.
"""

from repro.api import SoftDB
from repro.optimizer.planner import OptimizerConfig

__version__ = "1.0.0"

__all__ = ["OptimizerConfig", "SoftDB", "__version__"]
