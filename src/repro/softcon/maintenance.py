"""Maintenance policies for soft constraints (paper Section 4.3).

When an update violates an ACTIVE absolute soft constraint, the registry
applies the constraint's maintenance policy:

* :class:`DropPolicy` — "the maintenance policy of last resort": overturn
  the ASC (state VIOLATED), invalidating every dependent cached plan.
* :class:`RepairPolicy` — *synchronous repair* where the constraint class
  supports a cheap one: min/max bounds widen, linear correlations widen
  their deviation, join holes are split around the violating point (the
  suboptimal-but-sound repair the paper describes), and plain check SCs
  are demoted to statistical (their confidence absorbs the violation).
* :class:`AsyncRepairPolicy` — overturn now, queue the constraint for a
  full re-verification later (``run_pending``), which reinstates it with a
  freshly-measured confidence or drops it below a threshold.

Every policy action is counted so E8 can report maintenance overhead.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.softcon.base import SCState, SoftConstraint
from repro.softcon.holes import JoinHolesSC
from repro.softcon.joinlinear import JoinLinearSC
from repro.softcon.linear import LinearCorrelationSC
from repro.softcon.minmax import MinMaxSC

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import Database
    from repro.softcon.registry import SoftConstraintRegistry


class MaintenancePolicy:
    """Base policy: what to do when an ACTIVE ASC is violated."""

    name = "abstract"

    def on_violation(
        self,
        registry: "SoftConstraintRegistry",
        constraint: SoftConstraint,
        violating_row: Optional[dict],
    ) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class DropPolicy(MaintenancePolicy):
    """Overturn the constraint; dependent plans are invalidated."""

    name = "drop"

    def on_violation(
        self,
        registry: "SoftConstraintRegistry",
        constraint: SoftConstraint,
        violating_row: Optional[dict],
    ) -> None:
        registry.overturn(constraint)


class RepairPolicy(MaintenancePolicy):
    """Synchronous, class-specific repair; falls back to demotion/drop.

    Repairs keep the constraint ACTIVE: the *validity* dependency channel
    does not fire, so plans that rely only on the constraint holding
    (runtime-parameterized ranges, FD simplification) survive.  The
    *values* channel does fire — a widened bound or split hole changes the
    statement, and any plan that inlined the old values must be dropped
    (it would silently lose rows).  A generic check SC has no widening
    form, so it is demoted to a statistical SC instead, invalidating both
    channels.
    """

    name = "repair"

    def on_violation(
        self,
        registry: "SoftConstraintRegistry",
        constraint: SoftConstraint,
        violating_row: Optional[dict],
    ) -> None:
        registry.repairs_performed += 1
        if isinstance(constraint, MinMaxSC) and violating_row is not None:
            constraint.widen_to(violating_row.get(constraint.column_name))
            # The statement changed: plans that inlined the old bounds
            # would silently drop the new row.
            registry.statement_changed(constraint)
            return
        if isinstance(constraint, LinearCorrelationSC) and violating_row is not None:
            residual = constraint.residual(violating_row)
            if residual is not None:
                constraint.epsilon = max(constraint.epsilon, abs(residual))
                registry.statement_changed(constraint)
                return
        if isinstance(constraint, JoinHolesSC) and violating_row is not None:
            a_value = violating_row.get("__a__")
            b_value = violating_row.get("__b__")
            for hole in constraint.holes_hit_by(a_value, b_value):
                constraint.split_hole(hole, a_value, b_value)
            registry.statement_changed(constraint)
            return
        if isinstance(constraint, JoinLinearSC) and violating_row is not None:
            constraint.widen_to_pair(
                violating_row.get("__a__"), violating_row.get("__b__")
            )
            registry.statement_changed(constraint)
            return
        # No cheap repair: demote to statistical (check SCs, FDs).
        registry.demote(constraint)


class AsyncRepairPolicy(MaintenancePolicy):
    """Overturn now; queue for asynchronous re-verification.

    ``run_pending`` is the "light-load period" job: it re-verifies each
    queued constraint against the database.  Constraints that verify clean
    are reinstated as ASCs; partially-violated ones come back as SSCs with
    the measured confidence, unless below ``drop_threshold``.

    ``drop_threshold`` is a bound on the *measured confidence*
    (``(total - violations) / total``), i.e. ``0.5`` means "give up and
    drop the constraint once more than half the rows violate it".
    Exactly-at-threshold confidence keeps the constraint (demoted to a
    statistical SC); only strictly-below drops it.  ``verify`` on an
    empty table yields confidence 1.0, so an emptied table always
    reinstates.
    """

    name = "async_repair"

    def __init__(self, drop_threshold: float = 0.5) -> None:
        if not 0.0 <= drop_threshold <= 1.0:
            raise ValueError(
                f"drop_threshold must be in [0, 1], got {drop_threshold}"
            )
        self.drop_threshold = drop_threshold
        self.queue: List[SoftConstraint] = []

    def on_violation(
        self,
        registry: "SoftConstraintRegistry",
        constraint: SoftConstraint,
        violating_row: Optional[dict],
    ) -> None:
        registry.overturn(constraint)
        if constraint not in self.queue:
            self.queue.append(constraint)

    def run_pending(
        self, registry: "SoftConstraintRegistry", database: "Database"
    ) -> List[Tuple[str, str]]:
        """Process the repair queue; returns (name, outcome) pairs."""
        outcomes: List[Tuple[str, str]] = []
        pending, self.queue = self.queue, []
        for constraint in pending:
            if constraint.state is SCState.DROPPED:
                outcomes.append((constraint.name, "already-dropped"))
                continue
            violations, total = constraint.verify(database)
            registry.async_repairs_run += 1
            if violations == 0:
                constraint.transition(SCState.ACTIVE)
                outcomes.append((constraint.name, "reinstated"))
            elif constraint.confidence >= self.drop_threshold:
                constraint.transition(SCState.ACTIVE)
                outcomes.append((constraint.name, "demoted"))
            else:
                constraint.transition(SCState.DROPPED)
                outcomes.append((constraint.name, "dropped"))
            registry.refresh_currency(constraint, database)
        return outcomes
