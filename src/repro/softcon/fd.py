"""Functional-dependency soft constraints.

Per the paper (Section 2, citing [29]): functional dependencies beyond key
information, when explicitly represented, let the optimizer drop
superfluous GROUP BY / ORDER BY columns, saving sort cost.  Denormalized
schemas are full of such FDs (``city -> state``, ``order_id -> customer
fields``), and they are rarely declared — a natural fit for discovery and
soft representation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.softcon.base import SoftConstraint

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import Database


class FunctionalDependencySC(SoftConstraint):
    """``determinants -> dependents`` within one table.

    An absolute FD SC licenses removing the dependent columns from GROUP
    BY / ORDER BY key lists whenever all determinants are present
    (semantics preserved: within a group the dependents are constant).
    """

    kind = "fd"

    def __init__(
        self,
        name: str,
        table_name: str,
        determinants: Sequence[str],
        dependents: Sequence[str],
        confidence: float = 1.0,
    ) -> None:
        super().__init__(name, confidence)
        if not determinants or not dependents:
            raise ValueError("FD needs non-empty determinant and dependent sets")
        self.table_name = table_name.lower()
        self.determinants = [c.lower() for c in determinants]
        self.dependents = [c.lower() for c in dependents]
        overlap = set(self.determinants) & set(self.dependents)
        if overlap:
            raise ValueError(f"columns {sorted(overlap)} on both sides of FD")

    def table_names(self) -> List[str]:
        return [self.table_name]

    def statement_sql(self) -> str:
        lhs = ", ".join(self.determinants)
        rhs = ", ".join(self.dependents)
        return f"FD {self.table_name}: ({lhs}) -> ({rhs})"

    def row_satisfies(self, row: Dict[str, Any]) -> Optional[bool]:
        raise NotImplementedError(
            "an FD is a whole-table property; use verify()"
        )

    def verify(self, database: "Database") -> Tuple[int, int]:
        """Count rows whose determinant group maps to >1 dependent image.

        A row violates when its determinant values have already been seen
        with a different dependent tuple.  NULL determinants are skipped
        (groups with NULL keys are not comparable).
        """
        table = database.table(self.table_name)
        schema = table.schema
        det_positions = [schema.position(c) for c in self.determinants]
        dep_positions = [schema.position(c) for c in self.dependents]
        images: Dict[Tuple[Any, ...], Tuple[Any, ...]] = {}
        total = 0
        violations = 0
        for row in table.scan_rows():
            total += 1
            key = tuple(row[p] for p in det_positions)
            if any(part is None for part in key):
                continue
            image = tuple(row[p] for p in dep_positions)
            seen = images.get(key)
            if seen is None:
                images[key] = image
            elif seen != image:
                violations += 1
        self.record_verification(violations, total)
        return violations, total

    # -- incremental check support ------------------------------------------------

    def row_conflicts(
        self, database: "Database", row: Dict[str, Any]
    ) -> bool:
        """Whether inserting ``row`` introduces a second dependent image.

        Used for synchronous maintenance of an absolute FD: probe existing
        rows with the same determinant values and compare dependents.
        """
        key = [row.get(c) for c in self.determinants]
        if any(part is None for part in key):
            return False
        matches = database.lookup_key(self.table_name, self.determinants, key)
        if not matches:
            return False
        table = database.table(self.table_name)
        schema = table.schema
        dep_positions = [schema.position(c) for c in self.dependents]
        new_image = tuple(row.get(c) for c in self.dependents)
        for row_id in matches:
            existing = table.fetch_if_live(row_id)
            if existing is None:
                continue
            if tuple(existing[p] for p in dep_positions) != new_image:
                return True
        return False
