"""Join-hole soft constraints: empty regions over a join path.

From the paper (Section 2, citing [8]): for a common join path
``one JOIN two ON one.j = two.j`` and a pair of attributes ``one.a``,
``two.b``, a *hole* is a two-dimensional range ``(a_lo..a_hi, b_lo..b_hi)``
in which the join result contains **no** tuples.  Knowing the maximal
holes lets the optimizer trim range conditions on ``a`` and ``b`` in
queries over that join path, shrinking the ranges that must be scanned.

The constraint stores a set of :class:`Rectangle` holes.  Trimming is the
sound operation of shaving a query rectangle's edges: an edge slab can be
removed when holes completely cover it.  Trimming never removes answer
tuples because holes contain none.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING

from repro.expr.intervals import Interval
from repro.softcon.base import SoftConstraint

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import Database


class Rectangle:
    """A closed 2-D range ``[a_low, a_high] x [b_low, b_high]``."""

    __slots__ = ("a_low", "a_high", "b_low", "b_high")

    def __init__(self, a_low: Any, a_high: Any, b_low: Any, b_high: Any) -> None:
        self.a_low = a_low
        self.a_high = a_high
        self.b_low = b_low
        self.b_high = b_high

    @property
    def a_interval(self) -> Interval:
        return Interval(self.a_low, self.a_high)

    @property
    def b_interval(self) -> Interval:
        return Interval(self.b_low, self.b_high)

    def contains_point(self, a_value: Any, b_value: Any) -> bool:
        return self.a_interval.contains(a_value) and self.b_interval.contains(
            b_value
        )

    def area(self) -> float:
        width_a = self.a_interval.width() or 0.0
        width_b = self.b_interval.width() or 0.0
        return width_a * width_b

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rectangle):
            return NotImplemented
        return (
            self.a_low == other.a_low
            and self.a_high == other.a_high
            and self.b_low == other.b_low
            and self.b_high == other.b_high
        )

    def __hash__(self) -> int:
        return hash((self.a_low, self.a_high, self.b_low, self.b_high))

    def __repr__(self) -> str:
        return (
            f"Rectangle(a=[{self.a_low!r}, {self.a_high!r}], "
            f"b=[{self.b_low!r}, {self.b_high!r}])"
        )


class JoinHolesSC(SoftConstraint):
    """Empty 2-D regions of ``table_one ⋈ table_two`` w.r.t. (a, b).

    Parameters
    ----------
    table_one / table_two:
        The joined tables (attribute ``a`` lives in one, ``b`` in two).
    join_column_one / join_column_two:
        The equi-join columns defining the join path.
    column_a / column_b:
        The profiled attributes.
    holes:
        Maximal empty rectangles (typically found by the discovery
        algorithm in :mod:`repro.discovery.hole_miner`).
    """

    kind = "join_holes"

    def __init__(
        self,
        name: str,
        table_one: str,
        column_a: str,
        table_two: str,
        column_b: str,
        join_column_one: str,
        join_column_two: str,
        holes: Iterable[Rectangle] = (),
        confidence: float = 1.0,
    ) -> None:
        super().__init__(name, confidence)
        self.table_one = table_one.lower()
        self.table_two = table_two.lower()
        self.column_a = column_a.lower()
        self.column_b = column_b.lower()
        self.join_column_one = join_column_one.lower()
        self.join_column_two = join_column_two.lower()
        self.holes: List[Rectangle] = list(holes)

    def table_names(self) -> List[str]:
        return [self.table_one, self.table_two]

    def statement_sql(self) -> str:
        return (
            f"HOLES({len(self.holes)}) OVER {self.table_one}.{self.column_a} "
            f"x {self.table_two}.{self.column_b} ALONG "
            f"{self.table_one}.{self.join_column_one} = "
            f"{self.table_two}.{self.join_column_two}"
        )

    def row_satisfies(self, row: Dict[str, Any]) -> Optional[bool]:
        raise NotImplementedError(
            "join holes are a two-table property; use verify()"
        )

    # -- verification --------------------------------------------------------

    def verify(self, database: "Database") -> Tuple[int, int]:
        """Count join tuples falling inside any hole.

        A violation is a join-result tuple inside a hole (holes must be
        empty).  This performs the join — exactly the expense the paper
        notes makes absolute maintenance of inter-table SCs costly
        (Section 4.3).
        """
        violations = 0
        total = 0
        for a_value, b_value in self.join_pairs(database):
            total += 1
            if self.point_in_hole(a_value, b_value):
                violations += 1
        self.record_verification(violations, total)
        return violations, total

    def join_pairs(self, database: "Database") -> Iterable[Tuple[Any, Any]]:
        """Yield (a, b) for every tuple of the join result (hash join)."""
        one = database.table(self.table_one)
        two = database.table(self.table_two)
        a_pos = one.schema.position(self.column_a)
        join_one_pos = one.schema.position(self.join_column_one)
        b_pos = two.schema.position(self.column_b)
        join_two_pos = two.schema.position(self.join_column_two)
        build: Dict[Any, List[Any]] = {}
        for row in two.scan_rows():
            key = row[join_two_pos]
            if key is not None:
                build.setdefault(key, []).append(row[b_pos])
        for row in one.scan_rows():
            key = row[join_one_pos]
            if key is None:
                continue
            for b_value in build.get(key, ()):
                yield row[a_pos], b_value

    def point_in_hole(self, a_value: Any, b_value: Any) -> bool:
        if a_value is None or b_value is None:
            return False
        return any(hole.contains_point(a_value, b_value) for hole in self.holes)

    # -- range trimming ----------------------------------------------------------

    def trim(
        self, a_range: Interval, b_range: Interval
    ) -> Tuple[Interval, Interval]:
        """Trim a query rectangle against the holes (paper Section 2, [8]).

        Repeatedly shaves edge slabs: if some hole covers the query's full
        ``b`` range and reaches the query's low (or high) ``a`` edge, the
        covered strip of ``a`` can be removed, and symmetrically for ``b``.
        Iterates to a fixpoint.  The result ranges are contained in the
        inputs and exclude only hole area, so the rewrite is sound.
        """
        a_current, b_current = a_range, b_range
        changed = True
        while changed and not (a_current.is_empty or b_current.is_empty):
            changed = False
            for hole in self.holes:
                trimmed = _shave(a_current, b_current, hole.a_interval, hole.b_interval)
                if trimmed is not None and trimmed != a_current:
                    a_current = trimmed
                    changed = True
                trimmed = _shave(b_current, a_current, hole.b_interval, hole.a_interval)
                if trimmed is not None and trimmed != b_current:
                    b_current = trimmed
                    changed = True
        return a_current, b_current

    # -- maintenance support ---------------------------------------------------------

    def holes_hit_by(self, a_value: Any, b_value: Any) -> List[Rectangle]:
        """Holes a new (a, b) join pair lands in (these must be repaired)."""
        if a_value is None or b_value is None:
            return []
        return [h for h in self.holes if h.contains_point(a_value, b_value)]

    def drop_hole(self, hole: Rectangle) -> None:
        self.holes.remove(hole)

    def split_hole(self, hole: Rectangle, a_value: Any, b_value: Any) -> List[Rectangle]:
        """Split a violated hole around the violating point (sync repair).

        Produces up to four sub-rectangles that exclude the point's row and
        column strips.  This is the cheap *suboptimal synchronous repair* of
        Section 4.3: the fragments remain valid holes, but they are no
        longer maximal; the asynchronous miner restores maximality later.
        """
        self.holes.remove(hole)
        fragments: List[Rectangle] = []
        if hole.a_low < a_value:
            fragments.append(
                Rectangle(hole.a_low, _just_below(a_value), hole.b_low, hole.b_high)
            )
        if a_value < hole.a_high:
            fragments.append(
                Rectangle(_just_above(a_value), hole.a_high, hole.b_low, hole.b_high)
            )
        if hole.b_low < b_value:
            fragments.append(
                Rectangle(hole.a_low, hole.a_high, hole.b_low, _just_below(b_value))
            )
        if b_value < hole.b_high:
            fragments.append(
                Rectangle(hole.a_low, hole.a_high, _just_above(b_value), hole.b_high)
            )
        self.holes.extend(fragments)
        return fragments


def _shave(
    target: Interval, other: Interval, hole_target: Interval, hole_other: Interval
) -> Optional[Interval]:
    """Shave ``target`` by a hole, when the hole spans all of ``other``.

    Returns the shaved interval, or None when the hole does not apply.
    """
    if not hole_other.contains_interval(other):
        return None
    overlap = hole_target.intersect(target)
    if overlap.is_empty:
        return None
    # Hole covers the full other-range; remove the overlapped strip if it
    # touches an edge of the target interval.
    if target.low is not None and overlap.contains(target.low):
        if hole_target.contains_interval(target):
            return Interval.empty()
        return Interval(
            overlap.high,
            target.high,
            low_inclusive=False,
            high_inclusive=target.high_inclusive,
        )
    if target.high is not None and overlap.contains(target.high):
        return Interval(
            target.low,
            overlap.low,
            low_inclusive=target.low_inclusive,
            high_inclusive=False,
        )
    return None


def _just_below(value: Any) -> Any:
    """Largest representable value below ``value`` for hole splitting.

    For int domains this is ``value - 1``; for floats we nudge by a tiny
    epsilon (holes over continuous domains are approximate anyway).
    """
    if isinstance(value, int):
        return value - 1
    return float(value) - 1e-9


def _just_above(value: Any) -> Any:
    if isinstance(value, int):
        return value + 1
    return float(value) + 1e-9
