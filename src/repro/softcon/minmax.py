"""Min/max soft constraints (the Sybase-style ASC of Section 2).

The paper notes Sybase maintains max and min information for a table
attribute as synchronously-maintained "constraint" information, which the
optimizer uses to abbreviate range conditions.  We hold the same facts as
a soft constraint: ``column BETWEEN low AND high`` over one table.

Synchronous maintenance of a min/max SC is *self-repairing* on insert (the
bound simply widens), which makes it the cheapest ASC class — the contrast
with expensive classes (join holes) that E8 measures.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.expr.intervals import Interval
from repro.softcon.base import SoftConstraint


class MinMaxSC(SoftConstraint):
    """``low <= column <= high`` over one table."""

    kind = "minmax"

    def __init__(
        self,
        name: str,
        table_name: str,
        column_name: str,
        low: Any,
        high: Any,
        confidence: float = 1.0,
    ) -> None:
        super().__init__(name, confidence)
        if low is not None and high is not None and low > high:
            raise ValueError(f"min/max bounds cross: {low!r} > {high!r}")
        self.table_name = table_name.lower()
        self.column_name = column_name.lower()
        self.low = low
        self.high = high

    def table_names(self) -> List[str]:
        return [self.table_name]

    def statement_sql(self) -> str:
        return (
            f"CHECK ({self.column_name} BETWEEN {self.low!r} AND "
            f"{self.high!r}) ON {self.table_name}"
        )

    @property
    def interval(self) -> Interval:
        return Interval(self.low, self.high)

    def row_satisfies(self, row: Dict[str, Any]) -> Optional[bool]:
        value = row.get(self.column_name)
        if value is None:
            return True
        return self.interval.contains(value)

    # -- self repair -----------------------------------------------------------

    def widen_to(self, value: Any) -> bool:
        """Widen the bounds to admit ``value``; True when anything changed.

        This is the synchronous repair for min/max: no re-scan needed, the
        constraint stays absolute.  (Deletes can leave the bounds loose;
        an asynchronous re-verify tightens them, like Sybase's upkeep.)
        """
        if value is None:
            return False
        changed = False
        if self.low is None or value < self.low:
            self.low = value
            changed = True
        if self.high is None or value > self.high:
            self.high = value
            changed = True
        return changed
