"""ASCs as automated summary tables with exceptions (paper Section 4.4).

An integrity constraint can be rethought as a materialized view that must
always be empty.  An *exception table* relaxes this: it is a real,
incrementally-maintained materialized view

    ``SELECT * FROM base WHERE NOT (sc_condition)``

holding exactly the rows that violate the soft constraint.  Updates that
violate the SC are **allowed** — the exceptions are just stored.  Any plan
that exploits the SC must also process the exceptions; while the SC is a
good characterization the exception table is nearly empty and the addendum
costs almost nothing (the paper's ``late_shipments`` example).

The rewriter (:mod:`repro.optimizer.rewrite.ast_routing`) produces the

    ``(base WHERE query-pred AND introduced-pred)
      UNION ALL (exceptions WHERE query-pred)``

plan; ``UNION ALL`` is safe because the two branches are disjoint by
construction.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.engine.database import ChangeEvent, Database
from repro.engine.schema import TableSchema
from repro.softcon.base import SoftConstraint


class ExceptionTable:
    """The materialized exceptions of a single-table soft constraint.

    Parameters
    ----------
    database:
        The owning database; the exception table is created in it.
    constraint:
        A single-table SC implementing :meth:`row_satisfies` (check-style,
        min/max or linear correlation).
    name:
        Name for the materialized table (default
        ``<constraint>_exceptions``).
    """

    def __init__(
        self,
        database: Database,
        constraint: SoftConstraint,
        name: Optional[str] = None,
    ) -> None:
        (base_name,) = constraint.table_names()
        self.database = database
        self.constraint = constraint
        self.base_table = base_name
        self.name = (name or f"{constraint.name}_exceptions").lower()
        base_schema = database.table(base_name).schema
        schema = TableSchema(
            self.name,
            [type(c)(c.name, c.type, c.nullable) for c in base_schema.columns],
        )
        database.create_table(schema)
        self._column_names = base_schema.column_names()
        self._populate()
        database.catalog.add_summary_table(self.name, self)
        database.add_observer(self._on_change)
        if database.durability is not None:
            database.durability.log_bind_exception_table(
                self.name, constraint.name, self.base_table
            )

    @classmethod
    def rebind(
        cls,
        database: Database,
        constraint: SoftConstraint,
        name: str,
    ) -> "ExceptionTable":
        """Re-attach a recovered exception table to its constraint.

        Recovery restores the materialized table's *data* through normal
        page/WAL replay; what is lost is the live binding — the summary-
        table registration and the change observer.  This constructor
        variant rebuilds only that binding, without creating or
        repopulating the table.
        """
        self = cls.__new__(cls)
        self.database = database
        self.constraint = constraint
        (self.base_table,) = constraint.table_names()
        self.name = name.lower()
        self._column_names = database.table(
            self.base_table
        ).schema.column_names()
        database.catalog.add_summary_table(self.name, self)
        database.add_observer(self._on_change)
        return self

    # -- views -----------------------------------------------------------------

    @property
    def exception_count(self) -> int:
        return self.database.table(self.name).row_count

    @property
    def exception_rate(self) -> float:
        base_rows = self.database.table(self.base_table).row_count
        if base_rows == 0:
            return 0.0
        return self.exception_count / base_rows

    def definition_sql(self) -> str:
        return (
            f"CREATE SUMMARY TABLE {self.name} AS (SELECT * FROM "
            f"{self.base_table} WHERE NOT ({self.constraint.statement_sql()}))"
        )

    # -- maintenance ---------------------------------------------------------------

    def _populate(self) -> None:
        base = self.database.table(self.base_table)
        for row in list(base.scan_rows()):
            row_dict = dict(zip(self._column_names, row))
            if self.constraint.row_satisfies(row_dict) is False:
                self.database.insert(self.name, row)

    def refresh(self) -> None:
        """Rebuild from scratch (used after bulk changes in tests/benches)."""
        self.database.table(self.name).truncate()
        # Truncate bypasses index maintenance; rebuild any indexes.
        for index in self.database.catalog.indexes_on(self.name):
            index.rebuild([])
        self._populate()

    def _on_change(self, event: ChangeEvent) -> None:
        if event.table_name != self.base_table:
            return
        if event.old_row is not None and self._violates(event.old_row):
            self._remove_image(event.old_row)
        if event.new_row is not None and self._violates(event.new_row):
            self.database.insert(self.name, event.new_row)

    def _violates(self, row: Tuple[Any, ...]) -> bool:
        row_dict = dict(zip(self._column_names, row))
        return self.constraint.row_satisfies(row_dict) is False

    def _remove_image(self, row: Tuple[Any, ...]) -> None:
        """Remove one stored exception matching ``row`` (if present)."""
        table = self.database.table(self.name)
        for row_id, stored in table.scan():
            if stored == row:
                self.database.delete_row(self.name, row_id)
                return

    def __repr__(self) -> str:
        return (
            f"ExceptionTable({self.name} for {self.constraint.name}, "
            f"exceptions={self.exception_count})"
        )
