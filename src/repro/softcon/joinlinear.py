"""Inter-table linear correlations over a join path.

Paper, Section 2 (after discussing [10]'s within-table correlations):

    "Of course, it would be possible in principle to mine for these
    linear correlations between attributes across common join paths.
    Such information could lead to good optimization possibilities.  But
    we would need a way to represent the correlation information and to
    make it available to the optimizer."

The soft-constraint facility *is* that representation.  A
:class:`JoinLinearSC` states that for every tuple of ``one ⋈ two``,
``one.a ~= slope * two.b + intercept`` within ``epsilon``.  For a query
over that join path with a range on ``two.b``, the implied band on
``one.a`` can be introduced (100% confidence) or twinned for estimation —
and pushed down to ``one``'s scan, opening index paths the within-table
machinery cannot reach (DB2 could not even express this as an IC, lacking
inter-table check constraints).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.expr.intervals import Interval
from repro.softcon.base import SoftConstraint
from repro.softcon.joinpath import JoinPathSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import Database


class JoinLinearSC(SoftConstraint):
    """``one.a ~= slope * two.b + intercept ± epsilon`` over ``one ⋈ two``."""

    kind = "join_linear"

    def __init__(
        self,
        name: str,
        table_one: str,
        column_a: str,
        table_two: str,
        column_b: str,
        join_column_one: str,
        join_column_two: str,
        slope: float,
        intercept: float,
        epsilon: float,
        confidence: float = 1.0,
    ) -> None:
        super().__init__(name, confidence)
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        self.path = JoinPathSpec(
            table_one, column_a, table_two, column_b,
            join_column_one, join_column_two,
        )
        self.slope = float(slope)
        self.intercept = float(intercept)
        self.epsilon = float(epsilon)

    # -- convenience passthroughs -------------------------------------------

    @property
    def table_one(self) -> str:
        return self.path.table_one

    @property
    def table_two(self) -> str:
        return self.path.table_two

    @property
    def column_a(self) -> str:
        return self.path.column_a

    @property
    def column_b(self) -> str:
        return self.path.column_b

    @property
    def join_column_one(self) -> str:
        return self.path.join_column_one

    @property
    def join_column_two(self) -> str:
        return self.path.join_column_two

    def table_names(self) -> List[str]:
        return [self.path.table_one, self.path.table_two]

    def statement_sql(self) -> str:
        return (
            f"JOINCHECK ({self.table_one}.{self.column_a} BETWEEN "
            f"{self.slope:g} * {self.table_two}.{self.column_b} + "
            f"{self.intercept:g} - {self.epsilon:g} AND {self.slope:g} * "
            f"{self.table_two}.{self.column_b} + {self.intercept:g} + "
            f"{self.epsilon:g}) ALONG {self.table_one}."
            f"{self.path.join_column_one} = {self.table_two}."
            f"{self.path.join_column_two}"
        )

    def row_satisfies(self, row: Dict[str, Any]) -> Optional[bool]:
        raise NotImplementedError(
            "a join-path correlation is a two-table property; use verify()"
        )

    # -- the model -------------------------------------------------------------

    def pair_residual(self, a_value: Any, b_value: Any) -> Optional[float]:
        if a_value is None or b_value is None:
            return None
        return float(a_value) - (self.slope * float(b_value) + self.intercept)

    def pair_satisfies(self, a_value: Any, b_value: Any) -> bool:
        residual = self.pair_residual(a_value, b_value)
        return residual is None or abs(residual) <= self.epsilon

    def predict_a_interval(self, b_interval: Interval) -> Interval:
        """The band of ``one.a`` implied when ``two.b`` lies in a range."""
        if b_interval.is_empty:
            return Interval.empty()
        if b_interval.low is None or b_interval.high is None:
            return Interval.unbounded()
        corners = [
            self.slope * float(b_interval.low) + self.intercept,
            self.slope * float(b_interval.high) + self.intercept,
        ]
        return Interval(min(corners) - self.epsilon, max(corners) + self.epsilon)

    def predict_b_interval(self, a_interval: Interval) -> Interval:
        """The inverse band of ``two.b`` when ``one.a`` lies in a range."""
        if self.slope == 0.0:
            return Interval.unbounded()
        if a_interval.is_empty:
            return Interval.empty()
        if a_interval.low is None or a_interval.high is None:
            return Interval.unbounded()
        corners = [
            (float(a_interval.low) - self.intercept) / self.slope,
            (float(a_interval.high) - self.intercept) / self.slope,
        ]
        spread = self.epsilon / abs(self.slope)
        return Interval(min(corners) - spread, max(corners) + spread)

    # -- verification / maintenance ------------------------------------------------

    def verify(self, database: "Database") -> Tuple[int, int]:
        """Re-check every join pair against the band (requires the join)."""
        violations = 0
        total = 0
        for a_value, b_value in self.path.join_pairs(database):
            total += 1
            if not self.pair_satisfies(a_value, b_value):
                violations += 1
        self.record_verification(violations, total)
        return violations, total

    def widen_to_pair(self, a_value: Any, b_value: Any) -> None:
        """Synchronous repair: widen epsilon to admit a violating pair."""
        residual = self.pair_residual(a_value, b_value)
        if residual is not None:
            self.epsilon = max(self.epsilon, abs(residual))
