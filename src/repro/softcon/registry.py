"""The soft-constraint registry: catalog of SCs and their maintenance.

The registry is the runtime heart of the paper's facility.  It:

* stores soft constraints by name and exposes the two views the optimizer
  needs — *rewrite-usable* (ACTIVE ASCs) and *estimation-usable* (ACTIVE
  SCs of any confidence);
* subscribes to the database's change events and performs **synchronous
  checking of ACTIVE ASCs** (SSCs are never checked at update time —
  Section 3's "SSCs do not have to be checked at update");
* applies the configured :class:`~repro.softcon.maintenance.MaintenancePolicy`
  when an ASC is violated;
* fires the catalog's plan-invalidation hooks when an ASC is overturned or
  demoted (Section 4.1: "every pre-compiled query plan that employs a
  violated ASC in its plan must be dropped");
* tracks per-constraint currency (updates since verification) for the
  margin-of-error model of Section 3.3.

All checking work is counted in :attr:`checks_performed` /
:attr:`check_rows_probed` so E8 can report maintenance overhead per
update for hard ICs vs. informational vs. ASC vs. SSC.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.engine.database import ChangeEvent, Database
from repro.errors import DuplicateObjectError, UnknownObjectError
from repro.softcon.base import SCState, SoftConstraint
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.currency import CurrencyModel
from repro.softcon.fd import FunctionalDependencySC
from repro.softcon.holes import JoinHolesSC
from repro.softcon.joinlinear import JoinLinearSC
from repro.softcon.joinpath import JoinPathSpec
from repro.softcon.linear import LinearCorrelationSC
from repro.softcon.maintenance import DropPolicy, MaintenancePolicy
from repro.softcon.minmax import MinMaxSC


class SoftConstraintRegistry:
    """Holds the database's soft constraints and maintains them."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._constraints: Dict[str, SoftConstraint] = {}
        self._policies: Dict[str, MaintenancePolicy] = {}
        self._currency: Dict[str, CurrencyModel] = {}
        self._default_policy: MaintenancePolicy = DropPolicy()
        # Probation assessment (Section 3.2): how often the optimizer
        # *would* have used each PROBATION constraint.
        self.probation_uses: Dict[str, int] = {}
        # Instrumentation for E8.
        self.checks_performed = 0
        self.check_rows_probed = 0
        self.violations_seen = 0
        self.overturn_events = 0
        self.repairs_performed = 0
        self.async_repairs_run = 0
        database.add_observer(self._on_change)

    # ------------------------------------------------------------ registration

    def register(
        self,
        constraint: SoftConstraint,
        policy: Optional[MaintenancePolicy] = None,
        activate: bool = False,
    ) -> SoftConstraint:
        """Add a constraint (as CANDIDATE unless ``activate``)."""
        if constraint.name in self._constraints:
            raise DuplicateObjectError(
                f"soft constraint {constraint.name!r} already registered"
            )
        for table_name in constraint.table_names():
            if not self.database.catalog.has_table(table_name):
                raise UnknownObjectError(
                    f"soft constraint {constraint.name!r} references unknown "
                    f"table {table_name!r}"
                )
        self._constraints[constraint.name] = constraint
        if policy is not None:
            self._policies[constraint.name] = policy
        self.refresh_currency(constraint, self.database)
        if activate:
            self.activate(constraint.name)
        else:
            self._log_durable(constraint)
        return constraint

    def adopt(
        self,
        constraint: SoftConstraint,
        policy: Optional[MaintenancePolicy] = None,
        currency: Optional[CurrencyModel] = None,
    ) -> SoftConstraint:
        """Install a recovered constraint verbatim.

        Recovery's replacement for :meth:`register`: no table checks (the
        catalog was restored from the same image), no currency reset, no
        duplicate error (a WAL ``sc_state`` record legitimately overwrites
        the checkpoint's older snapshot of the same constraint), and no
        durability logging.
        """
        self._constraints[constraint.name] = constraint
        if policy is not None:
            self._policies[constraint.name] = policy
        if currency is not None:
            self._currency[constraint.name] = currency
        elif constraint.name not in self._currency:
            self.refresh_currency(constraint, self.database)
        return constraint

    def _log_durable(self, constraint: SoftConstraint) -> None:
        """Snapshot one constraint's full state to the WAL (if attached).

        Called after every lifecycle or statement mutation so recovery can
        install the latest snapshot verbatim — and, because the record is
        tagged with the current transaction, an SC mutation triggered by a
        rolled-back (or crashed-out) statement vanishes with it.
        """
        durability = getattr(self.database, "durability", None)
        if durability is not None:
            durability.log_soft_constraint(
                constraint,
                self._policies.get(constraint.name),
                self._currency.get(constraint.name),
            )

    def get(self, name: str) -> SoftConstraint:
        try:
            return self._constraints[name.lower()]
        except KeyError:
            raise UnknownObjectError(
                f"unknown soft constraint {name!r}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._constraints)

    def all(self) -> List[SoftConstraint]:
        return list(self._constraints.values())

    def policy_for(self, constraint: SoftConstraint) -> MaintenancePolicy:
        return self._policies.get(constraint.name, self._default_policy)

    def set_default_policy(self, policy: MaintenancePolicy) -> None:
        self._default_policy = policy

    # ------------------------------------------------------------- lifecycle

    def activate(self, name: str, verify_first: bool = False) -> SoftConstraint:
        """Promote a constraint to ACTIVE (optionally verifying first).

        Verification refreshes the confidence; a constraint claimed
        absolute that fails verification is activated as a statistical SC
        with the measured confidence instead (never silently wrong).
        """
        constraint = self.get(name)
        if verify_first:
            constraint.verify(self.database)
            self.refresh_currency(constraint, self.database)
        if constraint.state is not SCState.ACTIVE:
            constraint.transition(SCState.ACTIVE)
        self._log_durable(constraint)
        return constraint

    def overturn(self, constraint: SoftConstraint) -> None:
        """Mark an ASC violated and invalidate dependent plans."""
        if constraint.state is SCState.ACTIVE:
            constraint.transition(SCState.VIOLATED)
        constraint.validity_version += 1
        constraint.values_version += 1
        self.overturn_events += 1
        self.database.catalog.fire_invalidation(
            f"softconstraint:{constraint.name}"
        )
        self.database.catalog.fire_invalidation(
            f"softconstraint-values:{constraint.name}"
        )
        self._log_durable(constraint)

    def statement_changed(self, constraint: SoftConstraint) -> None:
        """A repair altered the constraint's statement (e.g. widened
        bounds): plans that inlined the old values must be dropped, but
        plans depending only on the constraint's *validity* survive."""
        constraint.values_version += 1
        self.database.catalog.fire_invalidation(
            f"softconstraint-values:{constraint.name}"
        )
        self._log_durable(constraint)

    def demote(self, constraint: SoftConstraint) -> None:
        """Absorb a violation into confidence: the ASC becomes an SSC.

        Rewrite-dependent plans are invalidated (the statement is no
        longer absolute); the constraint stays ACTIVE for estimation.
        """
        currency = self._currency.get(constraint.name)
        rows = currency.row_count if currency else 0
        total = max(1, rows + 1)
        satisfied = constraint.confidence * rows
        constraint.confidence = max(1e-9, min(satisfied / total, 1.0 - 1e-9))
        constraint.validity_version += 1
        constraint.values_version += 1
        self.database.catalog.fire_invalidation(
            f"softconstraint:{constraint.name}"
        )
        self.database.catalog.fire_invalidation(
            f"softconstraint-values:{constraint.name}"
        )
        self._log_durable(constraint)

    # ------------------------------------------------------------- probation

    def hold_in_probation(self, name: str) -> SoftConstraint:
        """Move a CANDIDATE to PROBATION: maintained and assessed, but not
        yet employed by the optimizer (Section 3.2)."""
        constraint = self.get(name)
        constraint.transition(SCState.PROBATION)
        self._log_durable(constraint)
        return constraint

    def probation_names(self) -> List[str]:
        return sorted(
            sc.name
            for sc in self._constraints.values()
            if sc.state is SCState.PROBATION
        )

    def record_probation_use(self, name: str) -> None:
        """The optimizer reports a query the probation SC would have
        helped (shadow-mode assessment)."""
        self.probation_uses[name.lower()] = (
            self.probation_uses.get(name.lower(), 0) + 1
        )

    def probation_report(self) -> List[Tuple[str, int]]:
        """(name, would-have-used count) for every PROBATION constraint."""
        return [
            (name, self.probation_uses.get(name, 0))
            for name in self.probation_names()
        ]

    def promote_ready(self, min_uses: int = 1) -> List[str]:
        """Activate probation constraints that proved useful; returns them."""
        promoted = []
        for name in self.probation_names():
            if self.probation_uses.get(name, 0) >= min_uses:
                constraint = self.get(name)
                constraint.transition(SCState.ACTIVE)
                self._log_durable(constraint)
                promoted.append(name)
        return promoted

    def probation_shadow(self) -> "ProbationShadowView":
        """A registry view where PROBATION constraints count as ACTIVE,
        used by the optimizer's shadow pass to assess their utility."""
        return ProbationShadowView(self)

    def drop(self, name: str) -> None:
        constraint = self.get(name)
        constraint.transition(SCState.DROPPED)
        constraint.validity_version += 1
        constraint.values_version += 1
        self.database.catalog.fire_invalidation(f"softconstraint:{name.lower()}")
        self.database.catalog.fire_invalidation(
            f"softconstraint-values:{name.lower()}"
        )
        self._log_durable(constraint)

    # ------------------------------------------------------------ optimizer views

    def rewrite_usable(self, table_name: Optional[str] = None) -> List[SoftConstraint]:
        """ACTIVE ASCs (optionally restricted to one table)."""
        return [
            sc
            for sc in self._constraints.values()
            if sc.usable_in_rewrite
            and (table_name is None or sc.affected_by(table_name))
        ]

    def estimation_usable(
        self, table_name: Optional[str] = None
    ) -> List[SoftConstraint]:
        """ACTIVE SCs of any confidence (optionally for one table)."""
        return [
            sc
            for sc in self._constraints.values()
            if sc.usable_in_estimation
            and (table_name is None or sc.affected_by(table_name))
        ]

    # -------------------------------------------------------------- currency

    def refresh_currency(
        self, constraint: SoftConstraint, database: Database
    ) -> None:
        rows = sum(
            database.table(t).row_count for t in constraint.table_names()
        )
        model = self._currency.get(constraint.name)
        if model is None:
            self._currency[constraint.name] = CurrencyModel(rows)
        else:
            model.reset(rows)

    def currency(self, name: str) -> CurrencyModel:
        model = self._currency.get(name.lower())
        if model is None:
            raise UnknownObjectError(f"no currency model for {name!r}")
        return model

    def effective_confidence(self, constraint: SoftConstraint) -> float:
        """Stated confidence minus the staleness margin (lower bound).

        This is what the cautious estimator should use for an SSC that has
        not been re-verified recently.
        """
        model = self._currency.get(constraint.name)
        if model is None:
            return constraint.confidence
        return model.confidence_bounds(constraint.confidence)[0]

    # ------------------------------------------------------------ change events

    def _on_change(self, event: ChangeEvent) -> None:
        for constraint in list(self._constraints.values()):
            if constraint.state not in (SCState.ACTIVE, SCState.PROBATION):
                continue
            if not constraint.affected_by(event.table_name):
                continue
            constraint.updates_since_verified += 1
            model = self._currency.get(constraint.name)
            if model is not None:
                model.record_update()
            if constraint.state is SCState.PROBATION:
                continue  # probation: inexpensively maintained, not checked
            if not constraint.is_absolute:
                continue  # SSCs are never checked at update time
            violating_row = self._synchronous_check(constraint, event)
            if violating_row is not None:
                self.violations_seen += 1
                self.policy_for(constraint).on_violation(
                    self, constraint, violating_row
                )

    def replay_tick(self, table_name: str) -> None:
        """Redo-replay's stand-in for :meth:`_on_change` (recovery only).

        A replayed row change must advance the same staleness counters a
        live change would — ``updates_since_verified`` and the currency
        model — or recovered currency drifts from a never-crashed run.
        Violation handling is deliberately absent: its outcome is already
        in the log as ``sc_state`` snapshots, which replay installs
        verbatim right after this tick.
        """
        for constraint in list(self._constraints.values()):
            if constraint.state not in (SCState.ACTIVE, SCState.PROBATION):
                continue
            if not constraint.affected_by(table_name):
                continue
            constraint.updates_since_verified += 1
            model = self._currency.get(constraint.name)
            if model is not None:
                model.record_update()

    def _synchronous_check(
        self, constraint: SoftConstraint, event: ChangeEvent
    ) -> Optional[Dict[str, Any]]:
        """Check one event against one ACTIVE ASC.

        Returns the violating row (as a dict) or None.  Deletions cannot
        introduce violations for any supported constraint class, so only
        the *new* row of an insert/update is examined.
        """
        if event.new_row is None:
            return None
        self.checks_performed += 1
        schema = self.database.table(event.table_name).schema
        row = dict(zip(schema.column_names(), event.new_row))
        if isinstance(constraint, (CheckSoftConstraint, MinMaxSC, LinearCorrelationSC)):
            self.check_rows_probed += 1
            if constraint.row_satisfies(row) is False:
                return row
            return None
        if isinstance(constraint, FunctionalDependencySC):
            self.check_rows_probed += 1
            if constraint.row_conflicts(self.database, row):
                return row
            return None
        if isinstance(constraint, JoinHolesSC):
            spec = JoinPathSpec(
                constraint.table_one,
                constraint.column_a,
                constraint.table_two,
                constraint.column_b,
                constraint.join_column_one,
                constraint.join_column_two,
            )
            return self._check_join_pairs(
                spec,
                event.table_name,
                row,
                lambda a, b: not constraint.point_in_hole(a, b),
            )
        if isinstance(constraint, JoinLinearSC):
            return self._check_join_pairs(
                constraint.path,
                event.table_name,
                row,
                constraint.pair_satisfies,
                # Report the worst deviation so a widening repair covers
                # every pair the new row created, not just the first.
                rank=lambda a, b: abs(constraint.pair_residual(a, b) or 0.0),
            )
        # Unknown class: be conservative — full verify.
        violations, _ = constraint.verify(self.database)
        return row if violations else None

    def _check_join_pairs(
        self,
        spec: JoinPathSpec,
        table_name: str,
        row: Dict[str, Any],
        pair_satisfies,
        rank=None,
    ) -> Optional[Dict[str, Any]]:
        """Probe whether a new row creates a violating join pair.

        Joining the new row to the other table is the expensive
        synchronous maintenance the paper calls out for inter-table SCs
        (Section 4.3).  Returns a violating (a, b) pair — the worst one
        under ``rank`` when given, so a single widening repair covers all
        of the new row's violations.
        """
        pairs = spec.pairs_for_new_row(self.database, table_name, row)
        self.check_rows_probed += len(pairs)
        violating = [
            (a_value, b_value)
            for a_value, b_value in pairs
            if not pair_satisfies(a_value, b_value)
        ]
        if not violating:
            return None
        if rank is not None:
            a_value, b_value = max(violating, key=lambda pair: rank(*pair))
        else:
            a_value, b_value = violating[0]
        return {"__a__": a_value, "__b__": b_value}

    # --------------------------------------------------------------- reporting

    def instrumentation(self) -> Dict[str, int]:
        return {
            "checks_performed": self.checks_performed,
            "check_rows_probed": self.check_rows_probed,
            "violations_seen": self.violations_seen,
            "overturn_events": self.overturn_events,
            "repairs_performed": self.repairs_performed,
            "async_repairs_run": self.async_repairs_run,
        }

    def describe_all(self) -> List[str]:
        return [sc.describe() for sc in self._constraints.values()]


class ProbationShadowView:
    """A read-only registry view that treats PROBATION SCs as ACTIVE.

    The optimizer runs its rewrite pipeline once against this view (the
    "shadow pass") and compares the soft constraints used against the real
    pass: the difference is exactly the probation constraints that would
    have fired — the utility evidence Section 3.2's probationary period
    collects without ever employing the constraint for real.
    """

    def __init__(self, registry: SoftConstraintRegistry) -> None:
        self._registry = registry

    def _usable(self, constraint: SoftConstraint) -> bool:
        return constraint.state in (SCState.ACTIVE, SCState.PROBATION)

    def rewrite_usable(self, table_name: Optional[str] = None) -> List[SoftConstraint]:
        return [
            sc
            for sc in self._registry.all()
            if self._usable(sc)
            and sc.is_absolute
            and (table_name is None or sc.affected_by(table_name))
        ]

    def estimation_usable(
        self, table_name: Optional[str] = None
    ) -> List[SoftConstraint]:
        return [
            sc
            for sc in self._registry.all()
            if self._usable(sc)
            and (table_name is None or sc.affected_by(table_name))
        ]

    def effective_confidence(self, constraint: SoftConstraint) -> float:
        return self._registry.effective_confidence(constraint)
