"""Soft-constraint base class and lifecycle states.

The lifecycle implements the paper's three-stage SC process (Section 3.2):
*discovery* produces CANDIDATE constraints; *selection* promotes the useful
ones (optionally through a PROBATION period in which they are maintained
but not yet employed); ACTIVE constraints are used by the optimizer;
*maintenance* may move a constraint to VIOLATED (an ASC contradicted by an
update) and finally DROPPED.

Confidence semantics (Section 3): an SC with confidence 1.0 over the
current state is an **absolute** soft constraint (ASC) and may be used in
semantics-preserving rewrites; an SC with confidence < 1.0 is a
**statistical** soft constraint (SSC) and may only steer cardinality
estimation.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import SoftConstraintStateError

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import Database


class SCState(enum.Enum):
    """Lifecycle state of a soft constraint."""

    CANDIDATE = "candidate"
    PROBATION = "probation"
    ACTIVE = "active"
    VIOLATED = "violated"
    DROPPED = "dropped"


_ALLOWED_TRANSITIONS = {
    SCState.CANDIDATE: {SCState.PROBATION, SCState.ACTIVE, SCState.DROPPED},
    SCState.PROBATION: {SCState.ACTIVE, SCState.DROPPED},
    SCState.ACTIVE: {SCState.VIOLATED, SCState.DROPPED, SCState.ACTIVE},
    SCState.VIOLATED: {SCState.ACTIVE, SCState.DROPPED},
    SCState.DROPPED: set(),
}


class SoftConstraint:
    """Base class for all soft-constraint kinds.

    Attributes
    ----------
    name:
        Unique name within the registry.
    confidence:
        Fraction of rows satisfying the statement at the last verification
        (1.0 = absolute).
    state:
        Lifecycle state; only ACTIVE constraints reach the optimizer.
    updates_since_verified:
        Maintained by the registry; feeds the currency model
        (Section 3.3's margin-of-error discussion).
    """

    kind = "soft"

    def __init__(self, name: str, confidence: float = 1.0) -> None:
        if not 0.0 < confidence <= 1.0:
            raise ValueError(
                f"confidence must be in (0, 1], got {confidence}"
            )
        self.name = name.lower()
        self.confidence = confidence
        self.state = SCState.CANDIDATE
        self.updates_since_verified = 0
        self.verified_epoch = 0
        self.violation_count = 0
        # Monotonic change counters for stale-plan detection (Section 4.1):
        # validity_version bumps when the constraint stops being usable as
        # compiled (overturn/demotion/drop); values_version additionally
        # bumps when a repair changes the statement's concrete values.
        self.validity_version = 0
        self.values_version = 0

    # -- classification ------------------------------------------------------

    @property
    def is_absolute(self) -> bool:
        """ASC: consistent with the current state (confidence 1.0)."""
        return self.confidence >= 1.0

    @property
    def is_statistical(self) -> bool:
        """SSC: holds for only part of the data."""
        return not self.is_absolute

    @property
    def usable_in_rewrite(self) -> bool:
        """Only ACTIVE ASCs may drive semantics-preserving rewrites."""
        return self.state is SCState.ACTIVE and self.is_absolute

    @property
    def usable_in_estimation(self) -> bool:
        """ACTIVE SCs (absolute or statistical) may steer estimation."""
        return self.state is SCState.ACTIVE

    # -- lifecycle ---------------------------------------------------------------

    def transition(self, new_state: SCState) -> None:
        """Move to a new lifecycle state, validating the transition."""
        if new_state not in _ALLOWED_TRANSITIONS[self.state]:
            raise SoftConstraintStateError(
                f"soft constraint {self.name!r}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    def activate(self) -> None:
        self.transition(SCState.ACTIVE)

    def drop(self) -> None:
        self.transition(SCState.DROPPED)

    # -- interface for subclasses ---------------------------------------------------

    def table_names(self) -> List[str]:
        """Tables this constraint speaks about (one, or two for holes)."""
        raise NotImplementedError

    def statement_sql(self) -> str:
        """The constraint statement in SQL-ish text (for the catalog)."""
        raise NotImplementedError

    def row_satisfies(self, row: Dict[str, Any]) -> Optional[bool]:
        """Whether one row of the (single) constrained table satisfies the
        statement; ``None`` for UNKNOWN (which counts as satisfying, per
        CHECK-constraint semantics).  Multi-table constraints override
        :meth:`affected_by` / :meth:`verify` instead and raise here.
        """
        raise NotImplementedError

    def affected_by(self, table_name: str) -> bool:
        """Whether updates to ``table_name`` can invalidate the statement."""
        return table_name.lower() in self.table_names()

    def verify(self, database: "Database") -> Tuple[int, int]:
        """Re-check the statement against the database.

        Returns ``(violations, total_rows)`` and refreshes
        :attr:`confidence`.  The default implementation scans the single
        constrained table with :meth:`row_satisfies`.
        """
        (table_name,) = self.table_names()
        table = database.table(table_name)
        names = table.schema.column_names()
        total = 0
        violations = 0
        for row in table.scan_rows():
            total += 1
            if self.row_satisfies(dict(zip(names, row))) is False:
                violations += 1
        self.record_verification(violations, total)
        return violations, total

    def record_verification(self, violations: int, total: int) -> None:
        """Fold a verification result into confidence and bookkeeping."""
        self.confidence = 1.0 if total == 0 else max(
            1e-9, (total - violations) / total
        )
        self.violation_count = violations
        self.updates_since_verified = 0

    def describe(self) -> str:
        if self.is_absolute:
            flavor = "ASC"
        else:
            # Enough precision that a 99.99% SSC never displays as 100%.
            pct = min(self.confidence * 100, 99.99)
            flavor = f"SSC({pct:.2f}%)"
        return f"[{flavor}/{self.state.value}] {self.name}: {self.statement_sql()}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} {self.state.value}>"
