"""The currency (staleness) model for statistical soft constraints.

Paper, Section 3.3: *"Given a fact table of a million records and the
knowledge that only a thousand tuples are affected by updates daily, the
margin of error for an SSC as a row check constraint on that table will be
quite small over the course of several days.  But within a month's time,
the margin of error would be 3%."*

The model is deliberately simple and matches the paper's arithmetic: every
update (insert/update/delete) against the constrained table may flip one
row's adherence, so after ``u`` updates against a table of ``n`` rows the
SSC's stated confidence carries an additional margin of error of ``u/n``.
Experiment E9 reproduces the 1M-rows / 1000-updates-per-day / ~3%-per-month
projection with this model driven by the registry's real update counters.
"""

from __future__ import annotations

from typing import Tuple


def project_margin_of_error(
    row_count: int, updates_per_day: float, days: float
) -> float:
    """The paper's projection: margin after ``days`` of steady updates."""
    if row_count <= 0:
        return 1.0
    return min(1.0, (updates_per_day * days) / row_count)


class CurrencyModel:
    """Tracks an SC's margin of error from updates since verification.

    Attributes
    ----------
    row_count:
        Size of the constrained table at the last verification.
    updates_seen:
        Updates against the table since then (fed by the registry).
        Zeroed by :meth:`reset`; the lifetime total survives as
        :attr:`total_updates`.
    """

    def __init__(self, row_count: int) -> None:
        self.row_count = max(0, row_count)
        self.updates_seen = 0
        self._total_updates = 0

    def record_update(self, count: int = 1) -> None:
        if count < 0:
            raise ValueError(
                f"update count must be non-negative, got {count}"
            )
        self.updates_seen += count
        self._total_updates += count

    @property
    def total_updates(self) -> int:
        """Lifetime updates observed, across re-verifications.

        ``updates_seen`` answers "how stale since the last verify?";
        this answers "how churned is the table overall?" — the signal
        maintenance scheduling and the feedback adjuster report on.
        """
        return self._total_updates

    def reset(self, row_count: int) -> None:
        """Called after re-verification: fresh baseline, zero staleness.

        Only the since-verification counter is zeroed; ``row_count`` must
        reflect the table's current (non-negative) size and is clamped.
        """
        self.row_count = max(0, row_count)
        self.updates_seen = 0

    @property
    def margin_of_error(self) -> float:
        """Upper bound on the drift of the SC's confidence."""
        if self.row_count <= 0:
            return 1.0 if self.updates_seen else 0.0
        return min(1.0, self.updates_seen / self.row_count)

    def confidence_bounds(self, stated_confidence: float) -> Tuple[float, float]:
        """The interval the true confidence may occupy right now."""
        margin = self.margin_of_error
        return (
            max(0.0, stated_confidence - margin),
            min(1.0, stated_confidence + margin),
        )

    def __repr__(self) -> str:
        return (
            f"CurrencyModel(rows={self.row_count}, updates={self.updates_seen}, "
            f"margin={self.margin_of_error:.4f})"
        )
