"""Linear-correlation soft constraints: ``A BETWEEN k*B + b - eps AND
k*B + b + eps``.

This is the SC class behind the paper's predicate-introduction example
(Section 2, citing [10]): two numeric attributes of one table are related
by a linear formula ``A = k*B + b`` within deviation ``eps``.  Given a
query predicate ``B = x``, the rewriter may introduce

    ``A BETWEEN k*x + b - eps AND k*x + b + eps``

which can open an index-on-A access path.  The rewrite is only legal when
the constraint is absolute (every row within ``eps``); at lower confidence
the same interval still improves cardinality estimates (twinning).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.expr.intervals import Interval
from repro.sql import ast
from repro.softcon.base import SoftConstraint


class LinearCorrelationSC(SoftConstraint):
    """``a ~= slope * b + intercept`` within ``epsilon``, on one table.

    Parameters
    ----------
    column_a:
        The predicted column (the one a predicate can be *introduced* on).
    column_b:
        The predictor column (the one the query already constrains).
    slope, intercept, epsilon:
        The linear model; ``epsilon >= 0`` is the max absolute deviation
        covered by ``confidence`` of the rows.
    """

    kind = "linear"

    def __init__(
        self,
        name: str,
        table_name: str,
        column_a: str,
        column_b: str,
        slope: float,
        intercept: float,
        epsilon: float,
        confidence: float = 1.0,
    ) -> None:
        super().__init__(name, confidence)
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        self.table_name = table_name.lower()
        self.column_a = column_a.lower()
        self.column_b = column_b.lower()
        self.slope = float(slope)
        self.intercept = float(intercept)
        self.epsilon = float(epsilon)

    def table_names(self) -> List[str]:
        return [self.table_name]

    def statement_sql(self) -> str:
        return (
            f"CHECK ({self.column_a} BETWEEN {self.slope:g} * {self.column_b} "
            f"+ {self.intercept:g} - {self.epsilon:g} AND {self.slope:g} * "
            f"{self.column_b} + {self.intercept:g} + {self.epsilon:g}) "
            f"ON {self.table_name}"
        )

    # -- the model ------------------------------------------------------------

    def predict_interval(self, b_value: float) -> Interval:
        """The interval of A admitted when ``B = b_value``."""
        center = self.slope * b_value + self.intercept
        return Interval(center - self.epsilon, center + self.epsilon)

    def predict_interval_for_b_range(self, b_interval: Interval) -> Interval:
        """The interval of A admitted when B lies in ``b_interval``.

        For an unbounded B interval the A interval is unbounded on the
        corresponding side(s), depending on the slope's sign.
        """
        if b_interval.is_empty:
            return Interval.empty()
        if b_interval.low is None or b_interval.high is None:
            # A half-open B range bounds A on one side only, and which side
            # depends on the slope's sign; staying unbounded is always
            # sound, and half-open introduced ranges rarely help an index.
            return Interval.unbounded()
        corners = [
            self.slope * float(b_interval.low) + self.intercept,
            self.slope * float(b_interval.high) + self.intercept,
        ]
        return Interval(min(corners) - self.epsilon, max(corners) + self.epsilon)

    def row_satisfies(self, row: Dict[str, Any]) -> Optional[bool]:
        a_value = row.get(self.column_a)
        b_value = row.get(self.column_b)
        if a_value is None or b_value is None:
            return True  # CHECK semantics: UNKNOWN satisfies
        deviation = abs(float(a_value) - (self.slope * float(b_value) + self.intercept))
        return deviation <= self.epsilon

    # -- rewrite / twinning support ----------------------------------------------

    def introduced_predicate(
        self, b_expression: ast.Expression, qualifier: Optional[str] = None
    ) -> ast.BetweenExpr:
        """Build ``A BETWEEN k*b_expr + b - eps AND k*b_expr + b + eps``.

        ``b_expression`` is whatever the query compared B with (typically a
        literal).  ``qualifier`` optionally qualifies the introduced column
        reference with the query's table binding.
        """
        center = ast.BinaryOp(
            "+",
            ast.BinaryOp("*", ast.Literal(self.slope), b_expression),
            ast.Literal(self.intercept),
        )
        low = ast.BinaryOp("-", center, ast.Literal(self.epsilon))
        high = ast.BinaryOp("+", center, ast.Literal(self.epsilon))
        column = ast.ColumnRef(self.column_a, qualifier)
        return ast.BetweenExpr(column, low, high)

    def residual(self, row: Dict[str, Any]) -> Optional[float]:
        """Signed deviation of a row from the model (None on NULLs)."""
        a_value = row.get(self.column_a)
        b_value = row.get(self.column_b)
        if a_value is None or b_value is None:
            return None
        return float(a_value) - (self.slope * float(b_value) + self.intercept)
