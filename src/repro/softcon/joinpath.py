"""Shared machinery for inter-table soft constraints over a join path.

Both join holes (:mod:`repro.softcon.holes`) and inter-table linear
correlations (:mod:`repro.softcon.joinlinear`) characterize attribute
pairs (one.a, two.b) over ``one ⋈ two``.  This module factors out the two
operations they share: enumerating the join result's (a, b) pairs, and
probing the pairs a single new row creates (the expensive synchronous
maintenance step of Section 4.3).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import Database


class JoinPathSpec:
    """The join path and profiled attribute pair of an inter-table SC."""

    __slots__ = (
        "table_one",
        "column_a",
        "table_two",
        "column_b",
        "join_column_one",
        "join_column_two",
    )

    def __init__(
        self,
        table_one: str,
        column_a: str,
        table_two: str,
        column_b: str,
        join_column_one: str,
        join_column_two: str,
    ) -> None:
        self.table_one = table_one.lower()
        self.column_a = column_a.lower()
        self.table_two = table_two.lower()
        self.column_b = column_b.lower()
        self.join_column_one = join_column_one.lower()
        self.join_column_two = join_column_two.lower()

    def join_pairs(self, database: "Database") -> Iterable[Tuple[Any, Any]]:
        """Yield (a, b) for every tuple of ``one ⋈ two`` (hash join)."""
        one = database.table(self.table_one)
        two = database.table(self.table_two)
        a_position = one.schema.position(self.column_a)
        join_one = one.schema.position(self.join_column_one)
        b_position = two.schema.position(self.column_b)
        join_two = two.schema.position(self.join_column_two)
        build: Dict[Any, List[Any]] = {}
        for row in two.scan_rows():
            key = row[join_two]
            if key is not None:
                build.setdefault(key, []).append(row[b_position])
        for row in one.scan_rows():
            key = row[join_one]
            if key is None:
                continue
            for b_value in build.get(key, ()):
                yield row[a_position], b_value

    def pairs_for_new_row(
        self, database: "Database", table_name: str, row: Dict[str, Any]
    ) -> List[Tuple[Any, Any]]:
        """The (a, b) join pairs a freshly inserted row participates in.

        Probes the *other* table through the join key — the join work that
        makes absolute maintenance of inter-table SCs expensive.  Rows
        with NULL join keys or NULL profiled attributes produce no pairs.
        """
        if table_name == self.table_one:
            join_value = row.get(self.join_column_one)
            a_value = row.get(self.column_a)
            if join_value is None or a_value is None:
                return []
            mates = _mate_values(
                database,
                self.table_two,
                self.join_column_two,
                join_value,
                self.column_b,
            )
            return [(a_value, b_value) for b_value in mates]
        if table_name == self.table_two:
            join_value = row.get(self.join_column_two)
            b_value = row.get(self.column_b)
            if join_value is None or b_value is None:
                return []
            mates = _mate_values(
                database,
                self.table_one,
                self.join_column_one,
                join_value,
                self.column_a,
            )
            return [(a_value, b_value) for a_value in mates]
        return []


def _mate_values(
    database: "Database",
    table_name: str,
    join_column: str,
    join_value: Any,
    wanted_column: str,
) -> List[Any]:
    matches = database.lookup_key(table_name, [join_column], [join_value])
    table = database.table(table_name)
    position = table.schema.position(wanted_column)
    values = []
    for row_id in matches:
        row = table.fetch_if_live(row_id)
        if row is not None and row[position] is not None:
            values.append(row[position])
    return values
