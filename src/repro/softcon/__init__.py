"""Soft constraints — the paper's primary contribution.

A *soft constraint* (SC) is a syntactic statement equivalent to an
integrity-constraint declaration that is **not** enforced as part of
database integrity.  The paper splits SCs into:

* **absolute soft constraints (ASCs)** — no violations in the current
  database state; usable in query *rewrite* (semantics-preserving) as well
  as in cost estimation;
* **statistical soft constraints (SSCs)** — hold for some fraction of the
  data (the *confidence*); usable only for *cardinality estimation*.

This package provides the SC class hierarchy (check-style, linear
correlation, join holes, functional dependencies, min/max), the registry
that maintains SCs against database updates, maintenance policies
(drop / repair / asynchronous repair), the currency (staleness) model, and
exception tables (ASCs represented as automated summary tables,
Section 4.4).
"""

from repro.softcon.base import SCState, SoftConstraint
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.linear import LinearCorrelationSC
from repro.softcon.holes import JoinHolesSC, Rectangle
from repro.softcon.joinlinear import JoinLinearSC
from repro.softcon.joinpath import JoinPathSpec
from repro.softcon.fd import FunctionalDependencySC
from repro.softcon.minmax import MinMaxSC
from repro.softcon.registry import SoftConstraintRegistry
from repro.softcon.maintenance import (
    AsyncRepairPolicy,
    DropPolicy,
    MaintenancePolicy,
    RepairPolicy,
)
from repro.softcon.exceptions_ast import ExceptionTable
from repro.softcon.currency import CurrencyModel, project_margin_of_error

__all__ = [
    "AsyncRepairPolicy",
    "CheckSoftConstraint",
    "CurrencyModel",
    "DropPolicy",
    "ExceptionTable",
    "FunctionalDependencySC",
    "JoinHolesSC",
    "JoinLinearSC",
    "JoinPathSpec",
    "LinearCorrelationSC",
    "MaintenancePolicy",
    "MinMaxSC",
    "Rectangle",
    "RepairPolicy",
    "SCState",
    "SoftConstraint",
    "SoftConstraintRegistry",
]
