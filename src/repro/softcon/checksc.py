"""Check-style soft constraints: an arbitrary row predicate over one table.

This is the workhorse SC class: any statement expressible as a CHECK
constraint can be held as a soft constraint instead (the paper's
``late_shipments`` example is ``ship_date <= order_date + 21`` held at 99%
confidence).  The expression is kept both as a parsed AST (for the rewrite
engine and the twinning mechanism) and as a compiled predicate (for
verification and synchronous maintenance).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from repro.expr.eval import compile_predicate
from repro.sql import ast
from repro.sql.parser import parse_expression
from repro.sql.printer import sql_of
from repro.softcon.base import SoftConstraint


class CheckSoftConstraint(SoftConstraint):
    """A soft row-level CHECK statement over one table.

    Parameters
    ----------
    name:
        Registry-unique name.
    table_name:
        The constrained table.
    condition:
        The statement, as SQL text or a parsed expression.
    confidence:
        Fraction of rows satisfying the statement (1.0 = absolute).
    """

    kind = "check"

    def __init__(
        self,
        name: str,
        table_name: str,
        condition: Union[str, ast.Expression],
        confidence: float = 1.0,
    ) -> None:
        super().__init__(name, confidence)
        self.table_name = table_name.lower()
        if isinstance(condition, str):
            self.expression = parse_expression(condition)
        else:
            self.expression = condition
        self._predicate = compile_predicate(self.expression)

    def table_names(self) -> List[str]:
        return [self.table_name]

    def statement_sql(self) -> str:
        return f"CHECK ({sql_of(self.expression)}) ON {self.table_name}"

    def row_satisfies(self, row: Dict[str, Any]) -> Optional[bool]:
        verdict = self._predicate(row)
        # CHECK semantics: UNKNOWN satisfies.
        return True if verdict is None else verdict

    # -- rewrite support -----------------------------------------------------

    def negated_expression(self) -> ast.Expression:
        """``NOT (condition)`` — the defining predicate of the exception
        table when this ASC is represented as an AST (Section 4.4)."""
        return ast.UnaryOp("not", self.expression)
