"""Table schemas: named, typed, ordered columns.

A :class:`TableSchema` is immutable once constructed.  It provides fast
column lookup by name, row validation against the column types, and the
simulated on-page size of a row (used by the page manager).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.engine.types import SqlType
from repro.errors import SchemaError, TypeMismatchError


class Column:
    """A single column: a name, a type, and nullability.

    Nullability here is structural (declared in the DDL); the NOT NULL
    *constraint object* in :mod:`repro.engine.constraints` enforces it and
    lets it participate in the informational / soft-constraint machinery.
    """

    __slots__ = ("name", "type", "nullable")

    def __init__(self, name: str, sql_type: SqlType, nullable: bool = True) -> None:
        if not name:
            raise SchemaError("column name must be non-empty")
        self.name = name.lower()
        self.type = sql_type
        self.nullable = nullable

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return (
            self.name == other.name
            and self.type == other.type
            and self.nullable == other.nullable
        )

    def __hash__(self) -> int:
        return hash((self.name, self.type, self.nullable))

    def __repr__(self) -> str:
        null = "" if self.nullable else " NOT NULL"
        return f"Column({self.name} {self.type}{null})"


class TableSchema:
    """An ordered collection of :class:`Column` objects.

    Parameters
    ----------
    name:
        Table name (stored lower-cased; SQL identifiers are case-insensitive).
    columns:
        The columns in declaration order.  Names must be unique.
    """

    __slots__ = ("name", "columns", "_index_by_name")

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self.name = name.lower()
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._index_by_name: Dict[str, int] = {}
        for position, column in enumerate(self.columns):
            if column.name in self._index_by_name:
                raise SchemaError(
                    f"duplicate column {column.name!r} in table {name!r}"
                )
            self._index_by_name[column.name] = position

    # -- lookup -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, column_name: str) -> bool:
        return column_name.lower() in self._index_by_name

    def column_names(self) -> List[str]:
        """The column names in declaration order."""
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        """Look up a column by (case-insensitive) name."""
        try:
            return self.columns[self._index_by_name[name.lower()]]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def position(self, name: str) -> int:
        """The 0-based position of a column within the row layout."""
        try:
            return self._index_by_name[name.lower()]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    # -- row handling --------------------------------------------------------

    def validate_row(self, values: Sequence[Any]) -> Tuple[Any, ...]:
        """Validate and coerce a row of values against the column types.

        Structural nullability (``NOT NULL`` in the column definition) is
        checked here; declared NOT NULL *constraints* are checked separately
        by the constraint manager so they can be marked informational.
        """
        if len(values) != len(self.columns):
            raise TypeMismatchError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
        coerced: List[Any] = []
        for column, value in zip(self.columns, values):
            checked = column.type.validate(value)
            if checked is None and not column.nullable:
                raise TypeMismatchError(
                    f"column {self.name}.{column.name} is NOT NULL"
                )
            coerced.append(checked)
        return tuple(coerced)

    def row_from_mapping(self, mapping: Dict[str, Any]) -> Tuple[Any, ...]:
        """Build a positional row from a ``{column: value}`` mapping.

        Missing columns default to NULL.  Unknown keys raise
        :class:`~repro.errors.SchemaError`.
        """
        lowered = {key.lower(): value for key, value in mapping.items()}
        unknown = set(lowered) - set(self._index_by_name)
        if unknown:
            raise SchemaError(
                f"unknown column(s) {sorted(unknown)} for table {self.name!r}"
            )
        return self.validate_row(
            [lowered.get(column.name) for column in self.columns]
        )

    def row_size(self, values: Sequence[Any]) -> int:
        """Simulated on-page byte size of a row (incl. a 4-byte header)."""
        size = 4
        for column, value in zip(self.columns, values):
            size += column.type.storage_size(value)
        return size

    # -- derivation -----------------------------------------------------------

    def project(self, column_names: Iterable[str], new_name: Optional[str] = None) -> "TableSchema":
        """A new schema containing only the named columns, in the given order."""
        return TableSchema(
            new_name or self.name,
            [self.column(name) for name in column_names],
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableSchema):
            return NotImplemented
        return self.name == other.name and self.columns == other.columns

    def __hash__(self) -> int:
        return hash((self.name, self.columns))

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.type}" for c in self.columns)
        return f"TableSchema({self.name}: {cols})"
